//! Delivery-plane benches: the simulator's hot path across topology
//! shapes, bandwidth modes, engines, and thread counts.
//!
//! Three axes:
//!
//! * **Topology** — dense (complete graph), sparse (G(n,p) at average
//!   degree 8), star (one hub port carrying n−1 deliveries per round).
//! * **Mode** — CONGEST (one message per directed edge per round) vs
//!   LOCAL (whole queues per round).
//! * **Engine** — `legacy` (the seed repository's `Vec<VecDeque>` plane,
//!   kept as `congest::Engine::Legacy`), `flat1` (the flat plane,
//!   sequential) and `flat4` (the flat plane on 4 shards) — all three
//!   selected purely through the unified `congest::Session` surface, so
//!   these records also measure that the surface adds no overhead.
//!
//! The `near_clique_n*` group runs the full `DistNearClique` protocol at
//! n ≥ 5000 — the ISSUE 1 acceptance workload, whose before/after trail
//! lives in `BENCH_protocol.json`. Regenerate it with:
//!
//! ```text
//! # from the repo root ($PWD: benches run with cwd = the bench package)
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench delivery_plane
//! ```

use congest::{Context, Driver, Engine, Message, Mode, Port, Protocol, RunLimits, Session};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{generators, Graph, GraphBuilder};
use nearclique::{NearCliqueParams, RunOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A counter message: representative `O(log n)` width.
#[derive(Clone, Debug)]
struct Word {
    /// Simulated payload; only its width is observable.
    _payload: u64,
}

impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Sustained traffic: every node broadcasts every round until `rounds`.
struct Gossip {
    rounds: u64,
}

impl Protocol for Gossip {
    type Msg = Word;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        ctx.broadcast(Word { _payload: 0 });
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        let _ = inbox;
        if ctx.round() < self.rounds {
            ctx.broadcast(Word { _payload: ctx.round() });
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build()
}

const GOSSIP_ROUNDS: u64 = 50;

fn run_gossip(g: &Graph, mode: Mode, engine: Engine) -> u64 {
    let mut driver = Session::on(g)
        .mode(mode)
        .seed(3)
        .engine(engine)
        .limits(RunLimits::rounds(GOSSIP_ROUNDS + 5))
        .build_with(|_| Gossip { rounds: GOSSIP_ROUNDS });
    driver.reserve_rounds(GOSSIP_ROUNDS as usize + 8);
    let report = driver.run();
    report.metrics.messages
}

fn bench_gossip(c: &mut Criterion) {
    let dense = Graph::complete(160);
    let sparse = generators::gnp(4000, 0.002, &mut StdRng::seed_from_u64(11));
    let star_g = star(2001);
    let shapes: [(&str, &Graph); 3] = [("dense", &dense), ("sparse", &sparse), ("star", &star_g)];

    for mode in [Mode::Congest, Mode::Local] {
        let tag = if mode == Mode::Congest { "congest" } else { "local" };
        let mut group = c.benchmark_group(&format!("delivery_plane/gossip_{tag}"));
        group.sample_size(10);
        for (shape, g) in shapes {
            group.bench_with_input(BenchmarkId::new(shape, "legacy"), g, |b, g| {
                b.iter(|| run_gossip(g, mode, Engine::Legacy));
            });
            group.bench_with_input(BenchmarkId::new(shape, "flat1"), g, |b, g| {
                b.iter(|| run_gossip(g, mode, Engine::Flat { shards: 1 }));
            });
            group.bench_with_input(BenchmarkId::new(shape, "flat4"), g, |b, g| {
                b.iter(|| run_gossip(g, mode, Engine::Flat { shards: 4 }));
            });
        }
        group.finish();
    }
}

/// The protocol-bench workload shape (a `δn`-node planted ε³-near clique
/// in noise). `dense` is capped so the n = 10000 instance stays benchable
/// — an n/2 planted set there would alone be 12.5M edges.
fn planted(n: usize, dense: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::planted_near_clique(n, dense, 0.0156, 0.002, &mut rng).graph
}

fn run_protocol(g: &Graph, params: &NearCliqueParams, engine: Engine) -> u64 {
    let run = nearclique::run_near_clique_with(g, params, 7, RunOptions::with_engine(engine));
    run.metrics.messages
}

/// The acceptance workload: full `DistNearClique` at n ≥ 5000, seed
/// engine vs flat plane.
fn bench_near_clique(c: &mut Criterion) {
    for (n, dense) in [(5000usize, 2500usize), (10_000, 1000)] {
        let g = planted(n, dense, 42);
        let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap();
        let mut group = c.benchmark_group(&format!("delivery_plane/near_clique_n{n}"));
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter("legacy"), &g, |b, g| {
            b.iter(|| run_protocol(g, &params, Engine::Legacy));
        });
        group.bench_with_input(BenchmarkId::from_parameter("flat1"), &g, |b, g| {
            b.iter(|| run_protocol(g, &params, Engine::Flat { shards: 1 }));
        });
        group.bench_with_input(BenchmarkId::from_parameter("flat4"), &g, |b, g| {
            b.iter(|| run_protocol(g, &params, Engine::Flat { shards: 4 }));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_gossip, bench_near_clique);
criterion_main!(benches);
