//! Criterion benches for the substrate layers: graph kernels and the
//! CONGEST simulator's round loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{density, generators, FixedBitSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Density kernels: the hot path of every verification.
fn bench_density_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/density");
    for &n in &[500usize, 2000] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp(n, 0.1, &mut rng);
        let set = FixedBitSet::from_iter_with_capacity(n, (0..n).step_by(2));
        group.bench_with_input(BenchmarkId::new("density", n), &n, |b, _| {
            b.iter(|| density::density(&g, &set));
        });
        group.bench_with_input(BenchmarkId::new("k_eps", n), &n, |b, _| {
            b.iter(|| density::k_eps(&g, &set, 0.2));
        });
        group.bench_with_input(BenchmarkId::new("t_eps", n), &n, |b, _| {
            b.iter(|| density::t_eps(&g, &set, 0.2));
        });
    }
    group.finish();
}

/// Generator throughput (the workload side of every experiment).
fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/generators");
    group.sample_size(20);
    for &n in &[500usize, 2000] {
        group.bench_with_input(BenchmarkId::new("gnp", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                generators::gnp(n, 0.05, &mut rng)
            });
        });
        group.bench_with_input(BenchmarkId::new("planted", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                generators::planted_near_clique(n, n / 2, 0.015, 0.02, &mut rng)
            });
        });
    }
    group.finish();
}

/// Raw simulator round-loop cost: a flooding protocol over G(n, p).
fn bench_simulator_rounds(c: &mut Criterion) {
    use congest::{Context, Message, Port, Protocol, RunLimits, Session};

    #[derive(Clone, Debug)]
    struct Tick;
    impl Message for Tick {
        fn bit_size(&self) -> usize {
            8
        }
    }
    struct Pulse {
        remaining: u32,
    }
    impl Protocol for Pulse {
        type Msg = Tick;
        type Output = ();
        fn init(&mut self, ctx: &mut Context<'_, Tick>) {
            ctx.broadcast(Tick);
        }
        fn step(&mut self, ctx: &mut Context<'_, Tick>, _inbox: &[(Port, Tick)]) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.broadcast(Tick);
            }
        }
        fn is_idle(&self) -> bool {
            self.remaining == 0
        }
        fn output(&self) {}
    }

    let mut group = c.benchmark_group("substrate/simulator");
    group.sample_size(10);
    for &n in &[500usize, 1500] {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp(n, 0.02, &mut rng);
        group.bench_with_input(BenchmarkId::new("flood_20_rounds", n), &n, |b, _| {
            b.iter(|| {
                Session::on(&g)
                    .seed(5)
                    .limits(RunLimits::default())
                    .run_with(|_| Pulse { remaining: 20 })
                    .1
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_density_kernels, bench_generators, bench_simulator_rounds);
criterion_main!(benches);
