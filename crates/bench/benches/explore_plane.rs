//! Explorer benches: what exhausting the schedule space costs.
//!
//! * **`flood`** — the interleaving explorer over a flood on the tiny
//!   reference graphs (3-node path, triangle, 4-node star), one row per
//!   [`SyncModel`] × `{None, Drop}`, at delay bound 2. What the rows
//!   measure is the model checker's throughput: how fast the bounded
//!   DFS walks, fingerprints and dedups the full distinct-state graph.
//! * **`phased`** — a 2-phase `PhasePlan` exploration (the §4.1 staged
//!   shape), both synchronizers: the cost of pushing every interleaving
//!   through two quiescence barriers.
//!
//! Every row's `BENCH_JSON` record carries `states`, `schedules`,
//! `deduped` and `violations` next to the timing — so a PR that grows
//! the explored state space (or, worse, introduces a violation) shows
//! up in the bench ledger, not just the test suite.
//!
//! Append machine-readable records with:
//!
//! ```text
//! # from the repo root ($PWD: benches run with cwd = the bench package)
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench explore_plane
//! ```
//!
//! CI runs this bench in smoke mode (`EXPLORE_SMOKE=1`: one sample per
//! row) purely to keep the explorer's full matrix — both synchronizers,
//! faults, phases — exercised end to end; real records come from full
//! local runs.

use congest::{
    Context, Explore, ExploreReport, FaultModel, Message, PhasePlan, Port, Protocol, SyncModel,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{Graph, GraphBuilder};

fn smoke() -> bool {
    std::env::var("EXPLORE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

const SYNC_MODELS: [SyncModel; 2] = [SyncModel::Alpha, SyncModel::BatchedAlpha];

const FAULTS: [(&str, FaultModel); 2] =
    [("none", FaultModel::None), ("drop25pct", FaultModel::Drop { p_millis: 250 })];

fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build()
}

fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build()
}

fn triangle() -> Graph {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 0);
    b.build()
}

#[derive(Clone, Debug, Hash)]
struct Rumor;

impl Message for Rumor {
    fn bit_size(&self) -> usize {
        1
    }
}

/// The canonical flood, explorer-compatible.
#[derive(Clone, Debug, Hash)]
struct Flood {
    source: bool,
    heard_at: Option<u64>,
}

impl Protocol for Flood {
    type Msg = Rumor;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
        if self.source {
            self.heard_at = Some(0);
            ctx.broadcast(Rumor);
        }
    }

    fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
        if !inbox.is_empty() && self.heard_at.is_none() {
            self.heard_at = Some(ctx.round());
            ctx.broadcast(Rumor);
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) -> Option<u64> {
        self.heard_at
    }
}

/// Two broadcast waves separated by a quiescence barrier.
#[derive(Clone, Debug, Hash)]
struct Staged {
    wave: u32,
}

#[derive(Clone, Debug, Hash)]
struct Tagged(u32);

impl Message for Tagged {
    fn bit_size(&self) -> usize {
        8
    }
}

impl Protocol for Staged {
    type Msg = Tagged;
    type Output = u32;

    fn init(&mut self, ctx: &mut Context<'_, Tagged>) {
        ctx.broadcast(Tagged(0));
    }

    fn step(&mut self, _ctx: &mut Context<'_, Tagged>, inbox: &[(Port, Tagged)]) {
        self.wave += inbox.len() as u32;
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn on_quiescent(&mut self, ctx: &mut Context<'_, Tagged>) -> bool {
        ctx.broadcast(Tagged(1));
        true
    }

    fn output(&self) -> u32 {
        self.wave
    }
}

fn annotate_report(group: &mut criterion::BenchmarkGroup<'_>, r: &ExploreReport) {
    group.annotate("states", r.states);
    group.annotate("schedules", r.schedules);
    group.annotate("deduped", r.deduped);
    group.annotate("violations", r.violations.len() as u64);
}

fn bench_flood(c: &mut Criterion) {
    let graphs: [(&str, Graph); 3] =
        [("path3", path(3)), ("triangle", triangle()), ("star4", star(4))];

    let mut group = c.benchmark_group("explore_plane/flood");
    group.sample_size(if smoke() { 1 } else { 10 });
    for (gname, g) in &graphs {
        for sync in SYNC_MODELS {
            for (fname, fault) in FAULTS {
                let label = format!("{gname}_{}_{fname}", sync.name());
                let report = std::cell::RefCell::new(ExploreReport::default());
                group.bench_with_input(BenchmarkId::from_parameter(&label), g, |b, g| {
                    b.iter(|| {
                        let r = Explore::on(g)
                            .seed(5)
                            .bound(2)
                            .budget(1)
                            .sync(sync)
                            .fault(fault)
                            .run_with(|e: &congest::Endpoint| Flood {
                                source: e.index == 0,
                                heard_at: None,
                            });
                        let states = r.states;
                        *report.borrow_mut() = r;
                        states
                    });
                });
                annotate_report(&mut group, &report.borrow());
            }
        }
    }
    group.finish();
}

fn bench_phased(c: &mut Criterion) {
    let g = path(3);
    let plan = PhasePlan::new().phase("wave0", 1).phase("wave1", 1);

    let mut group = c.benchmark_group("explore_plane/phased");
    group.sample_size(if smoke() { 1 } else { 10 });
    for sync in SYNC_MODELS {
        let label = sync.name();
        let report = std::cell::RefCell::new(ExploreReport::default());
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| {
                let r = Explore::on(g)
                    .seed(8)
                    .bound(2)
                    .plan(plan.clone())
                    .sync(sync)
                    .run_with(|_: &congest::Endpoint| Staged { wave: 0 });
                let states = r.states;
                *report.borrow_mut() = r;
                states
            });
        });
        annotate_report(&mut group, &report.borrow());
    }
    group.finish();
}

criterion_group!(benches, bench_flood, bench_phased);
criterion_main!(benches);
