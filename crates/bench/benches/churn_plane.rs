//! Churn-plane benches: what epoch-versioned membership costs.
//!
//! * **`gossip_churn`** — sustained gossip on a G(n,p), one row per
//!   churn condition (staggered joins, graceful leaves, both) ×
//!   [`SyncModel`], against the fixed-membership baseline rows. Epoch
//!   transitions mutate the membership overlay in place and the
//!   synchronizer's control plane spans every epoch unchanged, so the
//!   rows measure the *price* of reconfiguration — the epoch
//!   transitions themselves, the retired-payload sweep at each leave,
//!   and the handoff hook dispatch.
//! * **`near_clique_churn`** — the full staged `DistNearClique` under a
//!   `PhasePlan` with members leaving gracefully mid-schedule: the §4.1
//!   pulse budgets are membership-free, so this is the end-to-end cost
//!   of running the paper's protocol while the member set shrinks.
//!   (Leaves only: `DistNearClique` is strictly phase-staged, so a
//!   *joiner* initialized mid-schedule would speak phase 0 into a later
//!   phase — late joins need an epoch-restart protocol, which is the
//!   gossip rows' job.)
//!
//! Every churned row's `BENCH_JSON` record carries `epochs`, `joins`,
//! `leaves` and `retired_events` next to the timing, so the
//! reconfiguration tax is tracked across PRs in membership events as
//! well as in `min_ns`.
//!
//! Append machine-readable records with:
//!
//! ```text
//! # from the repo root ($PWD: benches run with cwd = the bench package)
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench churn_plane
//! ```
//!
//! CI runs this bench in smoke mode (`CHURN_SMOKE=1`: n shrinks to 160,
//! one sample) purely to keep the epoch-transition hot path — both
//! synchronizers, joins and leaves — exercised end to end; real records
//! come from full local runs.

use congest::{
    ChurnModel, ChurnPolicy, Context, DelayModel, Driver, Engine, FaultModel, Message, Port,
    Protocol, RunLimits, Session, SyncModel, SyncOverhead,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{generators, Graph};
use nearclique::{near_clique_phase_plan, run_near_clique_phased, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke() -> bool {
    std::env::var("CHURN_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

const SYNC_MODELS: [SyncModel; 2] = [SyncModel::Alpha, SyncModel::BatchedAlpha];

/// The churn grid: fixed membership, staggered joins, graceful leaves,
/// and both at once.
const CHURNS: [(&str, ChurnModel); 4] = [
    ("none", ChurnModel::None),
    (
        "join4",
        ChurnModel::Join { joiners: 4, at_pulse: 4, spacing: 4, policy: ChurnPolicy::Continue },
    ),
    (
        "leave4",
        ChurnModel::Leave { leavers: 4, at_pulse: 4, spacing: 4, policy: ChurnPolicy::Continue },
    ),
    (
        "mixed2x2",
        ChurnModel::Mixed {
            joiners: 2,
            leavers: 2,
            at_pulse: 4,
            spacing: 4,
            policy: ChurnPolicy::Continue,
        },
    ),
];

/// A counter message: representative `O(log n)` width.
#[derive(Clone, Debug)]
struct Word {
    _payload: u64,
}

impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Sustained traffic: every node broadcasts every pulse until `rounds`.
struct Gossip {
    rounds: u64,
}

impl Protocol for Gossip {
    type Msg = Word;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        ctx.broadcast(Word { _payload: 0 });
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        let _ = inbox;
        if ctx.round() < self.rounds {
            ctx.broadcast(Word { _payload: ctx.round() });
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

const GOSSIP_PULSES: u64 = 30;

fn run_gossip(g: &Graph, sync: SyncModel, churn: ChurnModel) -> SyncOverhead {
    let mut driver = Session::on(g)
        .seed(3)
        .engine(Engine::Async {
            delay: DelayModel::Uniform { max_delay: 8 },
            sync,
            fault: FaultModel::None,
            churn,
        })
        .limits(RunLimits::rounds(GOSSIP_PULSES))
        .build_with(|_| Gossip { rounds: GOSSIP_PULSES });
    driver.reserve_rounds(GOSSIP_PULSES as usize + 2);
    let report = driver.run();
    report.overhead
}

fn bench_gossip_churn(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let g = generators::gnp(n, 8.0 / n as f64, &mut StdRng::seed_from_u64(11));

    let mut group = c.benchmark_group("churn_plane/gossip_churn");
    group.sample_size(if smoke() { 1 } else { 10 });
    for (churn_name, churn) in CHURNS {
        for sync in SYNC_MODELS {
            let label = format!("{}_{}", sync.name(), churn_name);
            // Deterministic per (graph, seed, sync, churn) — captured
            // from the timed iterations, not an extra un-timed run.
            let overhead = std::cell::Cell::new(SyncOverhead::default());
            group.bench_with_input(BenchmarkId::from_parameter(&label), &g, |b, g| {
                b.iter(|| {
                    let run = run_gossip(g, sync, churn);
                    overhead.set(run);
                    run.epochs
                });
            });
            group.annotate("epochs", overhead.get().epochs);
            group.annotate("joins", overhead.get().joins);
            group.annotate("leaves", overhead.get().leaves);
            group.annotate("retired_events", overhead.get().retired_messages);
        }
    }
    group.finish();
}

/// The acceptance workload while the member set shrinks: `DistNearClique`
/// end to end, phased under a precomputed §4.1 schedule, with seeded
/// members leaving gracefully mid-schedule (leaves only — the paper's
/// protocol is strictly phase-staged, so a late joiner's phase-0 `init`
/// cannot speak into a later phase; late joins are the gossip rows'
/// workload).
fn bench_near_clique_churn(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let dense = n / 5;
    let mut rng = StdRng::seed_from_u64(42);
    let g = generators::planted_near_clique(n, dense, 0.0156, 4.0 / n as f64, &mut rng).graph;
    let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap();
    let plan = near_clique_phase_plan(&g, &params, 7, 1_000_000);
    let delay = DelayModel::Uniform { max_delay: 8 };
    let grid: [(&str, ChurnModel); 3] = [
        ("none", ChurnModel::None),
        (
            "leave2",
            ChurnModel::Leave {
                leavers: 2,
                at_pulse: 6,
                spacing: 6,
                policy: ChurnPolicy::Continue,
            },
        ),
        (
            "leave4",
            ChurnModel::Leave {
                leavers: 4,
                at_pulse: 6,
                spacing: 6,
                policy: ChurnPolicy::Continue,
            },
        ),
    ];

    let mut group = c.benchmark_group("churn_plane/near_clique_churn");
    group.sample_size(if smoke() { 1 } else { 5 });
    for (churn_name, churn) in grid {
        for sync in SYNC_MODELS {
            let label = format!("{}_{}", sync.name(), churn_name);
            let overhead = std::cell::Cell::new(SyncOverhead::default());
            group.bench_with_input(BenchmarkId::from_parameter(&label), &g, |b, g| {
                b.iter(|| {
                    let run = run_near_clique_phased(
                        g,
                        &params,
                        7,
                        delay,
                        sync,
                        FaultModel::None,
                        churn,
                        &plan,
                    );
                    overhead.set(run.overhead);
                    run.overhead.epochs
                });
            });
            group.annotate("epochs", overhead.get().epochs);
            group.annotate("joins", overhead.get().joins);
            group.annotate("leaves", overhead.get().leaves);
            group.annotate("retired_events", overhead.get().retired_messages);
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gossip_churn, bench_near_clique_churn);
criterion_main!(benches);
