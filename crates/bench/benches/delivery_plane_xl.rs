//! The million-node scale tier: streamed vs materialized construction
//! and full CONGEST runs at n = 10⁵ and 10⁶, with peak-RSS accounting.
//!
//! Every row is executed in a **child process** (the bench re-executes
//! itself with `XL_ROLE`/`XL_N` set): peak RSS is read from the child's
//! own `VmHWM` watermark, so one row's allocator page retention can
//! never mask or inflate another row's peak. The parent times the child
//! run (spawn overhead included — irrelevant at these run lengths) and
//! copies the child's measurements into the `BENCH_JSON` record:
//!
//! * `peak_rss_kb` — the child's resident-set high-water mark over the
//!   measured region, baseline (binary + startup) subtracted.
//! * `bytes_per_directed_port` — that peak divided by the instance's
//!   directed port count (2m), the scale tier's budget unit.
//!
//! Rows (group `delivery_plane_xl`):
//!
//! * `build_materialized/1e5` — the before-path: drain the edge stream
//!   into a `GraphBuilder` via the dup-tolerant `add_edge` (the
//!   sort+dedup build every caller paid before the streaming path
//!   existed), then compile the `Topology` from the graph. Peak covers
//!   edge list + graph + route table coexisting.
//! * `build_streamed/1e5` — `Topology::from_edge_stream`: two counted
//!   passes, peak is the final CSR plus one `u32` cursor per node. The
//!   acceptance bar: ≤ 50% of the materialized row.
//! * `flood_streamed/*`, `gossip_streamed/*` — full engine runs built
//!   via `Session::on_stream` under `MetricsMode::Streaming`, 1-bit
//!   messages, at n = 10⁵ and n = 10⁶ (expected degree 16).
//!
//! `DELIVERY_XL_SMOKE=1` shrinks everything to n = 2·10⁴, skips the 10⁶
//! rows, and **panics** if the streamed build's `peak_rss_kb` exceeds a
//! pinned ceiling — the CI regression gate for O(1)-peak construction.
//!
//! ```text
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench delivery_plane_xl
//! ```

use congest::{
    Context, Engine, Message, MetricsMode, Port, Protocol, RunLimits, Session, Topology,
};
use criterion::{rss, BenchmarkId, Criterion};
use graphs::generators::GnpStream;
use graphs::{EdgeStream, GraphBuilder};

/// Expected average degree of every instance (`p = DEGREE / (n - 1)`).
const DEGREE: f64 = 16.0;
const SEED: u64 = 2009;

/// One-bit message: the flood/gossip payload, so queue-slab and entry
/// memory is dominated by the plane itself rather than payload width.
#[derive(Clone, Debug)]
struct Bit;

impl Message for Bit {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Flood from node 0: hear once, forward once (BFS wavefront).
struct Flood {
    is_source: bool,
    heard: bool,
}

impl Protocol for Flood {
    type Msg = Bit;
    type Output = bool;

    fn init(&mut self, ctx: &mut Context<'_, Bit>) {
        if self.is_source {
            self.heard = true;
            ctx.broadcast(Bit);
        }
    }

    fn step(&mut self, ctx: &mut Context<'_, Bit>, inbox: &[(Port, Bit)]) {
        if !inbox.is_empty() && !self.heard {
            self.heard = true;
            ctx.broadcast(Bit);
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) -> bool {
        self.heard
    }
}

/// Sustained traffic: every node broadcasts every round until `rounds`.
struct Gossip {
    rounds: u64,
}

impl Protocol for Gossip {
    type Msg = Bit;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Bit>) {
        ctx.broadcast(Bit);
    }

    fn step(&mut self, ctx: &mut Context<'_, Bit>, inbox: &[(Port, Bit)]) {
        let _ = inbox;
        if ctx.round() < self.rounds {
            ctx.broadcast(Bit);
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

const GOSSIP_ROUNDS: u64 = 8;

fn stream_for(n: usize) -> GnpStream {
    GnpStream::new(n, DEGREE / (n - 1) as f64, SEED)
}

/// What a child role reports back on stdout, one `key value` per line.
#[derive(Default, Clone, Copy)]
struct RoleReport {
    peak_rss_kb: u64,
    ports: u64,
    rounds: u64,
    messages: u64,
    total_bits: u64,
}

fn run_role(role: &str, n: usize) -> RoleReport {
    let mut rep = RoleReport::default();
    // Fresh process: the watermark reset makes `peak_kb` measure only
    // the region below.
    let reset = rss::reset_peak();
    let base = rss::current_kb().unwrap_or(0);
    match role {
        "build_materialized" => {
            // The pre-streaming path: edge list → sort+dedup build →
            // graph-walking topology compile. Edge Vec, Graph and CSR
            // route table all coexist at the peak.
            let mut s = stream_for(n);
            let mut b = GraphBuilder::new(n);
            s.reset();
            while let Some((u, v)) = s.next_edge() {
                b.add_edge(u, v);
            }
            let g = b.build();
            let topo = Topology::from_graph(&g, 1);
            rep.ports = topo.port_count() as u64;
        }
        "build_streamed" => {
            let mut s = stream_for(n);
            let topo = Topology::from_edge_stream(&mut s, 1);
            rep.ports = topo.port_count() as u64;
        }
        "flood_streamed" | "gossip_streamed" => {
            let mut s = stream_for(n);
            let session = Session::on_stream(&mut s)
                .seed(SEED)
                .engine(Engine::Flat { shards: 1 })
                .metrics(MetricsMode::Streaming);
            let report = if role == "flood_streamed" {
                let mut driver = session
                    .limits(RunLimits::rounds(200))
                    .build_with(|e| Flood { is_source: e.index == 0, heard: false });
                driver.run()
            } else {
                let mut driver = session
                    .limits(RunLimits::rounds(GOSSIP_ROUNDS + 2))
                    .build_with(|_| Gossip { rounds: GOSSIP_ROUNDS });
                driver.run()
            };
            rep.rounds = report.rounds;
            rep.messages = report.metrics.messages;
            rep.total_bits = report.metrics.total_bits;
        }
        other => panic!("unknown XL_ROLE {other}"),
    }
    let peak = rss::peak_kb().unwrap_or(0);
    rep.peak_rss_kb = if reset { peak.saturating_sub(base) } else { 0 };
    rep
}

/// Re-executes this bench binary as the named role and parses its report.
fn spawn_role(role: &str, n: usize) -> RoleReport {
    let exe = std::env::current_exe().expect("bench executable path");
    let out = std::process::Command::new(exe)
        .env("XL_ROLE", role)
        .env("XL_N", n.to_string())
        .output()
        .expect("spawn XL role child");
    assert!(out.status.success(), "role {role} failed: {}", String::from_utf8_lossy(&out.stderr));
    let mut rep = RoleReport::default();
    for line in String::from_utf8_lossy(&out.stdout).lines() {
        let mut it = line.split_whitespace();
        let (Some(key), Some(value)) = (it.next(), it.next()) else { continue };
        let Ok(value) = value.parse::<u64>() else { continue };
        match key {
            "peak_rss_kb" => rep.peak_rss_kb = value,
            "ports" => rep.ports = value,
            "rounds" => rep.rounds = value,
            "messages" => rep.messages = value,
            "total_bits" => rep.total_bits = value,
            _ => {}
        }
    }
    rep
}

/// Directed port count of the instance, for rows whose child measures a
/// run (the build rows report it themselves).
fn port_count(n: usize) -> u64 {
    let mut s = stream_for(n);
    s.reset();
    2 * std::iter::from_fn(|| s.next_edge()).count() as u64
}

fn annotate(group: &mut criterion::BenchmarkGroup<'_>, rep: &RoleReport, ports: u64) {
    group.annotate("peak_rss_kb", rep.peak_rss_kb);
    if let Some(per_port) = (rep.peak_rss_kb * 1024).checked_div(ports) {
        group.annotate("bytes_per_directed_port", per_port);
    }
    if rep.rounds > 0 {
        group.annotate("rounds", rep.rounds);
        group.annotate("messages", rep.messages);
        group.annotate("total_bits", rep.total_bits);
    }
}

/// Smoke ceiling for the streamed build at n = 2·10⁴ (m ≈ 1.6·10⁵):
/// final arrays are ≈ 4.1 MB, so 6 MB flags any O(m) transient while
/// tolerating allocator slack.
const SMOKE_STREAM_BUILD_CEILING_KB: u64 = 6 * 1024;

fn bench_xl(c: &mut Criterion) {
    let smoke = std::env::var("DELIVERY_XL_SMOKE").is_ok_and(|v| v == "1");
    let n_cmp = if smoke { 20_000 } else { 100_000 };

    let mut group = c.benchmark_group("delivery_plane_xl");
    group.sample_size(1);

    // Build-path comparison rows first (the before/after pair the ≤ 50%
    // acceptance bar reads).
    let mut cmp_peaks = [0u64; 2];
    for (i, role) in ["build_materialized", "build_streamed"].iter().enumerate() {
        let mut rep = RoleReport::default();
        group.bench_function(BenchmarkId::new(role, n_cmp), |b| {
            b.iter(|| rep = spawn_role(role, n_cmp));
        });
        annotate(&mut group, &rep, rep.ports);
        cmp_peaks[i] = rep.peak_rss_kb;
    }
    println!(
        "# build peak RSS at n = {n_cmp}: materialized {} kB, streamed {} kB ({:.0}%)",
        cmp_peaks[0],
        cmp_peaks[1],
        100.0 * cmp_peaks[1] as f64 / cmp_peaks[0].max(1) as f64,
    );
    if smoke {
        assert!(
            cmp_peaks[1] > 0 && cmp_peaks[1] <= SMOKE_STREAM_BUILD_CEILING_KB,
            "streamed build peak {} kB exceeds the {} kB smoke ceiling",
            cmp_peaks[1],
            SMOKE_STREAM_BUILD_CEILING_KB,
        );
    }

    // Full runs, n = 10⁵ rows before the 10⁶ rows.
    let run_sizes: &[usize] = if smoke { &[20_000] } else { &[100_000, 1_000_000] };
    for &n in run_sizes {
        let ports = port_count(n);
        for role in ["flood_streamed", "gossip_streamed"] {
            let mut rep = RoleReport::default();
            group.bench_function(BenchmarkId::new(role, n), |b| {
                b.iter(|| rep = spawn_role(role, n));
            });
            annotate(&mut group, &rep, ports);
            if role == "flood_streamed" {
                assert!(rep.rounds > 0 && rep.rounds < 200, "flood must complete, not hit budget");
            }
        }
    }
    group.finish();
}

fn main() {
    // Child mode: run the requested role, report, exit — never recurse
    // into the bench driver.
    if let Ok(role) = std::env::var("XL_ROLE") {
        let n: usize = std::env::var("XL_N").expect("XL_N").parse().expect("XL_N numeric");
        let rep = run_role(&role, n);
        println!("peak_rss_kb {}", rep.peak_rss_kb);
        println!("ports {}", rep.ports);
        println!("rounds {}", rep.rounds);
        println!("messages {}", rep.messages);
        println!("total_bits {}", rep.total_bits);
        return;
    }
    let mut c = Criterion::default().configure_from_args();
    bench_xl(&mut c);
    c.final_summary();
}
