//! Fault-plane benches: what masked message loss costs.
//!
//! * **`gossip_drop`** — sustained gossip on a G(n,p), one row per
//!   `Drop { 1% | 5% }` × [`SyncModel`], against the fault-free
//!   baseline rows. Outputs and the payload ledger are bit-identical
//!   across rows (the masking contract, pinned by tests); what the rows
//!   measure is the *price* of masking — retransmission traffic, the
//!   stretched virtual time, and the event-plane churn they cause.
//! * **`near_clique_drop`** — the full staged `DistNearClique` under a
//!   `PhasePlan` with the same `Drop` grid: the §4.1 schedule is
//!   unchanged (pulse budgets are virtual-time-free), so this is the
//!   end-to-end cost of running the paper's protocol over a lossy wire.
//!
//! Every faulty row's `BENCH_JSON` record carries `retransmissions` and
//! `dropped_messages` next to the timing, so the masking tax is tracked
//! across PRs in traffic as well as in `min_ns`.
//!
//! Append machine-readable records with:
//!
//! ```text
//! # from the repo root ($PWD: benches run with cwd = the bench package)
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench fault_plane
//! ```
//!
//! CI runs this bench in smoke mode (`FAULT_PLANE_SMOKE=1`: n shrinks
//! to 160, one sample) purely to keep the retransmission hot path —
//! both synchronizers included — exercised end to end; real records
//! come from full local runs.

use congest::{
    ChurnModel, Context, DelayModel, Driver, Engine, FaultModel, Message, Port, Protocol,
    RunLimits, RunProfile, Session, SyncModel, SyncOverhead, TraceConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{generators, Graph};
use nearclique::{near_clique_phase_plan, run_near_clique_phased, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke() -> bool {
    std::env::var("FAULT_PLANE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

const SYNC_MODELS: [SyncModel; 2] = [SyncModel::Alpha, SyncModel::BatchedAlpha];

/// The fault grid: fault-free baseline, then 1% and 5% per-send loss.
const FAULTS: [(&str, FaultModel); 3] = [
    ("none", FaultModel::None),
    ("drop1pct", FaultModel::Drop { p_millis: 10 }),
    ("drop5pct", FaultModel::Drop { p_millis: 50 }),
];

/// A counter message: representative `O(log n)` width.
#[derive(Clone, Debug)]
struct Word {
    _payload: u64,
}

impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Sustained traffic: every node broadcasts every pulse until `rounds`.
struct Gossip {
    rounds: u64,
}

impl Protocol for Gossip {
    type Msg = Word;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        ctx.broadcast(Word { _payload: 0 });
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        let _ = inbox;
        if ctx.round() < self.rounds {
            ctx.broadcast(Word { _payload: ctx.round() });
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

const GOSSIP_PULSES: u64 = 30;

fn run_gossip(g: &Graph, sync: SyncModel, fault: FaultModel) -> SyncOverhead {
    let mut driver = Session::on(g)
        .seed(3)
        .engine(Engine::Async {
            delay: DelayModel::Uniform { max_delay: 8 },
            sync,
            fault,
            churn: ChurnModel::None,
        })
        .limits(RunLimits::rounds(GOSSIP_PULSES))
        .build_with(|_| Gossip { rounds: GOSSIP_PULSES });
    driver.reserve_rounds(GOSSIP_PULSES as usize + 2);
    let report = driver.run();
    report.overhead
}

/// One extra *un-timed* traced run per row (deterministic, so the
/// profile describes the timed iterations exactly) — keeps the recorder
/// out of the timed loop so the `min_ns` series stays comparable.
fn gossip_profile(g: &Graph, sync: SyncModel, fault: FaultModel) -> RunProfile {
    let mut driver = Session::on(g)
        .seed(3)
        .engine(Engine::Async {
            delay: DelayModel::Uniform { max_delay: 8 },
            sync,
            fault,
            churn: ChurnModel::None,
        })
        .limits(RunLimits::rounds(GOSSIP_PULSES))
        .trace(TraceConfig::profile_only())
        .build_with(|_| Gossip { rounds: GOSSIP_PULSES });
    driver.reserve_rounds(GOSSIP_PULSES as usize + 2);
    driver.run().profile.expect("traced run attaches a profile")
}

fn bench_gossip_drop(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let g = generators::gnp(n, 8.0 / n as f64, &mut StdRng::seed_from_u64(11));

    let mut group = c.benchmark_group("fault_plane/gossip_drop");
    group.sample_size(if smoke() { 1 } else { 10 });
    for (fault_name, fault) in FAULTS {
        for sync in SYNC_MODELS {
            let label = format!("{}_{}", sync.name(), fault_name);
            // Deterministic per (graph, seed, sync, fault) — captured
            // from the timed iterations, not an extra un-timed run.
            let overhead = std::cell::Cell::new(SyncOverhead::default());
            group.bench_with_input(BenchmarkId::from_parameter(&label), &g, |b, g| {
                b.iter(|| {
                    let run = run_gossip(g, sync, fault);
                    overhead.set(run);
                    run.retransmissions
                });
            });
            group.annotate("retransmissions", overhead.get().retransmissions);
            group.annotate("dropped_messages", overhead.get().dropped_messages);
            let profile = gossip_profile(&g, sync, fault);
            group.annotate("max_wheel_occupancy", profile.max_wheel_occupancy);
            group.annotate("max_queue_depth", profile.max_queue_depth);
        }
    }
    group.finish();
}

/// The acceptance workload over a lossy wire: `DistNearClique` end to
/// end, phased under a precomputed §4.1 schedule, with every send
/// subject to seeded loss — masked by retransmission, so labels and
/// the payload ledger never move.
fn bench_near_clique_drop(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let dense = n / 5;
    let mut rng = StdRng::seed_from_u64(42);
    let g = generators::planted_near_clique(n, dense, 0.0156, 4.0 / n as f64, &mut rng).graph;
    let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap();
    let plan = near_clique_phase_plan(&g, &params, 7, 1_000_000);
    let delay = DelayModel::Uniform { max_delay: 8 };

    let mut group = c.benchmark_group("fault_plane/near_clique_drop");
    group.sample_size(if smoke() { 1 } else { 5 });
    for (fault_name, fault) in FAULTS {
        for sync in SYNC_MODELS {
            let label = format!("{}_{}", sync.name(), fault_name);
            let overhead = std::cell::Cell::new(SyncOverhead::default());
            group.bench_with_input(BenchmarkId::from_parameter(&label), &g, |b, g| {
                b.iter(|| {
                    let run = run_near_clique_phased(
                        g,
                        &params,
                        7,
                        delay,
                        sync,
                        fault,
                        ChurnModel::None,
                        &plan,
                    );
                    overhead.set(run.overhead);
                    run.metrics.messages
                });
            });
            group.annotate("retransmissions", overhead.get().retransmissions);
            group.annotate("dropped_messages", overhead.get().dropped_messages);
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gossip_drop, bench_near_clique_drop);
criterion_main!(benches);
