//! Asynchronous-engine benches: the scheduling subsystem's two
//! dimensions under load.
//!
//! * **`gossip_models`** — sustained gossip through synchronizer α on a
//!   1000-node G(n,p), one row per [`DelayModel`] (uniform vs per-link
//!   vs heavy-tailed vs adversarial at the same bound). The payload
//!   ledger is identical across rows (pinned by tests); what varies is
//!   the event-plumbing cost of each schedule.
//! * **`near_clique_alpha_n1000`** — the full staged `DistNearClique`
//!   under α at n = 1000, phase transitions driven by a derived
//!   `PhasePlan` (§4.1), against the flat synchronous baseline. This is
//!   the "α tax": payload traffic is bit-identical, the difference is
//!   pure synchronizer control plane.
//!
//! Append machine-readable records with:
//!
//! ```text
//! # from the repo root ($PWD: benches run with cwd = the bench package)
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench async_plane
//! ```
//!
//! CI runs this bench in smoke mode (`ASYNC_PLANE_SMOKE=1`: n shrinks to
//! 160, one sample) purely to keep the async hot path exercised end to
//! end; real records come from full local runs.

use congest::{Context, DelayModel, Driver, Engine, Message, Port, Protocol, RunLimits, Session};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{generators, Graph};
use nearclique::{near_clique_phase_plan, run_near_clique_phased, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke() -> bool {
    std::env::var("ASYNC_PLANE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A counter message: representative `O(log n)` width.
#[derive(Clone, Debug)]
struct Word {
    _payload: u64,
}

impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Sustained traffic: every node broadcasts every pulse until `rounds`.
struct Gossip {
    rounds: u64,
}

impl Protocol for Gossip {
    type Msg = Word;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        ctx.broadcast(Word { _payload: 0 });
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        let _ = inbox;
        if ctx.round() < self.rounds {
            ctx.broadcast(Word { _payload: ctx.round() });
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

const GOSSIP_PULSES: u64 = 30;

fn run_gossip(g: &Graph, delay: DelayModel) -> u64 {
    let mut driver = Session::on(g)
        .seed(3)
        .engine(Engine::Async { delay })
        .limits(RunLimits::rounds(GOSSIP_PULSES))
        .build_with(|_| Gossip { rounds: GOSSIP_PULSES });
    driver.reserve_rounds(GOSSIP_PULSES as usize + 2);
    let report = driver.run();
    report.metrics.messages + report.overhead.control_messages
}

fn bench_gossip_models(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let g = generators::gnp(n, 8.0 / n as f64, &mut StdRng::seed_from_u64(11));

    let mut group = c.benchmark_group("async_plane/gossip_models");
    group.sample_size(if smoke() { 1 } else { 10 });
    for delay in [
        DelayModel::Uniform { max_delay: 8 },
        DelayModel::PerLink { max_delay: 8 },
        DelayModel::HeavyTailed { max_delay: 8 },
        DelayModel::Adversarial { max_delay: 8 },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(delay.name()), &g, |b, g| {
            b.iter(|| run_gossip(g, delay));
        });
    }
    group.finish();
}

/// The α acceptance workload: `DistNearClique` end to end at n = 1000, a
/// planted near-clique in noise (the protocol-bench shape scaled down),
/// flat baseline vs phased asynchronous execution.
fn bench_near_clique_alpha(c: &mut Criterion) {
    let n: usize = if smoke() { 160 } else { 1000 };
    let dense = n / 5;
    let mut rng = StdRng::seed_from_u64(42);
    let g = generators::planted_near_clique(n, dense, 0.0156, 4.0 / n as f64, &mut rng).graph;
    let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap();

    // The §4.1 schedule is precomputed once (it depends only on the
    // graph/params/seed) and shared by every delay-model row, exactly
    // how a repeated-deployment harness would amortize it.
    let plan = near_clique_phase_plan(&g, &params, 7, 1_000_000);

    let mut group = c.benchmark_group(&format!("async_plane/near_clique_alpha_n{n}"));
    group.sample_size(if smoke() { 1 } else { 5 });
    group.bench_with_input(BenchmarkId::from_parameter("flat1"), &g, |b, g| {
        b.iter(|| {
            let run = nearclique::run_near_clique_with(
                g,
                &params,
                7,
                nearclique::RunOptions::with_engine(Engine::Flat { shards: 1 }),
            );
            run.metrics.messages
        });
    });
    for delay in [
        DelayModel::Uniform { max_delay: 8 },
        DelayModel::HeavyTailed { max_delay: 8 },
        DelayModel::Adversarial { max_delay: 8 },
    ] {
        let label = format!("alpha_{}", delay.name());
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| {
                let run = run_near_clique_phased(g, &params, 7, delay, &plan);
                run.metrics.messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gossip_models, bench_near_clique_alpha);
criterion_main!(benches);
