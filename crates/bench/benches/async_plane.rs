//! Asynchronous-engine benches: the scheduling subsystem's dimensions
//! under load — delay models × synchronizers.
//!
//! * **`gossip_models`** — sustained gossip on a 1000-node G(n,p), one
//!   row per [`DelayModel`] × [`SyncModel`] (uniform vs per-link vs
//!   heavy-tailed vs adversarial at the same bound, under classic α and
//!   the batched Safe-wave synchronizer). The payload ledger is
//!   identical across rows (pinned by tests); what varies is the
//!   control plane and its event-plumbing cost.
//! * **`near_clique_alpha_n1000`** — the full staged `DistNearClique`
//!   under a synchronizer at n = 1000, phase transitions driven by a
//!   derived `PhasePlan` (§4.1), against the flat synchronous baseline.
//!   This is the "α tax": payload traffic is bit-identical, the
//!   difference is pure synchronizer control plane — and the
//!   `batched_*` rows measure how much of it the Safe-wave coalescing
//!   recovers.
//! * **`near_clique_alpha_n5000`** — the same workload at n = 5000,
//!   pinning how the event plane and the synchronizer layer scale.
//! * **`wheel_vs_heap`** — the event plane in isolation: a
//!   self-sustaining event churn (each handled event schedules its
//!   successor within the delay bound) through the slab-backed
//!   [`congest::EventWheel`] versus the structure it replaced — a
//!   `BinaryHeap` of `(time, seq, dest)` keys with every envelope parked
//!   in a side `BTreeMap`.
//!
//! Every asynchronous row's `BENCH_JSON` record carries its
//! [`SyncOverhead`](congest::SyncOverhead) next to the timing —
//! `control_messages` and `control_bits` fields — so the α-tax trend is
//! tracked in control traffic as well as in `min_ns` across PRs.
//!
//! Append machine-readable records with:
//!
//! ```text
//! # from the repo root ($PWD: benches run with cwd = the bench package)
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench async_plane
//! ```
//!
//! CI runs this bench in smoke mode (`ASYNC_PLANE_SMOKE=1`: n shrinks to
//! 160, one sample) purely to keep the async hot path — both
//! synchronizers included — exercised end to end; real records come from
//! full local runs.

use congest::{
    ChurnModel, Context, DelayModel, Driver, Engine, FaultModel, Message, Port, Protocol,
    RunLimits, RunProfile, Session, SyncModel, SyncOverhead, TraceConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{generators, Graph};
use nearclique::{near_clique_phase_plan, run_near_clique_phased, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke() -> bool {
    std::env::var("ASYNC_PLANE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

const SYNC_MODELS: [SyncModel; 2] = [SyncModel::Alpha, SyncModel::BatchedAlpha];

/// A counter message: representative `O(log n)` width.
#[derive(Clone, Debug)]
struct Word {
    _payload: u64,
}

impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Sustained traffic: every node broadcasts every pulse until `rounds`.
struct Gossip {
    rounds: u64,
}

impl Protocol for Gossip {
    type Msg = Word;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        ctx.broadcast(Word { _payload: 0 });
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        let _ = inbox;
        if ctx.round() < self.rounds {
            ctx.broadcast(Word { _payload: ctx.round() });
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

const GOSSIP_PULSES: u64 = 30;

fn run_gossip(g: &Graph, delay: DelayModel, sync: SyncModel) -> SyncOverhead {
    let mut driver = Session::on(g)
        .seed(3)
        .engine(Engine::Async { delay, sync, fault: FaultModel::None, churn: ChurnModel::None })
        .limits(RunLimits::rounds(GOSSIP_PULSES))
        .build_with(|_| Gossip { rounds: GOSSIP_PULSES });
    driver.reserve_rounds(GOSSIP_PULSES as usize + 2);
    let report = driver.run();
    report.overhead
}

/// One extra *un-timed* traced run per row: the run is deterministic, so
/// the streaming profile (wheel/queue high-water marks) describes the
/// timed iterations exactly — without a recorder ever running inside
/// them, which would shift the long-tracked `min_ns` series.
fn gossip_profile(g: &Graph, delay: DelayModel, sync: SyncModel) -> RunProfile {
    let mut driver = Session::on(g)
        .seed(3)
        .engine(Engine::Async { delay, sync, fault: FaultModel::None, churn: ChurnModel::None })
        .limits(RunLimits::rounds(GOSSIP_PULSES))
        .trace(TraceConfig::profile_only())
        .build_with(|_| Gossip { rounds: GOSSIP_PULSES });
    driver.reserve_rounds(GOSSIP_PULSES as usize + 2);
    driver.run().profile.expect("traced run attaches a profile")
}

fn bench_gossip_models(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let g = generators::gnp(n, 8.0 / n as f64, &mut StdRng::seed_from_u64(11));

    let mut group = c.benchmark_group("async_plane/gossip_models");
    group.sample_size(if smoke() { 1 } else { 10 });
    for delay in [
        DelayModel::Uniform { max_delay: 8 },
        DelayModel::PerLink { max_delay: 8 },
        DelayModel::HeavyTailed { max_delay: 8 },
        DelayModel::Adversarial { max_delay: 8 },
    ] {
        for sync in SYNC_MODELS {
            let label = format!("{}_{}", sync.name(), delay.name());
            // The overhead is deterministic per (graph, seed, delay,
            // sync); capture it from the timed iterations instead of
            // paying for an extra un-timed run.
            let overhead = std::cell::Cell::new(SyncOverhead::default());
            group.bench_with_input(BenchmarkId::from_parameter(&label), &g, |b, g| {
                b.iter(|| {
                    let run = run_gossip(g, delay, sync);
                    overhead.set(run);
                    run.control_messages
                });
            });
            group.annotate("control_messages", overhead.get().control_messages);
            group.annotate("control_bits", overhead.get().control_bits);
            let profile = gossip_profile(&g, delay, sync);
            group.annotate("max_wheel_occupancy", profile.max_wheel_occupancy);
            group.annotate("max_queue_depth", profile.max_queue_depth);
        }
    }
    group.finish();
}

/// The acceptance workload: `DistNearClique` end to end, a planted
/// near-clique in noise (the protocol-bench shape scaled down), flat
/// baseline vs phased asynchronous execution under each synchronizer,
/// at the given scale.
fn near_clique_alpha_at(c: &mut Criterion, n: usize, models: &[DelayModel], samples: usize) {
    let dense = n / 5;
    let mut rng = StdRng::seed_from_u64(42);
    let g = generators::planted_near_clique(n, dense, 0.0156, 4.0 / n as f64, &mut rng).graph;
    let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap();

    // The §4.1 schedule is precomputed once (it depends only on the
    // graph/params/seed) and shared by every row, exactly how a
    // repeated-deployment harness would amortize it.
    let plan = near_clique_phase_plan(&g, &params, 7, 1_000_000);

    let mut group = c.benchmark_group(&format!("async_plane/near_clique_alpha_n{n}"));
    group.sample_size(if smoke() { 1 } else { samples });
    group.bench_with_input(BenchmarkId::from_parameter("flat1"), &g, |b, g| {
        b.iter(|| {
            let run = nearclique::run_near_clique_with(
                g,
                &params,
                7,
                nearclique::RunOptions::with_engine(Engine::Flat { shards: 1 }),
            );
            run.metrics.messages
        });
    });
    for &delay in models {
        for sync in SYNC_MODELS {
            let label = format!("{}_{}", sync.name(), delay.name());
            // Deterministic per row — captured from the timed
            // iterations, not an extra un-timed run.
            let overhead = std::cell::Cell::new(SyncOverhead::default());
            group.bench_with_input(BenchmarkId::from_parameter(&label), &g, |b, g| {
                b.iter(|| {
                    let run = run_near_clique_phased(
                        g,
                        &params,
                        7,
                        delay,
                        sync,
                        FaultModel::None,
                        ChurnModel::None,
                        &plan,
                    );
                    overhead.set(run.overhead);
                    run.metrics.messages
                });
            });
            group.annotate("control_messages", overhead.get().control_messages);
            group.annotate("control_bits", overhead.get().control_bits);
        }
    }
    group.finish();
}

fn bench_near_clique_alpha(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    near_clique_alpha_at(
        c,
        n,
        &[
            DelayModel::Uniform { max_delay: 8 },
            DelayModel::HeavyTailed { max_delay: 8 },
            DelayModel::Adversarial { max_delay: 8 },
        ],
        5,
    );
}

/// The event plane at scale: five-fold the nodes (and event population)
/// of the n = 1000 group, one delay model — enough to read the scaling
/// of both synchronizers.
fn bench_near_clique_alpha_large(c: &mut Criterion) {
    let n = if smoke() { 320 } else { 5000 };
    near_clique_alpha_at(c, n, &[DelayModel::Uniform { max_delay: 8 }], 3);
}

/// The event plane in isolation: wheel vs the heap it replaced.
///
/// The workload mirrors the engine's churn without protocol logic: a
/// pool of in-flight events where every handled event schedules one
/// successor at a bounded random delay, until `total` events flowed.
/// The `heap_parked` row reproduces the old plumbing exactly — keys in a
/// `BinaryHeap<Reverse<(time, seq, dest, port)>>`, envelopes parked in a
/// `BTreeMap<seq, _>` — and the `wheel` row is the replacement, envelope
/// riding inside its slab-chunk wheel entry.
fn bench_wheel_vs_heap(c: &mut Criterion) {
    use congest::rng::splitmix64;
    use congest::EventWheel;
    use std::cmp::Reverse;
    use std::collections::{BTreeMap, BinaryHeap};

    const MAX_DELAY: u64 = 8;
    const IN_FLIGHT: usize = 4096;
    let total: u64 = if smoke() { 20_000 } else { 2_000_000 };

    /// The envelope the engine ships per event (payload pulse + word).
    #[derive(Clone)]
    struct Envelope {
        _pulse: u64,
        word: u64,
    }

    let mut group = c.benchmark_group("async_plane/wheel_vs_heap");
    group.sample_size(if smoke() { 1 } else { 10 });

    group.bench_function(BenchmarkId::from_parameter("wheel"), |b| {
        b.iter(|| {
            let mut wheel: EventWheel<(u32, u32, Envelope)> = EventWheel::new(MAX_DELAY);
            let mut rng = 0x5EEDu64;
            let mut draw = || {
                rng = splitmix64(rng);
                1 + rng % MAX_DELAY
            };
            for i in 0..IN_FLIGHT {
                wheel.schedule(draw(), (i as u32, 0, Envelope { _pulse: 0, word: i as u64 }));
            }
            let mut handled = 0u64;
            let mut check = 0u64;
            while let Some((t, (to, _port, env))) = wheel.pop_next() {
                handled += 1;
                check = check.wrapping_add(env.word ^ t);
                if handled + wheel.pending() < total {
                    wheel.schedule(t + draw(), (to, 1, Envelope { _pulse: t, word: check }));
                }
            }
            assert_eq!(handled, total);
            check
        });
    });

    group.bench_function(BenchmarkId::from_parameter("heap_parked"), |b| {
        b.iter(|| {
            let mut heap: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = BinaryHeap::new();
            let mut parked: BTreeMap<u64, Envelope> = BTreeMap::new();
            let mut seq = 0u64;
            let mut rng = 0x5EEDu64;
            let mut draw = || {
                rng = splitmix64(rng);
                1 + rng % MAX_DELAY
            };
            for i in 0..IN_FLIGHT {
                parked.insert(seq, Envelope { _pulse: 0, word: i as u64 });
                heap.push(Reverse((draw(), seq, i, 0)));
                seq += 1;
            }
            let mut handled = 0u64;
            let mut check = 0u64;
            while let Some(Reverse((t, s, to, _port))) = heap.pop() {
                let env = parked.remove(&s).expect("parked envelope exists");
                handled += 1;
                check = check.wrapping_add(env.word ^ t);
                if handled + (heap.len() as u64) < total {
                    parked.insert(seq, Envelope { _pulse: t, word: check });
                    heap.push(Reverse((t + draw(), seq, to, 1)));
                    seq += 1;
                }
            }
            assert_eq!(handled, total);
            check
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_gossip_models,
    bench_near_clique_alpha,
    bench_near_clique_alpha_large,
    bench_wheel_vs_heap
);
criterion_main!(benches);
