//! Criterion wall-clock benches for the DistNearClique protocol itself:
//! cost per run as n, E|S| and λ scale (the Lemma 5.1 / Corollary 2.2
//! resource axes, measured in host time rather than rounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::generators;
use nearclique::{run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planted(n: usize, seed: u64) -> graphs::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::planted_near_clique(n, n / 2, 0.0156, 0.02, &mut rng).graph
}

/// E2's axis: n grows, everything else fixed — run cost should grow only
/// with graph size (simulation overhead), not with round count.
fn bench_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/scale_n");
    group.sample_size(10);
    for &n in &[200usize, 400, 800] {
        let g = planted(n, 42);
        let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_near_clique(&g, &params, 7));
        });
    }
    group.finish();
}

/// E5's axis: expected sample size grows — cost is dominated by 2^|S|.
fn bench_scaling_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/scale_sample");
    group.sample_size(10);
    let n = 400;
    let g = planted(n, 43);
    for &pn in &[4.0f64, 7.0, 10.0] {
        let params = NearCliqueParams::for_expected_sample(0.25, pn, n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(pn as u32), &pn, |b, _| {
            b.iter(|| run_near_clique(&g, &params, 11));
        });
    }
    group.finish();
}

/// §4.1 boosting: cost is linear in λ.
fn bench_boosting(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/boosting_lambda");
    group.sample_size(10);
    let n = 300;
    let g = planted(n, 44);
    for &lambda in &[1u32, 2, 4] {
        let params =
            NearCliqueParams::for_expected_sample(0.25, 6.0, n).unwrap().with_lambda(lambda);
        group.bench_with_input(BenchmarkId::from_parameter(lambda), &lambda, |b, _| {
            b.iter(|| run_near_clique(&g, &params, 13));
        });
    }
    group.finish();
}

/// Parallel stepping: same semantics, different thread counts.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/threads");
    group.sample_size(10);
    let n = 600;
    let g = planted(n, 45);
    let params = NearCliqueParams::for_expected_sample(0.25, 8.0, n).unwrap();
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                nearclique::run_near_clique_with(
                    &g,
                    &params,
                    17,
                    nearclique::RunOptions::threaded(threads),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_n, bench_scaling_sample, bench_boosting, bench_parallel);
criterion_main!(benches);
