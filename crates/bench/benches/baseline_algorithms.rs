//! Criterion benches for the comparator algorithms: the §3 strawmen, the
//! centralized finders and the property tester.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{exact, generators, peel, quasi};
use proptester::{CountingOracle, RhoCliqueTester, TesterParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planted(n: usize, seed: u64) -> graphs::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::planted_clique(n, (0.4 * n as f64) as usize, 0.08, &mut rng).graph
}

fn bench_shingles(c: &mut Criterion) {
    use baselines::shingles::{run_shingles, ShinglesConfig};
    let mut group = c.benchmark_group("baseline/shingles");
    group.sample_size(20);
    for &n in &[200usize, 800] {
        let g = planted(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_shingles(&g, ShinglesConfig::default(), 3));
        });
    }
    group.finish();
}

fn bench_neighbors_neighbors(c: &mut Criterion) {
    use baselines::neighbors::run_neighbors_neighbors;
    let mut group = c.benchmark_group("baseline/neighbors_neighbors");
    group.sample_size(10);
    for &n in &[60usize, 120] {
        let g = planted(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_neighbors_neighbors(&g, 3));
        });
    }
    group.finish();
}

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/centralized");
    group.sample_size(10);
    let g = planted(300, 3);
    group.bench_function("peel_300", |b| {
        b.iter(|| peel::densest_at_least_k(&g, 50));
    });
    group.bench_function("quasi_300", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            quasi::quasi_clique(&g, &quasi::QuasiCliqueConfig::default(), &mut rng)
        });
    });
    let small = planted(120, 5);
    group.bench_function("exact_120", |b| {
        b.iter(|| exact::maximum_clique(&small));
    });
    group.finish();
}

fn bench_property_tester(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/property_tester");
    group.sample_size(20);
    let g = planted(800, 6);
    let tester = RhoCliqueTester::new(TesterParams {
        rho: 0.4,
        epsilon: 0.25,
        sample_size: 8,
        eval_size: 60,
    });
    group.bench_function("ggr_test_800", |b| {
        b.iter(|| {
            let oracle = CountingOracle::new(&g);
            let mut rng = StdRng::seed_from_u64(7);
            tester.test(&oracle, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shingles,
    bench_neighbors_neighbors,
    bench_centralized,
    bench_property_tester
);
criterion_main!(benches);
