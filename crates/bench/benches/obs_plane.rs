//! Observability-plane benches: what recording costs.
//!
//! * **`gossip_recorder`** — the same sustained gossip workload as
//!   `async_plane/gossip_models`, one row per recorder configuration:
//!   `off` (no recorder installed — the null-check-only baseline every
//!   untraced run pays), `profile_only` (streaming aggregation, no
//!   timeline ring), and `ring` (full event ring at the default
//!   capacity). Comparing `min_ns` across the rows *is* the recorder's
//!   overhead measurement; the `records` annotation on the traced rows
//!   says how many events that cost bought.
//! * **`flat_recorder`** — the flat synchronous plane with and without
//!   a recorder: the per-round `Round` event is the only hot-path site
//!   there, so this row pins the disabled-recorder cost at its floor.
//!
//! Append machine-readable records with:
//!
//! ```text
//! # from the repo root ($PWD: benches run with cwd = the bench package)
//! BENCH_JSON=$PWD/BENCH_protocol.json cargo bench -p bench --bench obs_plane
//! ```
//!
//! CI runs this bench in smoke mode (`OBS_SMOKE=1`: n shrinks to 160,
//! one sample) purely to keep the recording hot path exercised end to
//! end; real records come from full local runs.

use congest::{
    ChurnModel, Context, DelayModel, Driver, Engine, FaultModel, Message, Port, Protocol,
    RunLimits, Session, SyncModel, TraceConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke() -> bool {
    std::env::var("OBS_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A counter message: representative `O(log n)` width.
#[derive(Clone, Debug)]
struct Word {
    _payload: u64,
}

impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Sustained traffic: every node broadcasts every pulse until `rounds`.
struct Gossip {
    rounds: u64,
}

impl Protocol for Gossip {
    type Msg = Word;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        ctx.broadcast(Word { _payload: 0 });
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        let _ = inbox;
        if ctx.round() < self.rounds {
            ctx.broadcast(Word { _payload: ctx.round() });
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

const GOSSIP_PULSES: u64 = 30;

/// The recorder grid: no recorder, streaming profile only, full ring.
const RECORDERS: [(&str, Option<TraceConfig>); 3] = [
    ("off", None),
    ("profile_only", Some(TraceConfig { capacity: 0 })),
    ("ring", Some(TraceConfig { capacity: 1 << 16 })),
];

fn run_gossip(g: &Graph, engine: Engine, trace: Option<TraceConfig>) -> u64 {
    let mut session =
        Session::on(g).seed(3).engine(engine).limits(RunLimits::rounds(GOSSIP_PULSES));
    if let Some(cfg) = trace {
        session = session.trace(cfg);
    }
    let mut driver = session.build_with(|_| Gossip { rounds: GOSSIP_PULSES });
    driver.reserve_rounds(GOSSIP_PULSES as usize + 2);
    let report = driver.run();
    report.profile.map_or(0, |p| p.records)
}

fn bench_gossip_recorder(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let g = generators::gnp(n, 8.0 / n as f64, &mut StdRng::seed_from_u64(11));
    let engine = Engine::Async {
        delay: DelayModel::Uniform { max_delay: 8 },
        sync: SyncModel::BatchedAlpha,
        fault: FaultModel::None,
        churn: ChurnModel::None,
    };

    let mut group = c.benchmark_group("obs_plane/gossip_recorder");
    group.sample_size(if smoke() { 1 } else { 10 });
    for (name, trace) in RECORDERS {
        // Deterministic per row — captured from the timed iterations.
        let records = std::cell::Cell::new(0u64);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let r = run_gossip(g, engine, trace);
                records.set(r);
                r
            });
        });
        group.annotate("records", records.get());
    }
    group.finish();
}

fn bench_flat_recorder(c: &mut Criterion) {
    let n = if smoke() { 160 } else { 1000 };
    let g = generators::gnp(n, 8.0 / n as f64, &mut StdRng::seed_from_u64(11));
    let engine = Engine::Flat { shards: 1 };

    let mut group = c.benchmark_group("obs_plane/flat_recorder");
    group.sample_size(if smoke() { 1 } else { 10 });
    for (name, trace) in RECORDERS {
        let records = std::cell::Cell::new(0u64);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let r = run_gossip(g, engine, trace);
                records.set(r);
                r
            });
        });
        group.annotate("records", records.get());
    }
    group.finish();
}

criterion_group!(benches, bench_gossip_recorder, bench_flat_recorder);
criterion_main!(benches);
