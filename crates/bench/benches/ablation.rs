//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * **Step 4f exact vs estimated** (§5.3 remark): the paper suggests
//!   sampling neighbors to cut local work; we measure the wall-clock win
//!   of the estimator at several budgets (its accuracy is covered by unit
//!   tests in `nearclique::estimate`).
//! * **Component cap**: the safety valve trades coverage for state; its
//!   cost shows up as run time vs `max_component_size`.
//! * **Bit rows**: graphs can be built with or without adjacency bit
//!   rows; density kernels pay the difference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{density, generators, FixedBitSet, GraphBuilder};
use nearclique::{estimate, run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_step4f(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/step4f");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let p = generators::planted_near_clique(600, 300, 0.0156, 0.05, &mut rng);
    let x = FixedBitSet::from_iter_with_capacity(600, p.dense_set.iter().take(5));

    group.bench_function("exact", |b| {
        b.iter(|| density::t_eps(&p.graph, &x, 0.25));
    });
    for &budget in &[10usize, 40] {
        group.bench_with_input(BenchmarkId::new("estimated", budget), &budget, |b, &budget| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(2);
                estimate::t_eps_estimated(&p.graph, &x, 0.25, budget, &mut r)
            });
        });
    }
    group.finish();
}

fn bench_component_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/component_cap");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let p = generators::planted_near_clique(400, 200, 0.0156, 0.02, &mut rng);
    for &cap in &[8u32, 12, 16] {
        let params = NearCliqueParams::for_expected_sample(0.25, 9.0, 400)
            .unwrap()
            .with_max_component_size(cap);
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| run_near_clique(&p.graph, &params, 5));
        });
    }
    group.finish();
}

fn bench_bit_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bit_rows");
    let n = 1200;
    let mut rng = StdRng::seed_from_u64(4);
    let base = generators::gnp(n, 0.05, &mut rng);
    let mut with_rows = GraphBuilder::new(n);
    let mut without_rows = GraphBuilder::new(n);
    with_rows.bitset_rows(true);
    without_rows.bitset_rows(false);
    for (u, v) in base.edges() {
        with_rows.add_edge(u, v);
        without_rows.add_edge(u, v);
    }
    let gw = with_rows.build();
    let go = without_rows.build();
    let set = FixedBitSet::from_iter_with_capacity(n, (0..n).step_by(3));

    group.bench_function("density_with_rows", |b| {
        b.iter(|| density::density(&gw, &set));
    });
    group.bench_function("density_without_rows", |b| {
        b.iter(|| density::density(&go, &set));
    });
    group.finish();
}

criterion_group!(benches, bench_step4f, bench_component_cap, bench_bit_rows);
criterion_main!(benches);
