//! Plain-text table rendering for experiment reports.

/// A titled table with a caption explaining what the paper predicts.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// What the paper predicts, quoted/paraphrased.
    pub expectation: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, expectation: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            expectation: expectation.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned monospaced text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("paper: {}\n", self.expectation));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", "expectation text", &["a", "bbbb"]);
        t.row(vec!["12345".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("paper: expectation text"));
        assert!(s.contains("12345"));
        // Header 'a' right-aligned to width 5.
        assert!(s.contains("    a  bbbb"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", "", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(2.0), "2.0");
    }
}
