//! CLI driver for the experiment suite.
//!
//! ```text
//! experiments [--full] [e1 e2 ...]
//! ```
//!
//! With no experiment ids, runs everything. `--quick` (default) uses
//! reduced trial counts; `--full` uses the counts recorded in
//! EXPERIMENTS.md.

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let quick = !full;
    let selected: Vec<String> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.to_lowercase()).collect();

    let registry = bench::all();
    let to_run: Vec<&bench::Experiment> = if selected.is_empty() {
        registry.iter().collect()
    } else {
        let picked: Vec<&bench::Experiment> =
            registry.iter().filter(|e| selected.contains(&e.id.to_string())).collect();
        if picked.is_empty() {
            eprintln!(
                "unknown experiment ids {selected:?}; available: {}",
                registry.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        }
        picked
    };

    println!(
        "# near-clique reproduction experiments ({})",
        if quick { "quick mode; use --full for recorded trial counts" } else { "full mode" }
    );
    println!();
    for exp in to_run {
        let start = Instant::now();
        println!("## {} — {}", exp.id.to_uppercase(), exp.what);
        for table in (exp.run)(quick) {
            println!("{}", table.render());
        }
        println!("({} finished in {:.1?})", exp.id, start.elapsed());
        println!();
    }
}
