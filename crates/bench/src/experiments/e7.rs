//! E7 — Lemma 5.3: every output set satisfies the unconditional density
//! bound.
//!
//! Lemma 5.3 holds for any graph, promise or not: a labeled `T_ε(X)` of
//! size `t` is an `(n/t)·ε`-near clique. We hammer the protocol with
//! adversarial-ish inputs (sparse random graphs, planted instances, the
//! Figure 1 construction, caveman graphs) and verify every labeled set.

use graphs::generators;
use nearclique::{check_labels, run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{f3, Table};

/// Runs E7.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 15 } else { 60 };
    let n = 300;
    let params = NearCliqueParams::for_expected_sample(0.3, 8.0, n).expect("valid");

    let mut t = Table::new(
        "E7: Lemma 5.3 — unconditional density invariant of outputs",
        "every labeled T_eps(X) of size t is an (n/t)*eps-near clique, on any input",
        &["family", "runs", "labeled-sets", "violations", "min-slack"],
    );

    type GraphMaker = Box<dyn Fn(u64) -> graphs::Graph>;
    let families: Vec<(&str, GraphMaker)> = vec![
        (
            "gnp(0.1)",
            Box::new(move |seed| generators::gnp(n, 0.1, &mut StdRng::seed_from_u64(seed))),
        ),
        (
            "gnp(0.3)",
            Box::new(move |seed| generators::gnp(n, 0.3, &mut StdRng::seed_from_u64(seed))),
        ),
        (
            "planted",
            Box::new(move |seed| {
                generators::planted_near_clique(
                    n,
                    120,
                    0.02,
                    0.05,
                    &mut StdRng::seed_from_u64(seed),
                )
                .graph
            }),
        ),
        ("figure-1", Box::new(move |_seed| generators::shingles_counterexample(n, 0.5).graph)),
        (
            "caveman",
            Box::new(move |seed| {
                generators::caveman(10, 30, 0.1, &mut StdRng::seed_from_u64(seed)).graph
            }),
        ),
    ];

    for (name, make) in families {
        let mut labeled_sets = 0usize;
        let mut violations = 0usize;
        let mut min_slack = f64::INFINITY;
        for trial in 0..trials {
            let seed = 0xE700 + trial as u64;
            let g = make(seed);
            let run = run_near_clique(&g, &params, seed ^ 0xE7);
            match check_labels(&g, &run.labels, params.epsilon) {
                Ok(checks) => {
                    labeled_sets += checks.len();
                    for c in checks {
                        let slack = c.density - (1.0 - c.lemma_bound);
                        min_slack = min_slack.min(slack);
                    }
                }
                Err(_) => violations += 1,
            }
        }
        t.row(vec![
            name.to_string(),
            trials.to_string(),
            labeled_sets.to_string(),
            violations.to_string(),
            if min_slack.is_finite() { f3(min_slack) } else { "n/a".to_string() },
        ]);
    }
    vec![t]
}
