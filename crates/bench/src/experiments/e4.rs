//! E4 — Claim 1 / Figure 1: the shingles algorithm fails where
//! `DistNearClique` succeeds.
//!
//! On the `C₁,C₂,I₁,I₂` construction the planted clique `C = C₁ ∪ C₂` has
//! `δn` nodes, yet Claim 1 proves the shingles algorithm cannot output an
//! ε-near clique of `(1 − ε)δn` nodes for any
//! `ε < min{(1−δ)/(1+δ), 1/9}`. We measure both algorithms' success rate
//! at exactly that objective.

use baselines::shingles::{run_shingles, ShinglesConfig};
use graphs::generators::{shingles_counterexample, ShinglesGraph};
use graphs::{density, FixedBitSet};
use nearclique::{run_near_clique, NearCliqueParams};

use crate::stats::Proportion;
use crate::table::{f3, Table};

fn qualifies(g: &graphs::Graph, set: &FixedBitSet, eps: f64, need: usize) -> bool {
    set.len() >= need && density::is_near_clique(g, set, eps)
}

/// Runs E4.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 25 } else { 100 };
    let n = if quick { 300 } else { 600 };
    let deltas = [0.3, 0.5, 0.7];

    let mut t = Table::new(
        "E4: Claim 1 (Figure 1) — shingles fails, DistNearClique succeeds",
        "shingles cannot output an eps-near clique of (1-eps)*delta*n nodes for \
         eps < min{(1-delta)/(1+delta), 1/9}; DistNearClique finds the planted clique",
        &["delta", "eps", "target-size", "shingles-ok", "distnc-ok"],
    );
    for (i, &delta) in deltas.iter().enumerate() {
        let eps = 0.9 * ShinglesGraph::claim_epsilon_threshold(delta);
        let s = shingles_counterexample(n, delta);
        let need = ((1.0 - eps) * delta * n as f64).ceil() as usize;
        // The component cap bounds the 2^{|S|} tail (the deterministic
        // time-bound wrapper in action): samples beyond 10 members are
        // skipped, costing ~10% success probability but making run time
        // predictable. Skipped runs count as DistNearClique failures.
        let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n)
            .expect("valid")
            .with_min_candidate_size(4)
            .with_max_component_size(10);

        let mut shingles_hits = 0usize;
        let mut dist_hits = 0usize;
        for trial in 0..trials {
            let seed = 0xE400 + 733 * i as u64 + trial as u64;
            let sr = run_shingles(
                &s.graph,
                ShinglesConfig { min_size: 2, min_density: 1.0 - eps },
                seed,
            );
            if let Some(set) = sr.largest_set() {
                if qualifies(&s.graph, &set, eps, need) {
                    shingles_hits += 1;
                }
            }
            let dr = run_near_clique(&s.graph, &params, seed ^ 0xE4);
            if let Some(set) = dr.largest_set() {
                if qualifies(&s.graph, &set, eps, need) {
                    dist_hits += 1;
                }
            }
        }
        t.row(vec![
            f3(delta),
            f3(eps),
            need.to_string(),
            Proportion { successes: shingles_hits, trials }.to_string(),
            Proportion { successes: dist_hits, trials }.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualification_thresholds() {
        let s = shingles_counterexample(100, 0.5);
        let c = s.clique();
        assert!(qualifies(&s.graph, &c, 0.1, 45));
        assert!(!qualifies(&s.graph, &c, 0.1, 51));
        let mut diluted = c.clone();
        diluted.union_with(&s.i1);
        assert!(!qualifies(&s.graph, &diluted, 0.1, 45), "diluted set is not 0.1-near");
    }
}
