//! E5 — Lemma 5.1: round complexity `O(2^{|S|})`.
//!
//! Fix the graph family, sweep `E|S| = pn`, and regress the executed
//! round count against `2^{k_max}` (the largest component of `G[S]`,
//! which drives the subset enumeration). The ratio must stay bounded by
//! a constant as the exponent grows.

use graphs::generators;
use nearclique::{run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::mean;
use crate::table::{f1, f3, Table};

/// Runs E5.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 10 } else { 30 };
    let n = 500;
    let pns: &[f64] = if quick { &[4.0, 6.0, 8.0, 10.0] } else { &[4.0, 6.0, 8.0, 10.0, 12.0] };

    let mut t = Table::new(
        "E5: Lemma 5.1 — rounds are O(2^|S|)",
        "round complexity at most c * 2^{|S|}; the ratio rounds / 2^{k_max} stays bounded",
        &["E|S|", "|S|(mean)", "k_max(mean)", "rounds(mean)", "rounds/2^k_max"],
    );
    for (i, &pn) in pns.iter().enumerate() {
        let params = NearCliqueParams::for_expected_sample(0.25, pn, n).expect("valid");
        let mut sizes = Vec::new();
        let mut kmaxes = Vec::new();
        let mut rounds = Vec::new();
        let mut ratios = Vec::new();
        for trial in 0..trials {
            let seed = 0xE500 + 677 * i as u64 + trial as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let planted = generators::planted_near_clique(n, 250, 0.0156, 0.02, &mut rng);
            let run = run_near_clique(&planted.graph, &params, seed ^ 0xE5);
            let s = run.plan.sample(0);
            let k_max = planted.graph.components_within(&s).iter().map(Vec::len).max().unwrap_or(0);
            sizes.push(s.len() as f64);
            kmaxes.push(k_max as f64);
            rounds.push(run.metrics.rounds as f64);
            if k_max > 0 {
                ratios.push(run.metrics.rounds as f64 / (1u64 << k_max) as f64);
            }
        }
        t.row(vec![
            f1(pn),
            f1(mean(&sizes)),
            f1(mean(&kmaxes)),
            f1(mean(&rounds)),
            f3(mean(&ratios)),
        ]);
    }
    vec![t]
}
