//! E8 — §4.1 boosting: failure probability decays as `(1 − r)^λ`.
//!
//! Choose an instance where a single version succeeds with moderate
//! probability `r` (small sample on a borderline-size planted set), then
//! sweep λ. The boosted wrapper runs λ independent sampling+exploration
//! versions and one joint decision; its failure rate must track
//! `(1 − r)^λ`.

use graphs::generators;
use nearclique::{run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::Proportion;
use crate::table::{f3, Table};

fn success(planted: &generators::Planted, run: &nearclique::NearCliqueRun) -> bool {
    run.largest_set().is_some_and(|set| planted.recall(&set) >= 0.7)
}

/// Runs E8.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 30 } else { 100 };
    let n = 300;
    let k = 75; // delta = 0.25 with a small sample: borderline instance
    let lambdas: &[u32] = &[1, 2, 3, 4, 6];

    let mut t = Table::new(
        "E8: boosting wrapper — failure decays as (1-r)^lambda",
        "lambda independent sampling+exploration versions and one joint decision; \
         failure probability (1-r)^lambda, time linear in lambda",
        &["lambda", "success", "failure", "predicted-failure", "rounds(mean)"],
    );

    // Measure the single-version success rate r first.
    let base_params = NearCliqueParams::for_expected_sample(0.25, 5.0, n).expect("valid");
    let mut r_hits = 0usize;
    for trial in 0..trials {
        let seed = 0xE800 + trial as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let planted = generators::planted_near_clique(n, k, 0.0156, 0.02, &mut rng);
        let run = run_near_clique(&planted.graph, &base_params, seed ^ 0xE8);
        if success(&planted, &run) {
            r_hits += 1;
        }
    }
    let r = r_hits as f64 / trials as f64;

    for &lambda in lambdas {
        let params = base_params.clone().with_lambda(lambda);
        let mut hits = 0usize;
        let mut rounds = Vec::new();
        for trial in 0..trials {
            let seed = 0xE800 + trial as u64; // same instances as the r-measurement
            let mut rng = StdRng::seed_from_u64(seed);
            let planted = generators::planted_near_clique(n, k, 0.0156, 0.02, &mut rng);
            let run = run_near_clique(&planted.graph, &params, seed ^ 0x8E00 ^ u64::from(lambda));
            rounds.push(run.metrics.rounds as f64);
            if success(&planted, &run) {
                hits += 1;
            }
        }
        let failure = 1.0 - hits as f64 / trials as f64;
        t.row(vec![
            lambda.to_string(),
            Proportion { successes: hits, trials }.to_string(),
            f3(failure),
            f3((1.0 - r).powi(lambda as i32)),
            crate::table::f1(crate::stats::mean(&rounds)),
        ]);
    }
    vec![t]
}
