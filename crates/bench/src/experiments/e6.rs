//! E6 — Lemma 5.2: `Pr[|S| ≤ 2pn] ≥ 1 − e^{−pn/3}`.
//!
//! Pure sampling-stage experiment (no network): draw many plans and
//! compare the empirical tail `Pr[|S| > 2pn]` against the Chernoff bound
//! `e^{−pn/3}`.

use nearclique::SamplePlan;

use crate::stats::Proportion;
use crate::table::{f1, Table};

/// Runs E6.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 2000 } else { 20_000 };
    let n = 2000;
    let pns: &[f64] = &[3.0, 6.0, 9.0, 12.0];

    let mut t = Table::new(
        "E6: Lemma 5.2 — Pr[|S| > 2pn] <= e^{-pn/3}",
        "the sample-size tail is dominated by the Chernoff bound",
        &["pn", "mean|S|", "Pr[|S|>2pn] (emp)", "bound e^{-pn/3}"],
    );
    for (i, &pn) in pns.iter().enumerate() {
        let p = pn / n as f64;
        let mut exceed = 0usize;
        let mut total_size = 0usize;
        for trial in 0..trials {
            let plan = SamplePlan::draw(n, 1, p, 0xE600 + 503 * i as u64 + trial as u64);
            let size = plan.sample(0).len();
            total_size += size;
            if size as f64 > 2.0 * pn {
                exceed += 1;
            }
        }
        let bound = (-pn / 3.0).exp();
        t.row(vec![
            f1(pn),
            f1(total_size as f64 / trials as f64),
            format!("{:.4}", Proportion { successes: exceed, trials }.rate()),
            format!("{bound:.4}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tail_is_below_bound_at_moderate_pn() {
        // Inline miniature of the experiment as a regression test.
        let n = 1000;
        let pn = 9.0;
        let p = pn / n as f64;
        let trials = 400;
        let mut exceed = 0;
        for t in 0..trials {
            let plan = nearclique::SamplePlan::draw(n, 1, p, 7000 + t);
            if plan.sample(0).len() as f64 > 2.0 * pn {
                exceed += 1;
            }
        }
        let bound = (-pn / 3.0f64).exp();
        assert!(
            (exceed as f64 / trials as f64) <= bound * 2.0 + 0.02,
            "empirical tail {exceed}/{trials} vs bound {bound}"
        );
    }
}
