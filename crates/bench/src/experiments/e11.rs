//! E11 — output quality vs the centralized comparators.
//!
//! The paper situates itself against centralized dense-subgraph work
//! (\[1\], \[7\], \[8\]); no head-to-head numbers exist in the paper, so this
//! table establishes the context: on planted and community instances,
//! how do size and density of `DistNearClique`'s output compare with
//! greedy peeling, the quasi-clique GRASP, the shingles strawman, and
//! (at these sizes, exact) maximum clique?

use baselines::{
    DistNearCliqueFinder, ExactFinder, KCoreFinder, NearCliqueFinder, PeelFinder, QuasiFinder,
    ShinglesConfig, ShinglesFinder,
};
use graphs::{density, generators, quasi::QuasiCliqueConfig, FixedBitSet, Graph};
use nearclique::NearCliqueParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::mean;
use crate::table::{f3, Table};

struct Instance {
    name: &'static str,
    graph: Graph,
    /// All planted dense sets; recall is scored against the best match.
    ground_truth: Vec<FixedBitSet>,
}

fn instances(seed: u64) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let planted = generators::planted_near_clique(300, 100, 0.0156, 0.04, &mut rng);
    let caveman = generators::caveman(8, 25, 0.15, &mut rng);
    let communities = generators::overlapping_communities(300, 3, 60, 15, 0.9, 0.02, &mut rng);
    vec![
        Instance {
            name: "planted(300,100)",
            ground_truth: vec![planted.dense_set.clone()],
            graph: planted.graph,
        },
        Instance {
            name: "caveman(8x25)",
            ground_truth: caveman.communities.clone(),
            graph: caveman.graph,
        },
        Instance {
            name: "communities(3x60)",
            ground_truth: communities.communities.clone(),
            graph: communities.graph,
        },
    ]
}

/// Runs E11.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 5 } else { 15 };

    let dist = DistNearCliqueFinder {
        params: NearCliqueParams::for_expected_sample(0.25, 8.0, 300)
            .expect("valid")
            .with_lambda(2)
            .with_min_candidate_size(5),
    };
    let shingles = ShinglesFinder { config: ShinglesConfig { min_size: 5, min_density: 0.7 } };
    let peel = PeelFinder { min_size: 50 };
    let quasi =
        QuasiFinder { config: QuasiCliqueConfig { gamma: 0.85, restarts: 6, rcl_width: 3 } };
    let exact = ExactFinder;
    let kcore = KCoreFinder;
    let finders: Vec<&dyn NearCliqueFinder> = vec![&dist, &shingles, &peel, &quasi, &kcore, &exact];

    let mut tables = Vec::new();
    for inst_idx in 0..3usize {
        let sample = instances(0xEB00 + inst_idx as u64);
        let inst = &sample[inst_idx];
        let mut t = Table::new(
            format!("E11.{}: quality on {}", inst_idx + 1, inst.name),
            "distributed output should be competitive in density at comparable size; \
             exact max clique is the densest-possible yardstick",
            &["finder", "size(mean)", "density(mean)", "recall(mean)"],
        );
        for finder in &finders {
            let mut sizes = Vec::new();
            let mut densities = Vec::new();
            let mut recalls = Vec::new();
            for trial in 0..trials {
                // Fresh instance per trial (same family), fresh seed.
                let fresh =
                    &instances(0xEB00 + inst_idx as u64 + 31 * (trial as u64 + 1))[inst_idx];
                let set = finder.find(&fresh.graph, 0x11E * trial as u64 + 7);
                sizes.push(set.len() as f64);
                densities.push(density::density(&fresh.graph, &set));
                let best_recall = fresh
                    .ground_truth
                    .iter()
                    .map(|gt| {
                        if gt.is_empty() {
                            0.0
                        } else {
                            set.intersection_count(gt) as f64 / gt.len() as f64
                        }
                    })
                    .fold(0.0, f64::max);
                recalls.push(best_recall);
            }
            t.row(vec![
                finder.name().to_string(),
                crate::table::f1(mean(&sizes)),
                f3(mean(&densities)),
                if recalls.is_empty() { "n/a".into() } else { f3(mean(&recalls)) },
            ]);
        }
        tables.push(t);
    }
    tables
}
