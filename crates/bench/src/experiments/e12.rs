//! E12 — methodology: property-tester queries vs distributed rounds.
//!
//! The paper derives `DistNearClique` from the GGR ρ-clique tester \[10\].
//! This experiment puts the two resource profiles side by side on the
//! same instances (queries and centralized probing vs rounds, messages
//! and `O(log n)` width), and measures the tolerant-testing separation:
//! the construction accepts ε³-near cliques and rejects graphs with no
//! large dense set — the (ε³, ε) tolerance the paper claims versus the
//! (ε⁶, ε) the general results of \[19\] give GGR.

use graphs::generators;
use nearclique::{run_near_clique, NearCliqueParams};
use proptester::{CountingOracle, RhoCliqueTester, TesterParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::{mean, Proportion};
use crate::table::{f1, Table};

/// Runs E12.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 15 } else { 50 };
    let n = 400;
    let epsilon = 0.25;
    let rho = 0.5;

    // --- Table 1: resources side by side ---
    let mut t1 = Table::new(
        "E12a: resources — query model vs CONGEST",
        "tester: poly(1/eps) queries, random access; distributed: constant rounds, \
         O(log n)-bit local messages, lots of parallel work",
        &["metric", "GGR-style tester", "DistNearClique"],
    );
    let tester = RhoCliqueTester::new(TesterParams { rho, epsilon, sample_size: 8, eval_size: 60 });
    let params = NearCliqueParams::for_expected_sample(epsilon, 8.0, n).expect("valid");

    let mut queries = Vec::new();
    let mut rounds = Vec::new();
    let mut messages = Vec::new();
    let mut width = 0usize;
    for trial in 0..trials {
        let seed = 0xEC00 + trial as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let planted = generators::planted_near_clique(
            n,
            (rho * n as f64) as usize,
            epsilon.powi(3),
            0.02,
            &mut rng,
        );
        let oracle = CountingOracle::new(&planted.graph);
        let mut trng = StdRng::seed_from_u64(seed ^ 0xC);
        let _ = tester.test(&oracle, &mut trng);
        queries.push(oracle.queries() as f64);

        let run = run_near_clique(&planted.graph, &params, seed ^ 0xD);
        rounds.push(run.metrics.rounds as f64);
        messages.push(run.metrics.messages as f64);
        width = width.max(run.metrics.max_message_bits);
    }
    t1.row(vec!["probes / rounds".into(), f1(mean(&queries)), f1(mean(&rounds))]);
    t1.row(vec!["messages".into(), "n/a (centralized)".into(), f1(mean(&messages))]);
    t1.row(vec!["max unit width (bits)".into(), "1 (edge query)".into(), width.to_string()]);

    // --- Table 2: tolerance ---
    let mut t2 = Table::new(
        "E12b: tolerant testing — accept eps^3-near, reject no-dense-set",
        "our construction is (eps^3, eps)-tolerant (GGR is (eps^6, eps) by [19]): \
         accept rate high on planted eps^3-near cliques, low on matched G(n,p)",
        &["instance", "accept-rate"],
    );
    let mut accept_planted = 0usize;
    let mut accept_null = 0usize;
    let mut accept_eps_near = 0usize;
    for trial in 0..trials {
        let seed = 0xEC50 + trial as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let k = (rho * n as f64) as usize;

        let planted = generators::planted_near_clique(n, k, epsilon.powi(3), 0.02, &mut rng);
        // Degree-matched null: same expected edge count, no planted set.
        let m = planted.graph.edge_count() as f64;
        let p_null = 2.0 * m / (n as f64 * (n as f64 - 1.0));
        let null = generators::gnp(n, p_null, &mut rng);
        // Borderline: planted ε-near clique (between accept and reject).
        let borderline = generators::planted_near_clique(n, k, epsilon, 0.02, &mut rng);

        for (g, acc) in [
            (&planted.graph, &mut accept_planted),
            (&null, &mut accept_null),
            (&borderline.graph, &mut accept_eps_near),
        ] {
            let oracle = CountingOracle::new(g);
            let mut trng = StdRng::seed_from_u64(seed ^ 0x5E);
            if tester.test(&oracle, &mut trng) {
                *acc += 1;
            }
        }
    }
    t2.row(vec![
        "planted eps^3-near (accept)".into(),
        Proportion { successes: accept_planted, trials }.to_string(),
    ]);
    t2.row(vec![
        "matched G(n,p) (reject)".into(),
        Proportion { successes: accept_null, trials }.to_string(),
    ]);
    t2.row(vec![
        "planted eps-near (boundary)".into(),
        Proportion { successes: accept_eps_near, trials }.to_string(),
    ]);

    vec![t1, t2]
}
