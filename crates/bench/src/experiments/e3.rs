//! E3 — Corollary 2.3: cliques of size `n / log^α(log n)`.
//!
//! Plant an *exact* clique whose fraction shrinks (very slowly) with `n`
//! as `1 / ln^α(ln n)`, boost with λ = O(log n) versions, and verify that
//! the success probability stays near 1 while rounds stay polylogarithmic
//! (here: essentially constant, since `E|S|` is fixed).

use graphs::generators;
use nearclique::{run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::{mean, Proportion};
use crate::table::{f1, f3, Table};

/// Runs E3.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 5 } else { 20 };
    let alpha = 0.5;
    let epsilon = 0.25;
    let ns: &[usize] = if quick { &[200, 400, 800] } else { &[300, 600, 1200] };

    let mut t = Table::new(
        "E3: Corollary 2.3 — clique of size n/log^a(log n), boosted",
        "o(1)-near clique of (1-o(1))|D| found w.p. 1-o(1) in polylog rounds",
        &["n", "k/n", "lambda", "rounds(mean)", "success", "recall"],
    );
    for (i, &n) in ns.iter().enumerate() {
        let frac = 1.0 / (n as f64).ln().ln().powf(alpha);
        let k = (frac * n as f64) as usize;
        let lambda = 2u32;
        let params = NearCliqueParams::for_expected_sample(epsilon, 6.0, n)
            .expect("valid")
            .with_lambda(lambda)
            .with_min_candidate_size((k / 4) as u32);
        let mut hits = 0usize;
        let mut rounds = Vec::new();
        let mut recalls = Vec::new();
        for trial in 0..trials {
            let seed = 0xE300 + 811 * i as u64 + trial as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let planted = generators::planted_clique(n, k, 0.02, &mut rng);
            let run = run_near_clique(&planted.graph, &params, seed ^ 0xE3);
            rounds.push(run.metrics.rounds as f64);
            if let Some(found) = run.largest_set() {
                let recall = planted.recall(&found);
                recalls.push(recall);
                if recall >= 0.75 {
                    hits += 1;
                }
            } else {
                recalls.push(0.0);
            }
        }
        t.row(vec![
            n.to_string(),
            f3(frac),
            lambda.to_string(),
            f1(mean(&rounds)),
            Proportion { successes: hits, trials }.to_string(),
            f3(mean(&recalls)),
        ]);
    }
    vec![t]
}
