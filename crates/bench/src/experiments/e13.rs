//! E13 — the proof chain of §5.2, step by step.
//!
//! Theorem 5.7 is proved through a chain of intermediate events; each is
//! directly measurable on planted instances:
//!
//! 1. Lemma 5.4 — the core `C = K_{ε²}(D) ∩ D` is large (deterministic
//!    given the instance).
//! 2. Lemma 5.5 — `X* = S⁽¹⁾ ∩ C` lies in one component of `G[S]`.
//! 3. Claim 3 — `X*` is representative (its `K`-sets sandwich `C`'s).
//! 4. Lemma 5.6 — `|T_ε(X*)| ≥ (1 − 13ε/2)|D| − ε⁻²`.
//!
//! The paper proves each holds with (at least) constant probability; the
//! table reports empirical rates per `pn`, which should all rise toward 1
//! as `pn` grows.

use graphs::{density, generators};
use nearclique::analysis;
use nearclique::SamplePlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::Proportion;
use crate::table::{f1, Table};

/// Runs E13.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 60 } else { 250 };
    let n = 400;
    let d_size = 200;
    let epsilon: f64 = 0.25;

    let mut t = Table::new(
        "E13: the section 5.2 proof chain, measured",
        "each event of the proof (core large, X* connected, X* representative, \
         T_eps(X*) large) holds with probability -> 1 as pn grows",
        &["pn", "L5.4 core-ok", "L5.5 one-comp", "C3 representative", "L5.6 T-large"],
    );

    for (i, &pn) in [4.0f64, 8.0, 12.0].iter().enumerate() {
        let p = pn / n as f64;
        let mut core_ok = 0usize;
        let mut one_comp = 0usize;
        let mut representative = 0usize;
        let mut t_large = 0usize;
        for trial in 0..trials {
            let seed = 0xED00 + 449 * i as u64 + trial as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let planted =
                generators::planted_near_clique(n, d_size, epsilon.powi(3), 0.02, &mut rng);
            let g = &planted.graph;
            let d = &planted.dense_set;

            let c = density::core_c(g, d, epsilon);
            if c.len() as f64 >= analysis::core_size_bound(d_size, epsilon) {
                core_ok += 1;
            }

            let plan = SamplePlan::draw(n, 1, p, seed ^ 0xED);
            let s = plan.sample(0);
            let x = analysis::x_star(&plan, 0, &c);
            if analysis::x_star_in_one_component(g, &s, &x) {
                one_comp += 1;
            }
            if !x.is_empty() {
                let (c1, c2) = analysis::representativeness(g, d, &c, &x, epsilon);
                if c1 && c2 {
                    representative += 1;
                }
                let (_t_size, holds) = analysis::lemma_5_6_conclusion(g, d, &x, epsilon);
                if holds {
                    t_large += 1;
                }
            }
        }
        t.row(vec![
            f1(pn),
            Proportion { successes: core_ok, trials }.to_string(),
            Proportion { successes: one_comp, trials }.to_string(),
            Proportion { successes: representative, trials }.to_string(),
            Proportion { successes: t_large, trials }.to_string(),
        ]);
    }
    vec![t]
}
