//! E1 — Theorem 2.1 / 5.7: recovery of a planted ε³-near clique.
//!
//! Plant an ε³-near clique `D` of `δn` nodes in background noise, run
//! `DistNearClique`, and score the output against the theorem's two
//! assertions plus the sharper practical metrics (recall and output
//! density). The theorem predicts a constant success probability once
//! `pn` is a (large) constant; the *shape* to verify is that success is
//! flat in `n` and improves with `pn`.

use graphs::{density, generators};
use nearclique::{check_theorem_5_7, run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::{mean, Proportion};
use crate::table::{f3, Table};

/// One (ε, δ, n) configuration's outcome.
struct Outcome {
    theorem_success: Proportion,
    practical_success: Proportion,
    mean_recall: f64,
    mean_density: f64,
    mean_sample: f64,
}

fn run_config(
    epsilon: f64,
    delta: f64,
    n: usize,
    pn: f64,
    trials: usize,
    base_seed: u64,
) -> Outcome {
    let mut theorem_ok = 0usize;
    let mut practical_ok = 0usize;
    let mut recalls = Vec::new();
    let mut densities = Vec::new();
    let mut samples = Vec::new();
    let params = NearCliqueParams::for_expected_sample(epsilon, pn, n).expect("valid params");
    for t in 0..trials {
        let seed = base_seed + t as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let planted = generators::planted_near_clique(
            n,
            (delta * n as f64) as usize,
            epsilon.powi(3),
            0.02,
            &mut rng,
        );
        let run = run_near_clique(&planted.graph, &params, seed ^ 0xE1);
        samples.push(run.sample_size(0) as f64);
        let Some(found) = run.largest_set() else {
            continue;
        };
        let (size_ok, density_ok) =
            check_theorem_5_7(&planted.graph, &found, &planted.dense_set, epsilon);
        if size_ok && density_ok {
            theorem_ok += 1;
        }
        let recall = planted.recall(&found);
        let d = density::density(&planted.graph, &found);
        recalls.push(recall);
        densities.push(d);
        // Practical: most of D recovered, density close to planted.
        if recall >= 0.75 && d >= 1.0 - 2.0 * epsilon {
            practical_ok += 1;
        }
    }
    Outcome {
        theorem_success: Proportion { successes: theorem_ok, trials },
        practical_success: Proportion { successes: practical_ok, trials },
        mean_recall: mean(&recalls),
        mean_density: mean(&densities),
        mean_sample: mean(&samples),
    }
}

/// Runs E1.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 25 } else { 80 };
    let mut t = Table::new(
        "E1: Theorem 5.7 — planted eps^3-near clique recovery",
        "w.p. Omega(1): |D'| >= (1-13eps/2)|D| - eps^-2 and D' is ~(eps/delta)-near clique; \
         success flat in n, improving with pn",
        &["eps", "delta", "n", "E|S|", "thm-ok", "practical-ok", "recall", "density"],
    );
    let mut configs: Vec<(f64, f64, usize, f64)> = vec![
        (0.25, 0.5, 400, 8.0),
        (0.25, 0.5, 800, 8.0),
        (0.25, 0.3, 800, 8.0),
        (0.12, 0.4, 1200, 8.0),
    ];
    if !quick {
        configs.push((0.25, 0.5, 1600, 8.0));
        configs.push((0.12, 0.4, 2400, 8.0));
        configs.push((0.25, 0.5, 800, 10.0));
    }
    for (i, &(eps, delta, n, pn)) in configs.iter().enumerate() {
        let o = run_config(eps, delta, n, pn, trials, 0xE100 + 1000 * i as u64);
        t.row(vec![
            f3(eps),
            f3(delta),
            n.to_string(),
            format!("{:.1}", o.mean_sample),
            o.theorem_success.to_string(),
            o.practical_success.to_string(),
            f3(o.mean_recall),
            f3(o.mean_density),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_config_smoke() {
        let o = run_config(0.25, 0.5, 150, 7.0, 4, 1);
        assert!(o.mean_sample > 0.0);
        assert!(o.theorem_success.trials == 4);
        assert!(o.mean_recall >= 0.0 && o.mean_recall <= 1.0);
    }
}
