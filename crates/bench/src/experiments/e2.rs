//! E2 — Corollary 2.2: constant rounds and constant success probability
//! at linear near-clique size, independent of `n`.
//!
//! Sweep `n` with everything else fixed (`ε`, `δ`, `E|S| = pn`): rounds
//! and message width must stay flat while the graph grows; the success
//! probability must not degrade.

use graphs::generators;
use nearclique::{run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::{mean, Proportion};
use crate::table::{f1, Table};

/// Runs E2.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 15 } else { 50 };
    let epsilon = 0.25;
    let delta = 0.5;
    let pn = 8.0;
    let ns: &[usize] = if quick { &[300, 600, 1200] } else { &[300, 600, 1200, 2400, 4800] };

    let mut t = Table::new(
        "E2: Corollary 2.2 — O(1) rounds at linear near-clique size",
        "rounds and max message bits flat in n; success probability Omega(1) flat in n",
        &["n", "rounds(mean)", "rounds(max)", "max-msg-bits", "success"],
    );
    for (i, &n) in ns.iter().enumerate() {
        let params = NearCliqueParams::for_expected_sample(epsilon, pn, n).expect("valid");
        let mut rounds = Vec::new();
        let mut max_bits = 0usize;
        let mut hits = 0usize;
        for trial in 0..trials {
            let seed = 0xE200 + 997 * i as u64 + trial as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let planted = generators::planted_near_clique(
                n,
                (delta * n as f64) as usize,
                epsilon.powi(3),
                0.02,
                &mut rng,
            );
            let run = run_near_clique(&planted.graph, &params, seed ^ 0xE2);
            rounds.push(run.metrics.rounds as f64);
            max_bits = max_bits.max(run.metrics.max_message_bits);
            if let Some(found) = run.largest_set() {
                if planted.recall(&found) >= 0.75 {
                    hits += 1;
                }
            }
        }
        t.row(vec![
            n.to_string(),
            f1(mean(&rounds)),
            f1(crate::stats::max(&rounds)),
            max_bits.to_string(),
            Proportion { successes: hits, trials }.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_has_three_rows() {
        // Smoke on a tiny synthetic scale: re-use internal pieces rather
        // than the full experiment (which is minutes of work).
        let params = nearclique::NearCliqueParams::for_expected_sample(0.25, 6.0, 120).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng as _;
        let _ = &mut rng;
        let planted = graphs::generators::planted_near_clique(120, 60, 0.0156, 0.02, &mut rng);
        let run = nearclique::run_near_clique(&planted.graph, &params, 9);
        assert!(run.metrics.rounds > 0);
    }
}
