//! E9 — §6 impossibility: no sub-diameter algorithm outputs *only* the
//! globally largest near-clique.
//!
//! On the barbell construction (clique `A`, clique `B`, long path), the
//! paper argues `B`'s nodes cannot learn within `|P|` rounds whether `A`'s
//! edges exist, so they must sometimes label themselves even though `A`
//! is larger. We verify the two measurable consequences for
//! `DistNearClique`:
//!
//! * it labels **both** `A` and `B` (it outputs a disjoint collection, as
//!   §6 says any fast algorithm must), and
//! * `B`-side outputs are **bit-identical** whether `A` is a clique or an
//!   independent set (same seed), because the run completes in far fewer
//!   rounds than the `A`–`B` distance — information cannot have crossed.

use graphs::generators::barbell_with_path;
use graphs::GraphBuilder;
use nearclique::{run_near_clique, NearCliqueParams};

use crate::stats::Proportion;
use crate::table::Table;

/// Runs E9.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 20 } else { 60 };
    let (a_size, b_size, path_len) = if quick { (60, 30, 30) } else { (120, 60, 60) };

    let mut t = Table::new(
        "E9: Section 6 — sub-diameter impossibility, checked behaviorally",
        "B cannot distinguish A-clique from A-empty in < |P| rounds; a fast algorithm \
         must label B too, and B's outputs must be invariant to A's edges",
        &["trials", "both-labeled", "B-invariant", "rounds(max)", "separation"],
    );

    let bb = barbell_with_path(a_size, b_size, path_len);
    // The same node set with A's internal edges removed.
    let mut without_a = GraphBuilder::new(bb.graph.node_count());
    for (u, v) in bb.graph.edges() {
        if !(bb.a.contains(u) && bb.a.contains(v)) {
            without_a.add_edge(u, v);
        }
    }
    let g_empty_a = without_a.build();

    let n = bb.graph.node_count();
    let params = NearCliqueParams::for_expected_sample(0.25, 8.0, n)
        .expect("valid")
        .with_min_candidate_size(3);

    let mut both = 0usize;
    let mut invariant = 0usize;
    let mut max_rounds = 0u64;
    for trial in 0..trials {
        let seed = 0xE900 + trial as u64;
        let run_full = run_near_clique(&bb.graph, &params, seed);
        let run_cut = run_near_clique(&g_empty_a, &params, seed);
        max_rounds = max_rounds.max(run_full.metrics.rounds).max(run_cut.metrics.rounds);

        let a_labeled = bb.a.iter().any(|v| run_full.labels[v].is_some());
        let b_labeled = bb.b.iter().any(|v| run_full.labels[v].is_some());
        if a_labeled && b_labeled {
            both += 1;
        }
        // B-side invariance across the two graphs.
        if bb.b.iter().all(|v| run_full.labels[v] == run_cut.labels[v]) {
            invariant += 1;
        }
    }
    t.row(vec![
        trials.to_string(),
        Proportion { successes: both, trials }.to_string(),
        Proportion { successes: invariant, trials }.to_string(),
        max_rounds.to_string(),
        format!("{} hops", bb.separation),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_side_invariance_holds_on_small_instance() {
        let bb = barbell_with_path(20, 10, 12);
        let mut without_a = GraphBuilder::new(bb.graph.node_count());
        for (u, v) in bb.graph.edges() {
            if !(bb.a.contains(u) && bb.a.contains(v)) {
                without_a.add_edge(u, v);
            }
        }
        let cut = without_a.build();
        let params = NearCliqueParams::for_expected_sample(0.25, 6.0, bb.graph.node_count())
            .unwrap()
            .with_min_candidate_size(3);
        for seed in 0..5u64 {
            let rf = run_near_clique(&bb.graph, &params, seed);
            let rc = run_near_clique(&cut, &params, seed);
            for v in bb.b.iter() {
                assert_eq!(rf.labels[v], rc.labels[v], "seed {seed}, node {v}");
            }
        }
    }
}
