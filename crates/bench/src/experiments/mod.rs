//! The experiment suite: one module per claim of the paper.
//!
//! See DESIGN.md §4 for the full index mapping experiments to claims and
//! modules, and EXPERIMENTS.md for recorded paper-vs-measured outcomes.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

use crate::table::Table;

/// An experiment id and its runner.
pub struct Experiment {
    /// Short id, e.g. `"e4"`.
    pub id: &'static str,
    /// One-line description.
    pub what: &'static str,
    /// Runner; `quick` trades trial counts for speed.
    pub run: fn(bool) -> Vec<Table>,
}

/// The registry, in presentation order.
#[must_use]
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            what: "Theorem 5.7: planted eps^3-near clique recovery",
            run: e1::run,
        },
        Experiment { id: "e2", what: "Corollary 2.2: O(1) rounds at linear size", run: e2::run },
        Experiment {
            id: "e3",
            what: "Corollary 2.3: slightly sublinear cliques, boosted",
            run: e3::run,
        },
        Experiment {
            id: "e4",
            what: "Claim 1 / Figure 1: shingles fails, DistNearClique succeeds",
            run: e4::run,
        },
        Experiment { id: "e5", what: "Lemma 5.1: rounds are O(2^|S|)", run: e5::run },
        Experiment { id: "e6", what: "Lemma 5.2: sample-size Chernoff tail", run: e6::run },
        Experiment {
            id: "e7",
            what: "Lemma 5.3: unconditional output density invariant",
            run: e7::run,
        },
        Experiment { id: "e8", what: "Boosting: failure decays as (1-r)^lambda", run: e8::run },
        Experiment {
            id: "e9",
            what: "Section 6: sub-diameter impossibility, behaviorally",
            run: e9::run,
        },
        Experiment {
            id: "e10",
            what: "Message width: O(log n) vs Theta(Delta log n)",
            run: e10::run,
        },
        Experiment {
            id: "e11",
            what: "Quality vs centralized dense-subgraph algorithms",
            run: e11::run,
        },
        Experiment {
            id: "e12",
            what: "Methodology: tester queries vs distributed rounds",
            run: e12::run,
        },
        Experiment {
            id: "e13",
            what: "Section 5.2 proof chain, measured step by step",
            run: e13::run,
        },
    ]
}
