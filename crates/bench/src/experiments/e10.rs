//! E10 — message width: `O(log n)` for `DistNearClique` and shingles vs
//! `Θ(Δ log n)` for neighbors'-neighbors.
//!
//! The CONGEST claim is enforced by the simulator's bit meter. Sweeping
//! `n` (and hence Δ) shows `DistNearClique`'s width flat while the LOCAL
//! strawman's grows linearly with the degree.

use baselines::neighbors::run_neighbors_neighbors;
use baselines::shingles::{run_shingles, ShinglesConfig};
use graphs::generators;
use nearclique::{run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{f1, Table};

/// Runs E10.
#[must_use]
pub fn run(quick: bool) -> Vec<Table> {
    let ns: &[usize] = if quick { &[80, 160, 320] } else { &[80, 160, 320, 640] };

    let mut t = Table::new(
        "E10: message width — CONGEST O(log n) vs LOCAL Theta(Delta log n)",
        "DistNearClique and shingles use O(log n)-bit messages at every n; \
         neighbors'-neighbors messages grow with the degree",
        &[
            "n",
            "max-deg",
            "distnc-bits",
            "shingles-bits",
            "nn-bits",
            "nn-bits/Delta",
            "distnc-rounds",
            "nn-rounds",
        ],
    );
    for (i, &n) in ns.iter().enumerate() {
        let seed = 0xEA00 + 389 * i as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let planted = generators::planted_clique(n, (0.4 * n as f64) as usize, 0.08, &mut rng);
        let g = &planted.graph;
        let max_deg = g.max_degree();

        let params = NearCliqueParams::for_expected_sample(0.25, 7.0, n).expect("valid");
        let dist = run_near_clique(g, &params, seed ^ 0xA);
        let sh = run_shingles(g, ShinglesConfig::default(), seed ^ 0xB);
        let nn = run_neighbors_neighbors(g, seed ^ 0xC);

        t.row(vec![
            n.to_string(),
            max_deg.to_string(),
            dist.metrics.max_message_bits.to_string(),
            sh.metrics.max_message_bits.to_string(),
            nn.metrics.max_message_bits.to_string(),
            f1(nn.metrics.max_message_bits as f64 / max_deg as f64),
            dist.metrics.rounds.to_string(),
            nn.metrics.rounds.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distnc_width_is_flat_while_nn_grows() {
        let widths: Vec<(usize, usize)> = [60usize, 180]
            .iter()
            .map(|&n| {
                let mut rng = StdRng::seed_from_u64(n as u64);
                let planted =
                    generators::planted_clique(n, (0.4 * n as f64) as usize, 0.08, &mut rng);
                let params = NearCliqueParams::for_expected_sample(0.25, 6.0, n).unwrap();
                let dist = run_near_clique(&planted.graph, &params, 3);
                let nn = run_neighbors_neighbors(&planted.graph, 3);
                (dist.metrics.max_message_bits, nn.metrics.max_message_bits)
            })
            .collect();
        assert_eq!(widths[0].0, widths[1].0, "DistNearClique width must not grow with n");
        assert!(widths[1].1 > 2 * widths[0].1, "NN width must grow with the degree");
    }
}
