//! Experiment harness for the near-clique reproduction.
//!
//! The paper is a theory contribution: its "evaluation" is a set of
//! theorems, a lower-bound construction (Figure 1 / Claim 1) and an
//! impossibility argument (§6). This crate regenerates each of those as a
//! measurement — twelve experiments, E1–E12, printing paper-shaped tables
//! (see DESIGN.md §1 and §4 for the claim-to-experiment index).
//!
//! * Run them all: `cargo run --release -p bench --bin experiments`
//! * One experiment: `cargo run --release -p bench --bin experiments -- e4`
//! * Full trial counts: add `--full` (the default is `--quick`).
//!
//! Criterion wall-clock benches (`cargo bench`) cover the runtime cost of
//! the simulator, the protocol, and the baseline algorithms; the science
//! lives in the `experiments` binary, whose outputs are recorded in
//! EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod stats;
pub mod table;

pub use experiments::{all, Experiment};
pub use table::Table;
