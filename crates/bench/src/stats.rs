//! Small statistics kit for the experiment tables.

/// Mean of a sample (0 for empty).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two points).
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum (0 for empty).
#[must_use]
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min).min(f64::MAX)
}

/// Maximum (0 for empty).
#[must_use]
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(f64::MIN)
}

/// A success/trial proportion with its 95% Wilson score interval.
#[derive(Clone, Copy, Debug)]
pub struct Proportion {
    /// Successes.
    pub successes: usize,
    /// Trials.
    pub trials: usize,
}

impl Proportion {
    /// Point estimate (0 when `trials == 0`).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// 95% Wilson score interval `(lo, hi)`.
    #[must_use]
    pub fn wilson95(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let z = 1.959_964f64;
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl std::fmt::Display for Proportion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lo, hi) = self.wilson95();
        write!(f, "{:.2} [{:.2},{:.2}]", self.rate(), lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138_089_935).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.0);
    }

    #[test]
    fn wilson_interval_sane() {
        let p = Proportion { successes: 50, trials: 100 };
        let (lo, hi) = p.wilson95();
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(lo > 0.39 && hi < 0.61);
        let sure = Proportion { successes: 100, trials: 100 };
        let (lo2, hi2) = sure.wilson95();
        assert!(lo2 > 0.95);
        assert_eq!(hi2, 1.0);
    }

    #[test]
    fn empty_proportion() {
        let p = Proportion { successes: 0, trials: 0 };
        assert_eq!(p.rate(), 0.0);
        assert_eq!(p.wilson95(), (0.0, 1.0));
    }
}
