//! A committed `DelayTrace` fixture replayed through the production
//! engine: the regression-test workflow the interleaving explorer's
//! violations are designed for.
//!
//! The fixture in `fixtures/slow_finish_path3.trace` was produced by an
//! exploration of a flood on a 3-node path (`Explore` with seed 11,
//! bound 2, two pulses) whose mutant invariant flagged the slowest
//! schedule. Loading it from disk and replaying it via
//! `DelayModel::Replay` must reproduce that exact execution — outputs
//! and the virtual completion time — on every run, on every machine.

use congest::{
    ChurnModel, Context, DelayTrace, Engine, Explore, FaultModel, Message, Port, Protocol,
    RunLimits, Session, SyncModel,
};
use graphs::GraphBuilder;

#[derive(Clone, Debug, Hash)]
struct Rumor;
impl Message for Rumor {
    fn bit_size(&self) -> usize {
        1
    }
}

#[derive(Clone, Debug, Hash)]
struct Flood {
    source: bool,
    heard_at: Option<u64>,
}

impl Protocol for Flood {
    type Msg = Rumor;
    type Output = Option<u64>;
    fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
        if self.source {
            self.heard_at = Some(0);
            ctx.broadcast(Rumor);
        }
    }
    fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
        if !inbox.is_empty() && self.heard_at.is_none() {
            self.heard_at = Some(ctx.round());
            ctx.broadcast(Rumor);
        }
    }
    fn is_idle(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        self.heard_at
    }
}

fn make_flood(e: &congest::Endpoint) -> Flood {
    Flood { source: e.index == 0, heard_at: None }
}

fn path3() -> graphs::Graph {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.build()
}

const FIXTURE: &str = include_str!("fixtures/slow_finish_path3.trace");

/// The committed trace parses (comments and all) and replays bit for
/// bit: same outputs and the fixture's recorded virtual time, twice
/// over.
#[test]
fn committed_trace_replays_bit_for_bit() {
    let trace = DelayTrace::from_text(FIXTURE).expect("the committed fixture parses");
    assert_eq!(trace.bound(), 2);
    assert!(trace.delays().iter().all(|&d| d == 1));

    let g = path3();
    let run = || {
        Session::on(&g)
            .seed(11)
            .engine(Engine::Async {
                delay: trace.register(),
                sync: SyncModel::Alpha,
                fault: FaultModel::None,
                churn: ChurnModel::None,
            })
            .limits(RunLimits::rounds(2))
            .run_with(make_flood)
    };
    let (out_a, rep_a) = run();
    let (out_b, rep_b) = run();
    assert_eq!(out_a, out_b, "replay must be deterministic");
    assert_eq!(rep_a.metrics, rep_b.metrics);
    assert_eq!(rep_a.overhead, rep_b.overhead);
    assert_eq!(out_a, vec![Some(0), Some(1), Some(2)]);
    assert_eq!(rep_a.overhead.virtual_time, 6, "the fixture's recorded completion time");
}

/// The fixture stays honest: re-running the exploration that produced
/// it still flags a schedule whose trace matches the committed delays.
#[test]
fn exploration_still_reproduces_the_committed_counterexample() {
    use congest::explore::{ExploreState, Invariant};

    struct SlowFinish;
    impl Invariant<Flood> for SlowFinish {
        fn name(&self) -> &'static str {
            "slow_finish"
        }
        fn on_schedule_end(&self, state: &ExploreState<'_, Flood>) -> Result<(), String> {
            let vt = state.overhead().virtual_time;
            if vt >= 5 {
                Err(format!("virtual_time={vt}"))
            } else {
                Ok(())
            }
        }
    }

    let g = path3();
    let report = Explore::on(&g)
        .seed(11)
        .bound(2)
        .budget(2)
        .run_checked(make_flood, vec![Box::new(SlowFinish)]);
    let committed = DelayTrace::from_text(FIXTURE).expect("fixture parses");
    assert!(
        report.violations.iter().any(|v| v.trace == committed),
        "the committed counterexample must still be among the flagged traces"
    );
}
