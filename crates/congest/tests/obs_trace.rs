//! The observability plane's contract, end to end:
//!
//! 1. **Non-perturbation** — installing a recorder changes nothing the
//!    protocols or the meters can see: outputs, [`congest::Metrics`]
//!    and [`congest::SyncOverhead`] are bit-identical between a traced
//!    and an untraced run of the same `(seed, delay, sync, fault)`.
//! 2. **Determinism** — two traced runs of the same configuration
//!    export byte-identical JSONL and Chrome timelines, on every
//!    engine, including under an active fault plane.
//! 3. **Streaming metrics** — [`congest::MetricsMode::Streaming`] keeps
//!    scalar totals identical to the default full mode while retaining
//!    no per-round history.

use congest::{
    ChurnModel, Context, DelayModel, Driver, Engine, FaultModel, Message, MetricsMode, Port,
    Protocol, RunLimits, RunReport, Session, SessionDriver, SyncModel, TraceConfig,
};
use graphs::GraphBuilder;

#[derive(Clone, Debug)]
struct Rumor;
impl Message for Rumor {
    fn bit_size(&self) -> usize {
        9
    }
}

#[derive(Debug)]
struct Flood {
    source: bool,
    heard_at: Option<u64>,
}

impl Protocol for Flood {
    type Msg = Rumor;
    type Output = Option<u64>;
    fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
        if self.source {
            self.heard_at = Some(0);
            ctx.broadcast(Rumor);
        }
    }
    fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
        if !inbox.is_empty() && self.heard_at.is_none() {
            self.heard_at = Some(ctx.round());
            ctx.broadcast(Rumor);
        }
    }
    fn is_idle(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        self.heard_at
    }
}

fn make_flood(e: &congest::Endpoint) -> Flood {
    Flood { source: e.index == 0, heard_at: None }
}

fn ring_with_chords(n: usize) -> graphs::Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
    }
    for i in (0..n).step_by(5) {
        b.add_edge(i, (i + n / 2) % n);
    }
    b.build()
}

/// Engines (and fault configurations) under test: the flat plane, both
/// synchronizers on a perfect wire, and both synchronizers under an
/// active drop plane (retransmissions and fault events in the trace).
fn engines_under_test() -> Vec<Engine> {
    let delay = DelayModel::Uniform { max_delay: 4 };
    let mut engines = vec![Engine::Flat { shards: 1 }, Engine::Flat { shards: 3 }];
    for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
        engines.push(Engine::Async {
            delay,
            sync,
            fault: FaultModel::None,
            churn: ChurnModel::None,
        });
        engines.push(Engine::Async {
            delay,
            sync,
            fault: FaultModel::Drop { p_millis: 120 },
            churn: ChurnModel::None,
        });
    }
    engines
}

fn traced_run(
    engine: Engine,
    trace: Option<TraceConfig>,
) -> (Vec<Option<u64>>, RunReport, SessionDriver<Flood>) {
    let g = ring_with_chords(24);
    let mut session = Session::on(&g).seed(17).engine(engine).limits(RunLimits::rounds(16));
    if let Some(cfg) = trace {
        session = session.trace(cfg);
    }
    let mut driver = session.build_with(make_flood);
    let report = driver.run();
    let outputs = driver.outputs();
    (outputs, report, driver)
}

/// Tracing is purely observational: outputs, payload metrics and
/// synchronizer overhead are bit-identical with the recorder on or off.
#[test]
fn recorder_does_not_perturb_the_run() {
    for engine in engines_under_test() {
        let (out_off, rep_off, _) = traced_run(engine, None);
        let (out_on, rep_on, _) = traced_run(engine, Some(TraceConfig::default()));
        assert_eq!(out_off, out_on, "{engine:?}: outputs diverged under tracing");
        assert_eq!(rep_off.metrics, rep_on.metrics, "{engine:?}: metrics diverged");
        assert_eq!(rep_off.overhead, rep_on.overhead, "{engine:?}: overhead diverged");
        assert_eq!(rep_off.termination, rep_on.termination, "{engine:?}");
        assert!(rep_off.profile.is_none(), "untraced runs attach no profile");
        assert!(rep_on.profile.is_some(), "traced runs attach a profile");
    }
}

/// Same configuration, same seed ⇒ byte-identical JSONL and Chrome
/// exports, and equal profiles — on every engine, faults included.
#[test]
fn exports_are_byte_identical_across_runs() {
    for engine in engines_under_test() {
        let (_, rep_a, drv_a) = traced_run(engine, Some(TraceConfig::default()));
        let (_, rep_b, drv_b) = traced_run(engine, Some(TraceConfig::default()));
        let sink_a = drv_a.trace_sink().expect("recorder installed");
        let sink_b = drv_b.trace_sink().expect("recorder installed");
        assert!(!sink_a.is_empty(), "{engine:?}: the run must record events");
        assert_eq!(sink_a.to_jsonl(), sink_b.to_jsonl(), "{engine:?}: JSONL diverged");
        assert_eq!(
            sink_a.to_chrome_json(),
            sink_b.to_chrome_json(),
            "{engine:?}: Chrome export diverged"
        );
        assert_eq!(rep_a.profile, rep_b.profile, "{engine:?}: profiles diverged");
    }
}

/// Trace timestamps arrive in nondecreasing order (virtual time under
/// the asynchronous engine, round numbers under the flat plane), and
/// the JSONL export is one well-formed object per line.
#[test]
fn timelines_are_chronological() {
    for engine in engines_under_test() {
        let (_, _, driver) = traced_run(engine, Some(TraceConfig::default()));
        let sink = driver.trace_sink().expect("recorder installed");
        let mut last = 0u64;
        let mut ok = true;
        sink.for_each(|r| {
            ok &= r.at >= last;
            last = r.at;
        });
        assert!(ok, "{engine:?}: timestamps must be nondecreasing");
        for line in sink.to_jsonl().lines() {
            assert!(
                line.starts_with("{\"at\":") && line.ends_with('}'),
                "{engine:?}: malformed JSONL line: {line}"
            );
        }
    }
}

/// The streaming profile sees the traffic the meters see: under the
/// synchronizers, recorded control sends and per-pulse bit attribution
/// line up with the run's `SyncOverhead` and `Metrics` totals.
#[test]
fn profile_totals_match_the_meters() {
    let delay = DelayModel::Uniform { max_delay: 4 };
    for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
        let engine =
            Engine::Async { delay, sync, fault: FaultModel::None, churn: ChurnModel::None };
        let (_, report, _) = traced_run(engine, Some(TraceConfig::default()));
        let profile = report.profile.expect("traced run attaches a profile");
        assert!(profile.records > 0);
        assert!(profile.pulse_occupancy.count() > 0, "{sync:?}: pulse begins recorded");
        assert!(profile.wheel_occupancy.count() > 0, "{sync:?}: wheel sampled");
        assert!(profile.max_wheel_occupancy > 0, "{sync:?}: wheel high-water observed");
        assert!(profile.max_queue_depth > 0, "{sync:?}: queue high-water observed");
        // Payload bits attributed across pulse windows sum to the
        // payload meter (every delivery is attributed exactly once).
        assert_eq!(
            profile.payload_bits_per_pulse.sum(),
            report.metrics.total_bits,
            "{sync:?}: payload bit attribution must be exhaustive"
        );
        match sync {
            SyncModel::Alpha => {
                assert!(profile.ctrl_sends > 0, "α floods Ack/Safe envelopes");
                assert_eq!(profile.safe_waves, 0, "no coalesced waves under classic α");
            }
            SyncModel::BatchedAlpha => {
                assert!(profile.safe_waves > 0, "batched α coalesces Safe waves");
            }
        }
    }
}

/// An active drop plane shows up in the profile: retransmit timers and
/// fault events are counted, and they agree with the overhead meter.
#[test]
fn faults_surface_in_the_profile() {
    let engine = Engine::Async {
        delay: DelayModel::Uniform { max_delay: 4 },
        sync: SyncModel::Alpha,
        fault: FaultModel::Drop { p_millis: 150 },
        churn: ChurnModel::None,
    };
    let (_, report, _) = traced_run(engine, Some(TraceConfig::default()));
    let profile = report.profile.expect("profile attached");
    assert!(report.overhead.retransmissions > 0, "the drop plane must have acted");
    assert_eq!(profile.retransmits, report.overhead.retransmissions);
    assert!(profile.faults > 0, "fault events must be recorded");
}

/// `TraceConfig::profile_only()` keeps the streaming aggregates with no
/// timeline ring at all.
#[test]
fn profile_only_config_keeps_no_timeline() {
    let engine = Engine::Async {
        delay: DelayModel::Uniform { max_delay: 3 },
        sync: SyncModel::BatchedAlpha,
        fault: FaultModel::None,
        churn: ChurnModel::None,
    };
    let (_, report, driver) = traced_run(engine, Some(TraceConfig::profile_only()));
    let sink = driver.trace_sink().expect("recorder installed");
    assert!(sink.is_empty(), "profile-only sinks retain no records");
    assert_eq!(sink.to_jsonl(), "", "nothing to export");
    let profile = report.profile.expect("profile still attached");
    assert!(profile.records > 0, "aggregation still ran");
    assert_eq!(profile.dropped, 0, "nothing counts as dropped when no ring exists");
}

/// Streaming metrics mode: scalar totals identical to full mode, no
/// per-round history, observer replay skipped — the O(1)-memory path
/// for very long runs.
#[test]
fn streaming_metrics_keep_totals_and_drop_history() {
    let g = ring_with_chords(24);
    for engine in engines_under_test() {
        let run = |mode: MetricsMode| {
            let (outputs, report) = Session::on(&g)
                .seed(17)
                .engine(engine)
                .limits(RunLimits::rounds(16))
                .metrics(mode)
                .run_with(make_flood);
            (outputs, report)
        };
        let (out_full, rep_full) = run(MetricsMode::Full);
        let (out_stream, rep_stream) = run(MetricsMode::Streaming);
        assert_eq!(out_full, out_stream, "{engine:?}: outputs diverged across modes");
        assert_eq!(rep_full.metrics.rounds, rep_stream.metrics.rounds, "{engine:?}");
        assert_eq!(rep_full.metrics.messages, rep_stream.metrics.messages, "{engine:?}");
        assert_eq!(rep_full.metrics.total_bits, rep_stream.metrics.total_bits, "{engine:?}");
        assert_eq!(
            rep_full.metrics.max_message_bits, rep_stream.metrics.max_message_bits,
            "{engine:?}"
        );
        assert_eq!(rep_full.overhead, rep_stream.overhead, "{engine:?}");
        assert!(!rep_full.metrics.messages_per_round.is_empty(), "{engine:?}: full keeps history");
        assert!(
            rep_stream.metrics.messages_per_round.is_empty(),
            "{engine:?}: streaming keeps no history"
        );
    }
}
