//! Allocation probe: a steady-state round of the flat message plane —
//! and, since the timing-wheel event plane, a steady-state pulse of the
//! synchronizer-α engine — must perform **zero heap allocations**.
//!
//! A counting `#[global_allocator]` wraps the system allocator. After a
//! warm-up (chunk pools, transfer buffers and inboxes reach their
//! high-water marks) and a [`congest::Driver::reserve_rounds`] call (the
//! per-round metrics history is the one structure that grows with round
//! count), executing hundreds of additional rounds must allocate exactly
//! as much as executing zero rounds — i.e. only the constant-size
//! `RunReport` that a drive returns.
//!
//! The probe runs through the unified [`congest::Session`] surface, so
//! the guarantee covers the production entry path, not just the engine
//! internals.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use congest::{
    ChurnModel, Context, DelayModel, Driver, Engine, FaultModel, Message, Mode, Port, Protocol,
    RunLimits, Session, SyncModel, Termination, Topology, TraceConfig,
};
use graphs::generators::GnpStream;
use graphs::{EdgeStream, GraphBuilder};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Bytes currently live (allocated − freed) through this allocator.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`] since the last [`reset_peak_bytes`].
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

fn bump_live(delta: i64) {
    let live = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: delegates verbatim to `System`; only counters are added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        bump_live(layout.size() as i64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        bump_live(-(layout.size() as i64));
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        bump_live(new_size as i64 - layout.size() as i64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Starts a peak-tracking region: the next [`peak_bytes_since`] reports
/// the high-water mark of live bytes relative to the returned baseline.
fn reset_peak_bytes() -> i64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

fn peak_bytes_since(base: i64) -> usize {
    (PEAK_BYTES.load(Ordering::Relaxed) - base).max(0) as usize
}

/// A message with no payload allocation.
#[derive(Clone, Debug)]
struct Tick;

impl Message for Tick {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Perpetual traffic: every received message is echoed back on its port,
/// and `init` seeds one message per port — so every directed edge carries
/// exactly one message every round, forever. The network never quiesces
/// and per-round state never grows: the steady state the probe needs.
struct Echo;

impl Protocol for Echo {
    type Msg = Tick;
    type Output = ();

    fn init(&mut self, ctx: &mut Context<'_, Tick>) {
        ctx.broadcast(Tick);
    }

    fn step(&mut self, ctx: &mut Context<'_, Tick>, inbox: &[(Port, Tick)]) {
        for &(port, _) in inbox {
            ctx.send(port, Tick);
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) {}
}

fn ring_with_chords(n: usize) -> graphs::Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
    }
    for i in (0..n).step_by(7) {
        b.add_edge(i, (i + n / 2) % n);
    }
    b.build()
}

fn probe(mode: Mode) {
    let g = ring_with_chords(64);
    let mut net = Session::on(&g).mode(mode).seed(5).build_with(|_| Echo);

    // Warm-up: reach every pool's high-water mark.
    let report = net.drive(RunLimits::rounds(64), &mut ());
    assert_eq!(report.termination, Termination::RoundLimit, "echo traffic never quiesces");
    net.reserve_rounds(4096);

    // Wrapper cost: a zero-round drive still clones metrics into its
    // report. Steady-state rounds must add nothing beyond that.
    let before = allocations();
    net.drive(RunLimits::rounds(0), &mut ());
    let wrapper = allocations() - before;

    let before = allocations();
    net.drive(RunLimits::rounds(512), &mut ());
    let with_rounds = allocations() - before;

    assert_eq!(
        with_rounds,
        wrapper,
        "512 steady-state {mode:?} rounds performed {} heap allocations",
        with_rounds.saturating_sub(wrapper)
    );
}

#[test]
fn congest_rounds_do_not_allocate() {
    probe(Mode::Congest);
}

#[test]
fn local_rounds_do_not_allocate() {
    probe(Mode::Local);
}

/// Pipelined trains (multi-chunk queues) also reach an allocation-free
/// steady state: chunk recycling must cover queue depths > one chunk.
#[test]
fn deep_queues_do_not_allocate() {
    struct Burst;
    impl Protocol for Burst {
        type Msg = Tick;
        type Output = ();

        fn init(&mut self, ctx: &mut Context<'_, Tick>) {
            for _ in 0..40 {
                ctx.send(0, Tick);
            }
        }

        fn step(&mut self, ctx: &mut Context<'_, Tick>, inbox: &[(Port, Tick)]) {
            // Re-enqueue a fresh 40-deep train whenever the previous one
            // has fully drained (every 40 rounds, in lock step).
            if ctx.round() % 40 == 0 {
                for _ in 0..40 {
                    ctx.send(0, Tick);
                }
            }
            let _ = inbox;
        }

        fn is_idle(&self) -> bool {
            true
        }

        fn output(&self) {}
    }

    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 1);
    let g = b.build();
    let mut net = Session::on(&g).seed(1).build_with(|_| Burst);
    net.drive(RunLimits::rounds(100), &mut ());
    net.reserve_rounds(4096);

    let before = allocations();
    net.drive(RunLimits::rounds(0), &mut ());
    let wrapper = allocations() - before;

    let before = allocations();
    net.drive(RunLimits::rounds(400), &mut ());
    let with_rounds = allocations() - before;

    assert_eq!(
        with_rounds,
        wrapper,
        "deep-queue steady state allocated {} times",
        with_rounds.saturating_sub(wrapper)
    );
}

/// The asynchronous engine's steady state is **zero-allocation**, same
/// as the flat plane's: the event plumbing is the slab-backed timing
/// wheel (in-flight envelopes ride recycled chunks), payloads stage in
/// rotating parity-indexed inboxes on the same chunk machinery,
/// `DelayModel` sampling never allocates (per-port tables are built
/// once), and the synchronizer layer's gating state (α safe counters,
/// batched token counters, the ready worklist) is fixed-size per node.
/// Once warmed, hundreds of further pulses must allocate exactly as
/// much as a zero-pulse drive — i.e. only the constant-size `RunReport`
/// wrapper — under **all four** delay models × **both** synchronizers.
#[test]
fn async_pulses_do_not_allocate() {
    let g = ring_with_chords(32);
    for delay in [
        DelayModel::Uniform { max_delay: 4 },
        DelayModel::PerLink { max_delay: 4 },
        DelayModel::HeavyTailed { max_delay: 4 },
        DelayModel::Adversarial { max_delay: 4 },
    ] {
        for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
            let mut net = Session::on(&g)
                .seed(5)
                .engine(Engine::Async {
                    delay,
                    sync,
                    fault: FaultModel::None,
                    churn: ChurnModel::None,
                })
                .limits(RunLimits::rounds(1024))
                .build_with(|_| Echo);

            // Warm-up: queue slabs, wheel buckets and inbox chunks reach
            // their high-water marks; reserve the cumulative histories.
            net.reserve_rounds(1024);
            net.drive(RunLimits::rounds(256), &mut ());

            // Wrapper cost: a zero-pulse drive still clones metrics into
            // its report. Steady-state pulses must add exactly nothing.
            let before = allocations();
            net.drive(RunLimits::rounds(0), &mut ());
            let wrapper = allocations() - before;

            let before = allocations();
            net.drive(RunLimits::rounds(256), &mut ());
            let with_pulses = allocations() - before;

            assert_eq!(
                with_pulses,
                wrapper,
                "{delay:?}, {sync:?}: 256 steady-state pulses performed {} heap allocations",
                with_pulses.saturating_sub(wrapper)
            );
        }
    }
}

/// The fault plane's steady state is equally **zero-allocation**:
/// per-send drop sampling is one splitmix64 step on a pre-seeded
/// stream, link-flap schedules are compiled into per-port phase tables
/// at build time (same pattern as the delay tables), retransmissions
/// ride the same slab-backed wheel chunks as first sends, and the
/// fault-event log drains into the observer every iteration without
/// ever shrinking its warmed capacity. Once past the warm-up (which
/// includes the crash/recover transition for [`FaultModel::Crash`]),
/// hundreds of faulty pulses must allocate exactly as much as a
/// zero-pulse drive, under every fault model × both synchronizers.
#[test]
fn faulty_pulses_do_not_allocate() {
    let g = ring_with_chords(32);
    for fault in [
        FaultModel::Drop { p_millis: 100 },
        FaultModel::LinkFlap { down_len: 3, up_len: 5 },
        FaultModel::Crash { victims: 2, at_pulse: 8, recover_after: 16 },
    ] {
        for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
            let mut net = Session::on(&g)
                .seed(5)
                .engine(Engine::Async {
                    delay: DelayModel::Uniform { max_delay: 4 },
                    sync,
                    fault,
                    churn: ChurnModel::None,
                })
                .limits(RunLimits::rounds(1024))
                .build_with(|_| Echo);

            // Warm-up: wheel buckets absorb the retransmit horizon, the
            // fault log reaches its high-water mark, and the crash model
            // plays out its one-time down/up transition.
            net.reserve_rounds(1024);
            net.drive(RunLimits::rounds(256), &mut ());

            let before = allocations();
            net.drive(RunLimits::rounds(0), &mut ());
            let wrapper = allocations() - before;

            let before = allocations();
            net.drive(RunLimits::rounds(256), &mut ());
            let with_pulses = allocations() - before;

            assert_eq!(
                with_pulses,
                wrapper,
                "{fault:?}, {sync:?}: 256 faulty steady-state pulses performed {} heap \
                 allocations",
                with_pulses.saturating_sub(wrapper)
            );
        }
    }
}

/// The churn plane's steady state is equally **zero-allocation**: the
/// membership schedule is compiled into per-node join/leave pulse
/// tables at build time, the [`congest::ChurnModel`] overlay
/// (presence flags, per-port liveness, live degrees) is fully
/// pre-reserved and epoch transitions mutate it in place, the churn log
/// drains into the observer every iteration without shrinking its
/// warmed capacity, and the per-epoch timeline is capacity-reserved for
/// the model's compiled event count. With **every membership
/// transition placed inside the warm-up drive** (so the zero-pulse and
/// measured drives clone an identical epoch timeline into their
/// reports), hundreds of churned steady-state pulses must allocate
/// exactly as much as a zero-pulse drive, under every churn model ×
/// both synchronizers.
#[test]
fn churned_pulses_do_not_allocate() {
    let g = ring_with_chords(32);
    let policy = congest::ChurnPolicy::Continue;
    for churn in [
        ChurnModel::Join { joiners: 3, at_pulse: 8, spacing: 8, policy },
        ChurnModel::Leave { leavers: 3, at_pulse: 8, spacing: 8, policy },
        ChurnModel::Mixed { joiners: 2, leavers: 2, at_pulse: 8, spacing: 8, policy },
    ] {
        for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
            let mut net = Session::on(&g)
                .seed(5)
                .engine(Engine::Async {
                    delay: DelayModel::Uniform { max_delay: 4 },
                    sync,
                    fault: FaultModel::None,
                    churn,
                })
                .limits(RunLimits::rounds(1024))
                .build_with(|_| Echo);

            // Warm-up: every scheduled join and leave fires (the last
            // membership event lands by pulse 32 ≪ 256), the churn log
            // reaches its high-water mark, and the epoch timeline is
            // complete — so both measured drives below snapshot the
            // same epochs into their reports.
            net.reserve_rounds(1024);
            let report = net.drive(RunLimits::rounds(256), &mut ());
            assert!(report.overhead.epochs > 0, "{churn:?}: warm-up must play out the churn");

            let before = allocations();
            net.drive(RunLimits::rounds(0), &mut ());
            let wrapper = allocations() - before;

            let before = allocations();
            net.drive(RunLimits::rounds(256), &mut ());
            let with_pulses = allocations() - before;

            assert_eq!(
                with_pulses,
                wrapper,
                "{churn:?}, {sync:?}: 256 churned steady-state pulses performed {} heap \
                 allocations",
                with_pulses.saturating_sub(wrapper)
            );
        }
    }
}

/// Recording does not break the zero-allocation contract: with a ring
/// [`congest::TraceSink`] installed via [`Session::trace`], steady-state
/// pulses (and flat rounds) must still allocate exactly as much as a
/// zero-round drive. The ring is preallocated at build time and
/// overwrites in place once full; the streaming profile is fixed-size
/// arrays and scalars, so even the per-drive profile snapshot cloned
/// into the `RunReport` stays off the heap.
#[test]
fn traced_pulses_do_not_allocate() {
    let g = ring_with_chords(32);
    let engines = [
        Engine::Flat { shards: 1 },
        Engine::Async {
            delay: DelayModel::Uniform { max_delay: 4 },
            sync: SyncModel::Alpha,
            fault: FaultModel::None,
            churn: ChurnModel::None,
        },
        Engine::Async {
            delay: DelayModel::Uniform { max_delay: 4 },
            sync: SyncModel::BatchedAlpha,
            fault: FaultModel::None,
            churn: ChurnModel::None,
        },
    ];
    for engine in engines {
        let mut net = Session::on(&g)
            .seed(5)
            .engine(engine)
            .limits(RunLimits::rounds(1024))
            .trace(TraceConfig::events(1 << 12))
            .build_with(|_| Echo);

        // Warm-up long enough that the trace ring wraps and every pool
        // reaches its high-water mark.
        net.reserve_rounds(1024);
        net.drive(RunLimits::rounds(256), &mut ());
        assert!(
            net.trace_sink().is_some_and(|s| s.profile().records > 0),
            "{engine:?}: the recorder must have been active during warm-up"
        );

        let before = allocations();
        net.drive(RunLimits::rounds(0), &mut ());
        let wrapper = allocations() - before;

        let before = allocations();
        net.drive(RunLimits::rounds(256), &mut ());
        let with_pulses = allocations() - before;

        assert_eq!(
            with_pulses,
            wrapper,
            "{engine:?}: 256 traced steady-state rounds performed {} heap allocations",
            with_pulses.saturating_sub(wrapper)
        );
    }
}

/// The batched synchronizer's *sparse* path — idle ports cleared by
/// coalesced waves, gates completed eagerly through the ready worklist —
/// is equally allocation-free. The echo probe above keeps every port
/// loaded (pure piggyback path); here only one port per node ever
/// carries payloads, so every pulse floods the wave/wake machinery.
#[test]
fn batched_sparse_pulses_do_not_allocate() {
    /// Each node forwards one token on port 0 every pulse; every other
    /// port stays idle forever.
    struct Trickle;
    impl Protocol for Trickle {
        type Msg = Tick;
        type Output = ();

        fn init(&mut self, ctx: &mut Context<'_, Tick>) {
            ctx.send(0, Tick);
        }

        fn step(&mut self, ctx: &mut Context<'_, Tick>, inbox: &[(Port, Tick)]) {
            let _ = inbox;
            ctx.send(0, Tick);
        }

        fn is_idle(&self) -> bool {
            true
        }

        fn output(&self) {}
    }

    let g = ring_with_chords(32);
    let mut net = Session::on(&g)
        .seed(7)
        .engine(Engine::Async {
            delay: DelayModel::Uniform { max_delay: 4 },
            sync: SyncModel::BatchedAlpha,
            fault: FaultModel::None,
            churn: ChurnModel::None,
        })
        .limits(RunLimits::rounds(1024))
        .build_with(|_| Trickle);

    net.reserve_rounds(1024);
    net.drive(RunLimits::rounds(256), &mut ());

    let before = allocations();
    net.drive(RunLimits::rounds(0), &mut ());
    let wrapper = allocations() - before;

    let before = allocations();
    net.drive(RunLimits::rounds(256), &mut ());
    let with_pulses = allocations() - before;

    assert_eq!(
        with_pulses,
        wrapper,
        "sparse batched steady state performed {} heap allocations",
        with_pulses.saturating_sub(wrapper)
    );
}

/// The O(1)-peak construction contract, byte-accounted: building a
/// [`Topology`] from an edge stream may allocate only the final CSR
/// arrays plus one `u32` placement cursor per node — no edge list, no
/// intermediate `Graph`. The materialized path (edge `Vec` → sort+dedup
/// `Graph` build → graph-walking topology compile), by contrast, holds
/// edge list, graph and route table live at once, so its peak must be
/// strictly — and substantially — higher on the same instance.
#[test]
fn streamed_build_peak_is_the_final_plane() {
    let n = 10_000;
    let p = 8.0 / (n - 1) as f64;
    let mut stream = GnpStream::new(n, p, 33);

    // Materialized before-path, peak-tracked.
    let base = reset_peak_bytes();
    let topo = {
        let mut b = GraphBuilder::new(n);
        stream.reset();
        while let Some((u, v)) = stream.next_edge() {
            b.add_edge(u, v);
        }
        let g = b.build();
        Topology::from_graph(&g, 1)
    };
    let materialized_peak = peak_bytes_since(base);
    let ports = topo.port_count();
    drop(topo);

    // Streamed path on the identical instance.
    let base = reset_peak_bytes();
    let topo = Topology::from_edge_stream(&mut stream, 1);
    let streamed_peak = peak_bytes_since(base);

    assert_eq!(topo.port_count(), ports, "same instance on both paths");
    let final_plane = topo.heap_bytes();
    let cursor = n * std::mem::size_of::<u32>();
    let slack = 64 << 10; // stream state, Vec headers, allocator rounding
    assert!(
        streamed_peak <= final_plane + cursor + slack,
        "streamed build peaked at {streamed_peak} B; the final plane is {final_plane} B \
         (+{cursor} B cursor) — an O(m) transient has crept into the two-pass build"
    );
    assert!(
        materialized_peak > streamed_peak * 3 / 2,
        "materialized peak {materialized_peak} B vs streamed {streamed_peak} B — the \
         materialized path must cost strictly more (edge list + graph + topology live at once)"
    );
}
