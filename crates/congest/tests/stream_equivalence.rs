//! Streamed construction is *observationally invisible*: a session built
//! with [`Session::on_stream`] must be bit-identical — outputs, metrics,
//! round counts, per-node RNG streams — to one built with [`Session::on`]
//! over the materialized form of the same stream, across shard counts
//! and metrics modes.
//!
//! This is the congest-side companion of
//! `crates/graphs/tests/stream_equivalence.rs` (which pins generator ≡
//! stream at the edge-list level): here the whole engine runs on both
//! construction paths and every observable is compared.

use congest::{
    Context, Driver, Engine, Message, MetricsMode, Port, Protocol, RunLimits, RunReport, Session,
};
use graphs::generators::{materialize, GnpStream, PlantedNearCliqueStream};
use graphs::EdgeStream;
use rand::Rng;

/// An id-carrying word, so payload metering sees realistic widths.
#[derive(Clone, Debug)]
struct Word(u64);

impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Randomized gossip: each round every node sends its running checksum
/// to one RNG-chosen port and folds everything it hears back in. The
/// output depends on the topology (port numbering!), the delivery
/// schedule, and the per-node RNG streams — if any of those differ
/// between the two construction paths, the checksums diverge.
struct Mixer {
    checksum: u64,
    rounds: u64,
}

impl Mixer {
    fn fold(&mut self, x: u64) {
        self.checksum = (self.checksum ^ x).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
    }
}

impl Protocol for Mixer {
    type Msg = Word;
    type Output = u64;

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        self.fold(ctx.id());
        let degree = ctx.degree();
        if degree > 0 {
            let port = ctx.rng().gen_range(0..degree);
            ctx.send(port, Word(self.checksum));
        }
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        for &(port, Word(x)) in inbox {
            self.fold(x ^ ctx.neighbor_id(port));
        }
        let degree = ctx.degree();
        if ctx.round() < self.rounds && degree > 0 {
            let port = ctx.rng().gen_range(0..degree);
            ctx.send(port, Word(self.checksum));
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) -> u64 {
        self.checksum
    }
}

const ROUNDS: u64 = 12;

fn run(session: Session<'_>, shards: usize, metrics: MetricsMode) -> (Vec<u64>, RunReport) {
    let mut driver = session
        .seed(42)
        .engine(Engine::Flat { shards })
        .metrics(metrics)
        .limits(RunLimits::rounds(ROUNDS + 4))
        .build_with(|_| Mixer { checksum: 0, rounds: ROUNDS });
    let report = driver.run();
    (driver.outputs(), report)
}

fn assert_paths_agree(mut stream: impl EdgeStream, label: &str) {
    let graph = materialize(&mut stream);
    for shards in [1, 2, 4] {
        for metrics in [MetricsMode::Full, MetricsMode::Streaming] {
            let (graph_out, graph_rep) = run(Session::on(&graph), shards, metrics);
            let (stream_out, stream_rep) = run(Session::on_stream(&mut stream), shards, metrics);
            assert_eq!(
                graph_out, stream_out,
                "{label}, shards = {shards}, {metrics:?}: outputs diverge between \
                 Session::on and Session::on_stream"
            );
            assert_eq!(
                graph_rep.metrics, stream_rep.metrics,
                "{label}, shards = {shards}, {metrics:?}: metrics diverge"
            );
            assert_eq!(graph_rep.rounds, stream_rep.rounds, "{label}: round counts diverge");
            assert_eq!(
                graph_rep.termination, stream_rep.termination,
                "{label}: terminations diverge"
            );
        }
    }
}

#[test]
fn gnp_stream_session_matches_materialized() {
    assert_paths_agree(GnpStream::new(200, 0.05, 7), "G(200, 0.05)");
}

#[test]
fn sparse_gnp_stream_session_matches_materialized() {
    // Expected degree ~4 with isolated nodes: exercises degree-0
    // endpoints and ragged shard boundaries.
    assert_paths_agree(GnpStream::new(501, 0.008, 91), "G(501, 0.008)");
}

#[test]
fn planted_stream_session_matches_materialized() {
    assert_paths_agree(PlantedNearCliqueStream::new(120, 40, 0.02, 0.05, 13), "planted(120, 40)");
}

/// The stream is handed back restartable: one `Session::on_stream` build
/// consumes two passes, and the same stream object can then build again
/// (the engine resets it), yielding the identical network.
#[test]
fn stream_is_reusable_across_builds() {
    let mut stream = GnpStream::new(150, 0.06, 3);
    let (first, _) = run(Session::on_stream(&mut stream), 2, MetricsMode::Full);
    let (second, _) = run(Session::on_stream(&mut stream), 2, MetricsMode::Full);
    assert_eq!(first, second, "rebuilding from the same stream must be deterministic");
}
