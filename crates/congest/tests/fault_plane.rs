//! Engine-level contract of the seeded fault plane (`sched::fault`),
//! degradation side: under [`FaultModel::Crash`] the run ends in
//! [`Termination::Degraded`], surviving nodes re-converge, peers observe
//! [`Protocol::on_peer_down`] / [`Protocol::on_peer_up`], observers
//! stream the [`FaultEvent`] log — and every fault schedule replays
//! **bit for bit** from `(seed, FaultModel)` alone. (The masking grid
//! for `Drop`/`LinkFlap` lives with the engine-equivalence suite in
//! `crates/core/tests/engine_equivalence.rs`.)

use std::collections::BTreeSet;

use congest::{
    ChurnModel, Context, DelayModel, Driver, Engine, FaultEvent, FaultModel, Message, Port,
    Protocol, RoundDelta, RunLimits, Session, SyncModel, Termination,
};
use graphs::{Graph, GraphBuilder};

#[derive(Clone, Debug)]
struct Word(u64);
impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Beacon gossip that *keeps talking*: every pulse, every node
/// re-broadcasts the largest value it has seen (initially its own ID)
/// and records every peer-loss hook. The perpetual re-broadcast is what
/// lets survivors — and recovered crash victims — re-converge.
struct Beacon {
    best: u64,
    downs: Vec<Port>,
    ups: Vec<Port>,
}

impl Protocol for Beacon {
    type Msg = Word;
    type Output = (u64, usize, usize);

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        self.best = ctx.id();
        ctx.broadcast(Word(self.best));
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        for &(_, Word(w)) in inbox {
            self.best = self.best.max(w);
        }
        let token = self.best;
        ctx.broadcast(Word(token));
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn on_peer_down(&mut self, _ctx: &mut Context<'_, Word>, port: Port) {
        self.downs.push(port);
    }

    fn on_peer_up(&mut self, _ctx: &mut Context<'_, Word>, port: Port) {
        self.ups.push(port);
    }

    fn output(&self) -> (u64, usize, usize) {
        (self.best, self.downs.len(), self.ups.len())
    }
}

/// Collects the streamed fault-event log.
#[derive(Default)]
struct FaultLog {
    events: Vec<FaultEvent>,
}

impl congest::Observer for FaultLog {
    fn on_round(&mut self, _round: u64, _delta: &RoundDelta) {}

    fn on_fault(&mut self, event: FaultEvent) {
        self.events.push(event);
    }
}

fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    b.add_clique(&(0..n).collect::<Vec<_>>());
    b.build()
}

/// One faulty Beacon run: outputs, report and the streamed fault log.
fn run(fault: FaultModel) -> (Vec<(u64, usize, usize)>, congest::RunReport, Vec<FaultEvent>) {
    let g = clique(12);
    let mut driver = Session::on(&g)
        .seed(33)
        .engine(Engine::Async {
            delay: DelayModel::PerLink { max_delay: 3 },
            sync: SyncModel::Alpha,
            fault,
            churn: ChurnModel::None,
        })
        .limits(RunLimits::rounds(24))
        .build_with(|_| Beacon { best: 0, downs: Vec::new(), ups: Vec::new() });
    let mut log = FaultLog::default();
    let report = driver.drive(RunLimits::rounds(24), &mut log);
    (driver.outputs(), report, log.events)
}

fn victims_of(events: &[FaultEvent]) -> BTreeSet<u32> {
    events
        .iter()
        .filter_map(|e| match e {
            FaultEvent::NodeDown { node, .. } => Some(*node),
            _ => None,
        })
        .collect()
}

#[test]
fn permanent_crash_degrades_and_survivors_reconverge() {
    let fault = FaultModel::Crash { victims: 3, at_pulse: 6, recover_after: 0 };
    let (outputs, report, events) = run(fault);

    // Degradation, with honest accounting: the run says how much the
    // crashes cost, and the overhead ledger agrees.
    let Termination::Degraded { lost } = report.termination else {
        panic!("seed 33, {fault:?}: expected Degraded, got {:?}", report.termination);
    };
    assert!(lost > 0, "seed 33, {fault:?}: crashed beacons must swallow payloads");
    assert_eq!(
        report.overhead.dropped_messages - report.overhead.retransmissions,
        lost,
        "seed 33, {fault:?}: dropped = retransmitted + lost must balance"
    );

    // Exactly the seeded victim set went down, and — permanent crash —
    // nobody came back.
    let victims = victims_of(&events);
    assert_eq!(victims.len(), 3, "seed 33, {fault:?}: three distinct victims");
    assert!(
        !events.iter().any(|e| matches!(e, FaultEvent::NodeUp { .. })),
        "seed 33, {fault:?}: a permanent crash never recovers"
    );
    assert!(
        events.iter().any(|e| matches!(e, FaultEvent::Lost { .. })),
        "seed 33, {fault:?}: deliveries into a crashed node are lost events"
    );

    // Every survivor saw each victim go down exactly once (a clique:
    // everyone neighbors everyone), nobody saw a recovery, and the
    // survivors re-converged to one common beacon value.
    let survivor_best: BTreeSet<u64> = outputs
        .iter()
        .enumerate()
        .filter(|(v, _)| !victims.contains(&(*v as u32)))
        .map(|(_, &(best, downs, ups))| {
            assert_eq!(downs, 3, "seed 33, {fault:?}: every survivor observes all crashes");
            assert_eq!(ups, 0, "seed 33, {fault:?}: no recovery to observe");
            best
        })
        .collect();
    assert_eq!(
        survivor_best.len(),
        1,
        "seed 33, {fault:?}: survivors must re-converge to one value, got {survivor_best:?}"
    );
}

#[test]
fn recovered_victims_rejoin_and_peers_observe_both_transitions() {
    let fault = FaultModel::Crash { victims: 2, at_pulse: 4, recover_after: 8 };
    let (outputs, report, events) = run(fault);

    assert!(
        matches!(report.termination, Termination::Degraded { lost } if lost > 0),
        "seed 33, {fault:?}: a crash window still degrades the run, got {:?}",
        report.termination
    );

    let victims = victims_of(&events);
    assert_eq!(victims.len(), 2, "seed 33, {fault:?}");
    for &v in &victims {
        assert!(
            events.iter().any(
                |e| matches!(e, FaultEvent::NodeUp { node, pulse } if *node == v && *pulse == 12)
            ),
            "seed 33, {fault:?}: victim {v} must recover exactly at at_pulse + recover_after"
        );
    }

    // Never-crashed nodes observed both transitions for both victims,
    // and *everyone* — recovered victims included, thanks to the
    // perpetual re-broadcast — converged to one beacon value.
    for (v, &(_, downs, ups)) in outputs.iter().enumerate() {
        if !victims.contains(&(v as u32)) {
            assert_eq!(downs, 2, "seed 33, {fault:?}: node {v} missed a down transition");
            assert_eq!(ups, 2, "seed 33, {fault:?}: node {v} missed an up transition");
        }
    }
    let best: BTreeSet<u64> = outputs.iter().map(|&(best, _, _)| best).collect();
    assert_eq!(
        best.len(),
        1,
        "seed 33, {fault:?}: recovered victims must catch back up, got {best:?}"
    );
}

/// The replayability half of the degradation contract: the entire fault
/// schedule — event log, outputs, metrics, overhead, termination — is a
/// pure function of `(seed, FaultModel)`.
#[test]
fn fault_schedules_replay_from_seed_and_model_alone() {
    for fault in [
        FaultModel::Drop { p_millis: 80 },
        FaultModel::LinkFlap { down_len: 2, up_len: 5 },
        FaultModel::Crash { victims: 3, at_pulse: 6, recover_after: 7 },
    ] {
        let (out_a, report_a, events_a) = run(fault);
        let (out_b, report_b, events_b) = run(fault);
        assert_eq!(out_a, out_b, "seed 33, {fault:?}: outputs must replay");
        assert_eq!(events_a, events_b, "seed 33, {fault:?}: fault log must replay");
        assert_eq!(report_a.metrics, report_b.metrics, "seed 33, {fault:?}: metrics must replay");
        assert_eq!(
            report_a.overhead, report_b.overhead,
            "seed 33, {fault:?}: overhead must replay"
        );
        assert_eq!(report_a.termination, report_b.termination, "seed 33, {fault:?}");
        assert!(!events_a.is_empty(), "seed 33, {fault:?}: the schedule must inject faults");
    }
}

/// The masked models stream nothing but `Dropped` events, and the
/// event count is exactly the retransmission meter: masked loss is
/// always retransmitted, never lost.
#[test]
fn masked_models_stream_only_dropped_events() {
    for fault in
        [FaultModel::Drop { p_millis: 80 }, FaultModel::LinkFlap { down_len: 2, up_len: 5 }]
    {
        let (_, report, events) = run(fault);
        assert!(
            matches!(report.termination, Termination::RoundLimit),
            "seed 33, {fault:?}: a masked model never degrades, got {:?}",
            report.termination
        );
        assert!(
            events.iter().all(|e| matches!(e, FaultEvent::Dropped { .. })),
            "seed 33, {fault:?}: masked faults are wire drops only"
        );
        assert_eq!(
            events.len() as u64,
            report.overhead.retransmissions,
            "seed 33, {fault:?}: one retransmission per dropped send"
        );
        assert_eq!(
            report.overhead.dropped_messages, report.overhead.retransmissions,
            "seed 33, {fault:?}: nothing is ever lost under a masked model"
        );
    }
}
