//! Engine-level contract of the membership churn plane
//! (`sched::churn`): joins and leaves open epochs, peers observe
//! [`Protocol::on_join`] / [`Protocol::on_leave`], in-flight payloads of
//! a leaver are retired and itemized (never silently dropped),
//! survivors re-converge across epochs, [`ChurnPolicy::Restart`]
//! visibly diverges from [`ChurnPolicy::Continue`] — and every
//! membership schedule replays **bit for bit** from
//! `(seed, ChurnModel)` alone. (The fixed-membership identity — a
//! `ChurnModel::None` run is bit-identical to the pre-churn engine —
//! is pinned by the golden ledger in `tests/asynchrony.rs`.)

use std::collections::BTreeSet;

use congest::{
    ChurnEvent, ChurnModel, ChurnPolicy, Context, DelayModel, Driver, Engine, Message, Port,
    Protocol, RoundDelta, RunLimits, RunReport, Session, SyncModel, Termination,
};
use graphs::{Graph, GraphBuilder};

#[derive(Clone, Debug)]
struct Word(u64);
impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Census gossip that *keeps talking*: every pulse, every member
/// re-broadcasts the largest ID it has seen — so late joiners catch up
/// and survivors re-converge after a leave — while recording every
/// membership hook and every `init` call (the Restart-policy witness).
struct Census {
    best: u64,
    joins: usize,
    leaves: usize,
    inits: u32,
}

impl Protocol for Census {
    type Msg = Word;
    type Output = (u64, usize, usize, u32);

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        self.inits += 1;
        self.best = self.best.max(ctx.id());
        ctx.broadcast(Word(self.best));
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        for &(_, Word(w)) in inbox {
            self.best = self.best.max(w);
        }
        let token = self.best;
        ctx.broadcast(Word(token));
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn on_join(&mut self, _ctx: &mut Context<'_, Word>, _port: Port) {
        self.joins += 1;
    }

    fn on_leave(&mut self, _ctx: &mut Context<'_, Word>, _port: Port) {
        self.leaves += 1;
    }

    fn output(&self) -> (u64, usize, usize, u32) {
        (self.best, self.joins, self.leaves, self.inits)
    }
}

/// Collects the streamed churn-event log.
#[derive(Default)]
struct ChurnLog {
    events: Vec<ChurnEvent>,
}

impl congest::Observer for ChurnLog {
    fn on_round(&mut self, _round: u64, _delta: &RoundDelta) {}

    fn on_churn(&mut self, event: ChurnEvent) {
        self.events.push(event);
    }
}

fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    b.add_clique(&(0..n).collect::<Vec<_>>());
    b.build()
}

/// A node's Census output: `(best id, on_join count, on_leave count, inits)`.
type CensusOutput = (u64, usize, usize, u32);

/// One churned Census run: outputs, report and the streamed churn log.
fn run(churn: ChurnModel, seed: u64) -> (Vec<CensusOutput>, RunReport, Vec<ChurnEvent>) {
    let g = clique(10);
    let mut driver = Session::on(&g)
        .seed(seed)
        .engine(Engine::Async {
            delay: DelayModel::PerLink { max_delay: 3 },
            sync: SyncModel::Alpha,
            fault: congest::FaultModel::None,
            churn,
        })
        .limits(RunLimits::rounds(30))
        .build_with(|_| Census { best: 0, joins: 0, leaves: 0, inits: 0 });
    let mut log = ChurnLog::default();
    let report = driver.drive(RunLimits::rounds(30), &mut log);
    (driver.outputs(), report, log.events)
}

fn joiners_of(events: &[ChurnEvent]) -> BTreeSet<u32> {
    events
        .iter()
        .filter_map(|e| match e {
            ChurnEvent::Join { node, .. } => Some(*node),
            _ => None,
        })
        .collect()
}

fn leavers_of(events: &[ChurnEvent]) -> BTreeSet<u32> {
    events
        .iter()
        .filter_map(|e| match e {
            ChurnEvent::Leave { node, .. } => Some(*node),
            _ => None,
        })
        .collect()
}

fn retired_of(events: &[ChurnEvent]) -> usize {
    events.iter().filter(|e| matches!(e, ChurnEvent::Retired { .. })).count()
}

/// Shared epoch-ledger sanity: the per-epoch timeline in the report
/// agrees with the scalar overhead counters and is ordered.
fn check_epoch_ledger(report: &RunReport, ctx: &str) {
    assert_eq!(
        report.epochs.len() as u64,
        report.overhead.epochs,
        "{ctx}: timeline length must equal the epoch counter"
    );
    assert_eq!(
        report.overhead.epochs,
        report.overhead.joins + report.overhead.leaves,
        "{ctx}: every epoch is opened by exactly one join or leave"
    );
    for (i, info) in report.epochs.iter().enumerate() {
        assert_eq!(info.epoch, i as u64 + 1, "{ctx}: epochs are numbered 1..=k in order");
        if i > 0 {
            assert!(
                info.pulse >= report.epochs[i - 1].pulse,
                "{ctx}: epoch pulses must be nondecreasing"
            );
        }
    }
}

/// The replayability half of the contract: outputs, the churn log, the
/// payload ledger, the overhead counters and the epoch timeline are a
/// pure function of `(seed, ChurnModel)`.
#[test]
fn churn_schedules_replay_from_seed_and_model_alone() {
    for churn in [
        ChurnModel::Join { joiners: 3, at_pulse: 4, spacing: 2, policy: ChurnPolicy::Continue },
        ChurnModel::Leave { leavers: 3, at_pulse: 6, spacing: 2, policy: ChurnPolicy::Continue },
        ChurnModel::Mixed {
            joiners: 2,
            leavers: 2,
            at_pulse: 5,
            spacing: 3,
            policy: ChurnPolicy::Restart,
        },
    ] {
        let (out_a, report_a, events_a) = run(churn, 33);
        let (out_b, report_b, events_b) = run(churn, 33);
        assert_eq!(out_a, out_b, "seed 33, {churn:?}: outputs must replay");
        assert_eq!(events_a, events_b, "seed 33, {churn:?}: churn log must replay");
        assert_eq!(report_a.metrics, report_b.metrics, "seed 33, {churn:?}: metrics must replay");
        assert_eq!(
            report_a.overhead, report_b.overhead,
            "seed 33, {churn:?}: overhead must replay"
        );
        assert_eq!(report_a.epochs, report_b.epochs, "seed 33, {churn:?}: timeline must replay");
        assert!(!events_a.is_empty(), "seed 33, {churn:?}: the schedule must produce churn");
    }
}

/// Staggered joins: every join opens an epoch, the member count grows
/// monotonically to `n`, initially-present peers observe every
/// `on_join`, and the late joiners catch up — the whole final member
/// set converges on one census value.
#[test]
fn staggered_joins_open_epochs_and_joiners_converge() {
    let churn =
        ChurnModel::Join { joiners: 3, at_pulse: 4, spacing: 2, policy: ChurnPolicy::Continue };
    let (outputs, report, events) = run(churn, 33);
    let ctx = format!("seed 33, {churn:?}");

    check_epoch_ledger(&report, &ctx);
    assert_eq!(report.overhead.joins, 3, "{ctx}");
    assert_eq!(report.overhead.leaves, 0, "{ctx}");
    assert_eq!(report.overhead.epochs, 3, "{ctx}: each join opens an epoch");
    assert!(
        report.epochs.windows(2).all(|w| w[0].members < w[1].members),
        "{ctx}: joins grow the member set monotonically"
    );
    assert_eq!(
        report.epochs.last().map(|e| e.members),
        Some(10),
        "{ctx}: after the last join everyone is a member"
    );
    assert!(
        !matches!(report.termination, Termination::Degraded { .. }),
        "{ctx}: churn is graceful reconfiguration, never degradation, got {:?}",
        report.termination
    );

    let joiners = joiners_of(&events);
    assert_eq!(joiners.len(), 3, "{ctx}: three distinct seeded joiners");
    let best: BTreeSet<u64> = outputs.iter().map(|&(best, ..)| best).collect();
    assert_eq!(best.len(), 1, "{ctx}: joiners must catch up to one census value, got {best:?}");
    for (v, &(_, joins, leaves, inits)) in outputs.iter().enumerate() {
        assert_eq!(leaves, 0, "{ctx}: nobody left");
        assert_eq!(inits, 1, "{ctx}: under Continue every node initializes exactly once");
        if !joiners.contains(&(v as u32)) {
            assert_eq!(joins, 3, "{ctx}: node {v} must observe every join on its ports");
        }
    }
}

/// Graceful leaves: every leave opens an epoch, each leaver's queued and
/// in-flight payloads are retired and **itemized** — the overhead
/// counter equals the streamed `Retired` event count exactly — peers
/// observe every `on_leave`, and the survivors re-converge.
#[test]
fn graceful_leaves_retire_itemized_and_survivors_reconverge() {
    let churn =
        ChurnModel::Leave { leavers: 3, at_pulse: 6, spacing: 2, policy: ChurnPolicy::Continue };
    let (outputs, report, events) = run(churn, 33);
    let ctx = format!("seed 33, {churn:?}");

    check_epoch_ledger(&report, &ctx);
    assert_eq!(report.overhead.leaves, 3, "{ctx}");
    assert_eq!(report.overhead.joins, 0, "{ctx}");
    assert_eq!(
        report.epochs.last().map(|e| e.members),
        Some(7),
        "{ctx}: three leavers gone from a 10-clique"
    );

    // Honest accounting: a member that leaves mid-gossip strands
    // payloads, and every single one is itemized to observers.
    assert!(report.overhead.retired_messages > 0, "{ctx}: a leaving gossiper strands payloads");
    assert_eq!(
        retired_of(&events) as u64,
        report.overhead.retired_messages,
        "{ctx}: one Retired event per retired payload — nothing is dropped silently"
    );
    assert!(
        !matches!(report.termination, Termination::Degraded { .. }),
        "{ctx}: retirement is not loss — a churned run never degrades, got {:?}",
        report.termination
    );

    let leavers = leavers_of(&events);
    assert_eq!(leavers.len(), 3, "{ctx}: three distinct seeded leavers");
    let survivor_best: BTreeSet<u64> = outputs
        .iter()
        .enumerate()
        .filter(|(v, _)| !leavers.contains(&(*v as u32)))
        .map(|(v, &(best, joins, leaves, _))| {
            assert_eq!(joins, 0, "{ctx}: nobody joined");
            assert_eq!(leaves, 3, "{ctx}: survivor {v} must observe every leave on its ports");
            best
        })
        .collect();
    assert_eq!(
        survivor_best.len(),
        1,
        "{ctx}: survivors must re-converge to one census value, got {survivor_best:?}"
    );
}

/// The handoff policies visibly diverge on the same `(seed, model)`
/// schedule: under [`ChurnPolicy::Continue`] every node initializes
/// exactly once and carries its state across epochs; under
/// [`ChurnPolicy::Restart`] every epoch boundary re-runs `init` on the
/// surviving members.
#[test]
fn restart_policy_diverges_from_continue() {
    let continue_model = ChurnModel::Mixed {
        joiners: 2,
        leavers: 2,
        at_pulse: 5,
        spacing: 3,
        policy: ChurnPolicy::Continue,
    };
    let restart_model = ChurnModel::Mixed {
        joiners: 2,
        leavers: 2,
        at_pulse: 5,
        spacing: 3,
        policy: ChurnPolicy::Restart,
    };
    let (out_continue, rep_continue, ev_continue) = run(continue_model, 33);
    let (out_restart, rep_restart, ev_restart) = run(restart_model, 33);

    // Same seed, same joiner/leaver schedule: the policy changes *what
    // protocols do* at the boundary, not *which* boundaries occur.
    assert_eq!(
        joiners_of(&ev_continue),
        joiners_of(&ev_restart),
        "policy must not perturb the seeded membership schedule"
    );
    assert_eq!(leavers_of(&ev_continue), leavers_of(&ev_restart));
    assert_eq!(rep_continue.overhead.epochs, 4);
    assert_eq!(rep_restart.overhead.epochs, 4);
    check_epoch_ledger(&rep_continue, "continue");
    check_epoch_ledger(&rep_restart, "restart");

    let max_inits_continue = out_continue.iter().map(|&(.., inits)| inits).max().expect("nonempty");
    let max_inits_restart = out_restart.iter().map(|&(.., inits)| inits).max().expect("nonempty");
    assert_eq!(max_inits_continue, 1, "Continue: init runs once per node, hooks are the signal");
    assert!(
        max_inits_restart > 1,
        "Restart: surviving members must re-initialize at epoch boundaries"
    );
    assert_ne!(out_continue, out_restart, "the two handoff policies must be distinguishable");
}

/// Join and leave events carry the epoch they open, in order, and agree
/// with the reported timeline pulse for pulse.
#[test]
fn streamed_events_agree_with_the_epoch_timeline() {
    let churn = ChurnModel::Mixed {
        joiners: 2,
        leavers: 2,
        at_pulse: 5,
        spacing: 3,
        policy: ChurnPolicy::Continue,
    };
    let (_, report, events) = run(churn, 33);
    let boundaries: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            ChurnEvent::Join { pulse, epoch, .. } | ChurnEvent::Leave { pulse, epoch, .. } => {
                Some((*epoch, *pulse))
            }
            ChurnEvent::Retired { .. } => None,
        })
        .collect();
    let timeline: Vec<(u64, u64)> = report.epochs.iter().map(|e| (e.epoch, e.pulse)).collect();
    assert_eq!(boundaries, timeline, "streamed epoch boundaries must match the report timeline");
}
