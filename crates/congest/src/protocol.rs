//! The per-node protocol interface.
//!
//! A distributed algorithm is a [`Protocol`]: a state machine instantiated
//! once per node. The simulator calls [`Protocol::init`] before round 1 and
//! [`Protocol::step`] every round with the messages delivered that round;
//! the node reacts by enqueueing messages through its [`Context`].
//!
//! # Knowledge model
//!
//! Following the standard CONGEST formalization (Peleg \[20\]) a node knows:
//! its own unique identifier, its degree (it addresses neighbors by *port*
//! `0..degree`), the identifiers of its neighbors (the `KT1` variant — the
//! paper's algorithm assumes this implicitly, e.g. when a node checks which
//! of its neighbors belong to `K_{2ε²}(X)` in step 4f), and global
//! parameters passed at construction (ε, p — these are inputs of the
//! algorithm). A node does *not* see `n`, the topology, or any other
//! node's state.
//!
//! # Pipelining and the one-message-per-edge rule
//!
//! [`Context::send`] *enqueues*; the network drains **at most one message
//! per directed edge per round** in CONGEST mode. A protocol may enqueue a
//! long train of messages in one step — exactly the "pipelining" the
//! paper's Lemma 5.1 accounting uses — and they will be delivered over
//! consecutive rounds.

use std::collections::VecDeque;

use rand::rngs::StdRng;

use crate::message::Message;

/// A port: the local index of one incident edge (`0..degree`).
pub type Port = usize;

/// A round number (1-based once execution starts; `init` happens at 0).
pub type Round = u64;

/// Immutable per-node facts available to the protocol.
///
/// Neighbor identifiers live in a shared arena: the flat engine builds
/// **one** allocation holding all `2m` neighbor ids and hands every
/// endpoint a `(lo, hi)` window into it, so per-node footprint is a
/// fixed-size header rather than `n` separate heap vectors. Standalone
/// endpoints (tests, the event-driven and legacy engines) get a
/// degenerate single-node arena via [`Endpoint::new`].
#[derive(Clone, Debug)]
pub struct Endpoint {
    /// Dense node index in the underlying graph. Exposed for the harness
    /// and for output collection; protocols must treat it as opaque.
    pub index: usize,
    /// The node's unique identifier (the `O(log n)`-bit ID of the model).
    pub id: u64,
    /// Neighbor-id arena shared with the other endpoints of the engine.
    arena: std::sync::Arc<[u64]>,
    /// This node's window within the arena: ports `0..degree` map to
    /// `arena[lo..hi]`.
    lo: u32,
    hi: u32,
}

impl Endpoint {
    /// Builds a standalone endpoint owning its own neighbor-id storage.
    ///
    /// # Panics
    ///
    /// Panics if the degree exceeds `u32::MAX` (beyond the engines' port
    /// space anyway).
    #[must_use]
    pub fn new(index: usize, id: u64, neighbor_ids: Vec<u64>) -> Self {
        let hi = u32::try_from(neighbor_ids.len()).expect("degree exceeds u32 port space");
        Self { index, id, arena: neighbor_ids.into(), lo: 0, hi }
    }

    /// Builds an endpoint viewing `arena[lo..hi]` — the flat engine's
    /// shared-allocation path.
    pub(crate) fn from_arena(
        index: usize,
        id: u64,
        arena: std::sync::Arc<[u64]>,
        lo: u32,
        hi: u32,
    ) -> Self {
        debug_assert!(lo <= hi && (hi as usize) <= arena.len());
        Self { index, id, arena, lo, hi }
    }

    /// Identifier of the neighbor across each port, indexed by port.
    #[must_use]
    pub fn neighbor_ids(&self) -> &[u64] {
        &self.arena[self.lo as usize..self.hi as usize]
    }

    /// Degree of the node.
    #[must_use]
    pub fn degree(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// The port leading to the neighbor with identifier `id`, if any.
    #[must_use]
    pub fn port_of(&self, id: u64) -> Option<Port> {
        self.neighbor_ids().iter().position(|&x| x == id)
    }
}

/// Outgoing per-port FIFO queues, node-owned. Only the frozen reference
/// engine (`LegacyNetwork`, behind the `legacy-engine` feature) still
/// routes through this type.
///
/// Neither production engine uses it: the synchronous [`crate::Network`]
/// and the asynchronous executor ([`crate::asynch`]) both keep their
/// queues in the flat plane's engine-owned slabs (see `crate::plane`) so
/// that steady-state rounds perform no allocation.
///
/// Tracks its non-empty ports (sorted) so a delivery sweep costs
/// `O(active ports)` per round instead of `O(degree)`, and maintains a
/// running length so [`Outbox::queued`] — and with it quiescence checks —
/// is O(1) rather than an O(degree) recount.
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    queues: Vec<VecDeque<M>>,
    nonempty: Vec<Port>,
    len: usize,
}

// Without the `legacy-engine` feature no engine constructs an `Outbox`;
// it stays compiled (and unit-tested) as the fixture's queue type.
#[cfg_attr(not(feature = "legacy-engine"), allow(dead_code))]
impl<M> Outbox<M> {
    pub(crate) fn new(degree: usize) -> Self {
        Self {
            queues: (0..degree).map(|_| VecDeque::new()).collect(),
            nonempty: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, port: Port, msg: M) {
        if self.queues[port].is_empty() {
            let idx = self.nonempty.partition_point(|&p| p < port);
            self.nonempty.insert(idx, port);
        }
        self.queues[port].push_back(msg);
        self.len += 1;
    }

    pub(crate) fn pop(&mut self, port: Port) -> Option<M> {
        let msg = self.queues[port].pop_front();
        if msg.is_some() {
            self.len -= 1;
            if self.queues[port].is_empty() {
                if let Ok(idx) = self.nonempty.binary_search(&port) {
                    self.nonempty.remove(idx);
                }
            }
        }
        msg
    }

    /// Sorted list of ports with queued messages.
    pub(crate) fn nonempty_ports(&self) -> &[Port] {
        &self.nonempty
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.nonempty.is_empty()
    }

    /// Total queued messages. O(1): maintained on push/pop.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.len
    }
}

/// Where a [`Context`] routes outgoing messages: a node-owned [`Outbox`]
/// (the legacy reference engine, tests) or a port range inside a set of
/// flat slab-backed queues (the zero-allocation plane shared by the
/// synchronous and asynchronous engines).
#[derive(Debug)]
pub(crate) enum OutboxHandle<'a, M> {
    /// A node-owned queue set (the legacy fixture and tests).
    #[cfg_attr(not(feature = "legacy-engine"), allow(dead_code))]
    Owned(&'a mut Outbox<M>),
    /// A window into the flat plane: the node's ports live at
    /// `base..base + degree` within `queues`.
    Flat {
        /// The flat queue set owning this node's ports.
        queues: &'a mut crate::plane::PortQueues<M>,
        /// Local offset of the node's port 0 within the queue set.
        base: u32,
    },
}

impl<M: Message> OutboxHandle<'_, M> {
    #[inline]
    fn push(&mut self, port: Port, msg: M) {
        match self {
            OutboxHandle::Owned(outbox) => outbox.push(port, msg),
            OutboxHandle::Flat { queues, base } => queues.push(*base + port as u32, msg),
        }
    }
}

/// The per-round execution context handed to a protocol.
///
/// Borrow-wise this bundles the node's endpoint facts, its outbox and its
/// private RNG stream for the duration of one `init`/`step` call.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) endpoint: &'a Endpoint,
    pub(crate) round: Round,
    pub(crate) outbox: OutboxHandle<'a, M>,
    pub(crate) rng: &'a mut StdRng,
}

impl<M: Message> Context<'_, M> {
    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.endpoint.id
    }

    /// This node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.endpoint.degree()
    }

    /// The current round (0 during `init`).
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// Identifier of the neighbor across `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`.
    #[must_use]
    pub fn neighbor_id(&self, port: Port) -> u64 {
        self.endpoint.neighbor_ids()[port]
    }

    /// The port leading to neighbor `id`, if `id` is a neighbor.
    #[must_use]
    pub fn port_of(&self, id: u64) -> Option<Port> {
        self.endpoint.port_of(id)
    }

    /// Enqueues `msg` for the neighbor across `port`. Delivery obeys the
    /// CONGEST one-message-per-edge-per-round rule; queued messages are
    /// pipelined over subsequent rounds.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`.
    pub fn send(&mut self, port: Port, msg: M) {
        assert!(port < self.degree(), "send to port {port} but degree is {}", self.degree());
        self.outbox.push(port, msg);
    }

    /// Enqueues a copy of `msg` for every neighbor.
    pub fn broadcast(&mut self, msg: M) {
        for port in 0..self.degree() {
            self.outbox.push(port, msg.clone());
        }
    }

    /// This node's private RNG stream (deterministic per master seed and
    /// node; identical under sequential and parallel execution).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A distributed algorithm, instantiated once per node.
pub trait Protocol: Send {
    /// The message alphabet.
    type Msg: Message;
    /// The value each node exposes when the run ends.
    type Output;

    /// Called once before the first round. Typical use: local coin flips
    /// (the paper's sampling stage) and first-round sends.
    fn init(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called every round with the messages delivered this round, as
    /// `(port, message)` pairs ordered by port.
    fn step(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[(Port, Self::Msg)]);

    /// `true` when the node has no pending local work. The network
    /// declares a run *quiescent* when every node is idle and no message
    /// is queued or in flight.
    fn is_idle(&self) -> bool;

    /// Barrier hook: called on every node when the network reaches
    /// quiescence. Return `true` to resume execution (the node advanced to
    /// another phase), `false` to finish.
    ///
    /// This is the simulator's stand-in for the paper's §4.1 deterministic
    /// time-bound wrapper: in a real network each phase would run for a
    /// precomputed number of rounds; detecting "no more messages" lets the
    /// simulation take phase transitions without simulating the padding
    /// rounds. Metrics still count every *executed* round. Protocols whose
    /// phases self-synchronize can keep the default (`false`).
    fn on_quiescent(&mut self, ctx: &mut Context<'_, Self::Msg>) -> bool {
        let _ = ctx;
        false
    }

    /// Churn hook: the neighbor behind local `port` crashed (see
    /// [`FaultModel::Crash`](crate::FaultModel::Crash)). Until the
    /// matching [`Protocol::on_peer_up`], nothing sent on `port` will be
    /// delivered and nothing will arrive from it. Called at this node's
    /// current round; messages sent from the hook queue normally.
    /// Default: no reaction.
    fn on_peer_down(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        let _ = (ctx, port);
    }

    /// Churn hook: the crashed neighbor behind local `port` recovered —
    /// with empty queues and whatever protocol state it had at the
    /// crash. Default: no reaction.
    fn on_peer_up(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        let _ = (ctx, port);
    }

    /// Membership handoff hook: the neighbor behind local `port` joined
    /// the member set (see [`ChurnModel`](crate::ChurnModel)), opening a
    /// new epoch. The joiner's own protocol was initialized at its
    /// joining pulse; from now on, payloads sent on `port` are
    /// delivered. Called at this node's current pulse; messages sent
    /// from the hook queue normally. Default: no reaction.
    fn on_join(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        let _ = (ctx, port);
    }

    /// Membership handoff hook: the neighbor behind local `port` left
    /// the member set gracefully, opening a new epoch. Its queued and
    /// in-flight payloads are retired (each itemized as
    /// [`ChurnEvent::Retired`](crate::ChurnEvent::Retired)); nothing
    /// sent on `port` will be delivered anymore. Called at this node's
    /// current pulse. Default: no reaction.
    fn on_leave(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        let _ = (ctx, port);
    }

    /// The node's final output.
    fn output(&self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Ping;
    use crate::rng::node_rng;

    fn endpoint() -> Endpoint {
        Endpoint::new(0, 42, vec![7, 9, 11])
    }

    #[test]
    fn endpoint_lookup() {
        let e = endpoint();
        assert_eq!(e.degree(), 3);
        assert_eq!(e.port_of(9), Some(1));
        assert_eq!(e.port_of(8), None);
    }

    #[test]
    fn outbox_fifo_per_port() {
        let mut o: Outbox<Ping> = Outbox::new(2);
        assert!(o.is_empty());
        o.push(0, Ping);
        o.push(0, Ping);
        o.push(1, Ping);
        assert_eq!(o.queued(), 3);
        assert!(o.pop(0).is_some());
        assert!(o.pop(1).is_some());
        assert!(o.pop(1).is_none());
        assert_eq!(o.queued(), 1);
    }

    #[test]
    fn context_send_and_broadcast() {
        let e = endpoint();
        let mut outbox = Outbox::new(e.degree());
        let mut rng = node_rng(1, 0);
        let mut ctx = Context {
            endpoint: &e,
            round: 3,
            outbox: OutboxHandle::Owned(&mut outbox),
            rng: &mut rng,
        };
        assert_eq!(ctx.id(), 42);
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.neighbor_id(2), 11);
        ctx.send(1, Ping);
        ctx.broadcast(Ping);
        assert_eq!(outbox.queued(), 4);
    }

    #[test]
    #[should_panic(expected = "send to port")]
    fn send_out_of_range_panics() {
        let e = endpoint();
        let mut outbox = Outbox::new(e.degree());
        let mut rng = node_rng(1, 0);
        let mut ctx = Context {
            endpoint: &e,
            round: 0,
            outbox: OutboxHandle::Owned(&mut outbox),
            rng: &mut rng,
        };
        ctx.send(3, Ping);
    }
}
