//! The pluggable invariant suite the explorer checks on every state of
//! every schedule.
//!
//! An [`Invariant`] sees each explored state through the read-only
//! [`ExploreState`] view — pulse counters, protocol state, the payload
//! ledger, fault accounting — and returns `Err(detail)` to flag a
//! violation; the explorer attaches the branch's replayable
//! [`DelayTrace`](crate::explore::DelayTrace) and keeps going. Checks
//! must be **path-stateless** (`&self` methods): the DFS forks state at
//! every choice point, and a check that accumulated per-branch state
//! would silently mix branches.
//!
//! Two invariants ship with the explorer and run by default:
//!
//! * [`PulseSkew`] — synchronizer α's ±1 guarantee: neighboring nodes'
//!   pulse counters never differ by more than one, on *any* schedule.
//! * [`MaskingIdentity`] — the fault plane's accounting identity:
//!   `dropped_messages == retransmissions + lost` at every state (every
//!   wire-level drop is matched by exactly one retransmission; the
//!   difference is exactly the application payloads crashes cost).
//!
//! Deadlock-freedom and flat-engine equivalence are checked by the
//! explorer core itself (they need the run's budget and reference run,
//! not just the current state).

use crate::asynch::AsyncNetwork;
use crate::metrics::Metrics;
use crate::protocol::{Endpoint, Protocol};
use crate::session::{Driver, SyncOverhead};

/// A read-only view of one explored engine state, handed to
/// [`Invariant`] hooks.
pub struct ExploreState<'a, P: Protocol> {
    net: &'a AsyncNetwork<P>,
}

impl<'a, P: Protocol> ExploreState<'a, P> {
    pub(crate) fn new(net: &'a AsyncNetwork<P>) -> Self {
        Self { net }
    }

    /// Number of nodes in the network.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.net.node_count()
    }

    /// The pulse node `v` currently waits to execute (1-based).
    #[must_use]
    pub fn pulse(&self, v: usize) -> u64 {
        self.net.node_pulse(v)
    }

    /// Whether node `v` finished the current segment's pulse budget.
    #[must_use]
    pub fn is_done(&self, v: usize) -> bool {
        self.net.node_done(v)
    }

    /// Immutable per-node facts (index, ID, neighbor IDs).
    #[must_use]
    pub fn endpoint(&self, v: usize) -> &Endpoint {
        self.net.endpoint(v)
    }

    /// Node `v`'s protocol state.
    #[must_use]
    pub fn protocol(&self, v: usize) -> &P {
        self.net.protocol(v)
    }

    /// The payload-side ledger accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// The synchronizer/fault overhead accumulated so far.
    #[must_use]
    pub fn overhead(&self) -> &SyncOverhead {
        self.net.overhead()
    }

    /// Application payloads lost to faults so far.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.net.lost()
    }

    /// Events in flight on the timing wheel.
    #[must_use]
    pub fn pending_events(&self) -> u64 {
        self.net.pending_events()
    }
}

/// A property checked on every explored state and/or at the end of every
/// complete schedule. Implementations must be path-stateless — the
/// explorer forks execution at every choice point and calls the same
/// check instance on all branches.
pub trait Invariant<P: Protocol> {
    /// Stable label, used in [`Violation`](crate::explore::Violation)s.
    fn name(&self) -> &'static str;

    /// Checked after every explorer step (segment entry and each handled
    /// event). Return `Err(detail)` to flag a violation.
    ///
    /// # Errors
    ///
    /// `Err` marks the state as violating; the explorer records it with
    /// the branch's replayable trace and prunes the branch.
    fn on_state(&self, state: &ExploreState<'_, P>) -> Result<(), String> {
        let _ = state;
        Ok(())
    }

    /// Checked once per complete schedule, after the final segment
    /// settled (and, in phased mode, after its barrier).
    ///
    /// # Errors
    ///
    /// `Err` marks the completed schedule as violating.
    fn on_schedule_end(&self, state: &ExploreState<'_, P>) -> Result<(), String> {
        let _ = state;
        Ok(())
    }
}

/// Synchronizer α's ±1 pulse-skew guarantee, checked edge by edge: at no
/// reachable state do two neighbors' pulse counters differ by more than
/// one.
pub struct PulseSkew {
    edges: Vec<(usize, usize)>,
}

impl PulseSkew {
    /// Builds the check over `graph`'s edge set.
    #[must_use]
    pub fn new(graph: &graphs::Graph) -> Self {
        let mut edges = Vec::new();
        for u in 0..graph.node_count() {
            for &v in graph.neighbors(u) {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        Self { edges }
    }
}

impl<P: Protocol> Invariant<P> for PulseSkew {
    fn name(&self) -> &'static str {
        "pulse_skew"
    }

    fn on_state(&self, state: &ExploreState<'_, P>) -> Result<(), String> {
        for &(u, v) in &self.edges {
            let (pu, pv) = (state.pulse(u), state.pulse(v));
            if pu.abs_diff(pv) > 1 {
                return Err(format!(
                    "neighbors {u} (pulse {pu}) and {v} (pulse {pv}) drifted beyond ±1"
                ));
            }
        }
        Ok(())
    }
}

/// The fault plane's masking identity:
/// `dropped_messages == retransmissions + lost` at every reachable
/// state. Wire-level drops are always matched by a retransmission in the
/// same step; whatever remains is exactly the application loss crashes
/// cost.
pub struct MaskingIdentity;

impl<P: Protocol> Invariant<P> for MaskingIdentity {
    fn name(&self) -> &'static str {
        "masking_identity"
    }

    fn on_state(&self, state: &ExploreState<'_, P>) -> Result<(), String> {
        let o = state.overhead();
        let lost = state.lost();
        if o.dropped_messages != o.retransmissions + lost {
            return Err(format!(
                "dropped {} != retransmissions {} + lost {lost}",
                o.dropped_messages, o.retransmissions
            ));
        }
        Ok(())
    }

    fn on_schedule_end(&self, state: &ExploreState<'_, P>) -> Result<(), String> {
        <Self as Invariant<P>>::on_state(self, state)
    }
}
