//! The bounded-DFS schedule enumerator: every interleaving, exactly
//! once.
//!
//! # The branching model
//!
//! The asynchronous engine is deterministic *given its delay draws*:
//! once every per-send delay is fixed, the timing wheel's
//! `(arrival time, send order)` discipline fixes the entire delivery
//! order, and with it the whole execution. Exhausting the engine's
//! nondeterminism therefore reduces to exhausting the delay draws — the
//! explorer replaces the seeded sampler with a scripted
//! [`DelaySource`](crate::sched) and branches on **every draw within the
//! bound**.
//!
//! The unit of branching is a **step**:
//!
//! * the *entry step* — `AsyncNetwork::explore_begin`: protocol `init`s,
//!   the pulse-entry sweep, its sends' delay draws;
//! * an *event step* — `AsyncNetwork::explore_event`: pop the next wheel
//!   event, handle it (which may send more messages and draw more
//!   delays), drain the ready cascade.
//!
//! Within one step, the *number* of draws is choice-independent: a
//! chosen delay only decides **when** an already-composed message
//! arrives (delays are ≥ 1, so nothing scheduled inside a step is also
//! handled inside it), and drop decisions come from the fault stream,
//! not the delay stream. The enumerator exploits this: it first probes
//! the step with an empty script (draws pad to 1 — the probe *is* the
//! all-ones assignment) to learn the draw count `k`, then walks the
//! remaining `bound^k − 1` assignments odometer-style, forking the
//! cloned pre-step engine state for each. A debug assertion re-checks
//! `k` on every fork.
//!
//! # Convergence pruning
//!
//! After every step the engine state is fingerprinted
//! ([`super::fingerprint`]); a state already expanded is pruned (its
//! continuations were fully explored at first visit), counted in
//! [`ExploreReport::deduped`](crate::explore::ExploreReport::deduped).
//! Schedules are counted only when a walk actually reaches the end, so
//! [`ExploreReport::schedules`](crate::explore::ExploreReport::schedules)
//! is the number of *distinct executions walked end-to-end* through the
//! deduplicated state graph — deterministic because the odometer order
//! is.
//!
//! # No silent truncation
//!
//! The only cap is
//! [`Explore::limit_schedules`](crate::explore::Explore::limit_schedules),
//! and hitting it **panics**: an exploration that cannot finish must
//! fail loudly, never report partial coverage as exhaustive.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::asynch::AsyncNetwork;
use crate::metrics::Metrics;
use crate::protocol::Protocol;
use crate::session::Driver;

use super::checker::{ExploreState, Invariant};
use super::fingerprint::{audit_fingerprint, fingerprint};
use super::{DelayTrace, ExploreReport, Violation};

/// The flat-engine reference a completed schedule must reproduce.
pub(crate) struct FlatReference<O> {
    pub outputs: Vec<O>,
    pub metrics: Metrics,
}

/// One exploration's mutable machinery: visited-state table, invariant
/// suite, reference run, and the report under construction.
pub(crate) struct Dfs<P: Protocol> {
    /// The delay bound every draw branches within.
    pub bound: u64,
    /// Pulse budget per segment (one segment for a plain run; one per
    /// phase for a phased run).
    pub segments: Vec<u64>,
    /// Whether segments are [`PhasePlan`](crate::PhasePlan) phases, each
    /// closed by a quiescence barrier.
    pub phased: bool,
    /// Panic threshold on walked schedules.
    pub limit_schedules: u64,
    /// Invariants checked on every state / schedule end.
    pub checks: Vec<Box<dyn Invariant<P>>>,
    /// Flat-engine outputs + payload ledger, when cross-checking.
    pub reference: Option<FlatReference<P::Output>>,
    /// Whether convergence pruning is on (off = raw schedule tree).
    pub dedup: bool,
    /// Fingerprints already expanded.
    pub visited: HashSet<u64>,
    /// Audit side-table: primary fingerprint → independent FNV digest.
    pub audit: Option<HashMap<u64, u64>>,
    /// The report under construction.
    pub report: ExploreReport,
}

/// Advances `assign` to the next delay assignment in odometer order
/// (digits in `1..=bound`, least-significant first); returns `false`
/// after the last assignment (all digits at `bound`).
fn next_assignment(assign: &mut [u64], bound: u64) -> bool {
    for d in assign.iter_mut() {
        if *d < bound {
            *d += 1;
            return true;
        }
        *d = 1;
    }
    false
}

impl<P> Dfs<P>
where
    P: Protocol + Clone + Hash,
    P::Msg: Hash,
    P::Output: PartialEq + std::fmt::Debug,
{
    /// Runs the exhaustive exploration from a freshly built engine
    /// (scripted delay source installed, nothing executed yet).
    pub fn run(&mut self, net: AsyncNetwork<P>) {
        self.enter_segment(net, 0, 0);
    }

    /// Branches over the entry step of segment `seg`.
    fn enter_segment(&mut self, net: AsyncNetwork<P>, seg: usize, depth: usize) {
        let pulses = self.segments[seg];
        self.branch_step(net, depth, &|n| n.explore_begin(pulses), &|this, n, d| {
            this.after_step(n, seg, d);
        });
    }

    /// Branches over the next event step within segment `seg`. Only
    /// called with at least one event pending.
    fn branch_event(&mut self, net: AsyncNetwork<P>, seg: usize, depth: usize) {
        self.branch_step(
            net,
            depth,
            &|n| {
                let progressed = n.explore_event();
                debug_assert!(progressed, "branch_event requires a pending event");
            },
            &|this, n, d| {
                this.after_step(n, seg, d);
            },
        );
    }

    /// The choice-point engine: probes `run` once with the all-ones
    /// script to learn the step's draw count, then forks the pre-step
    /// state over every remaining delay assignment. `then` continues
    /// each branch.
    fn branch_step(
        &mut self,
        net: AsyncNetwork<P>,
        depth: usize,
        run: &dyn Fn(&mut AsyncNetwork<P>),
        then: &dyn Fn(&mut Self, AsyncNetwork<P>, usize),
    ) {
        if self.bound == 1 {
            // Every draw is forced to 1: the schedule space is a single
            // path and no pre-step state needs to survive.
            let mut only = net;
            only.delays_mut().begin_step(&[]);
            run(&mut only);
            then(self, only, depth + 1);
            return;
        }
        // Probe with the empty script (all draws pad to 1): learns the
        // step's draw count AND doubles as the first assignment.
        let mut probe = net.clone();
        probe.delays_mut().begin_step(&[]);
        run(&mut probe);
        let draws = probe.delays().step_draws() as usize;
        then(self, probe, depth + 1);
        if draws == 0 {
            return;
        }
        let mut assign = vec![1u64; draws];
        while next_assignment(&mut assign, self.bound) {
            let mut fork = net.clone();
            fork.delays_mut().begin_step(&assign);
            run(&mut fork);
            debug_assert_eq!(
                fork.delays().step_draws() as usize,
                draws,
                "a step's draw count must be choice-independent"
            );
            then(self, fork, depth + 1);
        }
    }

    /// Post-step processing: invariants, fingerprint dedup, and the next
    /// branch point (another event, or the segment boundary).
    fn after_step(&mut self, net: AsyncNetwork<P>, seg: usize, depth: usize) {
        self.report.max_depth = self.report.max_depth.max(depth as u64);
        if let Some(failed) = self.check_states(&net, false) {
            self.violate(failed.0, failed.1, &net);
            return;
        }
        let fp = fingerprint(&net);
        if let Some(audit) = &mut self.audit {
            let fnv = audit_fingerprint(&net);
            match audit.get(&fp) {
                Some(&seen) if seen != fnv => self.report.fingerprint_collisions += 1,
                Some(_) => {}
                None => {
                    audit.insert(fp, fnv);
                }
            }
        }
        if self.dedup && !self.visited.insert(fp) {
            // Converged with an already-expanded branch: its entire
            // continuation was walked at first visit.
            self.report.deduped += 1;
            return;
        }
        self.report.states += 1;
        if net.pending_events() > 0 {
            self.branch_event(net, seg, depth);
        } else {
            self.segment_end(net, seg, depth);
        }
    }

    /// The wheel drained: the segment either completed (every node at
    /// the budget) or deadlocked. Completion settles the ledger, takes
    /// the phase barrier if phased, and moves to the next segment or the
    /// schedule end.
    fn segment_end(&mut self, mut net: AsyncNetwork<P>, seg: usize, depth: usize) {
        if !net.explore_all_done() {
            let stuck: Vec<usize> = (0..net.node_count()).filter(|&v| !net.node_done(v)).collect();
            self.violate(
                "deadlock",
                format!("wheel empty with nodes {stuck:?} short of the pulse budget"),
                &net,
            );
            return;
        }
        net.explore_settle();
        let last = seg + 1 == self.segments.len();
        if self.phased {
            // Mirror `run_phases`: every phase closes with a barrier; a
            // barrier that retires every node ends the run early. The
            // barrier never draws delays (it only queues application
            // messages for the next phase's entry sweep), so it is not a
            // choice point.
            let live = net.barrier(&mut ());
            if !live || last {
                self.finish_schedule(net);
            } else {
                self.enter_segment(net, seg + 1, depth);
            }
        } else if last {
            self.finish_schedule(net);
        } else {
            self.enter_segment(net, seg + 1, depth);
        }
    }

    /// A complete schedule: count it, enforce the explosion valve, and
    /// run the end-of-schedule checks (flat-engine equivalence plus
    /// every invariant's `on_schedule_end`).
    fn finish_schedule(&mut self, net: AsyncNetwork<P>) {
        self.report.schedules += 1;
        assert!(
            self.report.schedules <= self.limit_schedules,
            "exploration exceeded limit_schedules = {}: the schedule space is larger than \
             budgeted — shrink the graph/bound/budget or raise the limit explicitly \
             (partial exploration is never reported as exhaustive)",
            self.limit_schedules
        );
        if let Some(reference) = &self.reference {
            if let Some(detail) = flat_mismatch(reference, &net) {
                self.violate("flat_equivalence", detail, &net);
                return;
            }
        }
        if let Some(failed) = self.check_states(&net, true) {
            self.violate(failed.0, failed.1, &net);
        }
    }

    /// Runs the invariant suite on `net`'s current state; `end` selects
    /// the `on_schedule_end` hooks. Returns the first failure.
    fn check_states(&self, net: &AsyncNetwork<P>, end: bool) -> Option<(&'static str, String)> {
        let state = ExploreState::new(net);
        for check in &self.checks {
            let result = if end { check.on_schedule_end(&state) } else { check.on_state(&state) };
            if let Err(detail) = result {
                return Some((check.name(), detail));
            }
        }
        None
    }

    /// Records a violation with the branch's replayable trace.
    fn violate(&mut self, invariant: &'static str, detail: String, net: &AsyncNetwork<P>) {
        let trace = DelayTrace::new(self.bound, net.delays().tape().to_vec());
        self.report.violations.push(Violation { invariant, detail, trace });
    }
}

/// Compares a completed schedule's outputs and payload ledger against
/// the flat reference; `None` means they agree. The per-round histogram
/// is compared with trailing empty rounds stripped — the synchronous
/// engine stops at quiescence while α executes its full pulse budget,
/// and trailing silence is not a payload discrepancy.
fn flat_mismatch<P>(reference: &FlatReference<P::Output>, net: &AsyncNetwork<P>) -> Option<String>
where
    P: Protocol,
    P::Output: PartialEq + std::fmt::Debug,
{
    let outputs = net.outputs();
    if outputs != reference.outputs {
        return Some(format!(
            "outputs diverged from the flat engine: {outputs:?} vs {:?}",
            reference.outputs
        ));
    }
    let (got, want) = (net.metrics(), &reference.metrics);
    if got.messages != want.messages
        || got.total_bits != want.total_bits
        || got.max_message_bits != want.max_message_bits
        || got.barriers != want.barriers
    {
        return Some(format!("payload metrics diverged from the flat engine: {got:?} vs {want:?}"));
    }
    let trim = |h: &[u64]| h.iter().rposition(|&m| m != 0).map_or(0, |i| i + 1);
    let (gh, wh) = (&got.messages_per_round, &want.messages_per_round);
    if gh[..trim(gh)] != wh[..trim(wh)] {
        return Some(format!(
            "per-round payload histogram diverged from the flat engine: {gh:?} vs {wh:?}"
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::next_assignment;

    #[test]
    fn odometer_enumerates_every_assignment_once() {
        let mut assign = vec![1u64; 3];
        let mut seen = vec![assign.clone()];
        while next_assignment(&mut assign, 3) {
            seen.push(assign.clone());
        }
        assert_eq!(seen.len(), 27, "3^3 assignments");
        let mut unique = seen.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 27);
        assert!(seen.iter().all(|a| a.iter().all(|&d| (1..=3).contains(&d))));
        assert_eq!(seen.first().unwrap(), &vec![1, 1, 1]);
        assert_eq!(seen.last().unwrap(), &vec![3, 3, 3]);
    }

    #[test]
    fn empty_assignment_has_exactly_one_value() {
        let mut assign: Vec<u64> = Vec::new();
        assert!(!next_assignment(&mut assign, 5));
    }
}
