//! Canonical state fingerprints: how the explorer knows two branches
//! converged.
//!
//! Interleavings routinely reconverge — two orders of independent
//! deliveries commute — and enumerating both continuations doubles work
//! for nothing. The explorer therefore hashes the engine's complete
//! observable state after every step and prunes branches whose
//! fingerprint it has already expanded (the continuation was fully
//! explored at first visit, so pruning loses no schedules' *behavior*,
//! only their re-walk).
//!
//! # What goes into the hash
//!
//! The sweep is [`AsyncNetwork::explore_hash`]: pulse counters, `done`
//! flags, protocol state (`P: Hash`), per-node RNG state, queued
//! application messages, in-flight wheel events, staged inboxes, the
//! synchronizer's gate state, the fault plane's sampler/down/loss state,
//! and the payload ledger (metrics, per-pulse deltas, overhead
//! counters).
//!
//! # What stays out, and why
//!
//! The fingerprint must equate states whose **futures** are
//! indistinguishable, so everything that merely records the past — or
//! shifts uniformly with virtual time — is excluded:
//!
//! * **absolute virtual time** (`SyncOverhead::virtual_time`, the wheel
//!   cursor): two branches can reach the same configuration at
//!   different absolute times; pending wheel events hash at
//!   cursor-*relative* arrival times instead,
//! * **the delay tape and script cursors**: pure history,
//! * **the fault event log**: streamed-out diagnostics (cleared per
//!   step during exploration).
//!
//! Time-shift invariance is also why the explorer only admits
//! [`FaultModel::None`] and [`FaultModel::Drop`]: their fault streams
//! are position-indexed (merging two time-shifted branches keeps the
//! same future), while `LinkFlap`'s drop decisions read absolute event
//! time and `Crash` windows read pulse *and* wall schedules whose
//! diagnostics depend on when they fire.
//!
//! # Collision auditing
//!
//! A 64-bit fingerprint can collide in principle. The sweep feeds any
//! [`std::hash::Hasher`], so audit mode
//! ([`Explore::audit_fingerprints`](crate::explore::Explore::audit_fingerprints))
//! re-hashes every state with an independent FNV-1a and records, per
//! SipHash fingerprint, the FNV digest seen first; a later state that
//! matches on SipHash but differs on FNV is a detected collision
//! (counted in [`ExploreReport::fingerprint_collisions`]). Two
//! independent 64-bit hashes disagreeing on equality is overwhelming
//! evidence of a real collision, not a hash artifact.
//!
//! [`AsyncNetwork::explore_hash`]: crate::AsyncNetwork
//! [`FaultModel::None`]: crate::FaultModel::None
//! [`FaultModel::Drop`]: crate::FaultModel::Drop
//! [`ExploreReport::fingerprint_collisions`]: crate::explore::ExploreReport::fingerprint_collisions

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::asynch::AsyncNetwork;
use crate::protocol::Protocol;

/// The primary fingerprint: the full state sweep through the standard
/// library's `DefaultHasher` (SipHash with fixed zero keys — stable
/// within a build, which is all determinism of the exploration needs).
pub(crate) fn fingerprint<P>(net: &AsyncNetwork<P>) -> u64
where
    P: Protocol + Hash,
    P::Msg: Hash,
{
    let mut h = DefaultHasher::new();
    net.explore_hash(&mut h);
    h.finish()
}

/// The audit fingerprint: the same sweep through an independent FNV-1a.
pub(crate) fn audit_fingerprint<P>(net: &AsyncNetwork<P>) -> u64
where
    P: Protocol + Hash,
    P::Msg: Hash,
{
    let mut h = Fnv1a::new();
    net.explore_hash(&mut h);
    h.finish()
}

/// FNV-1a, 64-bit: structurally unrelated to SipHash, which is the
/// point — a SipHash collision between distinct states will not also be
/// an FNV collision except with ~2⁻⁶⁴ probability.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }
}

impl std::hash::Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let digest = |s: &str| {
            let mut h = Fnv1a::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }
}
