//! `congest::explore` — the exhaustive interleaving explorer: a model
//! checker for the asynchronous event plane.
//!
//! Sampled asynchronous runs ([`Engine::Async`](crate::Engine::Async))
//! witness *one* delivery schedule per seed. This module checks **all of
//! them**: on tiny graphs it enumerates every delivery interleaving the
//! delay bound admits — replacing the seeded delay sampler with a
//! scripted choice source and branching the execution on every draw —
//! and runs a pluggable invariant suite on every reachable state of
//! every schedule:
//!
//! * synchronizer α's **±1 pulse-skew** bound ([`PulseSkew`]),
//! * **output and payload-[`Metrics`](crate::Metrics) equivalence**
//!   against the flat synchronous engine (the Awerbuch reduction, on
//!   *every* schedule rather than one sample per seed),
//! * **deadlock freedom** (the wheel never drains with a node short of
//!   its pulse budget),
//! * the fault plane's **masking identity**
//!   `dropped == retransmissions + lost` ([`MaskingIdentity`]).
//!
//! Branches that reconverge — independent deliveries commute — are
//! pruned by a canonical state fingerprint (see `fingerprint.rs`), so the
//! walk covers the distinct-state graph, not the raw schedule tree.
//!
//! # From violation to regression test
//!
//! Every [`Violation`] carries the branch's [`DelayTrace`]: the exact
//! per-send delay sequence that produced the counterexample.
//! [`DelayTrace::register`] turns it into a
//! [`DelayModel::Replay`](crate::DelayModel) accepted by the
//! ordinary [`Engine::Async`](crate::Engine::Async) — so a failing
//! exploration becomes a one-line regression test, reproducing the
//! schedule bit for bit through the production engine. Traces serialize
//! to a committable text form ([`DelayTrace::to_text`]).
//!
//! # Example: exhaust a flood on a 3-node path
//!
//! ```
//! use congest::explore::Explore;
//! use congest::{Context, Message, Port, Protocol};
//!
//! #[derive(Clone, Debug, Hash)]
//! struct Token;
//! impl Message for Token {
//!     fn bit_size(&self) -> usize { 1 }
//! }
//!
//! #[derive(Clone, Hash)]
//! struct Echo { seen: bool, source: bool }
//! impl Protocol for Echo {
//!     type Msg = Token;
//!     type Output = bool;
//!     fn init(&mut self, ctx: &mut Context<'_, Token>) {
//!         if self.source { ctx.broadcast(Token); }
//!     }
//!     fn step(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(Port, Token)]) {
//!         if !inbox.is_empty() && !self.seen {
//!             self.seen = true;
//!             ctx.broadcast(Token);
//!         }
//!     }
//!     fn is_idle(&self) -> bool { true }
//!     fn output(&self) -> bool { self.seen || self.source }
//! }
//!
//! let mut b = graphs::GraphBuilder::new(3);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! let g = b.build();
//!
//! let report = Explore::on(&g)
//!     .seed(7)
//!     .bound(2)       // branch every delay over {1, 2}
//!     .budget(2)      // two pulses reach the whole path
//!     .run_with(|e| Echo { seen: false, source: e.index == 0 });
//! assert!(report.violations.is_empty(), "{:?}", report.violations);
//! assert!(report.schedules >= 1 && report.states > report.schedules);
//! ```
//!
//! # Scope and cost
//!
//! The schedule space is exponential in the number of delay draws
//! (`bound^draws` raw assignments before pruning): this is a tool for
//! `n ≤ 4` graphs, bounds ≤ 2, and one or two pulses of budget — model
//! checking, not simulation. The [`Explore::limit_schedules`] valve
//! **panics** when exceeded rather than silently truncating, so an
//! exploration that finishes is always exhaustive. Faults are limited
//! to [`FaultModel::None`] and [`FaultModel::Drop`] (the fingerprint's
//! time-shift invariance argument breaks for time-indexed fault
//! streams; see `fingerprint.rs`).

pub mod checker;
pub(crate) mod fingerprint;
mod schedule;
mod trace;

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use graphs::Graph;

use crate::asynch::AsyncNetwork;
use crate::network::IdAssignment;
use crate::protocol::{Endpoint, Protocol};
use crate::sched::{ChurnModel, DelayModel, DelaySource, FaultModel, PhasePlan, SyncModel};
use crate::session::{Driver, RunLimits, RunReport, Session};

pub use checker::{ExploreState, Invariant, MaskingIdentity, PulseSkew};
pub use trace::{DelayTrace, TraceParseError};

use schedule::{Dfs, FlatReference};

/// Builder for one exhaustive exploration. Start at [`Explore::on`],
/// configure the envelope (delay bound, synchronizer, fault model,
/// pulse budget or phase plan), then [`Explore::run_with`] or
/// [`Explore::run_checked`].
#[derive(Clone, Debug)]
pub struct Explore<'g> {
    graph: &'g Graph,
    seed: u64,
    bound: u64,
    sync: SyncModel,
    fault: FaultModel,
    churn: ChurnModel,
    budget: u64,
    plan: Option<PhasePlan>,
    limit_schedules: u64,
    audit_fingerprints: bool,
    check_flat: bool,
    dedup: bool,
}

impl<'g> Explore<'g> {
    /// An exploration over `graph` with defaults: seed 0, bound 1 (a
    /// single schedule — useful as a determinism pin), synchronizer α,
    /// no faults, a one-pulse budget, flat cross-checking on.
    #[must_use]
    pub fn on(graph: &'g Graph) -> Self {
        Self {
            graph,
            seed: 0,
            bound: 1,
            sync: SyncModel::Alpha,
            fault: FaultModel::None,
            churn: ChurnModel::None,
            budget: 1,
            plan: None,
            limit_schedules: 1_000_000,
            audit_fingerprints: false,
            check_flat: true,
            dedup: true,
        }
    }

    /// Master seed: fixes node IDs, per-node RNG streams, and the fault
    /// stream — everything *except* delays, which the explorer owns.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The delay bound: every per-send delay branches over `1..=bound`.
    /// The schedule space grows as `bound^draws`; 2 is already
    /// exhaustive for reordering (any relative order two in-flight
    /// messages can take, some assignment takes).
    #[must_use]
    pub fn bound(mut self, bound: u64) -> Self {
        assert!(bound >= 1, "explore: bound must be at least 1");
        self.bound = bound;
        self
    }

    /// The synchronizer gating pulses.
    #[must_use]
    pub fn sync(mut self, sync: SyncModel) -> Self {
        self.sync = sync;
        self
    }

    /// What the network breaks. Only [`FaultModel::None`] and
    /// [`FaultModel::Drop`] are explorable (see `fingerprint.rs`).
    #[must_use]
    pub fn fault(mut self, fault: FaultModel) -> Self {
        self.fault = fault;
        self
    }

    /// How the member set changes. Only [`ChurnModel::None`] is
    /// explorable: membership schedules are pulse-indexed (like
    /// [`FaultModel::Crash`]), which breaks the fingerprint sweep's
    /// time-shift invariance. The setter exists so a scenario struct can
    /// be passed through verbatim — [`Explore::run_with`] panics on
    /// anything but `None`.
    #[must_use]
    pub fn churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Pulse budget of a plain (unphased) exploration.
    #[must_use]
    pub fn budget(mut self, pulses: u64) -> Self {
        assert!(pulses >= 1, "explore: budget must be at least 1 pulse");
        self.budget = pulses;
        self
    }

    /// Explore a phased run instead: each phase drives its pulse budget
    /// and closes with the scheduled quiescence barrier, exactly like
    /// [`SessionDriver::run_phased`](crate::SessionDriver::run_phased).
    /// Every phase needs at least one pulse.
    #[must_use]
    pub fn plan(mut self, plan: PhasePlan) -> Self {
        assert!(!plan.is_empty(), "explore: a phase plan needs at least one phase");
        assert!(
            plan.phases().iter().all(|p| p.pulses >= 1),
            "explore: every phase needs at least one pulse"
        );
        self.plan = Some(plan);
        self
    }

    /// The explosion valve: the exploration **panics** when it walks
    /// more complete schedules than this (default 1,000,000). A partial
    /// exploration is never reported as exhaustive.
    #[must_use]
    pub fn limit_schedules(mut self, limit: u64) -> Self {
        assert!(limit >= 1, "explore: the schedule limit must be positive");
        self.limit_schedules = limit;
        self
    }

    /// Re-hash every state with an independent FNV-1a and count primary-
    /// fingerprint collisions in
    /// [`ExploreReport::fingerprint_collisions`] (default off; costs one
    /// extra state sweep per state).
    #[must_use]
    pub fn audit_fingerprints(mut self, audit: bool) -> Self {
        self.audit_fingerprints = audit;
        self
    }

    /// Toggle convergence pruning (default on). With pruning off the
    /// walk covers the **raw schedule tree** — every complete delay
    /// assignment is walked end-to-end and counted in
    /// [`ExploreReport::schedules`], revisits and all. Exponentially
    /// more expensive; useful for counting raw interleavings and for
    /// exercising the [`Explore::limit_schedules`] valve.
    #[must_use]
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Toggle the flat-engine cross-check (default on): every completed
    /// schedule's outputs and payload ledger must match a synchronous
    /// reference run with the same seed. Turn off for protocols whose
    /// phased reference would not quiesce under default limits.
    #[must_use]
    pub fn check_flat(mut self, check: bool) -> Self {
        self.check_flat = check;
        self
    }

    /// Runs the exploration with the default invariant suite
    /// ([`PulseSkew`], [`MaskingIdentity`], deadlock freedom, and — when
    /// [`Explore::check_flat`] is on — flat-engine equivalence).
    ///
    /// # Panics
    ///
    /// Panics on an unexplorable fault model, or when the walk exceeds
    /// [`Explore::limit_schedules`].
    pub fn run_with<P, F>(self, factory: F) -> ExploreReport
    where
        P: Protocol + Clone + Hash,
        P::Msg: Hash,
        P::Output: PartialEq + std::fmt::Debug,
        F: FnMut(&Endpoint) -> P,
    {
        self.run_checked(factory, Vec::new())
    }

    /// Runs the exploration with the default suite plus `extra`
    /// invariants (checked on every state and at every schedule end).
    ///
    /// # Panics
    ///
    /// Panics on an unexplorable fault model, or when the walk exceeds
    /// [`Explore::limit_schedules`].
    pub fn run_checked<P, F>(
        self,
        mut factory: F,
        extra: Vec<Box<dyn Invariant<P>>>,
    ) -> ExploreReport
    where
        P: Protocol + Clone + Hash,
        P::Msg: Hash,
        P::Output: PartialEq + std::fmt::Debug,
        F: FnMut(&Endpoint) -> P,
    {
        assert!(
            matches!(self.fault, FaultModel::None | FaultModel::Drop { .. }),
            "explore: only FaultModel::None and FaultModel::Drop are explorable \
             (time-indexed fault streams break fingerprint time-shift invariance)"
        );
        assert!(
            self.churn.is_none(),
            "explore: only ChurnModel::None is explorable (pulse-indexed membership \
             schedules break fingerprint time-shift invariance)"
        );
        let segments: Vec<u64> = match &self.plan {
            Some(plan) => plan.phases().iter().map(|p| p.pulses).collect(),
            None => vec![self.budget],
        };

        // The synchronous reference every completed schedule must
        // reproduce. Phased explorations compare against the flat
        // engine's own quiescence-barrier staging (default limits), the
        // same ground truth the engine-equivalence suite uses.
        let reference = self.check_flat.then(|| {
            let session = Session::on(self.graph).seed(self.seed);
            let (outputs, report) = match &self.plan {
                Some(_) => session.run_with(&mut factory),
                None => session.limits(RunLimits::rounds(self.budget)).run_with(&mut factory),
            };
            FlatReference { outputs, metrics: report.metrics }
        });

        // Build the engine on the nominal uniform model (correct wheel
        // and retransmission-timeout sizing for the bound), then swap in
        // the scripted choice source the DFS feeds.
        let mut net = AsyncNetwork::build_with(
            self.graph,
            self.seed,
            DelayModel::Uniform { max_delay: self.bound },
            self.sync,
            self.fault,
            ChurnModel::None,
            IdAssignment::Hashed,
            factory,
        );
        *net.delays_mut() = DelaySource::script(self.bound);

        let mut checks: Vec<Box<dyn Invariant<P>>> =
            vec![Box::new(PulseSkew::new(self.graph)), Box::new(MaskingIdentity)];
        checks.extend(extra);

        let mut dfs = Dfs {
            bound: self.bound,
            segments,
            phased: self.plan.is_some(),
            limit_schedules: self.limit_schedules,
            checks,
            reference,
            dedup: self.dedup,
            visited: HashSet::new(),
            audit: self.audit_fingerprints.then(HashMap::new),
            report: ExploreReport::default(),
        };
        dfs.run(net);
        dfs.report
    }
}

/// Runs [`Engine::Async`](crate::Engine::Async) for `limits` pulses with
/// every realized delay draw recorded, returning the outputs, the run
/// report, and the run's [`DelayTrace`].
///
/// Registering the returned trace
/// ([`DelayTrace::register`] → [`DelayModel::Replay`](crate::DelayModel))
/// and re-running with the same `(graph, seed, sync, fault, limits)`
/// reproduces the run **bit for bit** — outputs, payload
/// [`Metrics`](crate::Metrics), and [`SyncOverhead`](crate::SyncOverhead)
/// included — because the engine is deterministic given its seed and its
/// delay draws. This is the bridge between sampled runs and replayable
/// schedules: any seed-found behavior can be frozen into a trace.
///
/// # Panics
///
/// Panics where [`AsyncNetwork::build_with`] does (malformed delay or
/// fault model, ID collision, port-space overflow).
pub fn record_run<P, F>(
    graph: &Graph,
    seed: u64,
    delay: DelayModel,
    sync: SyncModel,
    fault: FaultModel,
    limits: RunLimits,
    factory: F,
) -> (Vec<P::Output>, RunReport, DelayTrace)
where
    P: Protocol,
    F: FnMut(&Endpoint) -> P,
{
    let mut net: AsyncNetwork<P> = AsyncNetwork::build_with(
        graph,
        seed,
        delay,
        sync,
        fault,
        ChurnModel::None,
        IdAssignment::Hashed,
        factory,
    );
    net.delays_mut().record();
    let report = net.drive(limits, &mut ());
    // The trace's bound is the *compiled* bound: replay sizes its wheel
    // and retransmission timeout off it, so it must match the recorded
    // run's sizing exactly.
    let trace = DelayTrace::new(net.delays().compiled_bound(), net.delays().tape().to_vec());
    (net.outputs(), report, trace)
}

/// What an exploration covered, and what it found.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Distinct states expanded (post-step fingerprints first seen).
    pub states: u64,
    /// Complete schedules walked end-to-end through the deduplicated
    /// state graph.
    pub schedules: u64,
    /// Branches pruned at an already-expanded fingerprint.
    pub deduped: u64,
    /// Deepest step count reached on any branch.
    pub max_depth: u64,
    /// Primary-fingerprint collisions detected by the independent audit
    /// hash (always 0 unless [`Explore::audit_fingerprints`] is on; a
    /// nonzero count means 64-bit dedup equated distinct states).
    pub fingerprint_collisions: u64,
    /// Invariant violations, each with its replayable counterexample.
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// `true` when the exploration found no violations and no
    /// fingerprint collisions.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.fingerprint_collisions == 0
    }
}

/// One invariant violation: which check failed, why, and the exact delay
/// schedule that produced it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The failing check's [`Invariant::name`].
    pub invariant: &'static str,
    /// Human-readable failure description from the check.
    pub detail: String,
    /// The branch's per-send delay record: register it as a
    /// [`DelayModel::Replay`](crate::DelayModel) to reproduce
    /// the counterexample through [`Engine::Async`](crate::Engine::Async)
    /// bit for bit.
    pub trace: DelayTrace,
}

#[cfg(test)]
mod tests {
    use super::fingerprint::fingerprint;
    use super::*;
    use crate::message::Message;
    use crate::protocol::{Context, Port};
    use crate::session::Engine;
    use graphs::GraphBuilder;

    const SYNC_MODELS: [SyncModel; 2] = [SyncModel::Alpha, SyncModel::BatchedAlpha];

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge(i - 1, i);
        }
        b.build()
    }

    fn star(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge(0, i);
        }
        b.build()
    }

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[derive(Clone, Debug, Hash)]
    struct Rumor;
    impl Message for Rumor {
        fn bit_size(&self) -> usize {
            1
        }
    }

    /// The canonical flooding protocol, explorer-compatible (Hash).
    #[derive(Clone, Debug, Hash)]
    struct Flood {
        is_source: bool,
        heard_at: Option<u64>,
        forwarded: bool,
    }

    impl Protocol for Flood {
        type Msg = Rumor;
        type Output = Option<u64>;
        fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
            if self.is_source {
                self.heard_at = Some(0);
                self.forwarded = true;
                ctx.broadcast(Rumor);
            }
        }
        fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
            if !inbox.is_empty() && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round());
                if !self.forwarded {
                    self.forwarded = true;
                    ctx.broadcast(Rumor);
                }
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> Option<u64> {
            self.heard_at
        }
    }

    fn make_flood(e: &Endpoint) -> Flood {
        Flood { is_source: e.index == 0, heard_at: None, forwarded: false }
    }

    /// Max-gossip: every node broadcasts the largest value it has seen,
    /// every pulse it learns something new.
    #[derive(Clone, Debug, Hash)]
    struct Gossip {
        best: u64,
    }

    #[derive(Clone, Debug, Hash)]
    struct Word(u64);
    impl Message for Word {
        fn bit_size(&self) -> usize {
            8
        }
    }

    impl Protocol for Gossip {
        type Msg = Word;
        type Output = u64;
        fn init(&mut self, ctx: &mut Context<'_, Word>) {
            ctx.broadcast(Word(self.best));
        }
        fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
            let seen = inbox.iter().map(|&(_, Word(w))| w).max();
            if let Some(w) = seen {
                if w > self.best {
                    self.best = w;
                    ctx.broadcast(Word(w));
                }
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> u64 {
            self.best
        }
    }

    fn make_gossip(e: &Endpoint) -> Gossip {
        Gossip { best: (e.index as u64 + 1) * 10 }
    }

    /// Logs the inbox arrival order — the most order-sensitive protocol
    /// possible, used to prove delivery order cannot leak through the
    /// per-pulse inbox.
    #[derive(Clone, Debug, Hash)]
    struct ArrivalLog {
        log: Vec<usize>,
    }

    impl Protocol for ArrivalLog {
        type Msg = Rumor;
        type Output = Vec<usize>;
        fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
            ctx.broadcast(Rumor);
        }
        fn step(&mut self, _ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
            for &(port, _) in inbox {
                self.log.push(port);
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> Vec<usize> {
            self.log.clone()
        }
    }

    /// The acceptance pin: flood on a 3-node path at bound 1 is a single
    /// schedule with a stable, asserted state count and zero violations,
    /// across both synchronizers and {None, Drop}.
    #[test]
    fn flood_on_a_path_at_bound_one_is_one_clean_schedule() {
        let g = path(3);
        let mut counts = Vec::new();
        for sync in SYNC_MODELS {
            for fault in [FaultModel::None, FaultModel::Drop { p_millis: 200 }] {
                let report = Explore::on(&g)
                    .seed(11)
                    .bound(1)
                    .budget(2)
                    .sync(sync)
                    .fault(fault)
                    .run_with(make_flood);
                assert!(report.is_clean(), "{sync:?} {fault:?}: {:?}", report.violations);
                assert_eq!(report.schedules, 1, "bound 1 admits exactly one schedule");
                assert!(report.states > 0 && report.deduped == 0);
                counts.push((report.states, report.max_depth));
            }
        }
        // Determinism: the same exploration re-run lands on identical
        // counts.
        for sync in SYNC_MODELS {
            for fault in [FaultModel::None, FaultModel::Drop { p_millis: 200 }] {
                let report = Explore::on(&g)
                    .seed(11)
                    .bound(1)
                    .budget(2)
                    .sync(sync)
                    .fault(fault)
                    .run_with(make_flood);
                let expect = counts.remove(0);
                assert_eq!((report.states, report.max_depth), expect, "{sync:?} {fault:?}");
            }
        }
    }

    /// The tentpole matrix: flood and gossip exhausted on paths, stars
    /// and triangles (n ≤ 4) at bound 2, under both synchronizers and
    /// both explorable fault models — every schedule clean.
    #[test]
    fn tiny_graph_matrix_is_clean_on_every_schedule() {
        let graphs: [(&str, Graph); 3] =
            [("path3", path(3)), ("star4", star(4)), ("triangle", triangle())];
        for (name, g) in &graphs {
            for sync in SYNC_MODELS {
                for fault in [FaultModel::None, FaultModel::Drop { p_millis: 250 }] {
                    let report = Explore::on(g)
                        .seed(5)
                        .bound(2)
                        .budget(1)
                        .sync(sync)
                        .fault(fault)
                        .run_with(make_flood);
                    assert!(
                        report.is_clean(),
                        "flood/{name}/{sync:?}/{fault:?}: {:?}",
                        report.violations
                    );
                    assert!(report.deduped > 0, "bound 2 must actually branch ({name})");
                }
            }
        }
        // Gossip is heavier (every node sends every pulse); exhaust it
        // on the 3-node path under both synchronizers.
        for sync in SYNC_MODELS {
            for fault in [FaultModel::None, FaultModel::Drop { p_millis: 250 }] {
                let report = Explore::on(&path(3))
                    .seed(6)
                    .bound(2)
                    .budget(1)
                    .sync(sync)
                    .fault(fault)
                    .run_with(make_gossip);
                assert!(report.is_clean(), "gossip/{sync:?}/{fault:?}: {:?}", report.violations);
                assert!(report.deduped > 0);
            }
        }
    }

    /// Deeper budgets reconverge heavily: the dedup table must actually
    /// prune, or tiny graphs would already be intractable.
    #[test]
    fn convergent_branches_are_deduplicated() {
        let report = Explore::on(&path(3)).seed(3).bound(2).budget(2).run_with(make_flood);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.deduped > 0, "a two-pulse bound-2 flood must reconverge somewhere");
        // Confluence: every interleaving converges to the same end
        // state, so the deduplicated walk completes exactly one
        // distinct schedule.
        assert_eq!(report.schedules, 1);
    }

    /// A staged protocol for phased exploration: wave w broadcasts at
    /// phase w, nodes record (wave, pulse) pairs.
    #[derive(Clone, Debug, Hash)]
    struct Staged {
        wave: u32,
        waves: u32,
        heard: Vec<(u32, u64)>,
    }

    #[derive(Clone, Debug, Hash)]
    struct Tagged(u32);
    impl Message for Tagged {
        fn bit_size(&self) -> usize {
            8
        }
    }

    impl Protocol for Staged {
        type Msg = Tagged;
        type Output = Vec<(u32, u64)>;
        fn init(&mut self, ctx: &mut Context<'_, Tagged>) {
            ctx.broadcast(Tagged(0));
        }
        fn step(&mut self, ctx: &mut Context<'_, Tagged>, inbox: &[(Port, Tagged)]) {
            for (_, Tagged(w)) in inbox {
                self.heard.push((*w, ctx.round()));
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn on_quiescent(&mut self, ctx: &mut Context<'_, Tagged>) -> bool {
            self.wave += 1;
            if self.wave < self.waves {
                ctx.broadcast(Tagged(self.wave));
                true
            } else {
                false
            }
        }
        fn output(&self) -> Vec<(u32, u64)> {
            self.heard.clone()
        }
    }

    /// The tentpole's 2-phase requirement: a PhasePlan run explored
    /// end-to-end — every schedule passes through both barriers and
    /// reproduces the synchronous staging.
    #[test]
    fn two_phase_plan_is_clean_on_every_schedule() {
        let make = |_: &Endpoint| Staged { wave: 0, waves: 2, heard: Vec::new() };
        let plan = PhasePlan::new().phase("wave0", 1).phase("wave1", 1);
        for sync in SYNC_MODELS {
            let report =
                Explore::on(&path(3)).seed(8).bound(2).plan(plan.clone()).sync(sync).run_with(make);
            assert!(report.is_clean(), "{sync:?}: {:?}", report.violations);
            assert!(report.deduped > 0, "{sync:?}: bound 2 must branch across the phases");
        }
    }

    /// A test-only mutant invariant: flags any schedule whose virtual
    /// completion time reaches a threshold — a schedule-dependent
    /// property, so only *some* interleavings trigger it.
    struct SlowFinish {
        at_least: u64,
    }

    impl Invariant<Flood> for SlowFinish {
        fn name(&self) -> &'static str {
            "slow_finish"
        }

        fn on_schedule_end(&self, state: &ExploreState<'_, Flood>) -> Result<(), String> {
            let vt = state.overhead().virtual_time;
            if vt >= self.at_least {
                Err(format!("virtual_time={vt}"))
            } else {
                Ok(())
            }
        }
    }

    /// The acceptance test for counterexample traces: a mutant predicate
    /// yields a violation whose DelayTrace replays through the ordinary
    /// `Engine::Async` bit for bit — twice over, and reproducing the
    /// exact flagged property.
    #[test]
    fn violation_traces_replay_through_the_async_engine_bit_for_bit() {
        let g = path(3);
        let report = Explore::on(&g)
            .seed(11)
            .bound(2)
            .budget(2)
            .run_checked(make_flood, vec![Box::new(SlowFinish { at_least: 5 })]);
        assert!(
            !report.violations.is_empty(),
            "some bound-2 schedule must finish at virtual time >= 5"
        );
        let violation = &report.violations[0];
        assert_eq!(violation.invariant, "slow_finish");
        let flagged_vt: u64 = violation
            .detail
            .strip_prefix("virtual_time=")
            .expect("mutant detail format")
            .parse()
            .expect("mutant detail parses");

        // Round-trip the trace through its committable text form first:
        // the replayed model is what a regression fixture would load.
        let trace = DelayTrace::from_text(&violation.trace.to_text()).expect("trace round-trips");
        assert_eq!(&trace, &violation.trace);
        let replay = || {
            Session::on(&g)
                .seed(11)
                .engine(Engine::Async {
                    delay: trace.register(),
                    sync: SyncModel::Alpha,
                    fault: FaultModel::None,
                    churn: ChurnModel::None,
                })
                .limits(RunLimits::rounds(2))
                .run_with(make_flood)
        };
        let (out_a, rep_a) = replay();
        let (out_b, rep_b) = replay();
        // Bit-for-bit: the replay is deterministic...
        assert_eq!(out_a, out_b);
        assert_eq!(rep_a.metrics, rep_b.metrics);
        assert_eq!(rep_a.overhead, rep_b.overhead);
        // ...and reproduces the counterexample exactly: the flagged
        // virtual completion time, not merely the threshold.
        assert_eq!(rep_a.overhead.virtual_time, flagged_vt);
        assert!(flagged_vt >= 5);
    }

    /// A deliberately false invariant proves violations carry usable
    /// detail and the explorer keeps walking after recording them.
    struct AlwaysFails;

    impl Invariant<Flood> for AlwaysFails {
        fn name(&self) -> &'static str {
            "always_fails"
        }

        fn on_state(&self, _: &ExploreState<'_, Flood>) -> Result<(), String> {
            Err("every state is flagged".to_string())
        }
    }

    #[test]
    fn violations_prune_the_branch_but_not_the_walk() {
        let report = Explore::on(&path(3))
            .seed(2)
            .bound(2)
            .budget(1)
            .run_checked(make_flood, vec![Box::new(AlwaysFails)]);
        // Every first step is flagged; no state survives to be counted.
        assert!(!report.violations.is_empty());
        assert_eq!(report.states, 0);
        assert_eq!(report.schedules, 0);
        for v in &report.violations {
            assert_eq!(v.invariant, "always_fails");
            assert!(!v.trace.delays().is_empty() || v.trace.bound() == 2);
        }
    }

    /// Fingerprint coverage: deterministic across identical drives,
    /// different across distinct protocol states.
    #[test]
    fn fingerprints_are_deterministic_and_state_sensitive() {
        let g = triangle();
        let build = |seed: u64| {
            let mut net: AsyncNetwork<Flood> = AsyncNetwork::build_with(
                &g,
                seed,
                DelayModel::Uniform { max_delay: 2 },
                SyncModel::Alpha,
                FaultModel::None,
                ChurnModel::None,
                IdAssignment::Hashed,
                make_flood,
            );
            *net.delays_mut() = DelaySource::script(2);
            net
        };
        // Identical drives → identical fingerprints, at every step.
        let mut a = build(9);
        let mut b = build(9);
        a.delays_mut().begin_step(&[]);
        b.delays_mut().begin_step(&[]);
        a.explore_begin(1);
        b.explore_begin(1);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        while a.pending_events() > 0 {
            a.delays_mut().begin_step(&[]);
            b.delays_mut().begin_step(&[]);
            assert!(a.explore_event() && b.explore_event());
            assert_eq!(fingerprint(&a), fingerprint(&b), "fingerprints diverged mid-drive");
        }
        // Distinct protocol state (different source node) → different
        // fingerprint from the first step.
        let mut c = build(9);
        *c.delays_mut() = DelaySource::script(2);
        let mut d: AsyncNetwork<Flood> = AsyncNetwork::build_with(
            &g,
            9,
            DelayModel::Uniform { max_delay: 2 },
            SyncModel::Alpha,
            FaultModel::None,
            ChurnModel::None,
            IdAssignment::Hashed,
            |e: &Endpoint| Flood { is_source: e.index == 1, heard_at: None, forwarded: false },
        );
        *d.delays_mut() = DelaySource::script(2);
        c.delays_mut().begin_step(&[]);
        d.delays_mut().begin_step(&[]);
        c.explore_begin(1);
        d.explore_begin(1);
        assert_ne!(fingerprint(&c), fingerprint(&d), "distinct protocol states must differ");
    }

    /// The collision audit on a reference triangle exploration: the
    /// independent FNV sweep never contradicts a SipHash dedup over the
    /// whole explored state set.
    #[test]
    fn fingerprints_never_collide_across_a_reference_exploration() {
        for sync in SYNC_MODELS {
            let report = Explore::on(&triangle())
                .seed(7)
                .bound(2)
                .budget(1)
                .sync(sync)
                .audit_fingerprints(true)
                .run_with(make_flood);
            assert!(report.violations.is_empty(), "{sync:?}: {:?}", report.violations);
            assert_eq!(report.fingerprint_collisions, 0, "{sync:?}");
            assert!(report.states > 0);
        }
    }

    /// record_run + Replay: a *sampled* run's realized draws replay bit
    /// for bit through the ordinary engine — outputs, metrics, overhead.
    #[test]
    fn recorded_sampled_runs_replay_bit_for_bit() {
        let g = star(4);
        for delay in [
            DelayModel::Uniform { max_delay: 3 },
            DelayModel::PerLink { max_delay: 3 },
            DelayModel::HeavyTailed { max_delay: 3 },
        ] {
            for fault in [FaultModel::None, FaultModel::Drop { p_millis: 200 }] {
                let (outputs, report, trace) = record_run(
                    &g,
                    13,
                    delay,
                    SyncModel::Alpha,
                    fault,
                    RunLimits::rounds(3),
                    make_flood,
                );
                let (re_out, re_report) = Session::on(&g)
                    .seed(13)
                    .engine(Engine::Async {
                        delay: trace.register(),
                        sync: SyncModel::Alpha,
                        fault,
                        churn: ChurnModel::None,
                    })
                    .limits(RunLimits::rounds(3))
                    .run_with(make_flood);
                assert_eq!(re_out, outputs, "{delay:?} {fault:?}");
                assert_eq!(re_report.metrics, report.metrics, "{delay:?} {fault:?}");
                assert_eq!(re_report.overhead, report.overhead, "{delay:?} {fault:?}");
            }
        }
    }

    /// Delivery order is invisible to protocols: even a protocol that
    /// logs its inbox arrival order produces one confluent end state
    /// across all interleavings — the engine canonicalizes the per-pulse
    /// inbox, which is exactly the Awerbuch reduction's guarantee. The
    /// raw (unpruned) tree walks every assignment end-to-end.
    #[test]
    fn delivery_order_never_leaks_into_protocol_state() {
        let make = |_: &Endpoint| ArrivalLog { log: Vec::new() };
        let pruned = Explore::on(&star(4))
            .seed(5)
            .bound(2)
            .budget(1)
            .sync(SyncModel::BatchedAlpha)
            .run_with(make);
        assert!(pruned.is_clean(), "{:?}", pruned.violations);
        assert_eq!(pruned.schedules, 1, "all interleavings must be confluent");
        assert!(pruned.deduped > 0);

        let raw = Explore::on(&star(4))
            .seed(5)
            .bound(2)
            .budget(1)
            .sync(SyncModel::BatchedAlpha)
            .dedup(false)
            .run_with(make);
        assert!(raw.is_clean(), "{:?}", raw.violations);
        assert_eq!(raw.deduped, 0);
        assert_eq!(raw.schedules, 64, "2^6 raw assignments, each walked end-to-end");
        assert!(raw.states > pruned.states);
    }

    #[test]
    #[should_panic(expected = "limit_schedules")]
    fn exceeding_the_schedule_valve_panics_instead_of_truncating() {
        let _ = Explore::on(&path(3))
            .seed(1)
            .bound(2)
            .budget(1)
            .sync(SyncModel::BatchedAlpha)
            .dedup(false)
            .limit_schedules(2)
            .run_with(|_: &Endpoint| ArrivalLog { log: Vec::new() });
    }

    #[test]
    #[should_panic(expected = "only FaultModel::None and FaultModel::Drop")]
    fn time_indexed_fault_models_are_rejected() {
        let _ = Explore::on(&path(3))
            .fault(FaultModel::LinkFlap { down_len: 2, up_len: 6 })
            .run_with(make_flood);
    }

    #[test]
    #[should_panic(expected = "only ChurnModel::None is explorable")]
    fn churn_models_are_rejected() {
        use crate::sched::ChurnPolicy;
        let _ = Explore::on(&path(3))
            .churn(ChurnModel::Join {
                joiners: 1,
                at_pulse: 1,
                spacing: 0,
                policy: ChurnPolicy::Continue,
            })
            .run_with(make_flood);
    }
}
