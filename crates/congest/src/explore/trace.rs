//! Replayable delay traces: a counterexample you can commit.
//!
//! A [`DelayTrace`] is the positional record of every delay the engine
//! drew over one run — the `i`-th entry is the `i`-th draw, whichever
//! port it served. Feeding the same sequence back through
//! [`DelayModel::Replay`] reproduces the run **bit for bit**: the engine
//! is deterministic given its seed and its delay draws, so same draws in
//! the same order mean the same execution, event for event.
//!
//! The explorer attaches a trace to every
//! [`Violation`](crate::explore::Violation); [`DelayTrace::register`]
//! turns it into an ordinary [`DelayModel`] accepted by
//! [`Engine::Async`](crate::Engine::Async), so a failing exploration
//! becomes a one-line regression test. The text form
//! ([`DelayTrace::to_text`] / [`DelayTrace::from_text`]) is a trivial
//! line format — header, bound, one delay per line — deliberately
//! dependency-free so traces can live as committed fixture files.

use crate::sched::{intern_trace, DelayModel};

/// A recorded per-send delay assignment, replayable through
/// [`DelayModel::Replay`]. Entries are in *draw order* (the order the
/// engine requested delays), every entry lies in `1..=bound`, and draws
/// past the end of the trace take the minimum delay 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayTrace {
    bound: u64,
    delays: Vec<u64>,
}

impl DelayTrace {
    /// Builds a trace with the given declared `bound`.
    ///
    /// The bound must match the run that recorded the trace: the engine
    /// sizes its timing wheel and the fault plane's retransmission
    /// timeout (`2·bound + 1`) off it, so replaying at a different bound
    /// would diverge under faults.
    ///
    /// # Panics
    ///
    /// Panics unless `bound >= 1` and every delay lies in `1..=bound`.
    #[must_use]
    pub fn new(bound: u64, delays: Vec<u64>) -> Self {
        assert!(bound >= 1, "delay trace: bound must be at least 1");
        assert!(
            delays.iter().all(|&d| (1..=bound).contains(&d)),
            "delay trace: every delay must lie in 1..=bound"
        );
        Self { bound, delays }
    }

    /// The declared delay bound.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The recorded draws, in draw order.
    #[must_use]
    pub fn delays(&self) -> &[u64] {
        &self.delays
    }

    /// Interns the trace and returns the [`DelayModel::Replay`] that
    /// replays it — pass this to [`Engine::Async`](crate::Engine::Async)
    /// like any other delay model.
    #[must_use]
    pub fn register(&self) -> DelayModel {
        DelayModel::Replay { trace: intern_trace(self.bound, &self.delays) }
    }

    /// Serializes the trace to its text form:
    ///
    /// ```text
    /// delay-trace v1
    /// bound 3
    /// 2
    /// 1
    /// 3
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(24 + self.delays.len() * 3);
        out.push_str("delay-trace v1\n");
        out.push_str(&format!("bound {}\n", self.bound));
        for d in &self.delays {
            out.push_str(&format!("{d}\n"));
        }
        out
    }

    /// Parses the text form produced by [`DelayTrace::to_text`]. Blank
    /// lines and lines starting with `#` are ignored after the header.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] naming the offending line when the
    /// header, the bound line, or any delay is malformed or out of range.
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let header = lines.next().map(|(_, l)| l.trim()).unwrap_or("");
        if header != "delay-trace v1" {
            return Err(TraceParseError::BadHeader { found: header.to_string() });
        }
        let (bound_line, bound_text) = lines.next().ok_or(TraceParseError::MissingBound)?;
        let bound = bound_text
            .trim()
            .strip_prefix("bound ")
            .and_then(|b| b.trim().parse::<u64>().ok())
            .filter(|&b| b >= 1)
            .ok_or(TraceParseError::BadBound { line: bound_line + 1 })?;
        let mut delays = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let d = line.parse::<u64>().map_err(|_| TraceParseError::BadDelay { line: i + 1 })?;
            if !(1..=bound).contains(&d) {
                return Err(TraceParseError::OutOfRange { line: i + 1, delay: d, bound });
            }
            delays.push(d);
        }
        Ok(Self { bound, delays })
    }
}

/// Why [`DelayTrace::from_text`] rejected its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// The first line was not the `delay-trace v1` header.
    BadHeader {
        /// What the first line actually said.
        found: String,
    },
    /// The input ended before the `bound N` line.
    MissingBound,
    /// The second line was not `bound N` with `N >= 1`.
    BadBound {
        /// 1-based line number.
        line: usize,
    },
    /// A delay line was not an unsigned integer.
    BadDelay {
        /// 1-based line number.
        line: usize,
    },
    /// A delay fell outside `1..=bound`.
    OutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending delay.
        delay: u64,
        /// The declared bound it violated.
        bound: u64,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadHeader { found } => {
                write!(f, "expected `delay-trace v1` header, found {found:?}")
            }
            TraceParseError::MissingBound => write!(f, "missing `bound N` line"),
            TraceParseError::BadBound { line } => {
                write!(f, "line {line}: expected `bound N` with N >= 1")
            }
            TraceParseError::BadDelay { line } => {
                write!(f, "line {line}: expected an unsigned integer delay")
            }
            TraceParseError::OutOfRange { line, delay, bound } => {
                write!(f, "line {line}: delay {delay} outside 1..={bound}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let trace = DelayTrace::new(5, vec![3, 1, 5, 2, 1]);
        let text = trace.to_text();
        assert!(text.starts_with("delay-trace v1\nbound 5\n"));
        let back = DelayTrace::from_text(&text).expect("own output parses");
        assert_eq!(back, trace);
        // Comments and blank lines are tolerated, as in a fixture file.
        let annotated = "delay-trace v1\nbound 5\n# found by explore\n\n3\n1\n";
        let parsed = DelayTrace::from_text(annotated).expect("annotated form parses");
        assert_eq!(parsed, DelayTrace::new(5, vec![3, 1]));
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = DelayTrace::new(2, Vec::new());
        assert_eq!(DelayTrace::from_text(&trace.to_text()), Ok(trace));
    }

    #[test]
    fn parse_errors_name_the_offense() {
        assert_eq!(
            DelayTrace::from_text("delay-log v9\nbound 2\n1\n"),
            Err(TraceParseError::BadHeader { found: "delay-log v9".to_string() })
        );
        assert_eq!(DelayTrace::from_text("delay-trace v1\n"), Err(TraceParseError::MissingBound));
        assert_eq!(
            DelayTrace::from_text("delay-trace v1\nbound zero\n"),
            Err(TraceParseError::BadBound { line: 2 })
        );
        assert_eq!(
            DelayTrace::from_text("delay-trace v1\nbound 0\n"),
            Err(TraceParseError::BadBound { line: 2 })
        );
        assert_eq!(
            DelayTrace::from_text("delay-trace v1\nbound 3\n2\nx\n"),
            Err(TraceParseError::BadDelay { line: 4 })
        );
        assert_eq!(
            DelayTrace::from_text("delay-trace v1\nbound 3\n2\n7\n"),
            Err(TraceParseError::OutOfRange { line: 4, delay: 7, bound: 3 })
        );
        let err = TraceParseError::OutOfRange { line: 4, delay: 7, bound: 3 };
        assert!(err.to_string().contains("delay 7 outside 1..=3"));
    }

    #[test]
    #[should_panic(expected = "every delay must lie in 1..=bound")]
    fn constructor_rejects_out_of_bound_delays() {
        let _ = DelayTrace::new(2, vec![1, 3]);
    }

    #[test]
    fn registers_as_a_replay_model() {
        let trace = DelayTrace::new(4, vec![2, 4, 1]);
        let model = trace.register();
        assert_eq!(model.name(), "replay");
        assert_eq!(model.bound(), 4);
        assert_eq!(trace.register(), model, "identical traces intern identically");
    }
}
