//! Message trait and bit-width helpers.
//!
//! The defining constraint of the CONGEST model is that every message
//! carries `O(log n)` bits. Rather than *assuming* that bound, this
//! simulator *measures* it: every protocol message reports its encoded
//! width via [`Message::bit_size`], and [`crate::Metrics`] records the
//! maximum ever sent. Experiment E10 turns those records into the paper's
//! message-size comparison.
//!
//! The helpers here assign widths consistently across protocols:
//! identifiers cost [`ID_BITS`], counters cost [`bits_for_count`] of their
//! maximum value, and enum discriminants cost [`TAG_BITS`].

/// Bits charged for one node identifier.
///
/// The model grants each node a unique `O(log n)`-bit identifier; we use
/// `u64` throughout and charge the full 64 bits, a constant multiple of
/// `log n` for every feasible `n`. Charging a constant (rather than
/// `ceil(log2 n)`) keeps cross-experiment comparisons independent of `n`
/// rounding artifacts; the E10 harness reports both raw bits and
/// bits `/ log2(n)`.
pub const ID_BITS: usize = 64;

/// Bits charged for a message tag (enum discriminant). Eight bits cover
/// every alphabet in this workspace.
pub const TAG_BITS: usize = 8;

/// Bits needed for a counter whose value is at most `max_value`
/// (at least 1 bit).
#[must_use]
pub fn bits_for_count(max_value: usize) -> usize {
    (usize::BITS - max_value.leading_zeros()).max(1) as usize
}

/// A protocol message whose encoded size is known.
///
/// `bit_size` must be consistent for a given value (the meter may consult
/// it more than once) and should reflect the width of a reasonable binary
/// encoding, using the conventions of this module.
pub trait Message: Clone + Send + std::fmt::Debug {
    /// Width of this message in bits under the workspace encoding
    /// conventions.
    fn bit_size(&self) -> usize;
}

/// A unit message for protocols that only need "pings".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ping;

impl Message for Ping {
    fn bit_size(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_count_values() {
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 2);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 3);
        assert_eq!(bits_for_count(255), 8);
        assert_eq!(bits_for_count(256), 9);
    }

    #[test]
    fn ping_is_one_bit() {
        assert_eq!(Ping.bit_size(), 1);
    }
}
