//! Deterministic per-node randomness.
//!
//! Every node receives its own RNG stream derived from the network's
//! master seed and the node index via SplitMix64, so:
//!
//! * runs are reproducible given a seed,
//! * node streams are statistically independent, and
//! * sequential and parallel execution see *identical* randomness
//!   (each node owns its stream; scheduling cannot perturb it).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One SplitMix64 step: the standard 64-bit mixer used to expand a master
/// seed into independent streams.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG for node `index` under master seed `seed`.
#[must_use]
pub fn node_rng(seed: u64, index: usize) -> StdRng {
    // Two mixing rounds decorrelate (seed, index) pairs that differ in few
    // bits.
    let s = splitmix64(splitmix64(seed ^ 0xA076_1D64_78BD_642F).wrapping_add(index as u64));
    StdRng::seed_from_u64(splitmix64(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn node_streams_differ() {
        let a: u64 = node_rng(7, 0).gen();
        let b: u64 = node_rng(7, 1).gen();
        let c: u64 = node_rng(8, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn node_streams_reproducible() {
        let a: u64 = node_rng(42, 17).gen();
        let b: u64 = node_rng(42, 17).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_seeds_decorrelated() {
        // A weak check that neighboring (seed, index) pairs do not produce
        // identical first draws.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..20u64 {
            for idx in 0..20usize {
                let v: u64 = node_rng(seed, idx).gen();
                assert!(seen.insert(v), "collision at seed={seed} idx={idx}");
            }
        }
    }
}
