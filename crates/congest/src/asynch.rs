//! Asynchronous execution: an event-driven executor core under a
//! pluggable synchronizer.
//!
//! The paper assumes the synchronous model and notes (§2) that, absent
//! crashes, "any synchronous algorithm can be executed in an asynchronous
//! environment using a synchronizer" (Awerbuch \[3\]). This module makes
//! that claim executable — and, since the control-plane split, makes the
//! *synchronizer itself* a pluggable layer:
//!
//! * The **executor core** ([`AsyncNetwork`]) owns the mechanics: the
//!   CSR route table and flat per-port payload queues shared with the
//!   synchronous engine, the slab-backed timing wheel of in-flight
//!   envelopes, the rotating parity-indexed pulse inboxes, delay
//!   sampling, payload metering, and stepping protocols. It knows
//!   nothing about *when* a pulse may run.
//! * The **synchronizer** (`crate::sched::sync`, selected by the public
//!   [`SyncModel`] knob on [`Engine::Async`](crate::Engine::Async))
//!   owns the control plane: it observes payloads sent and received,
//!   emits its own control traffic, accounts it in [`SyncOverhead`],
//!   and decides per node when the next pulse executes.
//!   [`SyncModel::Alpha`] is the classic synchronizer α (per-payload
//!   `Ack`s plus a per-pulse `Safe` flood on every edge), extracted
//!   from the pre-split engine bit for bit;
//!   [`SyncModel::BatchedAlpha`] piggybacks safety on the payloads
//!   themselves and clears idle edges with one coalesced `Safe` wave
//!   per node per pulse, so empty and sparse pulses cost control
//!   traffic proportional to the active frontier instead of `O(m)`.
//!
//! Outputs and the payload-side [`Metrics`] are **bit-identical to the
//! synchronous engines'** — pulse for round, under every delay model
//! *and* every synchronizer; only [`SyncOverhead`] depends on the
//! synchronizer, which is exactly the cost the layer exists to expose.
//!
//! # The event plane
//!
//! Like the flat synchronous plane, this executor performs **zero heap
//! allocations in steady state**: after warm-up, driving pulses only
//! recycles slab chunks. Three structures carry every event:
//!
//! * **The timing wheel** ([`EventWheel`]): in-flight messages live in a
//!   circular array of `bound + 1` chunked-slab FIFO buckets, where
//!   `bound` is the [`DelayModel`]'s *compiled* per-port delay maximum.
//!   Delays are bounded and positive, so all pending events fit at
//!   unique `time % (bound + 1)` slots — push is O(1), drain is in-order
//!   bucket rotation, and the order is bit-identical to the
//!   `(arrival time, sequence number)` min-heap this replaced (FIFO
//!   within a bucket *is* sequence order). The envelope travels inside
//!   its wheel entry.
//! * **Rotating inboxes**: every synchronizer here keeps neighboring
//!   nodes within one pulse of each other, so a payload tagged for
//!   pulse `r` can only arrive while its receiver waits on pulse `r` or
//!   `r − 1`. Two pulse-parity-indexed inboxes per node therefore
//!   suffice, and they live as `2n` FIFOs in one shared chunked slab
//!   (`plane::PortQueues` again), drained into a reused scratch buffer
//!   at execution.
//! * **The ready worklist**: synchronizer signals resolved eagerly
//!   (`BatchedAlpha`'s coalesced waves) complete pulse gates outside
//!   the event loop; affected nodes land on a reused worklist and are
//!   executed iteratively — cascades of any length, no recursion.
//!
//! Scheduling is pluggable through [`crate::sched`]: link delays come
//! from a seeded [`DelayModel`] (uniform, per-link, heavy-tailed or
//! adversarial-within-bound), and staged protocols that rely on the
//! simulator's quiescence barrier (`Protocol::on_quiescent`), like the
//! staged `DistNearClique`, run end-to-end via
//! [`AsyncNetwork::run_phases`] under a [`PhasePlan`] — each phase gets
//! its own deterministic pulse budget and the transition fires on
//! schedule, which is exactly the paper's §4.1 wrapper.

use graphs::Graph;
use rand::rngs::StdRng;

use crate::message::Message;
use crate::metrics::Metrics;
use crate::network::{assign_ids, IdAssignment};
use crate::obs::{emit, MetricsMode, RunProfile, SinkSlot, TraceConfig, TraceEvent, TraceSink};
use crate::plane::{PortQueues, Topology};
use crate::protocol::{Context, Endpoint, OutboxHandle, Port, Protocol};
use crate::rng::node_rng;
use crate::sched::fault::FaultEvent;
use crate::sched::sync::{
    transmit, ControlPlane, Event, SyncDriver, SyncMsg, Synchronizer, ENVELOPE_BITS,
};
use crate::sched::{
    ChurnEvent, ChurnModel, ChurnPlane, ChurnPolicy, DelayModel, DelaySource, EpochInfo,
    EventWheel, FaultModel, FaultPlane, PhasePlan, SyncModel,
};
use crate::session::{
    Driver, Observer, RoundDelta, RunLimits, RunReport, SyncOverhead, Termination,
};

#[derive(Clone)]
struct AsyncSlot<P: Protocol> {
    endpoint: Endpoint,
    protocol: P,
    rng: StdRng,
    /// The pulse this node is currently *waiting to execute* (1-based).
    pulse: u64,
    /// This node finished the current drive's pulse budget.
    done: bool,
}

/// The event-driven asynchronous engine: an executor core gated by a
/// pluggable synchronizer over seeded link delays. Construct through
/// [`crate::Session`] with [`Engine::Async`](crate::Engine::Async), or
/// directly via [`AsyncNetwork::build_with`].
///
/// Clonable (for `P: Clone`) so the interleaving explorer
/// ([`crate::explore`]) can fork the complete engine state at a choice
/// point and walk every branch.
#[derive(Clone)]
pub struct AsyncNetwork<P: Protocol> {
    nodes: Vec<AsyncSlot<P>>,
    /// CSR route table shared with the synchronous engine.
    topo: Topology,
    /// The flat plane's per-port FIFOs: application messages queued by
    /// protocols, drained one per port per pulse (CONGEST pipelining).
    queues: PortQueues<P::Msg>,
    /// In-flight events: the slab-backed timing wheel, sized to the
    /// delay model's compiled bound. Pops come out in `(arrival time,
    /// send order)` order — exactly the old heap's `(time, seq)` order.
    events: EventWheel<Event<P::Msg>>,
    /// Per-pulse payload staging: two rotating inboxes per node (slot
    /// `2·node + pulse-parity`), sharing one chunked slab.
    inboxes: PortQueues<(Port, P::Msg)>,
    /// Reused scratch an executing pulse drains its inbox into (the
    /// protocol steps on a sorted slice of it).
    inbox_buf: Vec<(Port, P::Msg)>,
    /// The control plane: per-node gating state and control-traffic
    /// policy (see [`crate::sched::sync`]).
    sync: SyncDriver,
    /// Nodes whose pulse gate an eager synchronizer signal completed,
    /// drained iteratively after every hook (reused; sized to `n`).
    ready: Vec<u32>,
    /// Where per-send delays come from: the compiled link-delay model in
    /// a sampled run, or an explorer-scripted choice sequence (see
    /// [`crate::sched`]).
    delays: DelaySource,
    /// The compiled fault model plus the run's fault log and loss
    /// accounting (see [`crate::sched::fault`]).
    faults: FaultPlane,
    /// The compiled churn model plus the epoch-versioned membership
    /// overlay, the run's churn log and the per-epoch timeline (see
    /// [`crate::sched::churn`]).
    churn: ChurnPlane,
    /// Absolute pulse target of the current drive.
    budget: u64,
    /// Pulses completed over all drives so far.
    executed: u64,
    /// Protocol `init` hooks have run (first drive, any budget).
    initialized: bool,
    /// Pulse 1 has been entered (first drive with a non-zero budget).
    started: bool,
    /// Payload-side accounting, attributed to pulses by tag — comparable
    /// field-for-field with the synchronous engines' metrics.
    metrics: Metrics,
    overhead: SyncOverhead,
    /// Per-pulse payload deltas, replayed to observers in pulse order
    /// when a drive completes. Left empty under
    /// [`MetricsMode::Streaming`].
    per_pulse: Vec<RoundDelta>,
    /// The observability sink (absent unless the session installed
    /// one). Recording is a pure observation: it never draws
    /// randomness, meters traffic, or reorders events, so outputs,
    /// metrics and overhead are bit-identical with or without it.
    /// Excluded from [`AsyncNetwork::explore_hash`] — a trace is a
    /// record of the past, not observable future state.
    rec: SinkSlot,
    /// Whether per-pulse metrics history is kept ([`MetricsMode::Full`])
    /// or only O(1) running aggregates ([`MetricsMode::Streaming`]).
    metrics_mode: MetricsMode,
}

/// Builds the per-hook [`ControlPlane`] view over disjoint executor
/// fields, so synchronizer calls borrow-check against `self.sync`.
macro_rules! control_plane {
    ($self:ident, $now:expr) => {
        ControlPlane {
            topo: &$self.topo,
            delays: &mut $self.delays,
            faults: &mut $self.faults,
            events: &mut $self.events,
            overhead: &mut $self.overhead,
            ready: &mut $self.ready,
            now: $now,
            rec: &mut $self.rec,
        }
    };
}

impl<P: Protocol> AsyncNetwork<P> {
    /// Builds the asynchronous engine over `graph` with the same ID
    /// assignment and per-node RNG streams as the synchronous engines,
    /// so protocols observe identical endpoints and coin flips. Link
    /// delays are drawn from `delay` (seeded off `seed`; see
    /// [`crate::sched::DelayModel`]); pulse gating and control traffic
    /// follow `sync` (see [`SyncModel`]); the network breaks according
    /// to `fault` (seeded off the same `seed`; see
    /// [`crate::sched::FaultModel`] — `FaultModel::None` is the perfect
    /// wire, bit-identical to an engine without the fault plane); and
    /// the member set evolves according to `churn` (seeded off the same
    /// `seed`; see [`crate::sched::churn`] — [`ChurnModel::None`] is the
    /// fixed member set, bit-identical to an engine without the churn
    /// plane).
    ///
    /// # Panics
    ///
    /// Panics if the delay model's `max_delay == 0`, if the fault or
    /// churn model is malformed, on a hashed ID collision, or if the
    /// graph exceeds the plane's `u32` port space.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with<F>(
        graph: &Graph,
        seed: u64,
        delay: DelayModel,
        sync: SyncModel,
        fault: FaultModel,
        churn: ChurnModel,
        ids: IdAssignment,
        mut factory: F,
    ) -> Self
    where
        F: FnMut(&Endpoint) -> P,
    {
        let n = graph.node_count();
        let ids = assign_ids(ids, seed, n);
        // Single-shard layout: the α engine owns the whole port space.
        let topo = Topology::build(graph, n.max(1), 1);
        let port_count = topo.offsets[n] as usize;

        let nodes: Vec<AsyncSlot<P>> = (0..n)
            .map(|u| {
                let endpoint =
                    Endpoint::new(u, ids[u], graph.neighbors(u).iter().map(|&v| ids[v]).collect());
                let protocol = factory(&endpoint);
                AsyncSlot { endpoint, protocol, rng: node_rng(seed, u), pulse: 1, done: false }
            })
            .collect();

        let delays = DelaySource::model(delay, seed, port_count);
        let faults = FaultPlane::new(fault, seed, port_count, n, delays.compiled_bound());
        let churn = ChurnPlane::new(churn, seed, &topo, n);
        // The wheel spans the *compiled* bound: what the sampler can
        // actually draw for this plane, never more than the model's
        // declared `max_delay` and tighter for the per-port models —
        // widened to the fault model's retransmission bound so parked
        // resend timers always fit the horizon.
        let events = EventWheel::new(delays.compiled_bound().max(faults.sampler.retry_bound()));
        Self {
            nodes,
            topo,
            queues: PortQueues::new(port_count),
            events,
            inboxes: PortQueues::new(n * 2),
            inbox_buf: Vec::new(),
            sync: SyncDriver::new(sync, n),
            // Gate completions happen once per (node, pulse) and at most
            // two pulses are live per node (the ±1 skew bound), so a
            // node has at most two outstanding wakes; `2n` capacity
            // keeps the worklist allocation-free forever.
            ready: Vec::with_capacity(2 * n),
            delays,
            faults,
            churn,
            budget: 0,
            executed: 0,
            initialized: false,
            started: false,
            metrics: Metrics::default(),
            overhead: SyncOverhead::default(),
            per_pulse: Vec::new(),
            rec: None,
            metrics_mode: MetricsMode::Full,
        }
    }

    /// Installs the session's observability configuration: an optional
    /// trace sink (preallocated here, once — recording is allocation-
    /// free thereafter) and the metrics mode. Must be called before the
    /// first drive.
    pub(crate) fn configure_obs(&mut self, trace: Option<TraceConfig>, mode: MetricsMode) {
        self.rec = trace.map(|cfg| Box::new(TraceSink::new(cfg, self.nodes.len() as u32)));
        self.metrics_mode = mode;
    }

    /// The installed trace sink, if tracing is enabled.
    pub(crate) fn trace_sink(&self) -> Option<&TraceSink> {
        self.rec.as_deref()
    }

    /// Flushes the sink's trailing aggregation window, folds in the
    /// wheel / queue high-water marks, and returns the run's profile —
    /// `None` when tracing is off.
    fn snapshot_profile(&mut self) -> Option<RunProfile> {
        let wheel_hw = self.events.high_water();
        let queue_hw = self.inboxes.high_water().max(self.queues.high_water());
        self.rec.as_deref_mut().map(|sink| sink.finish(wheel_hw, queue_hw))
    }

    /// The configured per-message delay bound.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.delays.delay_model().bound()
    }

    /// The configured link-delay model.
    #[must_use]
    pub fn delay_model(&self) -> DelayModel {
        self.delays.delay_model()
    }

    /// The configured synchronizer.
    #[must_use]
    pub fn sync_model(&self) -> SyncModel {
        self.sync.model()
    }

    /// The configured fault model.
    #[must_use]
    pub fn fault_model(&self) -> FaultModel {
        self.faults.model()
    }

    /// The configured churn model.
    #[must_use]
    pub fn churn_model(&self) -> ChurnModel {
        self.churn.model()
    }

    /// Accumulated payload-side metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Accumulated synchronizer overhead.
    #[must_use]
    pub fn overhead(&self) -> &SyncOverhead {
        &self.overhead
    }

    /// Pre-reserves the per-pulse histories for a bounded run.
    pub fn reserve_rounds(&mut self, rounds: usize) {
        self.metrics.reserve_rounds(rounds);
        self.per_pulse.reserve(rounds);
    }

    /// Schedules `msg` from node `from`'s local `port`, arriving after a
    /// model-drawn delay keyed by the sending port's CSR slot — unless
    /// the fault plane rules the attempt lost, in which case a
    /// retransmission timer is parked instead (see
    /// [`crate::sched::fault`]). Routing goes through the CSR table: one
    /// lookup yields the destination node and its receiving port.
    fn send(&mut self, now: u64, from: usize, port: Port, msg: SyncMsg<P::Msg>) {
        transmit(
            &self.topo,
            &mut self.delays,
            &mut self.faults,
            &mut self.events,
            &mut self.overhead,
            now,
            from,
            port,
            msg,
        );
    }

    /// Crash bookkeeping at node `v`'s entry into `pulse`: detects the
    /// crash-onset and recovery transitions (each exactly once),
    /// discards the node's queued outgoing payloads at onset, fires the
    /// [`Protocol::on_peer_down`]/[`Protocol::on_peer_up`] hooks on live
    /// neighbors, and reports whether the node is crashed for this
    /// pulse.
    fn fault_pulse_entry(&mut self, now: u64, v: usize, pulse: u64) -> bool {
        let crashed = self.faults.sampler.crashed_at(v, pulse);
        if crashed == self.faults.down[v] {
            return crashed;
        }
        self.faults.down[v] = crashed;
        if crashed {
            self.faults.crash_seen = true;
            self.faults.log.push(FaultEvent::NodeDown { node: v as u32, pulse });
            // Fail-silent: whatever the protocol queued but had not yet
            // transmitted dies with the host — each discard itemized in
            // the fault log, so observers can account for every loss.
            let base = self.topo.offsets[v];
            for port in 0..self.nodes[v].endpoint.degree() {
                while self.queues.pop(base + port as u32).is_some() {
                    self.faults.lost += 1;
                    self.overhead.dropped_messages += 1;
                    self.faults.log.push(FaultEvent::Lost { node: v as u32, port, at: now });
                }
            }
            self.notify_peers(v, true);
        } else {
            self.faults.log.push(FaultEvent::NodeUp { node: v as u32, pulse });
            self.notify_peers(v, false);
        }
        crashed
    }

    /// Fires the peer-loss hook on each of `v`'s currently-live
    /// neighbors, each in its own context at its own current pulse.
    fn notify_peers(&mut self, v: usize, down: bool) {
        for port in 0..self.nodes[v].endpoint.degree() {
            let (_slot, to, back) = self.topo.resolve(v, port);
            let to = to as usize;
            // A crashed neighbor observes nothing.
            if self.faults.sampler.crashed_at(to, self.nodes[to].pulse) {
                continue;
            }
            let node = &mut self.nodes[to];
            let base = self.topo.offsets[to];
            let mut ctx = Context {
                endpoint: &node.endpoint,
                round: node.pulse,
                outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
                rng: &mut node.rng,
            };
            if down {
                node.protocol.on_peer_down(&mut ctx, back as usize);
            } else {
                node.protocol.on_peer_up(&mut ctx, back as usize);
            }
        }
    }

    /// Membership bookkeeping at node `v`'s entry into `pulse`: detects
    /// the scheduled join/leave transition (each exactly once, opening a
    /// new epoch), applies the [`EpochTopology`](crate::sched::churn)
    /// overlay in place, retires a leaver's queued payloads itemized,
    /// fires [`Protocol::on_join`]/[`Protocol::on_leave`] on present
    /// peers (and the [`ChurnPolicy::Restart`] re-init), and reports
    /// whether the node is outside the member set for this pulse.
    fn churn_pulse_entry(&mut self, now: u64, v: usize, pulse: u64) -> bool {
        let absent = self.churn.sampler.absent_at(v, pulse);
        if absent != self.churn.overlay.present[v] {
            // Steady state: the overlay already agrees with the sampled
            // membership — no transition at this pulse.
            return absent;
        }
        self.churn.overlay.apply(&self.topo, v, !absent);
        let epoch = self.churn.overlay.epoch;
        self.overhead.epochs += 1;
        if absent {
            self.overhead.leaves += 1;
            self.churn.log.push(ChurnEvent::Leave { node: v as u32, pulse, epoch });
            // A graceful leave retires whatever the protocol queued but
            // had not yet transmitted — each payload itemized in the
            // churn log, never silently dropped.
            let base = self.topo.offsets[v];
            for port in 0..self.nodes[v].endpoint.degree() {
                while self.queues.pop(base + port as u32).is_some() {
                    self.overhead.retired_messages += 1;
                    self.churn.retire(v as u32, port, now);
                }
            }
        } else {
            debug_assert_eq!(
                self.churn.sampler.join_pulse(v),
                pulse,
                "a join transition fires exactly at the scheduled pulse"
            );
            self.overhead.joins += 1;
            self.churn.log.push(ChurnEvent::Join { node: v as u32, pulse, epoch });
            // The joiner's protocol initializes at the joining pulse;
            // whatever it queues drains in this same pulse entry, right
            // after this hook returns.
            let node = &mut self.nodes[v];
            let base = self.topo.offsets[v];
            let mut ctx = Context {
                endpoint: &node.endpoint,
                round: pulse,
                outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
                rng: &mut node.rng,
            };
            node.protocol.init(&mut ctx);
        }
        self.churn.timeline.push(EpochInfo { epoch, pulse, members: self.churn.overlay.members });
        self.notify_members(v, absent);
        if self.churn.model().policy() == ChurnPolicy::Restart {
            self.restart_epoch(v);
        }
        absent
    }

    /// Fires the membership handoff hook on each of `v`'s present,
    /// uncrashed neighbors, each in its own context at its own current
    /// pulse.
    fn notify_members(&mut self, v: usize, left: bool) {
        for port in 0..self.nodes[v].endpoint.degree() {
            let (_slot, to, back) = self.topo.resolve(v, port);
            let to = to as usize;
            // A node outside the member set (or down) observes nothing.
            if !self.churn.overlay.present[to]
                || self.faults.sampler.crashed_at(to, self.nodes[to].pulse)
            {
                continue;
            }
            let node = &mut self.nodes[to];
            let base = self.topo.offsets[to];
            let mut ctx = Context {
                endpoint: &node.endpoint,
                round: node.pulse,
                outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
                rng: &mut node.rng,
            };
            if left {
                node.protocol.on_leave(&mut ctx, back as usize);
            } else {
                node.protocol.on_join(&mut ctx, back as usize);
            }
        }
    }

    /// [`ChurnPolicy::Restart`]: re-runs [`Protocol::init`] on every
    /// present, uncrashed node at its current pulse, so epoch-restart
    /// protocols rebuild their state against the new member set. The
    /// node whose event opened the epoch is skipped — a joiner was just
    /// initialized, a leaver is absent.
    fn restart_epoch(&mut self, skip: usize) {
        for w in 0..self.nodes.len() {
            if w == skip
                || !self.churn.overlay.present[w]
                || self.faults.sampler.crashed_at(w, self.nodes[w].pulse)
            {
                continue;
            }
            let node = &mut self.nodes[w];
            let base = self.topo.offsets[w];
            let mut ctx = Context {
                endpoint: &node.endpoint,
                round: node.pulse,
                outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
                rng: &mut node.rng,
            };
            node.protocol.init(&mut ctx);
        }
    }

    /// Transition `node` into its next pulse: drain one application
    /// message per port from the flat queues (CONGEST pipelining) and
    /// send the payloads, reporting each idle port — and then the whole
    /// send phase — to the synchronizer, which emits whatever control
    /// traffic its discipline requires. Degree-0 nodes have no
    /// synchronizer traffic at all and just execute their remaining
    /// pulses in place.
    fn begin_pulse(&mut self, now: u64, v: usize) {
        let degree = self.nodes[v].endpoint.degree();
        if degree == 0 {
            while self.nodes[v].pulse <= self.budget {
                let pulse = self.nodes[v].pulse;
                let absent = self.churn_pulse_entry(now, v, pulse);
                let crashed = self.fault_pulse_entry(now, v, pulse);
                if !absent && !crashed {
                    let batch = self.execute_pulse(v);
                    emit(
                        &mut self.rec,
                        now,
                        TraceEvent::PulseExec { node: v as u32, pulse, batch },
                    );
                }
                self.nodes[v].pulse += 1;
            }
            self.nodes[v].pulse = self.budget;
            self.nodes[v].done = true;
            return;
        }
        let pulse = self.nodes[v].pulse;
        // Membership first: a scheduled join initializes the protocol
        // (its sends drain below, in this same entry), a scheduled leave
        // retires the queued payloads before the crash sweep looks at
        // them. A node entering an absent or crashed pulse is silent
        // below — every port reads idle, so neighbors' gates fill
        // exactly as for an empty pulse and the synchronizer waves keep
        // rolling across the epoch boundary.
        let absent = self.churn_pulse_entry(now, v, pulse);
        let crashed = self.fault_pulse_entry(now, v, pulse);
        let base = self.topo.offsets[v];
        let mut sent = 0usize;
        for port in 0..degree {
            let p = base + port as u32;
            // A retired port carries no payloads: whatever the protocol
            // queued toward an absent peer is retired itemized, and the
            // port reads idle to the synchronizer — the control plane
            // spans the static topology.
            if !self.churn.overlay.port_live[p as usize] {
                while self.queues.pop(p).is_some() {
                    self.overhead.retired_messages += 1;
                    self.churn.retire(v as u32, port, now);
                }
            }
            if self.queues.len(p) == 0 {
                let mut cp = control_plane!(self, now);
                self.sync.on_idle_port(&mut cp, v, port, pulse);
                continue;
            }
            let msg = self.queues.pop(p).expect("non-empty port queue pops");
            self.send(now, v, port, SyncMsg::Payload { pulse, msg });
            sent += 1;
        }
        debug_assert!(!crashed || sent == 0, "a crashed node sends nothing");
        debug_assert!(!absent || sent == 0, "an absent node sends nothing");
        emit(
            &mut self.rec,
            now,
            TraceEvent::PulseBegin { node: v as u32, pulse, sent: sent as u32 },
        );
        let mut cp = control_plane!(self, now);
        self.sync.on_pulse_begun(&mut cp, v, pulse, sent);
    }

    /// Steps node `v`'s protocol on its current pulse's inbox, with its
    /// context wired into the flat queues. Returns the delivery batch
    /// size (how many payloads the protocol stepped on).
    fn execute_pulse(&mut self, v: usize) -> u32 {
        let pulse = self.nodes[v].pulse;
        let parity = (pulse & 1) as usize;
        if self.faults.sampler.crashed_at(v, pulse) {
            // Fail-silent: payloads addressed to this pulse were already
            // discarded at delivery, so the inbox is empty and the
            // protocol does not step.
            debug_assert_eq!(
                self.inboxes.len((v * 2 + parity) as u32),
                0,
                "payloads for a crashed pulse are swallowed at delivery"
            );
            return 0;
        }
        if self.churn.sampler.absent_at(v, pulse) {
            // Outside the member set: payloads addressed to this pulse
            // were retired at delivery, so the inbox is empty and the
            // protocol does not step.
            debug_assert_eq!(
                self.inboxes.len((v * 2 + parity) as u32),
                0,
                "payloads for an absent pulse are retired at delivery"
            );
            return 0;
        }
        // Drain the pulse's rotating inbox into the scratch buffer and
        // canonicalize. CONGEST delivers at most one payload per port
        // per pulse, so port keys are unique and the unstable sort is
        // deterministic (and allocation-free, unlike a stable sort).
        self.inbox_buf.clear();
        let slot = (v * 2 + parity) as u32;
        while let Some(entry) = self.inboxes.pop(slot) {
            self.inbox_buf.push(entry);
        }
        self.inbox_buf.sort_unstable_by_key(|&(port, _)| port);
        debug_assert!(
            self.inbox_buf.windows(2).all(|w| w[0].0 != w[1].0),
            "one payload per port per pulse"
        );
        let node = &mut self.nodes[v];
        let base = self.topo.offsets[v];
        let mut ctx = Context {
            endpoint: &node.endpoint,
            round: pulse,
            outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
            rng: &mut node.rng,
        };
        node.protocol.step(&mut ctx, &self.inbox_buf);
        self.inbox_buf.len() as u32
    }

    /// Executes node `v`'s pulses for as long as the synchronizer grants
    /// the gate, entering the next pulse after each execution. Iterative
    /// — a node catching up several pulses (or a whole quiescent stretch
    /// under `BatchedAlpha`) never recurses.
    fn try_execute(&mut self, now: u64, v: usize) {
        loop {
            let node = &self.nodes[v];
            if node.done {
                return;
            }
            let pulse = node.pulse;
            let degree = node.endpoint.degree();
            if !self.sync.ready(v, pulse, degree) {
                return;
            }
            let batch = self.execute_pulse(v);
            emit(&mut self.rec, now, TraceEvent::PulseExec { node: v as u32, pulse, batch });
            self.sync.on_executed(v, pulse);
            if pulse >= self.budget {
                self.nodes[v].done = true;
                return;
            }
            self.nodes[v].pulse = pulse + 1;
            self.begin_pulse(now, v);
        }
    }

    /// Drains the ready worklist: nodes whose gate an eager synchronizer
    /// signal completed outside the event loop. Executing them may wake
    /// further nodes; the loop runs until the cascade dies out.
    fn drain_ready(&mut self, now: u64) {
        while let Some(v) = self.ready.pop() {
            self.try_execute(now, v as usize);
        }
    }

    fn handle(&mut self, now: u64, event: Event<P::Msg>) {
        self.overhead.virtual_time = self.overhead.virtual_time.max(now);
        let (to, port, msg) = match event {
            Event::Deliver { to, port, msg } => (to as usize, port as usize, msg),
            Event::Resend { from, port, msg } => {
                // A retransmission timer fired: the envelope re-enters
                // the wire with fresh delay and fault draws.
                emit(&mut self.rec, now, TraceEvent::Retransmit { node: from, port });
                self.send(now, from as usize, port as usize, msg);
                return;
            }
        };
        match msg {
            SyncMsg::Payload { pulse, msg: _ } if self.churn.sampler.absent_at(to, pulse) => {
                // The receiver is outside the member set for this pulse:
                // the payload is retired at delivery — itemized in the
                // churn log, not metered, not staged. The synchronizer
                // still observes the arrival: the control plane spans
                // the static topology, which is what keeps neighbors'
                // gates filling across the epoch boundary.
                self.overhead.retired_messages += 1;
                self.churn.retire(to as u32, port, now);
                let mut cp = control_plane!(self, now);
                self.sync.on_payload(&mut cp, to, port, pulse);
            }
            SyncMsg::Payload { pulse, msg: _ } if self.faults.sampler.crashed_at(to, pulse) => {
                // The receiver is down for this pulse: the payload
                // vanishes at the host — not metered, not staged; the
                // loss is application-visible (degradation, not
                // masking). The synchronizer still observes the arrival:
                // the control plane survives the crash, which is what
                // keeps the neighbors' gates filling and the waves
                // self-healing.
                self.faults.lost += 1;
                self.overhead.dropped_messages += 1;
                self.faults.log.push(FaultEvent::Lost { node: to as u32, port, at: now });
                let mut cp = control_plane!(self, now);
                self.sync.on_payload(&mut cp, to, port, pulse);
            }
            SyncMsg::Payload { pulse, msg } => {
                // A payload tagged r was drained by the sender on entering
                // pulse r — exactly what the synchronous simulator
                // delivers in round r — so it is consumed at pulse r and
                // metered there: scalars into `metrics`, the per-pulse
                // attribution into `per_pulse` (the one per-round ledger;
                // `metrics.messages_per_round` is rebuilt from it when the
                // drive completes), and the pulse-tag envelope into the
                // synchronizer's overhead.
                let bits = msg.bit_size();
                self.metrics.record_payload(bits);
                self.overhead.control_bits += ENVELOPE_BITS as u64;
                if self.metrics_mode == MetricsMode::Full {
                    let idx = (pulse - 1) as usize;
                    if self.per_pulse.len() <= idx {
                        self.per_pulse.resize(idx + 1, RoundDelta::default());
                    }
                    self.per_pulse[idx].record(bits);
                }
                emit(
                    &mut self.rec,
                    now,
                    TraceEvent::Payload { node: to as u32, pulse, bits: bits as u32 },
                );
                // Pulse skew is at most one under every synchronizer
                // here: a payload can only arrive while its receiver
                // waits on `pulse` or `pulse - 1`, so the parity-indexed
                // inbox slot is free.
                debug_assert!(
                    pulse == self.nodes[to].pulse || pulse == self.nodes[to].pulse + 1,
                    "payload outside the two-pulse horizon"
                );
                self.inboxes.push((to * 2 + (pulse & 1) as usize) as u32, (port, msg));
                let mut cp = control_plane!(self, now);
                self.sync.on_payload(&mut cp, to, port, pulse);
            }
            SyncMsg::Ctrl(ctrl) => {
                let node_pulse = self.nodes[to].pulse;
                let mut cp = control_plane!(self, now);
                self.sync.on_ctrl(&mut cp, to, node_pulse, port, ctrl);
            }
        }
        self.try_execute(now, to);
    }

    /// Offers every node its [`Protocol::on_quiescent`] transition — the
    /// §4.1 scheduled stand-in for the synchronous simulator's quiescence
    /// barrier, taken when a [`PhasePlan`] phase's budget elapses (not at
    /// detected quiescence, which a synchronizer cannot observe).
    ///
    /// Semantics mirror the synchronous engines': nodes are visited in
    /// index order at the current pulse count; if no node resumes and no
    /// application message is queued, the protocol has retired and the
    /// barrier is **not** counted. Otherwise it is metered in
    /// [`Metrics::barriers`] and streamed via [`Observer::on_barrier`].
    ///
    /// Returns `true` while execution should continue (some node resumed,
    /// or queued messages remain to be delivered).
    pub fn barrier(&mut self, obs: &mut dyn Observer) -> bool {
        let round = self.executed;
        let mut resumed = false;
        for v in 0..self.nodes.len() {
            if self.faults.down[v] {
                // A crashed node takes no phase transition — and its
                // silence must not keep the plan spinning pulse budgets:
                // the run ends `Degraded` (see `run_phases`) instead of
                // burning every remaining phase on a node that cannot
                // answer.
                continue;
            }
            if !self.churn.overlay.present[v] {
                // A node outside the member set takes no phase
                // transition either — but unlike a crash this is
                // planned reconfiguration, so the run is not degraded.
                continue;
            }
            let node = &mut self.nodes[v];
            let base = self.topo.offsets[v];
            let mut ctx = Context {
                endpoint: &node.endpoint,
                round,
                outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
                rng: &mut node.rng,
            };
            resumed |= node.protocol.on_quiescent(&mut ctx);
        }
        if !resumed && self.queues.queued() == 0 {
            return false;
        }
        self.metrics.barriers += 1;
        obs.on_barrier(round);
        true
    }

    /// Executes `plan` phase by phase: each phase drives its pulse
    /// budget, then [`AsyncNetwork::barrier`] fires the scheduled
    /// transition — the barrier closing the final phase is the one at
    /// which a finished protocol retires.
    ///
    /// With a plan derived from a synchronous run's phase trace
    /// ([`PhasePlan::from_trace`]), outputs **and** the payload-side
    /// [`Metrics`] — per-pulse histogram, barrier count included — equal
    /// the synchronous engines' bit for bit: this is how staged
    /// protocols like `DistNearClique` complete under a synchronizer.
    ///
    /// Termination is [`Termination::Quiescent`] when the retiring
    /// barrier finds every node finished, [`Termination::RoundLimit`]
    /// when the plan ended while the protocol still wanted to resume
    /// (the plan under-budgeted the run) — and
    /// [`Termination::Degraded`] as soon as any node crashed during the
    /// run, whatever the barriers said: a crashed phase cannot quiesce
    /// in the ordinary sense, and the report carries the count of
    /// application payloads the crash cost.
    pub fn run_phases(&mut self, plan: &PhasePlan, obs: &mut dyn Observer) -> RunReport {
        self.reserve_rounds(plan.total_pulses() as usize);
        // Run `init` (and the entry into the first phase) before the
        // first transition barrier, exactly like the synchronous loop.
        self.drive_pulses(0, obs);
        let mut live = true;
        for (index, phase) in plan.phases().iter().enumerate() {
            if phase.pulses > 0 {
                self.drive_pulses(phase.pulses, obs);
            }
            emit(
                &mut self.rec,
                self.overhead.virtual_time,
                TraceEvent::Phase { index: index as u32, budget: phase.pulses },
            );
            live = self.barrier(obs);
            if !live {
                break;
            }
        }
        if plan.is_empty() {
            // No phases scheduled: still offer the retiring barrier so an
            // already-finished protocol reports quiescence.
            live = self.barrier(obs);
        }
        // Intermediate phases ran report-free; the run's metrics are
        // cloned into a report exactly once, here.
        RunReport {
            termination: if self.faults.crash_seen {
                Termination::Degraded { lost: self.faults.lost }
            } else if live {
                Termination::RoundLimit
            } else {
                Termination::Quiescent
            },
            rounds: self.executed,
            metrics: self.metrics.clone(),
            overhead: self.overhead,
            epochs: self.churn.timeline.clone(),
            profile: self.snapshot_profile(),
        }
    }
}

impl<P: Protocol> Driver for AsyncNetwork<P> {
    type P = P;

    /// Executes `limits.max_rounds` further pulses under the configured
    /// synchronizer.
    ///
    /// Outputs after `B` total pulses are identical to the synchronous
    /// engines' outputs after `RunLimits::rounds(B)` with the same seed
    /// (the Awerbuch reduction, executed) for protocols whose `step` is
    /// inert on empty inboxes — pulses never quiesce, so a quiescent
    /// synchronous run corresponds to trailing empty pulses here.
    ///
    /// Always pass a finite, deliberate budget: pulses keep exchanging
    /// control traffic budget or not (a `Safe` flood per edge under
    /// [`SyncModel::Alpha`]; a coalesced wave per node under
    /// [`SyncModel::BatchedAlpha`]), so the default (1M-round) limits
    /// are *executable* but enormous. Termination is `RoundLimit` —
    /// or [`Termination::Degraded`] if any node crashed during the run.
    ///
    /// Pulses complete out of event order across nodes, so `obs`
    /// receives the per-pulse deltas in pulse order when the drive
    /// completes.
    fn drive(&mut self, limits: RunLimits, obs: &mut dyn Observer) -> RunReport {
        self.drive_pulses(limits.max_rounds, obs);
        RunReport {
            termination: if self.faults.crash_seen {
                Termination::Degraded { lost: self.faults.lost }
            } else {
                Termination::RoundLimit
            },
            rounds: self.executed,
            metrics: self.metrics.clone(),
            overhead: self.overhead,
            epochs: self.churn.timeline.clone(),
            profile: self.snapshot_profile(),
        }
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn endpoint(&self, index: usize) -> &Endpoint {
        &self.nodes[index].endpoint
    }

    fn protocol(&self, index: usize) -> &P {
        &self.nodes[index].protocol
    }

    fn queued_messages(&self) -> u64 {
        self.queues.queued()
    }

    fn reserve_rounds(&mut self, rounds: usize) {
        AsyncNetwork::reserve_rounds(self, rounds);
    }
}

impl<P: Protocol> AsyncNetwork<P> {
    /// The report-free pulse engine behind [`Driver::drive`] and
    /// [`AsyncNetwork::run_phases`]: executes up to `max_rounds` further
    /// pulses and streams their deltas to `obs`. Callers that drive in
    /// stages (phased runs) use this directly so the run's [`Metrics`]
    /// are cloned into a [`RunReport`] once, not once per stage.
    /// Streams buffered fault events to the observer, in occurrence
    /// order. The log is drained in place and reused — no steady-state
    /// allocation once its capacity is warm.
    fn flush_faults(&mut self, obs: &mut dyn Observer) {
        if self.faults.log.is_empty() {
            return;
        }
        let at = self.overhead.virtual_time;
        for event in self.faults.log.drain(..) {
            emit(&mut self.rec, at, event.trace_event());
            obs.on_fault(event);
        }
    }

    /// Streams buffered churn events to the observer, in occurrence
    /// order; each epoch boundary additionally emits the
    /// [`TraceEvent::Epoch`] record carrying the post-event member
    /// count. The log is drained in place and reused, like the fault
    /// log.
    fn flush_churn(&mut self, obs: &mut dyn Observer) {
        if self.churn.log.is_empty() {
            return;
        }
        let at = self.overhead.virtual_time;
        for i in 0..self.churn.log.len() {
            let event = self.churn.log[i];
            emit(&mut self.rec, at, event.trace_event());
            if let ChurnEvent::Join { epoch, .. } | ChurnEvent::Leave { epoch, .. } = event {
                let members = self.churn.timeline[(epoch - 1) as usize].members;
                emit(&mut self.rec, at, TraceEvent::Epoch { epoch, members });
            }
            obs.on_churn(event);
        }
        self.churn.log.clear();
    }

    fn drive_pulses(&mut self, max_rounds: u64, obs: &mut dyn Observer) {
        let previous = self.executed;
        if !self.initialized {
            // Lazy init on the first drive — even a zero-budget one, so
            // outputs at budget 0 match the synchronous engines'.
            self.initialized = true;
            for v in 0..self.nodes.len() {
                if !self.churn.overlay.present[v] {
                    // A scheduled late joiner initializes at its joining
                    // pulse, not here.
                    continue;
                }
                let node = &mut self.nodes[v];
                let base = self.topo.offsets[v];
                let mut ctx = Context {
                    endpoint: &node.endpoint,
                    round: 0,
                    outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
                    rng: &mut node.rng,
                };
                node.protocol.init(&mut ctx);
            }
        }
        if max_rounds > 0 {
            self.budget = self.executed.saturating_add(max_rounds);
            if !self.started {
                self.started = true;
                for v in 0..self.nodes.len() {
                    self.begin_pulse(0, v);
                    self.try_execute(0, v);
                }
                self.drain_ready(0);
            } else {
                // Resume: every node sits exactly at the previous budget
                // with no event in flight, so all of them re-enter their
                // next pulse at the current virtual time.
                let now = self.overhead.virtual_time;
                for v in 0..self.nodes.len() {
                    debug_assert!(self.nodes[v].done, "paused nodes sit at the budget");
                    self.nodes[v].done = false;
                    self.nodes[v].pulse += 1;
                    self.begin_pulse(now, v);
                    self.try_execute(now, v);
                }
                self.drain_ready(now);
            }

            self.flush_faults(obs);
            self.flush_churn(obs);
            while let Some((now, event)) = self.events.pop_next() {
                self.handle(now, event);
                if let Some(sink) = self.rec.as_deref_mut() {
                    sink.sample_wheel(self.events.pending());
                }
                self.drain_ready(now);
                self.flush_faults(obs);
                self.flush_churn(obs);
            }
            debug_assert_eq!(self.inboxes.queued(), 0, "all staged payloads were consumed");
            debug_assert!(
                self.nodes.iter().all(|s| s.done),
                "all nodes must finish their pulse budget"
            );
            self.executed = self.budget;
            self.metrics.rounds = self.executed;
            if self.metrics_mode == MetricsMode::Full {
                self.per_pulse.resize(self.executed as usize, RoundDelta::default());
                // Rebuild the per-round history from the single per-pulse
                // ledger, so it cannot drift from what observers saw.
                self.metrics.messages_per_round.clear();
                self.metrics.messages_per_round.extend(self.per_pulse.iter().map(|d| d.messages));
            }
        }

        // Streaming mode keeps no per-pulse ledger, so there is nothing
        // to replay: observers see barriers and faults only.
        if self.metrics_mode == MetricsMode::Full {
            for pulse in previous + 1..=self.executed {
                obs.on_round(pulse, &self.per_pulse[(pulse - 1) as usize]);
            }
        }
    }
}

/// Explorer hooks: the interleaving explorer ([`crate::explore`]) drives
/// the engine one event at a time through these, forking the cloned
/// state at every delay choice point. They mirror [`drive_pulses`]'s
/// three sections exactly — entry sweep, event loop body, post-loop
/// bookkeeping — so an explored branch passes through the same code a
/// sampled run does; the only difference is who pulls the next event.
///
/// [`drive_pulses`]: AsyncNetwork::drive_pulses
impl<P: Protocol> AsyncNetwork<P> {
    /// The drive's entry: lazy `init`, budget arming, and the pulse-1
    /// (or resume) sweep, up to but excluding the event loop. The fault
    /// log is cleared instead of streamed — explored branches have no
    /// observer, and a stale log would leak into the state fingerprint.
    pub(crate) fn explore_begin(&mut self, max_rounds: u64) {
        debug_assert!(max_rounds > 0, "an exploration segment needs a pulse budget");
        if !self.initialized {
            self.initialized = true;
            for v in 0..self.nodes.len() {
                if !self.churn.overlay.present[v] {
                    // A scheduled late joiner initializes at its joining
                    // pulse, not here.
                    continue;
                }
                let node = &mut self.nodes[v];
                let base = self.topo.offsets[v];
                let mut ctx = Context {
                    endpoint: &node.endpoint,
                    round: 0,
                    outbox: OutboxHandle::Flat { queues: &mut self.queues, base },
                    rng: &mut node.rng,
                };
                node.protocol.init(&mut ctx);
            }
        }
        self.budget = self.executed.saturating_add(max_rounds);
        if !self.started {
            self.started = true;
            for v in 0..self.nodes.len() {
                self.begin_pulse(0, v);
                self.try_execute(0, v);
            }
            self.drain_ready(0);
        } else {
            let now = self.overhead.virtual_time;
            for v in 0..self.nodes.len() {
                debug_assert!(self.nodes[v].done, "paused nodes sit at the budget");
                self.nodes[v].done = false;
                self.nodes[v].pulse += 1;
                self.begin_pulse(now, v);
                self.try_execute(now, v);
            }
            self.drain_ready(now);
        }
        self.faults.log.clear();
        self.churn.log.clear();
    }

    /// One event-loop iteration: pop the next event, handle it, drain
    /// the ready cascade. Returns `false` when the wheel is empty (the
    /// segment is over — completed if every node is done, deadlocked
    /// otherwise).
    pub(crate) fn explore_event(&mut self) -> bool {
        let Some((now, event)) = self.events.pop_next() else {
            return false;
        };
        self.handle(now, event);
        self.drain_ready(now);
        self.faults.log.clear();
        self.churn.log.clear();
        true
    }

    /// The post-loop bookkeeping of a completed segment: commit the
    /// budget as executed and rebuild the per-round history. Only valid
    /// once every node is done ([`AsyncNetwork::explore_all_done`]) —
    /// the explorer reports a deadlock instead of settling otherwise.
    pub(crate) fn explore_settle(&mut self) {
        debug_assert_eq!(self.inboxes.queued(), 0, "all staged payloads were consumed");
        debug_assert!(
            self.nodes.iter().all(|s| s.done),
            "settling requires every node at the budget"
        );
        self.executed = self.budget;
        self.per_pulse.resize(self.executed as usize, RoundDelta::default());
        self.metrics.rounds = self.executed;
        self.metrics.messages_per_round.clear();
        self.metrics.messages_per_round.extend(self.per_pulse.iter().map(|d| d.messages));
    }

    /// The pulse node `v` currently waits to execute (1-based).
    pub(crate) fn node_pulse(&self, v: usize) -> u64 {
        self.nodes[v].pulse
    }

    /// Whether node `v` finished the current segment's pulse budget.
    pub(crate) fn node_done(&self, v: usize) -> bool {
        self.nodes[v].done
    }

    /// Whether every node finished the current segment's pulse budget.
    pub(crate) fn explore_all_done(&self) -> bool {
        self.nodes.iter().all(|s| s.done)
    }

    /// Events scheduled on the wheel and not yet delivered.
    pub(crate) fn pending_events(&self) -> u64 {
        self.events.pending()
    }

    /// Application payloads lost to faults so far.
    pub(crate) fn lost(&self) -> u64 {
        self.faults.lost
    }

    /// The engine's delay source, immutably (tape access).
    pub(crate) fn delays(&self) -> &DelaySource {
        &self.delays
    }

    /// The engine's delay source, mutably (the explorer scripts choice
    /// assignments and enables recording through this).
    pub(crate) fn delays_mut(&mut self) -> &mut DelaySource {
        &mut self.delays
    }

    /// Feeds the engine's complete observable state into `h` — the
    /// canonical fingerprint the explorer dedups converged branches on.
    ///
    /// Two states hash equal exactly when their futures are
    /// indistinguishable, so the sweep is **time-shift invariant**: it
    /// excludes absolute virtual time (`overhead.virtual_time`, the
    /// wheel cursor — pending events hash at cursor-relative arrival
    /// times) and everything that merely records the past (the delay
    /// tape, the fault log). Everything else goes in: pulse counters,
    /// protocol and RNG state, queued application messages, in-flight
    /// events, staged inboxes, synchronizer gates, fault-plane state,
    /// and the payload ledger.
    ///
    /// Sound for [`FaultModel::None`] and [`FaultModel::Drop`] only:
    /// their fault streams are position-indexed, while `LinkFlap`'s drop
    /// decisions read absolute time — the explorer rejects the rest.
    /// Churn state is deliberately not hashed: the explorer rejects
    /// every model but [`ChurnModel::None`] (membership schedules are
    /// pulse-indexed, like `Crash`), and under `None` the overlay,
    /// log and timeline are constant for the whole run.
    pub(crate) fn explore_hash<H: std::hash::Hasher>(&self, h: &mut H)
    where
        P: std::hash::Hash,
        P::Msg: std::hash::Hash,
    {
        use std::hash::Hash;
        self.executed.hash(h);
        self.budget.hash(h);
        for node in &self.nodes {
            node.pulse.hash(h);
            node.done.hash(h);
            node.protocol.hash(h);
            node.rng.hash(h);
        }
        for port in 0..self.queues.port_count() as u32 {
            self.queues.len(port).hash(h);
            self.queues.for_each(port, |msg| msg.hash(h));
        }
        self.events.for_each_pending(|rel, event| {
            rel.hash(h);
            event.hash(h);
        });
        for slot in 0..self.inboxes.port_count() as u32 {
            self.inboxes.len(slot).hash(h);
            self.inboxes.for_each(slot, |entry| entry.hash(h));
        }
        self.sync.hash(h);
        self.faults.sampler.hash(h);
        self.faults.down.hash(h);
        self.faults.lost.hash(h);
        self.faults.crash_seen.hash(h);
        self.metrics.hash(h);
        self.per_pulse.hash(h);
        self.overhead.control_messages.hash(h);
        self.overhead.control_bits.hash(h);
        self.overhead.retransmissions.hash(h);
        self.overhead.dropped_messages.hash(h);
    }
}

impl<P: Protocol> std::fmt::Debug for AsyncNetwork<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncNetwork")
            .field("nodes", &self.nodes.len())
            .field("delay", &self.delays.delay_model())
            .field("sync", &self.sync.model())
            .field("fault", &self.faults.model())
            .field("churn", &self.churn.model())
            .field("pulses", &self.executed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::session::{Engine, Session};
    use graphs::GraphBuilder;

    const SYNC_MODELS: [SyncModel; 2] = [SyncModel::Alpha, SyncModel::BatchedAlpha];

    fn uniform(max_delay: u64) -> Engine {
        Engine::Async {
            delay: DelayModel::Uniform { max_delay },
            sync: SyncModel::Alpha,
            fault: FaultModel::None,
            churn: ChurnModel::None,
        }
    }

    /// Flooding protocol identical to the synchronous test suite's.
    #[derive(Debug)]
    struct Flood {
        is_source: bool,
        heard_at: Option<u64>,
        forwarded: bool,
    }

    #[derive(Clone, Debug)]
    struct Rumor;
    impl Message for Rumor {
        fn bit_size(&self) -> usize {
            1
        }
    }

    impl Protocol for Flood {
        type Msg = Rumor;
        type Output = Option<u64>;
        fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
            if self.is_source {
                self.heard_at = Some(0);
                self.forwarded = true;
                ctx.broadcast(Rumor);
            }
        }
        fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
            if !inbox.is_empty() && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round());
                if !self.forwarded {
                    self.forwarded = true;
                    ctx.broadcast(Rumor);
                }
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> Option<u64> {
            self.heard_at
        }
    }

    fn ring_with_chords(n: usize) -> graphs::Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.add_edge(0, n / 2);
        b.build()
    }

    fn make(e: &Endpoint) -> Flood {
        Flood { is_source: e.index == 3, heard_at: None, forwarded: false }
    }

    #[test]
    fn async_flood_equals_sync_flood() {
        let g = ring_with_chords(24);
        let (sync_out, sync_report) =
            Session::on(&g).seed(11).limits(RunLimits::rounds(40)).run_with(make);

        for max_delay in [1u64, 7, 31] {
            for sync in SYNC_MODELS {
                let (async_out, report) = Session::on(&g)
                    .seed(11)
                    .engine(Engine::Async {
                        delay: DelayModel::Uniform { max_delay },
                        sync,
                        fault: FaultModel::None,
                        churn: ChurnModel::None,
                    })
                    .limits(RunLimits::rounds(40))
                    .run_with(make);
                assert_eq!(async_out, sync_out, "max_delay = {max_delay}, {sync:?}");
                assert!(report.overhead.virtual_time > 0);
                // Payload-side metrics agree with the synchronous engine's.
                assert_eq!(report.metrics.messages, sync_report.metrics.messages);
                assert_eq!(report.metrics.total_bits, sync_report.metrics.total_bits);
                assert_eq!(report.metrics.max_message_bits, sync_report.metrics.max_message_bits);
            }
        }
    }

    #[test]
    fn synchronizer_overhead_accounted() {
        let g = graphs::Graph::complete(6);
        let make =
            |e: &Endpoint| Flood { is_source: e.index == 0, heard_at: None, forwarded: false };
        let (_, report) =
            Session::on(&g).seed(2).engine(uniform(4)).limits(RunLimits::rounds(10)).run_with(make);
        // α sends one Ack per payload and Safe to every neighbor every
        // pulse: control dominates payloads.
        assert!(report.overhead.control_messages > report.metrics.messages);
        assert!(report.total_bits() > report.metrics.total_bits);
        assert_eq!(report.rounds, 10);
        assert_eq!(report.termination, Termination::RoundLimit);
    }

    #[test]
    fn batched_alpha_pays_less_control_than_alpha() {
        let g = ring_with_chords(24);
        let run = |sync| {
            Session::on(&g)
                .seed(9)
                .engine(Engine::Async {
                    delay: DelayModel::Uniform { max_delay: 5 },
                    sync,
                    fault: FaultModel::None,
                    churn: ChurnModel::None,
                })
                .limits(RunLimits::rounds(30))
                .run_with(make)
        };
        let (alpha_out, alpha) = run(SyncModel::Alpha);
        let (batched_out, batched) = run(SyncModel::BatchedAlpha);
        assert_eq!(alpha_out, batched_out, "synchronizers must agree on outputs");
        assert_eq!(alpha.metrics, batched.metrics, "payload ledger is synchronizer-invariant");
        // The whole point of the batched control plane: a flood run is
        // mostly empty pulses, where α floods Safe per edge and the
        // batched wave pays one message per node.
        assert!(
            batched.overhead.control_messages * 2 <= alpha.overhead.control_messages,
            "batched {} vs alpha {}",
            batched.overhead.control_messages,
            alpha.overhead.control_messages
        );
        assert!(batched.overhead.control_bits < alpha.overhead.control_bits);
    }

    #[test]
    fn fully_loaded_pulses_need_no_batched_control_messages() {
        // Every directed edge carries a payload every pulse, so every
        // edge token is piggybacked and no Safe wave is ever posted.
        struct EchoAll;
        impl Protocol for EchoAll {
            type Msg = Rumor;
            type Output = ();
            fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
                ctx.broadcast(Rumor);
            }
            fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
                for &(port, _) in inbox {
                    ctx.send(port, Rumor);
                }
            }
            fn is_idle(&self) -> bool {
                true
            }
            fn output(&self) {}
        }
        let g = ring_with_chords(12);
        let (_, report) = Session::on(&g)
            .seed(4)
            .engine(Engine::Async {
                delay: DelayModel::Uniform { max_delay: 3 },
                sync: SyncModel::BatchedAlpha,
                fault: FaultModel::None,
                churn: ChurnModel::None,
            })
            .limits(RunLimits::rounds(16))
            .run_with(|_| EchoAll);
        assert_eq!(report.overhead.control_messages, 0);
        assert!(report.metrics.messages > 0);
    }

    #[test]
    fn degree_zero_nodes_do_not_deadlock() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1); // node 2 isolated
        let g = b.build();
        let make =
            |e: &Endpoint| Flood { is_source: e.index == 0, heard_at: None, forwarded: false };
        for sync in SYNC_MODELS {
            let (out, _) = Session::on(&g)
                .seed(3)
                .engine(Engine::Async {
                    delay: DelayModel::Uniform { max_delay: 3 },
                    sync,
                    fault: FaultModel::None,
                    churn: ChurnModel::None,
                })
                .limits(RunLimits::rounds(5))
                .run_with(make);
            assert_eq!(out[1], Some(1), "{sync:?}");
            assert_eq!(out[2], None, "{sync:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ring_with_chords(16);
        let make =
            |e: &Endpoint| Flood { is_source: e.index == 0, heard_at: None, forwarded: false };
        for sync in SYNC_MODELS {
            let run = |seed| {
                Session::on(&g)
                    .seed(seed)
                    .engine(Engine::Async {
                        delay: DelayModel::Uniform { max_delay: 9 },
                        sync,
                        fault: FaultModel::None,
                        churn: ChurnModel::None,
                    })
                    .limits(RunLimits::rounds(30))
                    .run_with(make)
            };
            let (a, ra) = run(7);
            let (b, rb) = run(7);
            assert_eq!(a, b);
            assert_eq!(ra.overhead, rb.overhead);
            assert_eq!(ra.metrics, rb.metrics);
        }
    }

    #[test]
    fn zero_budget_drive_still_initializes() {
        let g = ring_with_chords(8);
        let mut net = AsyncNetwork::build_with(
            &g,
            4,
            DelayModel::Uniform { max_delay: 3 },
            SyncModel::Alpha,
            FaultModel::None,
            ChurnModel::None,
            IdAssignment::Hashed,
            make,
        );
        let report = net.drive(RunLimits::rounds(0), &mut ());
        assert_eq!(report.rounds, 0);
        // Protocol init ran (as on the synchronous engines): the source
        // already knows the rumor at round 0.
        assert_eq!(net.outputs()[3], Some(0));
        // A later drive enters pulse 1 as if the zero-budget call had
        // never happened.
        net.drive(RunLimits::rounds(20), &mut ());
        let (full, _) =
            Session::on(&g).seed(4).engine(uniform(3)).limits(RunLimits::rounds(20)).run_with(make);
        assert_eq!(net.outputs(), full);
    }

    #[test]
    fn split_budget_equals_one_budget() {
        let g = ring_with_chords(20);
        for sync in SYNC_MODELS {
            let build = || {
                AsyncNetwork::build_with(
                    &g,
                    5,
                    DelayModel::Uniform { max_delay: 6 },
                    sync,
                    FaultModel::None,
                    ChurnModel::None,
                    IdAssignment::Hashed,
                    make,
                )
            };
            let mut split = build();
            split.drive(RunLimits::rounds(4), &mut ());
            let split_report = split.drive(RunLimits::rounds(26), &mut ());

            let mut whole = build();
            let whole_report = whole.drive(RunLimits::rounds(30), &mut ());

            assert_eq!(split.outputs(), whole.outputs(), "{sync:?}");
            assert_eq!(split_report.rounds, whole_report.rounds, "{sync:?}");
            // Overheads are not compared: resuming re-enters all nodes at
            // once, which reorders the shared delay-draw stream and with
            // it the virtual times (outputs and the payload ledger are
            // order-blind by design).
            assert_eq!(split_report.metrics, whole_report.metrics, "{sync:?}");
        }
    }

    /// A staged protocol: sends one wave per phase, advances phases at
    /// the barrier, records (wave, round) per delivery.
    #[derive(Debug)]
    struct Staged {
        wave: u32,
        waves: u32,
        heard: Vec<(u32, u64)>,
    }

    #[derive(Clone, Debug)]
    struct Tagged(u32);
    impl Message for Tagged {
        fn bit_size(&self) -> usize {
            8
        }
    }

    impl Protocol for Staged {
        type Msg = Tagged;
        type Output = Vec<(u32, u64)>;
        fn init(&mut self, ctx: &mut Context<'_, Tagged>) {
            ctx.broadcast(Tagged(0));
        }
        fn step(&mut self, ctx: &mut Context<'_, Tagged>, inbox: &[(Port, Tagged)]) {
            for (_, Tagged(w)) in inbox {
                self.heard.push((*w, ctx.round()));
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn on_quiescent(&mut self, ctx: &mut Context<'_, Tagged>) -> bool {
            self.wave += 1;
            if self.wave < self.waves {
                ctx.broadcast(Tagged(self.wave));
                true
            } else {
                false
            }
        }
        fn output(&self) -> Vec<(u32, u64)> {
            self.heard.clone()
        }
    }

    #[test]
    fn phased_run_matches_the_synchronous_quiescence_barriers() {
        let g = ring_with_chords(12);
        let make_staged = |_: &Endpoint| Staged { wave: 0, waves: 3, heard: Vec::new() };

        // Synchronous ground truth: each wave is one round, then the
        // quiescence barrier grants the next phase.
        let (sync_out, sync_report) = Session::on(&g).seed(8).run_with(make_staged);
        assert_eq!(sync_report.termination, Termination::Quiescent);
        assert_eq!(sync_report.metrics.barriers, 2);

        // The §4.1 schedule for that execution: three one-pulse phases.
        let plan = PhasePlan::new().phase("wave0", 1).phase("wave1", 1).phase("wave2", 1);
        for delay in [
            DelayModel::Uniform { max_delay: 5 },
            DelayModel::PerLink { max_delay: 5 },
            DelayModel::HeavyTailed { max_delay: 5 },
            DelayModel::Adversarial { max_delay: 5 },
        ] {
            for sync in SYNC_MODELS {
                let mut net = AsyncNetwork::build_with(
                    &g,
                    8,
                    delay,
                    sync,
                    FaultModel::None,
                    ChurnModel::None,
                    IdAssignment::Hashed,
                    make_staged,
                );
                let report = net.run_phases(&plan, &mut ());
                assert_eq!(net.outputs(), sync_out, "{delay:?}, {sync:?}");
                assert_eq!(report.termination, Termination::Quiescent, "{delay:?}, {sync:?}");
                assert_eq!(report.metrics, sync_report.metrics, "{delay:?}, {sync:?}");
                if sync == SyncModel::Alpha {
                    // Fully-broadcast waves load every port, so batched α
                    // legitimately pays zero control messages here.
                    assert!(report.overhead.control_messages > 0, "{delay:?}");
                }
            }
        }
    }

    #[test]
    fn under_budgeted_plan_reports_round_limit() {
        let g = ring_with_chords(10);
        let make_staged = |_: &Endpoint| Staged { wave: 0, waves: 4, heard: Vec::new() };
        // Only two of the four waves are scheduled: the closing barrier
        // still wants to resume, so the plan ran out of schedule.
        let plan = PhasePlan::new().phase("wave0", 1).phase("wave1", 1);
        let mut net = AsyncNetwork::build_with(
            &g,
            2,
            DelayModel::Uniform { max_delay: 3 },
            SyncModel::Alpha,
            FaultModel::None,
            ChurnModel::None,
            IdAssignment::Hashed,
            make_staged,
        );
        let report = net.run_phases(&plan, &mut ());
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.metrics.barriers, 2, "both scheduled barriers were taken");
    }
}
