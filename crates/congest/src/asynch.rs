//! Asynchronous execution via synchronizer α.
//!
//! The paper assumes the synchronous model and notes (§2) that, absent
//! crashes, "any synchronous algorithm can be executed in an asynchronous
//! environment using a synchronizer" (Awerbuch \[3\]). This module makes
//! that claim executable: an event-driven asynchronous network with
//! arbitrary (seeded) link delays, plus the classic **synchronizer α**
//! wrapper:
//!
//! * every payload is tagged with its pulse and acknowledged on receipt;
//! * a node is *safe* for pulse `r` once all its pulse-`r` payloads are
//!   acknowledged, and then tells its neighbors;
//! * a node executes pulse `r` once every neighbor is safe for `r` — at
//!   which point all pulse-`r` payloads addressed to it have arrived.
//!
//! [`run_synchronized`] drives a synchronous [`Protocol`] for a fixed
//! pulse budget (the paper's deterministic time-bound wrapper, §4.1, is
//! exactly such a budget) and returns outputs plus an [`AsyncReport`]
//! with virtual-time and message-overhead accounting. The headline
//! property — asynchronous outputs are **identical** to the synchronous
//! simulator's — is pinned by tests here and used by the test suite on
//! the shingles protocol.
//!
//! Scope note: protocols that rely on the simulator's quiescence barrier
//! (`Protocol::on_quiescent`), like the staged `DistNearClique`, are out
//! of scope for this wrapper — in a real asynchronous deployment each of
//! their phases would get its own pulse budget, which is precisely the
//! §4.1 wrapper this module's `pulse_budget` models for single-phase
//! protocols.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use graphs::Graph;
use rand::rngs::StdRng;

use crate::message::Message;
use crate::network::IdAssignment;
use crate::protocol::{Context, Endpoint, Outbox, OutboxHandle, Port, Protocol};
use crate::rng::{node_rng, splitmix64};

/// Control/payload envelope of synchronizer α.
#[derive(Clone, Debug)]
enum SyncMsg<M> {
    /// An application message to be consumed at `pulse`.
    Payload { pulse: u64, msg: M },
    /// Receipt acknowledgment for one pulse-`pulse` payload.
    Ack { pulse: u64 },
    /// "All my pulse-`pulse` payloads are acknowledged."
    Safe { pulse: u64 },
}

const PULSE_BITS: usize = 32;

impl<M: Message> SyncMsg<M> {
    fn bit_size(&self) -> usize {
        match self {
            SyncMsg::Payload { msg, .. } => crate::TAG_BITS + PULSE_BITS + msg.bit_size(),
            SyncMsg::Ack { .. } | SyncMsg::Safe { .. } => crate::TAG_BITS + PULSE_BITS,
        }
    }
}

/// Configuration of the asynchronous executor.
#[derive(Clone, Copy, Debug)]
pub struct AsyncConfig {
    /// Master seed: drives node RNG streams, ID assignment and link
    /// delays.
    pub seed: u64,
    /// Each message's delay is drawn uniformly from `1..=max_delay`
    /// virtual time units (deterministically from the seed).
    pub max_delay: u64,
    /// Number of pulses to execute (the deterministic time-bound wrapper).
    pub pulse_budget: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self { seed: 0, max_delay: 16, pulse_budget: 64 }
    }
}

/// Resource accounting of one asynchronous run.
#[derive(Clone, Debug, Default)]
pub struct AsyncReport {
    /// Pulses each node completed (= the configured budget).
    pub pulses: u64,
    /// Largest event timestamp (virtual time at completion).
    pub virtual_time: u64,
    /// Application payloads delivered.
    pub payload_messages: u64,
    /// Ack + Safe control messages delivered (the synchronizer overhead).
    pub control_messages: u64,
    /// Total delivered bits, envelopes included.
    pub total_bits: u64,
    /// Widest delivered message in bits.
    pub max_message_bits: usize,
}

struct SyncNode<P: Protocol> {
    endpoint: Endpoint,
    inner: P,
    outbox: Outbox<P::Msg>,
    rng: StdRng,
    /// The pulse this node is currently *waiting to execute* (1-based).
    pulse: u64,
    /// Unacknowledged payloads of the current pulse's send phase.
    pending_acks: usize,
    /// Whether `Safe` for the current pulse's sends has been emitted.
    safe_sent: bool,
    /// Count of neighbors known safe, per pulse.
    safe_counts: BTreeMap<u64, usize>,
    /// Buffered payloads per pulse, as (port, msg).
    inbox_by_pulse: BTreeMap<u64, Vec<(Port, P::Msg)>>,
    /// Acks that raced ahead (for sends of a pulse this node has not
    /// entered yet — impossible under FIFO delays, kept for safety).
    done: bool,
}

/// The event-driven executor.
struct Engine<P: Protocol> {
    nodes: Vec<SyncNode<P>>,
    /// `links[u][port] = (v, back_port)`.
    links: Vec<Vec<(usize, usize)>>,
    queue: BinaryHeap<Reverse<(u64, u64, usize, usize)>>,
    /// Message payloads parked by event sequence id.
    parked: BTreeMap<u64, SyncMsg<P::Msg>>,
    seq: u64,
    delay_state: u64,
    max_delay: u64,
    budget: u64,
    report: AsyncReport,
}

impl<P: Protocol> Engine<P> {
    fn delay(&mut self) -> u64 {
        self.delay_state = splitmix64(self.delay_state);
        1 + self.delay_state % self.max_delay
    }

    fn send(&mut self, now: u64, from: usize, port: Port, msg: SyncMsg<P::Msg>) {
        let (to, back_port) = self.links[from][port];
        let at = now + self.delay();
        let seq = self.seq;
        self.seq += 1;
        self.parked.insert(seq, msg);
        self.queue.push(Reverse((at, seq, to, back_port)));
    }

    /// Transition `node` into its next pulse: drain one application
    /// message per port (CONGEST pipelining) and send the payloads, then
    /// emit `Safe` immediately if nothing was sent.
    fn begin_pulse(&mut self, now: u64, v: usize) {
        let pulse = self.nodes[v].pulse;
        let ports: Vec<Port> = self.nodes[v].outbox.nonempty_ports().to_vec();
        let mut sent = 0usize;
        for port in ports {
            if let Some(msg) = self.nodes[v].outbox.pop(port) {
                self.send(now, v, port, SyncMsg::Payload { pulse, msg });
                sent += 1;
            }
        }
        self.nodes[v].pending_acks = sent;
        self.nodes[v].safe_sent = false;
        self.try_announce_safe(now, v);
        self.try_execute_pulse(now, v);
    }

    fn try_announce_safe(&mut self, now: u64, v: usize) {
        if self.nodes[v].safe_sent || self.nodes[v].pending_acks > 0 {
            return;
        }
        self.nodes[v].safe_sent = true;
        let pulse = self.nodes[v].pulse;
        for port in 0..self.nodes[v].endpoint.degree() {
            self.send(now, v, port, SyncMsg::Safe { pulse });
        }
        self.try_execute_pulse(now, v);
    }

    /// Execute pulse `r` once every neighbor reported safe for `r` and we
    /// are safe ourselves (degree-0 nodes are trivially ready).
    fn try_execute_pulse(&mut self, now: u64, v: usize) {
        let node = &mut self.nodes[v];
        if node.done || !node.safe_sent {
            return;
        }
        let pulse = node.pulse;
        let needed = node.endpoint.degree();
        let have = node.safe_counts.get(&pulse).copied().unwrap_or(0);
        if have < needed {
            return;
        }
        node.safe_counts.remove(&pulse);
        let mut inbox = node.inbox_by_pulse.remove(&pulse).unwrap_or_default();
        inbox.sort_by_key(|&(port, _)| port);
        {
            let mut ctx = Context {
                endpoint: &node.endpoint,
                round: pulse,
                outbox: OutboxHandle::Owned(&mut node.outbox),
                rng: &mut node.rng,
            };
            node.inner.step(&mut ctx, &inbox);
        }
        if pulse >= self.budget {
            self.nodes[v].done = true;
            return;
        }
        self.nodes[v].pulse = pulse + 1;
        self.begin_pulse(now, v);
    }

    fn handle(&mut self, now: u64, seq: u64, to: usize, port: Port) {
        let msg = self.parked.remove(&seq).expect("parked message exists");
        let bits = msg.bit_size();
        self.report.total_bits += bits as u64;
        self.report.max_message_bits = self.report.max_message_bits.max(bits);
        self.report.virtual_time = self.report.virtual_time.max(now);
        match msg {
            SyncMsg::Payload { pulse, msg } => {
                self.report.payload_messages += 1;
                // A payload tagged r was drained by the sender on entering
                // pulse r — exactly what the synchronous simulator
                // delivers in round r — so it is consumed at pulse r.
                self.nodes[to].inbox_by_pulse.entry(pulse).or_default().push((port, msg));
                self.send(now, to, port, SyncMsg::Ack { pulse });
            }
            SyncMsg::Ack { pulse } => {
                self.report.control_messages += 1;
                debug_assert_eq!(pulse, self.nodes[to].pulse, "ack for a stale pulse");
                self.nodes[to].pending_acks -= 1;
                self.try_announce_safe(now, to);
            }
            SyncMsg::Safe { pulse } => {
                self.report.control_messages += 1;
                // Safe{r} from a neighbor certifies all its pulse-r
                // payloads arrived; it gates the receiver's own pulse r.
                *self.nodes[to].safe_counts.entry(pulse).or_default() += 1;
                self.try_execute_pulse(now, to);
            }
        }
    }
}

/// Runs `factory`-built protocols over an asynchronous network under
/// synchronizer α for `config.pulse_budget` pulses, returning per-node
/// outputs and the resource report.
///
/// Outputs are identical to running the same protocol on the synchronous
/// [`crate::Network`] for the same number of rounds with the same seed —
/// the Awerbuch reduction, executed.
///
/// # Panics
///
/// Panics if `config.max_delay == 0` or `config.pulse_budget == 0`.
pub fn run_synchronized<P, F>(
    graph: &Graph,
    config: AsyncConfig,
    mut factory: F,
) -> (Vec<P::Output>, AsyncReport)
where
    P: Protocol,
    F: FnMut(&Endpoint) -> P,
{
    assert!(config.max_delay >= 1, "max_delay must be at least 1");
    assert!(config.pulse_budget >= 1, "pulse_budget must be at least 1");

    // Same hashed ID assignment as the synchronous builder, so protocols
    // observe identical endpoints.
    let n = graph.node_count();
    let ids: Vec<u64> = match IdAssignment::Hashed {
        IdAssignment::Sequential => (0..n as u64).collect(),
        IdAssignment::Hashed => (0..n)
            .map(|i| splitmix64(splitmix64(config.seed ^ 0x1D_5EED).wrapping_add(i as u64)))
            .collect(),
    };

    let mut links: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
    for u in 0..n {
        links.push(
            graph
                .neighbors(u)
                .iter()
                .map(|&v| {
                    let back = graph.neighbors(v).binary_search(&u).expect("symmetric adjacency");
                    (v, back)
                })
                .collect(),
        );
    }

    let nodes: Vec<SyncNode<P>> = (0..n)
        .map(|u| {
            let endpoint = Endpoint {
                index: u,
                id: ids[u],
                neighbor_ids: graph.neighbors(u).iter().map(|&v| ids[v]).collect(),
            };
            let inner = factory(&endpoint);
            let outbox = Outbox::new(endpoint.degree());
            SyncNode {
                endpoint,
                inner,
                outbox,
                rng: node_rng(config.seed, u),
                pulse: 1,
                pending_acks: 0,
                safe_sent: false,
                safe_counts: BTreeMap::new(),
                inbox_by_pulse: BTreeMap::new(),
                done: false,
            }
        })
        .collect();

    let mut engine = Engine {
        nodes,
        links,
        queue: BinaryHeap::new(),
        parked: BTreeMap::new(),
        seq: 0,
        delay_state: splitmix64(config.seed ^ 0xA57_DE1A),
        max_delay: config.max_delay,
        budget: config.pulse_budget,
        report: AsyncReport { pulses: config.pulse_budget, ..AsyncReport::default() },
    };

    // Init every inner protocol, then enter pulse 1.
    for v in 0..n {
        let node = &mut engine.nodes[v];
        let mut ctx = Context {
            endpoint: &node.endpoint,
            round: 0,
            outbox: OutboxHandle::Owned(&mut node.outbox),
            rng: &mut node.rng,
        };
        node.inner.init(&mut ctx);
    }
    for v in 0..n {
        engine.begin_pulse(0, v);
    }

    while let Some(Reverse((now, seq, to, port))) = engine.queue.pop() {
        engine.handle(now, seq, to, port);
    }

    debug_assert!(
        engine.nodes.iter().all(|s| s.done || s.endpoint.degree() == 0),
        "all connected nodes must finish their pulse budget"
    );
    let outputs = engine.nodes.iter().map(|s| s.inner.output()).collect();
    (outputs, engine.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::network::{NetworkBuilder, RunLimits};
    use graphs::GraphBuilder;

    /// Flooding protocol identical to the synchronous test suite's.
    #[derive(Debug)]
    struct Flood {
        is_source: bool,
        heard_at: Option<u64>,
        forwarded: bool,
    }

    #[derive(Clone, Debug)]
    struct Rumor;
    impl Message for Rumor {
        fn bit_size(&self) -> usize {
            1
        }
    }

    impl Protocol for Flood {
        type Msg = Rumor;
        type Output = Option<u64>;
        fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
            if self.is_source {
                self.heard_at = Some(0);
                self.forwarded = true;
                ctx.broadcast(Rumor);
            }
        }
        fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
            if !inbox.is_empty() && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round());
                if !self.forwarded {
                    self.forwarded = true;
                    ctx.broadcast(Rumor);
                }
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> Option<u64> {
            self.heard_at
        }
    }

    fn ring_with_chords(n: usize) -> graphs::Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.add_edge(0, n / 2);
        b.build()
    }

    #[test]
    fn async_flood_equals_sync_flood() {
        let g = ring_with_chords(24);
        let make =
            |e: &Endpoint| Flood { is_source: e.index == 3, heard_at: None, forwarded: false };

        let mut sync_net = NetworkBuilder::new().seed(11).build_with(&g, make);
        sync_net.run(RunLimits::rounds(40));
        let sync_out = sync_net.outputs();

        for max_delay in [1u64, 7, 31] {
            let (async_out, report) =
                run_synchronized(&g, AsyncConfig { seed: 11, max_delay, pulse_budget: 40 }, make);
            assert_eq!(async_out, sync_out, "max_delay = {max_delay}");
            assert!(report.virtual_time > 0);
        }
    }

    #[test]
    fn synchronizer_overhead_accounted() {
        let g = graphs::Graph::complete(6);
        let make =
            |e: &Endpoint| Flood { is_source: e.index == 0, heard_at: None, forwarded: false };
        let (_, report) =
            run_synchronized(&g, AsyncConfig { seed: 2, max_delay: 4, pulse_budget: 10 }, make);
        // α sends one Ack per payload and Safe to every neighbor every
        // pulse: control dominates payloads.
        assert!(report.control_messages > report.payload_messages);
        assert!(report.total_bits > 0);
        assert_eq!(report.pulses, 10);
    }

    #[test]
    fn degree_zero_nodes_do_not_deadlock() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1); // node 2 isolated
        let g = b.build();
        let make =
            |e: &Endpoint| Flood { is_source: e.index == 0, heard_at: None, forwarded: false };
        let (out, _) =
            run_synchronized(&g, AsyncConfig { seed: 3, max_delay: 3, pulse_budget: 5 }, make);
        assert_eq!(out[1], Some(1));
        assert_eq!(out[2], None);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ring_with_chords(16);
        let make =
            |e: &Endpoint| Flood { is_source: e.index == 0, heard_at: None, forwarded: false };
        let run =
            |seed| run_synchronized(&g, AsyncConfig { seed, max_delay: 9, pulse_budget: 30 }, make);
        let (a, ra) = run(7);
        let (b, rb) = run(7);
        assert_eq!(a, b);
        assert_eq!(ra.virtual_time, rb.virtual_time);
        assert_eq!(ra.total_bits, rb.total_bits);
    }
}
