//! The flat message plane: CSR topology, slab-backed port queues, and the
//! sharded delivery machinery behind [`crate::Network`].
//!
//! # Layout
//!
//! Every directed edge `(u, v)` is a *slot*: a dense `u32` id assigned in
//! CSR order (`slot = offsets[u] + port`), mirroring [`graphs::Graph`]'s
//! own layout. Delivery routing collapses into a single flat array,
//! [`Topology::route`]: indexed by the sender's slot, one 12-byte record
//! carries the destination slot, destination node, and destination shard
//! — phase A performs no pointer chasing and no random lookups at all
//! (sender slots are visited in order).
//!
//! # Queues
//!
//! Outgoing per-port FIFOs live in a per-shard slab: fixed-size chunks of
//! messages strung on intrusive `u32` links, recycled through a free
//! list. Per-port state is one 16-byte [`PortQ`]; pushes and pops never
//! allocate once the chunk pool is warm. Non-empty ports are tracked in a
//! bitset whose scan order *is* port order, so delivery costs `O(active
//! ports)` with no sorted-insert on push (the old engine's `Outbox` paid
//! `O(degree)` per first push on a port).
//!
//! # Delivery without a global sort
//!
//! Messages arrive grouped by **sender** and must be consumed grouped by
//! **receiver** — a transpose of the round's whole message volume, which
//! for large rounds is memory-bound. Instead of sorting the full entries
//! (a naive global sort moves every payload `O(log k)` times), each
//! receiver shard runs a counting pass over its incoming buffers, prefix-
//! sums per-node bucket offsets, places every message exactly once into a
//! flat per-round buffer, and then sorts each node's *small* bucket by
//! `(port, train index)` — an in-cache sort whose keys are unique, so
//! `sort_unstable` is deterministic. Protocols step directly on the
//! bucket slices; there are no per-node inbox vectors to fill or clear.
//!
//! This is what makes `parallel(1)` and `parallel(k)` runs bit-identical:
//! bucket contents depend only on (receiver, port, train index), never on
//! which shard produced a message or in which order buffers drained.

use graphs::{EdgeStream, Graph};

use crate::message::Message;
use crate::protocol::Port;

/// Messages per chunk. Eight keeps a chunk of small messages within one or
/// two cache lines while bounding per-queue slack to seven slots.
pub(crate) const CHUNK: usize = 8;

/// Null link / "no chunk" marker.
const NIL: u32 = u32::MAX;

/// A delivery record produced by phase A: routing key plus payload. The
/// key packs `(destination slot << 32) | intra-train index` — unique per
/// round. The second field is the destination node (precomputed so the
/// receiver never does a random owner lookup).
pub(crate) type Entry<M> = (u64, u32, M);

/// Routing record for one directed port, indexed by *sender* slot.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Route {
    /// The same physical edge seen from the receiving side.
    pub dest_slot: u32,
    /// The node owning `dest_slot`.
    pub dest_node: u32,
    /// The shard owning `dest_node`.
    pub dest_shard: u16,
}

/// Flattened CSR topology of the network, shared read-only by all shards.
///
/// Exactly two arrays: `n + 1` port-range offsets and one 12-byte
/// `Route` record per directed port. This is the entire per-topology
/// routing state of the flat engine — [`Topology::heap_bytes`] reports
/// its size, and the scale tier budgets against it.
///
/// Constructed either from a materialized [`Graph`]
/// ([`Topology::from_graph`]) or directly from a restartable
/// [`EdgeStream`] ([`Topology::from_edge_stream`]) without ever holding
/// an intermediate edge list.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Port-range offsets per node, length `n + 1`; `offsets[n]` is the
    /// total number of directed ports (2m).
    pub(crate) offsets: Box<[u32]>,
    /// Routing record per directed port, indexed by sender slot.
    pub(crate) route: Box<[Route]>,
}

impl Topology {
    /// Builds the flat tables for `graph`, sharded into `shards` node
    /// ranges (each spanning `ceil(n / shards)` consecutive nodes — the
    /// same split [`crate::NetworkBuilder::parallel`] uses).
    ///
    /// # Panics
    ///
    /// Panics if the graph has ≥ `u32::MAX` directed edges or `shards`
    /// exceeds `u16::MAX`.
    #[must_use]
    pub fn from_graph(graph: &Graph, shards: usize) -> Self {
        let chunk = graph.node_count().div_ceil(shards.max(1)).max(1);
        Self::build(graph, chunk, shards)
    }

    /// Builds the flat tables directly from a restartable [`EdgeStream`],
    /// sharded like [`Topology::from_graph`], in two counted passes:
    /// degree counting, an in-place prefix sum, then a placement pass
    /// that writes both directions of every edge straight into the final
    /// route array. Peak memory is the final CSR plus one `u32` cursor
    /// per node — no intermediate edge list, no `Graph`.
    ///
    /// For the same instance this is bit-identical to
    /// [`Topology::from_graph`] on the materialized graph: a
    /// lexicographically sorted stream delivers each node's neighbors in
    /// increasing order, which is exactly the CSR slot order.
    ///
    /// # Panics
    ///
    /// Panics if the stream yields ≥ `u32::MAX` directed edges, `shards`
    /// exceeds `u16::MAX`, or the stream violates its contract (edges
    /// not strictly sorted / out of range, or the replay pass disagrees
    /// with the counting pass).
    #[must_use]
    pub fn from_edge_stream(stream: &mut dyn EdgeStream, shards: usize) -> Self {
        let chunk = stream.node_count().div_ceil(shards.max(1)).max(1);
        Self::build_from_stream(stream, chunk, shards)
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed ports (2m).
    #[must_use]
    pub fn port_count(&self) -> usize {
        self.route.len()
    }

    /// Heap bytes held by the routing tables: `4(n + 1)` for the offsets
    /// plus 12 per directed port.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.route.len() * std::mem::size_of::<Route>()
    }

    /// [`Topology::from_graph`] with an explicit shard span (the engine
    /// passes its own `chunk` so topology and node sharding agree).
    pub(crate) fn build(graph: &Graph, chunk: usize, shards: usize) -> Self {
        let n = graph.node_count();
        assert!(shards <= u16::MAX as usize, "shard count {shards} exceeds u16 range");
        let total: usize = (0..n).map(|u| graph.degree(u)).sum();
        assert!(
            (total as u64) < u64::from(u32::MAX),
            "graph has {total} directed edges; flat plane is limited to u32 slots"
        );

        let mut offsets = vec![0u32; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + graph.degree(u) as u32;
        }
        let mut route = vec![Route::default(); total];
        for u in 0..n {
            for (port, &v) in graph.neighbors(u).iter().enumerate() {
                let slot = offsets[u] as usize + port;
                let back = graph
                    .neighbors(v)
                    .binary_search(&u)
                    .expect("undirected graph must be symmetric");
                route[slot] = Route {
                    dest_slot: offsets[v] + back as u32,
                    dest_node: v as u32,
                    dest_shard: v.checked_div(chunk).unwrap_or(0) as u16,
                };
            }
        }
        Self { offsets: offsets.into_boxed_slice(), route: route.into_boxed_slice() }
    }

    /// [`Topology::from_edge_stream`] with an explicit shard span.
    pub(crate) fn build_from_stream(
        stream: &mut dyn EdgeStream,
        chunk: usize,
        shards: usize,
    ) -> Self {
        let n = stream.node_count();
        assert!(shards <= u16::MAX as usize, "shard count {shards} exceeds u16 range");

        // Pass 1: count degrees into offsets[w + 1]. The sortedness
        // assert doubles as a uniqueness check (strictly increasing pairs
        // cannot repeat), so no dedup structure is ever needed.
        let mut offsets = vec![0u32; n + 1];
        stream.reset();
        let mut prev: Option<(usize, usize)> = None;
        let mut total: u64 = 0;
        while let Some((u, v)) = stream.next_edge() {
            assert!(u < v && v < n, "stream edge ({u}, {v}) must satisfy u < v < n = {n}");
            assert!(prev < Some((u, v)), "edge stream must be strictly lexicographically sorted");
            prev = Some((u, v));
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
            total += 2;
        }
        assert!(
            total < u64::from(u32::MAX),
            "stream has {total} directed edges; flat plane is limited to u32 slots"
        );
        for w in 0..n {
            offsets[w + 1] += offsets[w];
        }

        // Pass 2: replay the stream and place both directions of each
        // edge at its node's next free slot. Sorted replay hands every
        // node its neighbors in increasing order, so slot assignment —
        // and each record's back-pointing `dest_slot` — lands exactly
        // where `build`'s binary search would put it.
        let mut route = vec![Route::default(); total as usize];
        let mut cursor = vec![0u32; n];
        stream.reset();
        let mut placed: u64 = 0;
        while let Some((u, v)) = stream.next_edge() {
            let slot_u = offsets[u] + cursor[u];
            cursor[u] += 1;
            let slot_v = offsets[v] + cursor[v];
            cursor[v] += 1;
            debug_assert!(slot_u < offsets[u + 1] && slot_v < offsets[v + 1]);
            route[slot_u as usize] = Route {
                dest_slot: slot_v,
                dest_node: v as u32,
                dest_shard: v.checked_div(chunk).unwrap_or(0) as u16,
            };
            route[slot_v as usize] = Route {
                dest_slot: slot_u,
                dest_node: u as u32,
                dest_shard: u.checked_div(chunk).unwrap_or(0) as u16,
            };
            placed += 2;
        }
        assert_eq!(placed, total, "edge stream must replay identically on its second pass");

        Self { offsets: offsets.into_boxed_slice(), route: route.into_boxed_slice() }
    }

    /// Resolves node `from`'s local `port` to `(sender slot, destination
    /// node, destination's local port)` — the one place the CSR
    /// back-port arithmetic lives (payload and control envelopes must
    /// route identically).
    #[inline]
    pub fn resolve(&self, from: usize, port: usize) -> (usize, u32, u32) {
        let slot = self.offsets[from] as usize + port;
        let route = self.route[slot];
        let back = route.dest_slot - self.offsets[route.dest_node as usize];
        (slot, route.dest_node, back)
    }
}

/// One outgoing FIFO: a chain of chunks plus cursors. 16 bytes per port.
#[derive(Clone, Copy, Debug)]
struct PortQ {
    /// First chunk of the chain (`NIL` when empty).
    head: u32,
    /// Last chunk of the chain (`NIL` when empty).
    tail: u32,
    /// Queued message count.
    len: u32,
    /// Next slot to pop within `head`.
    head_off: u8,
    /// Next slot to fill within `tail`.
    tail_off: u8,
}

impl PortQ {
    const EMPTY: PortQ = PortQ { head: NIL, tail: NIL, len: 0, head_off: 0, tail_off: 0 };
}

/// A pooled block of queue slots.
#[derive(Clone, Debug)]
struct Chunk<M> {
    slots: [Option<M>; CHUNK],
    next: u32,
}

impl<M> Chunk<M> {
    fn new() -> Self {
        Self { slots: std::array::from_fn(|_| None), next: NIL }
    }
}

/// Per-round delivery counters, merged into [`crate::Metrics`] after the
/// parallel phases join. All fields are commutative aggregates, so the
/// merge is independent of shard count — a determinism requirement.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Delta {
    pub messages: u64,
    pub bits: u64,
    pub max_bits: usize,
}

/// Best-effort cache prefetch (no-op off x86_64). The chunk slab is the
/// one random-access structure on the delivery hot path; prefetching the
/// head chunks of a word's active ports overlaps their misses.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint with no memory effects.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

impl Delta {
    #[inline]
    fn record(&mut self, bits: usize) {
        self.messages += 1;
        self.bits += bits as u64;
        self.max_bits = self.max_bits.max(bits);
    }

    pub fn take(&mut self) -> Delta {
        std::mem::take(self)
    }
}

/// A set of slab-backed per-port FIFOs: the queue half of the flat plane,
/// shared by every engine. The synchronous [`Shard`] embeds one per node
/// range; the asynchronous executor ([`crate::asynch`]) owns a single set
/// covering the whole port space — one queue implementation, three
/// engines. The element type is unconstrained: the α engine also reuses
/// this machinery for structures that queue things other than
/// application messages (the timing wheel's in-flight envelopes and the
/// rotating per-pulse inboxes — see [`crate::sched::EventWheel`]).
#[derive(Clone, Debug)]
pub(crate) struct PortQueues<M> {
    /// Queue state per local port.
    ports: Vec<PortQ>,
    /// Chunk slab shared by all queues of this set.
    chunks: Vec<Chunk<M>>,
    /// Head of the free-chunk list.
    free_head: u32,
    /// Bitset over local ports with queued messages; scan order = port
    /// order = sender order.
    active: Vec<u64>,
    /// Total messages queued across the set (O(1) quiescence checks).
    queued: u64,
    /// Most messages ever queued at once — the occupancy high-water
    /// mark, surfaced to the observability plane.
    high_water: u64,
}

impl<M> PortQueues<M> {
    /// An empty queue set over `port_count` ports.
    pub fn new(port_count: usize) -> Self {
        Self {
            ports: vec![PortQ::EMPTY; port_count],
            chunks: Vec::new(),
            free_head: NIL,
            active: vec![0u64; port_count.div_ceil(64)],
            queued: 0,
            high_water: 0,
        }
    }

    /// Messages queued across all ports.
    #[inline]
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Most messages ever queued at once over the set's lifetime.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Messages queued on local port `p`.
    #[inline]
    pub fn len(&self, p: u32) -> u32 {
        self.ports[p as usize].len
    }

    /// Prefetches the head chunk of every active port in word `wi`,
    /// overlapping the slab's cache misses ahead of the pop loop.
    #[inline]
    fn prefetch_word_heads(&self, wi: usize) {
        let mut word = self.active[wi];
        while word != 0 {
            let p = wi * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            let head = self.ports[p].head;
            if head != NIL {
                prefetch(&self.chunks[head as usize]);
            }
        }
    }

    fn alloc_chunk(&mut self) -> u32 {
        if self.free_head != NIL {
            let c = self.free_head;
            self.free_head = self.chunks[c as usize].next;
            self.chunks[c as usize].next = NIL;
            c
        } else {
            self.chunks.push(Chunk::new());
            (self.chunks.len() - 1) as u32
        }
    }

    /// Enqueues `msg` on local port `p`. Allocates only while the chunk
    /// pool is still growing toward the steady-state watermark.
    pub fn push(&mut self, p: u32, msg: M) {
        let q = self.ports[p as usize];
        let (tail, tail_off) = if q.tail == NIL {
            let c = self.alloc_chunk();
            let q = &mut self.ports[p as usize];
            q.head = c;
            q.tail = c;
            q.head_off = 0;
            (c, 0u8)
        } else if q.tail_off as usize == CHUNK {
            let c = self.alloc_chunk();
            self.chunks[q.tail as usize].next = c;
            let q = &mut self.ports[p as usize];
            q.tail = c;
            (c, 0u8)
        } else {
            (q.tail, q.tail_off)
        };
        self.chunks[tail as usize].slots[tail_off as usize] = Some(msg);
        let q = &mut self.ports[p as usize];
        q.tail_off = tail_off + 1;
        q.len += 1;
        if q.len == 1 {
            self.active[p as usize / 64] |= 1u64 << (p % 64);
        }
        self.queued += 1;
        self.high_water = self.high_water.max(self.queued);
    }

    /// Visits port `p`'s queued messages in FIFO order **without**
    /// draining them, walking the chunk chain from the head cursor. The
    /// interleaving explorer's state fingerprint hashes queue contents
    /// through this — destructive iteration would perturb the very state
    /// being identified.
    pub fn for_each(&self, p: u32, mut f: impl FnMut(&M)) {
        let q = self.ports[p as usize];
        let mut chunk = q.head;
        let mut off = q.head_off as usize;
        let mut remaining = q.len;
        while remaining > 0 {
            let c = &self.chunks[chunk as usize];
            let msg = c.slots[off].as_ref().expect("queue cursor spans filled slots");
            f(msg);
            remaining -= 1;
            off += 1;
            if off == CHUNK && remaining > 0 {
                chunk = c.next;
                off = 0;
            }
        }
    }

    /// Number of ports in the set.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Dequeues from local port `p`, recycling exhausted chunks.
    pub fn pop(&mut self, p: u32) -> Option<M> {
        let q = self.ports[p as usize];
        if q.len == 0 {
            return None;
        }
        let msg = self.chunks[q.head as usize].slots[q.head_off as usize]
            .take()
            .expect("queue cursor points at a filled slot");
        self.queued -= 1;
        let q = &mut self.ports[p as usize];
        q.head_off += 1;
        q.len -= 1;
        if q.len == 0 {
            // Return the whole (single remaining) chain to the free list.
            let (head, tail) = (q.head, q.tail);
            *q = PortQ::EMPTY;
            self.chunks[tail as usize].next = self.free_head;
            self.free_head = head;
            self.active[p as usize / 64] &= !(1u64 << (p % 64));
        } else if q.head_off as usize == CHUNK {
            let exhausted = q.head;
            let next = self.chunks[exhausted as usize].next;
            q.head = next;
            q.head_off = 0;
            self.chunks[exhausted as usize].next = self.free_head;
            self.free_head = exhausted;
        }
        Some(msg)
    }
}

/// The message-plane state owned by one worker: the outgoing queues of a
/// contiguous node range, transfer buffers toward every receiver shard,
/// and the receiver-side bucket store.
#[derive(Debug)]
pub(crate) struct Shard<M> {
    /// First node of the range.
    pub node_lo: usize,
    /// One past the last node of the range.
    pub node_hi: usize,
    /// Global id of the first port in the range.
    pub port_lo: u32,
    /// The range's outgoing per-port FIFOs.
    pub queues: PortQueues<M>,
    /// Outgoing transfer buffers, one per receiver shard.
    pub out: Vec<Vec<Entry<M>>>,
    /// Incoming buffers, swapped in from the transfer cells each round
    /// (index = sender shard); reused, never copied.
    pub incoming: Vec<Vec<Entry<M>>>,
    /// Per-local-node message counts for the counting pass, then prefix-
    /// summed into bucket cursors.
    cursor: Vec<u32>,
    /// Per-local-node bucket start offsets into [`Self::bucket`]
    /// (`node_hi - node_lo + 1` entries once built).
    pub starts: Vec<u32>,
    /// The round's messages, bucketed by receiving node and sorted by
    /// `(port, train index)` within each bucket. Protocols step directly
    /// on these slices.
    pub bucket: Vec<(Port, M)>,
    /// This round's delivery counters.
    pub delta: Delta,
}

impl<M: Message> Shard<M> {
    /// An empty shard for nodes `node_lo..node_hi` with ports
    /// `port_lo..port_hi`, ready to fan out to `shard_count` shards.
    pub fn new(
        node_lo: usize,
        node_hi: usize,
        port_lo: u32,
        port_hi: u32,
        shard_count: usize,
    ) -> Self {
        let port_count = (port_hi - port_lo) as usize;
        let node_count = node_hi - node_lo;
        Self {
            node_lo,
            node_hi,
            port_lo,
            queues: PortQueues::new(port_count),
            out: (0..shard_count).map(|_| Vec::new()).collect(),
            incoming: (0..shard_count).map(|_| Vec::new()).collect(),
            cursor: vec![0u32; node_count],
            starts: vec![0u32; node_count + 1],
            bucket: Vec::new(),
            delta: Delta::default(),
        }
    }

    /// Messages queued across all ports of this shard.
    #[inline]
    pub fn queued(&self) -> u64 {
        self.queues.queued()
    }

    /// Enqueues `msg` on local port `p`.
    #[cfg(test)]
    pub fn push(&mut self, p: u32, msg: M) {
        self.queues.push(p, msg);
    }

    /// Dequeues from local port `p`.
    #[cfg(test)]
    pub fn pop(&mut self, p: u32) -> Option<M> {
        self.queues.pop(p)
    }

    /// Delivery phase A: drains this shard's active ports — one message
    /// per port when `congest`, whole queues otherwise — routing each
    /// message into the transfer buffer of its destination shard and
    /// metering it in [`Self::delta`].
    pub fn drain_active(&mut self, topo: &Topology, congest: bool) {
        for wi in 0..self.queues.active.len() {
            // Pops may clear bits of the word being scanned; the snapshot
            // is taken before any pop of this word, so each active port is
            // visited exactly once, in port order.
            self.queues.prefetch_word_heads(wi);
            let mut word = self.queues.active[wi];
            while word != 0 {
                let p = (wi * 64) as u32 + word.trailing_zeros();
                word &= word - 1;
                let route = topo.route[(self.port_lo + p) as usize];
                let mut k: u64 = 0;
                while let Some(msg) = self.queues.pop(p) {
                    self.delta.record(msg.bit_size());
                    self.out[route.dest_shard as usize].push((
                        (u64::from(route.dest_slot) << 32) | k,
                        route.dest_node,
                        msg,
                    ));
                    if congest {
                        break;
                    }
                    k += 1;
                }
            }
        }
    }

    /// Single-shard fast path: delivers straight from the port queues
    /// into the bucket store, touching each payload exactly once (no
    /// transfer-buffer round trip).
    ///
    /// Pass 1 counts deliverable messages per receiving node without
    /// reading any payload (one per active port under `congest`, the
    /// whole queue length otherwise); after a prefix sum, pass 2 pops
    /// each message and writes it directly at its bucket cursor. The
    /// result is identical to `drain_active` + `bucket_incoming` — same
    /// canonical per-bucket order, same metering — just with half the
    /// memory traffic.
    pub fn deliver_direct(&mut self, topo: &Topology, congest: bool) {
        const {
            assert!(usize::BITS == 64, "bucket keys pack (port, k) into usize");
        }
        debug_assert_eq!(self.node_lo, 0, "direct delivery requires the single-shard layout");

        let node_count = self.node_hi - self.node_lo;
        self.cursor[..node_count].fill(0);
        let mut total = 0usize;
        for wi in 0..self.queues.active.len() {
            let mut word = self.queues.active[wi];
            while word != 0 {
                let p = (wi * 64) as u32 + word.trailing_zeros();
                word &= word - 1;
                let route = topo.route[(self.port_lo + p) as usize];
                let deliverable = if congest { 1 } else { self.queues.len(p) };
                self.cursor[route.dest_node as usize] += deliverable;
                total += deliverable as usize;
            }
        }

        let mut acc = 0u32;
        for i in 0..node_count {
            self.starts[i] = acc;
            acc += self.cursor[i];
            self.cursor[i] = self.starts[i];
        }
        self.starts[node_count] = acc;
        debug_assert_eq!(acc as usize, total);

        self.bucket.clear();
        self.bucket.reserve(total);
        let bucket_ptr = self.bucket.as_mut_ptr();
        let mut placed = 0usize;
        for wi in 0..self.queues.active.len() {
            self.queues.prefetch_word_heads(wi);
            let mut word = self.queues.active[wi];
            while word != 0 {
                let p = (wi * 64) as u32 + word.trailing_zeros();
                word &= word - 1;
                let route = topo.route[(self.port_lo + p) as usize];
                let port = (route.dest_slot - topo.offsets[route.dest_node as usize]) as usize;
                let mut k: usize = 0;
                while let Some(msg) = self.queues.pop(p) {
                    self.delta.record(msg.bit_size());
                    let local = route.dest_node as usize;
                    let pos = self.cursor[local];
                    self.cursor[local] = pos + 1;
                    placed += 1;
                    debug_assert!((pos as usize) < total);
                    // SAFETY: pos < total <= capacity; the prefix-summed
                    // cursors make positions distinct across the loop.
                    unsafe {
                        std::ptr::write(bucket_ptr.add(pos as usize), ((port << 32) | k, msg));
                    }
                    if congest {
                        break;
                    }
                    k += 1;
                }
            }
        }
        debug_assert_eq!(placed, total);
        // SAFETY: all `total` positions were just initialized (`placed`
        // equals `total`: pass 2 pops exactly what pass 1 counted).
        unsafe { self.bucket.set_len(total) };

        for i in 0..node_count {
            let range = self.starts[i] as usize..self.starts[i + 1] as usize;
            let slice = &mut self.bucket[range];
            slice.sort_unstable_by_key(|e| e.0);
            for e in slice {
                e.0 >>= 32;
            }
        }
    }

    /// Delivery phase B: buckets this round's incoming messages by
    /// receiving node and sorts each bucket into canonical order.
    ///
    /// Three linear passes (count, prefix-sum, place) move each payload
    /// exactly once; the per-bucket `sort_unstable` then runs on one
    /// node's messages at a time — small and cache-resident — with keys
    /// `(port << 32) | train index` that are unique within a round, so
    /// the result is deterministic regardless of shard count or buffer
    /// drain order. After this call, node `node_lo + i`'s inbox is
    /// `bucket[starts[i]..starts[i + 1]]` with the key field rewritten to
    /// the plain port.
    pub fn bucket_incoming(&mut self, topo: &Topology) {
        const {
            assert!(usize::BITS == 64, "bucket keys pack (port, k) into usize");
        }

        let node_count = self.node_hi - self.node_lo;
        self.cursor[..node_count].fill(0);
        let mut total = 0usize;
        for buf in &self.incoming {
            total += buf.len();
            for &(_, dest_node, _) in buf.iter() {
                self.cursor[dest_node as usize - self.node_lo] += 1;
            }
        }

        // Prefix sums: starts[i] = bucket offset of local node i.
        let mut acc = 0u32;
        for i in 0..node_count {
            self.starts[i] = acc;
            acc += self.cursor[i];
            self.cursor[i] = self.starts[i];
        }
        self.starts[node_count] = acc;
        debug_assert_eq!(acc as usize, total);

        // Place every message exactly once into its bucket range. The
        // buffers' lengths are zeroed before the raw reads so an unwind
        // can at worst leak the tail, never double-drop; the writes go to
        // `bucket`'s spare capacity and `set_len` runs only after every
        // position 0..total has been written (the prefix-summed cursors
        // enumerate each position exactly once).
        self.bucket.clear();
        self.bucket.reserve(total);
        let bucket_ptr = self.bucket.as_mut_ptr();
        for buf in &mut self.incoming {
            let len = buf.len();
            // SAFETY: shrinking only; elements are moved out below.
            unsafe { buf.set_len(0) };
            let src = buf.as_ptr();
            for i in 0..len {
                // SAFETY: `i` is below the pre-`set_len` length, and each
                // element is read exactly once across the loop.
                let (key, dest_node, msg) = unsafe { std::ptr::read(src.add(i)) };
                let local = dest_node as usize - self.node_lo;
                let slot = (key >> 32) as u32;
                let port = (slot - topo.offsets[dest_node as usize]) as usize;
                let packed = (port << 32) | (key as u32 as usize);
                let pos = self.cursor[local];
                self.cursor[local] = pos + 1;
                debug_assert!((pos as usize) < total);
                // SAFETY: pos < total <= capacity, and positions are
                // distinct across the loop (see above).
                unsafe { std::ptr::write(bucket_ptr.add(pos as usize), (packed, msg)) };
            }
        }
        // SAFETY: all `total` positions were just initialized.
        unsafe { self.bucket.set_len(total) };

        // Canonicalize each bucket and strip keys down to ports.
        for i in 0..node_count {
            let range = self.starts[i] as usize..self.starts[i + 1] as usize;
            let slice = &mut self.bucket[range];
            slice.sort_unstable_by_key(|e| e.0);
            for e in slice {
                e.0 >>= 32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Ping;
    use graphs::GraphBuilder;

    fn shard_for(ports: u32) -> Shard<Ping> {
        Shard::new(0, 1, 0, ports, 1)
    }

    #[test]
    fn fifo_per_port_across_chunks() {
        #[derive(Clone, Debug)]
        struct N(usize);
        impl Message for N {
            fn bit_size(&self) -> usize {
                8
            }
        }
        let mut s: Shard<N> = Shard::new(0, 1, 0, 2, 1);
        for i in 0..3 * CHUNK {
            s.push(0, N(i));
        }
        s.push(1, N(999));
        assert_eq!(s.queued(), 3 * CHUNK as u64 + 1);
        for i in 0..3 * CHUNK {
            assert_eq!(s.pop(0).unwrap().0, i);
        }
        assert!(s.pop(0).is_none());
        assert_eq!(s.pop(1).unwrap().0, 999);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn chunks_recycle_no_unbounded_growth() {
        let mut s = shard_for(1);
        for _ in 0..100 {
            for _ in 0..2 * CHUNK {
                s.push(0, Ping);
            }
            while s.pop(0).is_some() {}
        }
        // Steady state: the pool high-water mark is one burst's worth.
        assert!(s.queues.chunks.len() <= 3, "pool grew to {} chunks", s.queues.chunks.len());
    }

    #[test]
    fn active_bits_track_queues() {
        let mut s = shard_for(130);
        s.push(0, Ping);
        s.push(129, Ping);
        assert_eq!(s.queues.active[0], 1);
        assert_eq!(s.queues.active[2], 0b10);
        s.pop(0);
        assert_eq!(s.queues.active[0], 0);
        s.pop(129);
        assert_eq!(s.queues.active[2], 0);
    }

    #[test]
    fn topology_routes_both_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let topo = Topology::build(&g, 2, 2);
        // Node 0 port 0 → node 1 port 0; node 1 has ports 1 (to 0) and 2
        // (to 2); node 2 port 3 (to 1).
        assert_eq!(topo.offsets.as_ref(), &[0, 1, 3, 4]);
        let dest_slots: Vec<u32> = topo.route.iter().map(|r| r.dest_slot).collect();
        let dest_nodes: Vec<u32> = topo.route.iter().map(|r| r.dest_node).collect();
        let dest_shards: Vec<u16> = topo.route.iter().map(|r| r.dest_shard).collect();
        assert_eq!(dest_slots, vec![1, 0, 3, 2]);
        assert_eq!(dest_nodes, vec![1, 0, 2, 1]);
        // chunk = 2: nodes 0..2 in shard 0, node 2 in shard 1.
        assert_eq!(dest_shards, vec![0, 0, 1, 0]);
    }

    #[test]
    fn stream_build_matches_graph_build() {
        use graphs::generators::{GnpStream, VecEdgeStream};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        fn assert_same(a: &Topology, b: &Topology) {
            assert_eq!(a.offsets, b.offsets);
            assert_eq!(a.route.len(), b.route.len());
            for (x, y) in a.route.iter().zip(b.route.iter()) {
                assert_eq!(
                    (x.dest_slot, x.dest_node, x.dest_shard),
                    (y.dest_slot, y.dest_node, y.dest_shard)
                );
            }
        }

        // The hand-checked 3-node path, on the uneven 2-shard split.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let mut s = VecEdgeStream::from_graph(&g);
        assert_same(&Topology::build(&g, 2, 2), &Topology::build_from_stream(&mut s, 2, 2));

        // A random instance, via the public constructors (same chunk rule).
        let (n, p, seed) = (80, 0.1, 9u64);
        let g = graphs::generators::gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let mut s = GnpStream::new(n, p, seed);
        for shards in [1, 3] {
            assert_same(
                &Topology::from_graph(&g, shards),
                &Topology::from_edge_stream(&mut s, shards),
            );
        }
        assert_eq!(Topology::from_graph(&g, 1).heap_bytes(), 4 * (n + 1) + 12 * 2 * g.edge_count());
    }

    #[test]
    #[should_panic(expected = "strictly lexicographically sorted")]
    fn stream_build_rejects_unsorted_replay() {
        struct Unsorted(usize);
        impl EdgeStream for Unsorted {
            fn node_count(&self) -> usize {
                3
            }
            fn reset(&mut self) {
                self.0 = 0;
            }
            fn next_edge(&mut self) -> Option<(usize, usize)> {
                self.0 += 1;
                match self.0 {
                    1 => Some((1, 2)),
                    2 => Some((0, 1)),
                    _ => None,
                }
            }
        }
        let _ = Topology::build_from_stream(&mut Unsorted(0), 3, 1);
    }

    #[test]
    fn drain_congest_takes_one_per_port() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let topo = Topology::build(&g, 2, 1);
        let mut s: Shard<Ping> = Shard::new(0, 2, 0, 2, 1);
        s.push(0, Ping);
        s.push(0, Ping);
        s.drain_active(&topo, true);
        assert_eq!(s.out[0].len(), 1);
        assert_eq!(s.queued(), 1);
        s.drain_active(&topo, false);
        assert_eq!(s.out[0].len(), 2);
        assert_eq!(s.queued(), 0);
        // Keys: dest slot 1 on node 1, train indices 0 then 0 (separate
        // rounds).
        assert_eq!(s.out[0][0].0, 1u64 << 32);
        assert_eq!(s.out[0][0].1, 1);
        assert_eq!(s.out[0][1].0, 1u64 << 32);
    }

    #[test]
    fn buckets_order_by_port_then_train() {
        #[derive(Clone, Debug)]
        struct N(u32);
        impl Message for N {
            fn bit_size(&self) -> usize {
                8
            }
        }
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        let topo = Topology::build(&g, 3, 1);
        let mut s: Shard<N> = Shard::new(0, 3, 0, 4, 1);
        // Deliveries to node 1 (slots 1 and 2), arriving out of order.
        s.incoming[0].push(((2u64 << 32) | 1, 1, N(31)));
        s.incoming[0].push((1u64 << 32, 1, N(10)));
        s.incoming[0].push((2u64 << 32, 1, N(30)));
        s.bucket_incoming(&topo);
        assert_eq!(s.starts[..4], [0, 0, 3, 3]);
        let got: Vec<(usize, u32)> = s.bucket.iter().map(|(p, m)| (*p, m.0)).collect();
        assert_eq!(got, vec![(0, 10), (1, 30), (1, 31)]);
        assert!(s.incoming[0].is_empty(), "incoming buffer drained");
    }
}
