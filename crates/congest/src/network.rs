//! The synchronous network: topology, round loop, delivery rules — built
//! on a flat, zero-allocation message plane.
//!
//! [`Network`] instantiates one [`Protocol`] state machine per node of a
//! [`graphs::Graph`] and executes synchronous rounds:
//!
//! 1. **Deliver** — for every directed edge with queued messages, dequeue
//!    from the sender's per-port FIFO: exactly one in [`Mode::Congest`]
//!    (the model's bandwidth rule; longer trains pipeline over rounds), or
//!    the whole queue in [`Mode::Local`]. Every delivered message is
//!    metered.
//! 2. **Step** — every node's [`Protocol::step`] runs on the messages
//!    delivered to it this round.
//! 3. **Quiesce** — when no message is queued and every node reports
//!    [`Protocol::is_idle`], the network offers a barrier via
//!    [`Protocol::on_quiescent`]; if no node resumes, the run completes.
//!
//! An explicit [`RunLimits::max_rounds`] abort is always available — the
//! paper's §4.1 deterministic time-bound wrapper.
//!
//! # The flat message plane
//!
//! The hot path is engineered so that a steady-state round performs **no
//! heap allocation** (pinned by `tests/alloc_probe.rs`):
//!
//! * The link table is CSR-flattened (`crate::plane::Topology`): one
//!   `u32` lookup maps a sender port to the matching receiver port, a
//!   second recovers the receiver node on scatter.
//! * Outgoing queues live in per-shard slabs of fixed-size chunks strung
//!   on a free list; per-port state is 16 bytes, and pushes/pops recycle
//!   chunks instead of allocating. Non-empty ports are tracked in a
//!   bitset whose scan order is port order — no sorted insert on push.
//! * Delivery and inbox buffers are double-buffered and reused across
//!   rounds; per-round growth only happens until the workload's
//!   high-water mark is reached.
//!
//! # Parallelism and determinism
//!
//! [`NetworkBuilder::parallel`] splits nodes into equal shards, one OS
//! thread each. A round is one thread scope: each thread drains its own
//! senders' queues (phase A), routes messages into per-destination-shard
//! transfer buffers, then — after one barrier — collects the buffers
//! addressed to it, scatters them into its receivers' inboxes, and steps
//! its nodes. Messages carry a `(destination port, intra-train index)`
//! key that is unique within a round, so the receiver-side sort yields one
//! canonical inbox order (port-sorted, per-port FIFO) regardless of
//! thread count; metrics are merged with commutative aggregates and each
//! node owns its RNG stream. Together these make runs **bit-identical**
//! across any `parallel(k)` — the contract `crates/core`'s
//! `engine_equivalence` suite enforces.
//!
//! To benchmark the plane, see `crates/bench/benches/delivery_plane.rs`
//! (set `BENCH_JSON=BENCH_protocol.json` to append machine-readable
//! records).

use std::sync::{Arc, Barrier, Mutex};

use graphs::{EdgeStream, Graph};
use rand::rngs::StdRng;

use crate::message::Message;
use crate::metrics::Metrics;
use crate::obs::{emit, MetricsMode, RunProfile, SinkSlot, TraceConfig, TraceEvent, TraceSink};
use crate::plane::{Entry, Shard, Topology};
use crate::protocol::{Context, Endpoint, OutboxHandle, Protocol, Round};
use crate::rng::{node_rng, splitmix64};
use crate::session::{
    Driver, Observer, RoundDelta, RunLimits, RunReport, SyncOverhead, Termination,
};

/// Bandwidth regime for message delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// At most one message per directed edge per round (the CONGEST
    /// model \[20\]); queued messages pipeline across rounds.
    Congest,
    /// Unbounded bandwidth (the LOCAL model): whole queues are delivered
    /// each round. Bits are still metered — that is how E10 exhibits the
    /// neighbors'-neighbors blow-up.
    Local,
}

/// How node identifiers are assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdAssignment {
    /// `id = index`: convenient for debugging and deterministic examples.
    Sequential,
    /// A pseudorandom permutation-free labeling derived from the master
    /// seed (distinct with overwhelming probability, verified at build
    /// time). This is the default: algorithms must not benefit from IDs
    /// correlating with topology.
    Hashed,
}

/// Borrowed per-shard windows into the engine's node arrays.
///
/// Node state is stored structure-of-arrays: endpoints, protocols and
/// RNG streams live in three parallel `Vec`s rather than one `Vec` of
/// structs, so the step loop touches only the arrays it needs (protocol
/// state and RNGs are hot; endpoint headers are read-only) and each
/// worker thread takes three disjoint slices instead of one.
struct NodeSlices<'a, P: Protocol> {
    endpoints: &'a [Endpoint],
    protocols: &'a mut [P],
    rngs: &'a mut [StdRng],
}

/// Configures and constructs a [`Network`] — the flat engine's
/// low-level constructor.
///
/// Most code should start at [`crate::Session`] instead, which wraps
/// this builder behind the engine-agnostic surface (and can swap in the
/// legacy or asynchronous engine without touching the call site).
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    mode: Mode,
    seed: u64,
    ids: IdAssignment,
    threads: usize,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self { mode: Mode::Congest, seed: 0, ids: IdAssignment::Hashed, threads: 1 }
    }
}

impl NetworkBuilder {
    /// Starts a builder with defaults: CONGEST mode, seed 0, hashed IDs,
    /// sequential stepping.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the bandwidth regime.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the master seed; node RNG streams and hashed IDs derive from
    /// it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the ID assignment scheme.
    #[must_use]
    pub fn ids(mut self, ids: IdAssignment) -> Self {
        self.ids = ids;
        self
    }

    /// Shards the network over `threads` OS threads (1 = sequential).
    /// Results are bit-identical regardless of thread count.
    #[must_use]
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builds the network over `graph`, creating each node's protocol via
    /// `factory` (called with the node's [`Endpoint`]).
    ///
    /// # Panics
    ///
    /// Panics if hashed ID assignment produces a collision (probability
    /// ≈ n²/2⁶⁴; retry with another seed) or if the graph exceeds the
    /// plane's `u32` port space.
    pub fn build_with<P, F>(self, graph: &Graph, factory: F) -> Network<P>
    where
        P: Protocol,
        F: FnMut(&Endpoint) -> P,
    {
        let n = graph.node_count();
        let chunk = n.div_ceil(self.threads);
        let topo = Topology::build(graph, chunk, self.threads);
        self.finish(topo, chunk, factory)
    }

    /// Builds the network directly from a restartable [`EdgeStream`] —
    /// the scale-tier path: the CSR route table is constructed in two
    /// counted passes over the stream and neighbor identifiers are read
    /// back out of it, so no [`Graph`] (and no intermediate edge list)
    /// is ever allocated. For the same instance the result is
    /// bit-identical to [`NetworkBuilder::build_with`] on the
    /// materialized graph.
    ///
    /// # Panics
    ///
    /// Panics on hashed ID collision, if the stream exceeds the plane's
    /// `u32` port space, or if the stream violates the [`EdgeStream`]
    /// contract (sorted, unique, replayable).
    pub fn build_from_stream<P, F>(self, stream: &mut dyn EdgeStream, factory: F) -> Network<P>
    where
        P: Protocol,
        F: FnMut(&Endpoint) -> P,
    {
        let n = stream.node_count();
        let chunk = n.div_ceil(self.threads);
        let topo = Topology::build_from_stream(stream, chunk, self.threads);
        self.finish(topo, chunk, factory)
    }

    /// Shared tail of both build paths: shards, transfer cells, and the
    /// structure-of-arrays node state, with every node's neighbor ids
    /// carved out of one shared arena in CSR slot order.
    fn finish<P, F>(self, topo: Topology, chunk: usize, mut factory: F) -> Network<P>
    where
        P: Protocol,
        F: FnMut(&Endpoint) -> P,
    {
        let n = topo.node_count();
        let ids = assign_ids(self.ids, self.seed, n);
        let s_count = self.threads;

        let shards: Vec<Shard<P::Msg>> = (0..s_count)
            .map(|t| {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                Shard::new(lo, hi, topo.offsets[lo], topo.offsets[hi], s_count)
            })
            .collect();
        let transfer: Vec<Mutex<Vec<Entry<P::Msg>>>> =
            (0..s_count * s_count).map(|_| Mutex::new(Vec::new())).collect();

        // One allocation holds all 2m neighbor ids; the route table
        // already lists each slot's destination node in CSR order, so
        // this works identically for the graph and stream paths.
        let arena: Arc<[u64]> =
            topo.route.iter().map(|r| ids[r.dest_node as usize]).collect::<Vec<u64>>().into();

        let mut endpoints = Vec::with_capacity(n);
        let mut protocols = Vec::with_capacity(n);
        let mut rngs = Vec::with_capacity(n);
        for (u, &id) in ids.iter().enumerate().take(n) {
            let endpoint =
                Endpoint::from_arena(u, id, arena.clone(), topo.offsets[u], topo.offsets[u + 1]);
            protocols.push(factory(&endpoint));
            endpoints.push(endpoint);
            rngs.push(node_rng(self.seed, u));
        }

        Network {
            mode: self.mode,
            endpoints,
            protocols,
            rngs,
            shards,
            transfer,
            topo,
            chunk,
            metrics: Metrics::default(),
            round: 0,
            initialized: false,
            rec: None,
            metrics_mode: MetricsMode::Full,
        }
    }
}

pub(crate) fn assign_ids(ids: IdAssignment, seed: u64, n: usize) -> Vec<u64> {
    match ids {
        IdAssignment::Sequential => (0..n as u64).collect(),
        IdAssignment::Hashed => {
            let ids: Vec<u64> = (0..n)
                .map(|i| splitmix64(splitmix64(seed ^ 0x1D_5EED).wrapping_add(i as u64)))
                .collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "hashed ID collision; use a different seed");
            ids
        }
    }
}

/// A synchronous network executing one [`Protocol`] instance per node.
pub struct Network<P: Protocol> {
    mode: Mode,
    /// Per-node read-only facts (parallel to `protocols` / `rngs`).
    endpoints: Vec<Endpoint>,
    /// Per-node protocol state machines.
    protocols: Vec<P>,
    /// Per-node private RNG streams.
    rngs: Vec<StdRng>,
    /// Per-thread queue shards (the flat plane); `shards.len()` is the
    /// configured thread count.
    shards: Vec<Shard<P::Msg>>,
    /// Transfer buffers between sender shard `s` and receiver shard `t`,
    /// at index `s * shards + t`. Locked twice per shard per round.
    transfer: Vec<Mutex<Vec<Entry<P::Msg>>>>,
    topo: Topology,
    /// Nodes per shard.
    chunk: usize,
    metrics: Metrics,
    round: Round,
    initialized: bool,
    /// The observability sink (absent unless the session installed
    /// one): one [`TraceEvent::Round`] record per executed round, on
    /// the control thread only. Pure observation — never perturbs the
    /// round loop.
    rec: SinkSlot,
    /// Whether per-round metrics history is kept ([`MetricsMode::Full`])
    /// or only O(1) running aggregates ([`MetricsMode::Streaming`]).
    metrics_mode: MetricsMode,
}

impl<P: Protocol> Network<P> {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Read access to node `index`'s protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn protocol(&self, index: usize) -> &P {
        &self.protocols[index]
    }

    /// The endpoint facts of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn endpoint(&self, index: usize) -> &Endpoint {
        &self.endpoints[index]
    }

    /// Accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Collects every node's output, indexed by node.
    #[must_use]
    pub fn outputs(&self) -> Vec<P::Output> {
        self.protocols.iter().map(Protocol::output).collect()
    }

    /// Pre-reserves the per-round metrics history for `rounds` rounds, so
    /// a bounded run's steady state performs zero heap allocations (the
    /// history vector is the only structure that grows with round count).
    pub fn reserve_rounds(&mut self, rounds: usize) {
        self.metrics.reserve_rounds(rounds);
    }

    /// Total messages queued anywhere in the plane. O(threads).
    #[must_use]
    pub fn queued_messages(&self) -> u64 {
        self.shards.iter().map(Shard::queued).sum()
    }

    /// Installs the session's observability configuration: an optional
    /// trace sink (preallocated here, once) and the metrics mode. Must
    /// be called before the first round.
    pub(crate) fn configure_obs(&mut self, trace: Option<TraceConfig>, mode: MetricsMode) {
        self.rec = trace.map(|cfg| Box::new(TraceSink::new(cfg, self.endpoints.len() as u32)));
        self.metrics_mode = mode;
    }

    /// The installed trace sink, if tracing is enabled.
    pub(crate) fn trace_sink(&self) -> Option<&TraceSink> {
        self.rec.as_deref()
    }

    /// Flushes the sink's trailing window, folds in the plane's queue
    /// high-water mark, and returns the run's profile — `None` when
    /// tracing is off. The synchronous engine has no event wheel, so
    /// its wheel mark is 0.
    fn snapshot_profile(&mut self) -> Option<RunProfile> {
        let queue_hw = self.shards.iter().map(|s| s.queues.high_water()).max().unwrap_or(0);
        self.rec.as_deref_mut().map(|sink| sink.finish(0, queue_hw))
    }

    /// Runs until quiescence or the round limit. May be called again after
    /// a `RoundLimit` stop to continue the same execution with a larger
    /// budget.
    pub fn run(&mut self, limits: RunLimits) -> RunReport {
        self.run_observed(limits, &mut ())
    }

    /// Like [`Network::run`], streaming per-round deltas and barriers to
    /// `obs`. Called from the control thread only, after the parallel
    /// phases of each round have joined.
    pub fn run_observed(&mut self, limits: RunLimits, obs: &mut dyn Observer) -> RunReport {
        if !self.initialized {
            self.initialized = true;
            for v in 0..self.endpoints.len() {
                self.with_node_ctx(v, 0, |p, ctx| p.init(ctx));
            }
        }

        let mut executed: u64 = 0;
        let termination = loop {
            if self.is_quiescent() {
                // Offer the barrier; count it only if someone resumes.
                let mut resumed = false;
                let round = self.round;
                for v in 0..self.endpoints.len() {
                    resumed |= self.with_node_ctx(v, round, |p, ctx| p.on_quiescent(ctx));
                }
                if !resumed && self.all_outboxes_empty() {
                    break Termination::Quiescent;
                }
                self.metrics.barriers += 1;
                obs.on_barrier(round);
                continue;
            }
            if executed >= limits.max_rounds {
                break Termination::RoundLimit;
            }
            let delta = self.execute_round();
            executed += 1;
            emit(
                &mut self.rec,
                self.round,
                TraceEvent::Round { round: self.round, messages: delta.messages, bits: delta.bits },
            );
            obs.on_round(self.round, &delta);
        };

        RunReport {
            termination,
            rounds: self.metrics.rounds,
            metrics: self.metrics.clone(),
            overhead: SyncOverhead::default(),
            epochs: Vec::new(),
            profile: self.snapshot_profile(),
        }
    }

    fn shard_of(&self, v: usize) -> usize {
        debug_assert!(self.chunk > 0);
        v / self.chunk
    }

    /// Runs `f` on node `v`'s protocol with a context wired into the flat
    /// plane (used for the sequential init / quiescence hooks).
    fn with_node_ctx<R>(
        &mut self,
        v: usize,
        round: Round,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        let t = self.shard_of(v);
        let shard = &mut self.shards[t];
        let base = self.topo.offsets[v] - shard.port_lo;
        let mut ctx = Context {
            endpoint: &self.endpoints[v],
            round,
            outbox: OutboxHandle::Flat { queues: &mut shard.queues, base },
            rng: &mut self.rngs[v],
        };
        f(&mut self.protocols[v], &mut ctx)
    }

    fn all_outboxes_empty(&self) -> bool {
        self.queued_messages() == 0
    }

    fn is_quiescent(&self) -> bool {
        self.all_outboxes_empty() && self.protocols.iter().all(Protocol::is_idle)
    }

    fn execute_round(&mut self) -> RoundDelta {
        self.round += 1;
        match self.metrics_mode {
            MetricsMode::Full => self.metrics.begin_round(),
            MetricsMode::Streaming => self.metrics.begin_round_bounded(),
        }

        let s_count = self.shards.len();
        let congest = self.mode == Mode::Congest;
        let round = self.round;
        let topo = &self.topo;
        let transfer = &self.transfer;

        if s_count == 1 {
            // Single shard: deliver straight from the queues into the
            // bucket store (no transfer round trip), then step.
            let shard = &mut self.shards[0];
            shard.deliver_direct(topo, congest);
            let nodes = NodeSlices {
                endpoints: &self.endpoints,
                protocols: &mut self.protocols,
                rngs: &mut self.rngs,
            };
            step_shard(shard, nodes, topo, round);
        } else if self.endpoints.len() < 2 * s_count {
            // Sequential fallback at tiny n: same phases, in order.
            for t in 0..s_count {
                phase_deliver(&mut self.shards[t], topo, transfer, congest, s_count, t);
            }
            let mut ep_rest = &self.endpoints[..];
            let mut pr_rest = &mut self.protocols[..];
            let mut rng_rest = &mut self.rngs[..];
            for (t, shard) in self.shards.iter_mut().enumerate() {
                let take = shard.node_hi - shard.node_lo;
                let (endpoints, er) = ep_rest.split_at(take);
                ep_rest = er;
                let (protocols, pr) = pr_rest.split_at_mut(take);
                pr_rest = pr;
                let (rngs, rr) = rng_rest.split_at_mut(take);
                rng_rest = rr;
                let nodes = NodeSlices { endpoints, protocols, rngs };
                phase_bucket_step(shard, nodes, topo, transfer, round, s_count, t);
            }
        } else {
            let barrier = Barrier::new(s_count);
            let barrier = &barrier;
            std::thread::scope(|scope| {
                let mut ep_rest = &self.endpoints[..];
                let mut pr_rest = &mut self.protocols[..];
                let mut rng_rest = &mut self.rngs[..];
                for (t, shard) in self.shards.iter_mut().enumerate() {
                    let take = shard.node_hi - shard.node_lo;
                    let (endpoints, er) = ep_rest.split_at(take);
                    ep_rest = er;
                    let (protocols, pr) = pr_rest.split_at_mut(take);
                    pr_rest = pr;
                    let (rngs, rr) = rng_rest.split_at_mut(take);
                    rng_rest = rr;
                    let nodes = NodeSlices { endpoints, protocols, rngs };
                    scope.spawn(move || {
                        phase_deliver(shard, topo, transfer, congest, s_count, t);
                        barrier.wait();
                        phase_bucket_step(shard, nodes, topo, transfer, round, s_count, t);
                    });
                }
            });
        }

        // Deterministic merge: commutative aggregates folded in shard
        // order (the order itself is immaterial to the totals).
        let mut round_delta = RoundDelta::default();
        for shard in &mut self.shards {
            let delta = shard.delta.take();
            self.metrics.absorb_delivery(delta.messages, delta.bits, delta.max_bits);
            round_delta.messages += delta.messages;
            round_delta.bits += delta.bits;
            round_delta.max_bits = round_delta.max_bits.max(delta.max_bits);
        }
        round_delta
    }

    /// Number of queue shards (the configured thread count).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl<P: Protocol> Driver for Network<P> {
    type P = P;

    fn drive(&mut self, limits: RunLimits, obs: &mut dyn Observer) -> RunReport {
        self.run_observed(limits, obs)
    }

    fn node_count(&self) -> usize {
        Network::node_count(self)
    }

    fn endpoint(&self, index: usize) -> &Endpoint {
        Network::endpoint(self, index)
    }

    fn protocol(&self, index: usize) -> &P {
        Network::protocol(self, index)
    }

    fn queued_messages(&self) -> u64 {
        Network::queued_messages(self)
    }

    fn reserve_rounds(&mut self, rounds: usize) {
        Network::reserve_rounds(self, rounds);
    }
}

/// Phase A for shard `t`: drain active sender ports, route messages into
/// transfer buffers, publish them by swapping with the (empty) transfer
/// cells of row `t`.
fn phase_deliver<M: Message>(
    shard: &mut Shard<M>,
    topo: &Topology,
    transfer: &[Mutex<Vec<Entry<M>>>],
    congest: bool,
    s_count: usize,
    t: usize,
) {
    shard.drain_active(topo, congest);
    for t2 in 0..s_count {
        let mut cell = transfer[t * s_count + t2].lock().expect("transfer lock");
        std::mem::swap(&mut *cell, &mut shard.out[t2]);
    }
}

/// Phase B for shard `t`: swap in the transfer cells of column `t` (in
/// sender-shard order), bucket them by receiving node, then step every
/// node of the shard directly on its bucket slice.
fn phase_bucket_step<P: Protocol>(
    shard: &mut Shard<P::Msg>,
    nodes: NodeSlices<'_, P>,
    topo: &Topology,
    transfer: &[Mutex<Vec<Entry<P::Msg>>>],
    round: Round,
    s_count: usize,
    t: usize,
) {
    for s in 0..s_count {
        let mut cell = transfer[s * s_count + t].lock().expect("transfer lock");
        std::mem::swap(&mut *cell, &mut shard.incoming[s]);
    }
    shard.bucket_incoming(topo);

    step_shard(shard, nodes, topo, round);
}

/// Steps every node of `shard` on its bucket slice. The queue set and the
/// bucket store are disjoint shard fields, so the inbox slices stay
/// borrowed while each context pushes into the queues.
fn step_shard<P: Protocol>(
    shard: &mut Shard<P::Msg>,
    nodes: NodeSlices<'_, P>,
    topo: &Topology,
    round: Round,
) {
    let node_lo = shard.node_lo;
    let port_lo = shard.port_lo;
    let queues = &mut shard.queues;
    let bucket = &shard.bucket;
    let starts = &shard.starts;
    for (i, protocol) in nodes.protocols.iter_mut().enumerate() {
        let base = topo.offsets[node_lo + i] - port_lo;
        let inbox = &bucket[starts[i] as usize..starts[i + 1] as usize];
        let mut ctx = Context {
            endpoint: &nodes.endpoints[i],
            round,
            outbox: OutboxHandle::Flat { queues: &mut *queues, base },
            rng: &mut nodes.rngs[i],
        };
        protocol.step(&mut ctx, inbox);
    }
}

impl<P: Protocol> std::fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.endpoints.len())
            .field("mode", &self.mode)
            .field("round", &self.round)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{bits_for_count, Message};
    use crate::protocol::Port;
    use graphs::GraphBuilder;

    /// Flooding: the source announces; every node records the round it
    /// first heard the rumor (= BFS distance) and forwards once.
    #[derive(Debug)]
    struct Flood {
        is_source: bool,
        heard_at: Option<u64>,
        forwarded: bool,
    }

    #[derive(Clone, Debug)]
    struct Rumor;

    impl Message for Rumor {
        fn bit_size(&self) -> usize {
            1
        }
    }

    impl Protocol for Flood {
        type Msg = Rumor;
        type Output = Option<u64>;

        fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
            if self.is_source {
                self.heard_at = Some(0);
                self.forwarded = true;
                ctx.broadcast(Rumor);
            }
        }

        fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
            if !inbox.is_empty() && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round());
                if !self.forwarded {
                    self.forwarded = true;
                    ctx.broadcast(Rumor);
                }
            }
        }

        fn is_idle(&self) -> bool {
            true // no pending local work beyond queued messages
        }

        fn output(&self) -> Option<u64> {
            self.heard_at
        }
    }

    fn path_graph(n: usize) -> graphs::Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn flood_computes_bfs_distances() {
        let g = path_graph(6);
        let mut net = NetworkBuilder::new().seed(1).build_with(&g, |e| Flood {
            is_source: e.index == 0,
            heard_at: None,
            forwarded: false,
        });
        let report = net.run(RunLimits::default());
        assert_eq!(report.termination, Termination::Quiescent);
        let outputs = net.outputs();
        for (v, d) in outputs.iter().enumerate() {
            assert_eq!(*d, Some(v as u64), "node {v}");
        }
        // 5 edges, rumor crosses each once in each direction except
        // backwards re-broadcasts: source broadcasts 1, each interior
        // forwards to both sides.
        assert!(report.metrics.messages >= 5);
        assert_eq!(report.metrics.max_message_bits, 1);
    }

    /// A protocol that enqueues `k` messages at once to one neighbor;
    /// CONGEST must deliver them over `k` rounds, LOCAL in one.
    #[derive(Debug)]
    struct Burst {
        k: usize,
        sender: bool,
        received_rounds: Vec<u64>,
    }

    #[derive(Clone, Debug)]
    struct Numbered(usize);

    impl Message for Numbered {
        fn bit_size(&self) -> usize {
            bits_for_count(1 << 20)
        }
    }

    impl Protocol for Burst {
        type Msg = Numbered;
        type Output = Vec<u64>;

        fn init(&mut self, ctx: &mut Context<'_, Numbered>) {
            if self.sender {
                for i in 0..self.k {
                    ctx.send(0, Numbered(i));
                }
            }
        }

        fn step(&mut self, ctx: &mut Context<'_, Numbered>, inbox: &[(Port, Numbered)]) {
            for _ in inbox {
                self.received_rounds.push(ctx.round());
            }
        }

        fn is_idle(&self) -> bool {
            true
        }

        fn output(&self) -> Vec<u64> {
            self.received_rounds.clone()
        }
    }

    #[test]
    fn congest_pipelines_one_per_round() {
        let g = path_graph(2);
        let mut net = NetworkBuilder::new().mode(Mode::Congest).build_with(&g, |e| Burst {
            k: 5,
            sender: e.index == 0,
            received_rounds: Vec::new(),
        });
        net.run(RunLimits::default());
        let rounds = &net.outputs()[1];
        assert_eq!(rounds, &vec![1, 2, 3, 4, 5], "one message per round");
    }

    #[test]
    fn local_delivers_whole_queue_at_once() {
        let g = path_graph(2);
        let mut net = NetworkBuilder::new().mode(Mode::Local).build_with(&g, |e| Burst {
            k: 5,
            sender: e.index == 0,
            received_rounds: Vec::new(),
        });
        net.run(RunLimits::default());
        let rounds = &net.outputs()[1];
        assert_eq!(rounds, &vec![1, 1, 1, 1, 1], "all in round 1");
    }

    #[test]
    fn round_limit_aborts() {
        let g = path_graph(10);
        let mut net = NetworkBuilder::new().build_with(&g, |e| Flood {
            is_source: e.index == 0,
            heard_at: None,
            forwarded: false,
        });
        let report = net.run(RunLimits::rounds(3));
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.metrics.rounds, 3);
        // Distance-9 node has not heard yet.
        assert_eq!(net.outputs()[9], None);
        // Resume with more budget; completes.
        let report2 = net.run(RunLimits::default());
        assert_eq!(report2.termination, Termination::Quiescent);
        assert_eq!(net.outputs()[9], Some(9));
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut b = GraphBuilder::new(40);
        for i in 0..39 {
            b.add_edge(i, i + 1);
        }
        b.add_edge(0, 39).add_edge(5, 30).add_edge(10, 20);
        let g = b.build();
        let build = |threads: usize| {
            let mut net = NetworkBuilder::new().seed(9).parallel(threads).build_with(&g, |e| {
                Flood { is_source: e.index == 7, heard_at: None, forwarded: false }
            });
            net.run(RunLimits::default());
            net.outputs()
        };
        assert_eq!(build(1), build(4));
    }

    #[test]
    fn stream_build_matches_graph_build() {
        use graphs::generators::VecEdgeStream;
        let g = path_graph(8);
        let factory =
            |e: &Endpoint| Flood { is_source: e.index == 2, heard_at: None, forwarded: false };
        let mut from_graph = NetworkBuilder::new().seed(5).parallel(2).build_with(&g, factory);
        let mut stream = VecEdgeStream::from_graph(&g);
        let mut from_stream =
            NetworkBuilder::new().seed(5).parallel(2).build_from_stream(&mut stream, factory);
        for v in 0..8 {
            assert_eq!(from_graph.endpoint(v).id, from_stream.endpoint(v).id);
            assert_eq!(
                from_graph.endpoint(v).neighbor_ids(),
                from_stream.endpoint(v).neighbor_ids()
            );
        }
        let a = from_graph.run(RunLimits::default());
        let b = from_stream.run(RunLimits::default());
        assert_eq!(from_graph.outputs(), from_stream.outputs());
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.metrics.total_bits, b.metrics.total_bits);
    }

    #[test]
    fn hashed_ids_are_distinct_and_stable() {
        let g = path_graph(50);
        let net = NetworkBuilder::new().seed(3).build_with(&g, |e| Flood {
            is_source: e.index == 0,
            heard_at: None,
            forwarded: false,
        });
        let mut ids: Vec<u64> = (0..50).map(|v| net.endpoint(v).id).collect();
        let net2 = NetworkBuilder::new().seed(3).build_with(&g, |e| Flood {
            is_source: e.index == 0,
            heard_at: None,
            forwarded: false,
        });
        let ids2: Vec<u64> = (0..50).map(|v| net2.endpoint(v).id).collect();
        assert_eq!(ids, ids2, "same seed, same ids");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50, "ids distinct");
    }

    #[test]
    fn sequential_ids_are_indices() {
        let g = path_graph(4);
        let net = NetworkBuilder::new().ids(IdAssignment::Sequential).build_with(&g, |e| Flood {
            is_source: e.index == 0,
            heard_at: None,
            forwarded: false,
        });
        for v in 0..4 {
            assert_eq!(net.endpoint(v).id, v as u64);
        }
        // Neighbor IDs visible per the KT1 knowledge model.
        assert_eq!(net.endpoint(1).neighbor_ids(), &[0, 2][..]);
    }

    #[test]
    fn metrics_count_bits() {
        let g = path_graph(2);
        let mut net = NetworkBuilder::new().build_with(&g, |e| Burst {
            k: 3,
            sender: e.index == 0,
            received_rounds: Vec::new(),
        });
        let report = net.run(RunLimits::default());
        assert_eq!(report.metrics.messages, 3);
        assert_eq!(report.metrics.total_bits, 3 * 21);
        assert_eq!(report.metrics.max_message_bits, 21);
    }

    /// Quiescence barrier: a two-phase protocol that sends one wave, waits
    /// for global quiescence, then sends a second wave.
    #[derive(Debug)]
    struct TwoPhase {
        phase: u8,
        heard: Vec<u64>,
    }

    impl Protocol for TwoPhase {
        type Msg = Numbered;
        type Output = Vec<u64>;

        fn init(&mut self, ctx: &mut Context<'_, Numbered>) {
            ctx.broadcast(Numbered(0));
        }

        fn step(&mut self, ctx: &mut Context<'_, Numbered>, inbox: &[(Port, Numbered)]) {
            for (_, m) in inbox {
                self.heard.push(m.0 as u64 * 1000 + ctx.round());
            }
        }

        fn is_idle(&self) -> bool {
            true
        }

        fn on_quiescent(&mut self, ctx: &mut Context<'_, Numbered>) -> bool {
            if self.phase == 0 {
                self.phase = 1;
                ctx.broadcast(Numbered(1));
                true
            } else {
                false
            }
        }

        fn output(&self) -> Vec<u64> {
            self.heard.clone()
        }
    }

    #[test]
    fn quiescence_barrier_advances_phases() {
        let g = path_graph(3);
        let mut net =
            NetworkBuilder::new().build_with(&g, |_| TwoPhase { phase: 0, heard: Vec::new() });
        let report = net.run(RunLimits::default());
        assert_eq!(report.termination, Termination::Quiescent);
        assert_eq!(report.metrics.barriers, 1);
        // Node 1 heard phase-0 messages from both sides in round 1 and
        // phase-1 messages in round 2.
        let heard = &net.outputs()[1];
        assert_eq!(heard, &vec![1, 1, 1002, 1002]);
    }
}
