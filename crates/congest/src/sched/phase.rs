//! Per-phase pulse budgets: the paper's §4.1 staged execution.
//!
//! The synchronous simulator grants phase transitions at *quiescence* —
//! a global condition no synchronizer can observe. In a real asynchronous
//! deployment each phase instead runs for a **precomputed number of
//! pulses** (the §4.1 deterministic time-bound wrapper); when the budget
//! elapses, every node takes its
//! [`Protocol::on_quiescent`](crate::Protocol::on_quiescent) transition
//! on schedule, whether or not it would have been quiescent. A
//! [`PhasePlan`] is exactly that schedule.
//!
//! Budgets that upper-bound the true phase lengths reproduce the
//! synchronous execution pulse for round (trailing pulses of a phase are
//! empty and a protocol's `step` is inert on an empty inbox once the
//! phase has drained). An *under*-budgeted plan fires transitions early —
//! faithfully modeling what a too-aggressive §4.1 bound does to the real
//! algorithm.

use crate::protocol::Round;

/// One phase of a [`PhasePlan`]: a diagnostic name and its pulse budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseBudget {
    /// Diagnostic name (by convention the protocol's phase name, e.g.
    /// the entries of `DistNearClique::phase_sequence`).
    pub name: &'static str,
    /// Pulses this phase executes before the transition barrier fires.
    /// Zero is legal: the phase only takes its entry transition (a phase
    /// whose entry hook sends nothing quiesces immediately).
    pub pulses: u64,
}

/// A deterministic per-phase pulse schedule for staged protocols on the
/// asynchronous engine — drive it with
/// [`SessionDriver::run_phased`](crate::SessionDriver::run_phased) or
/// [`AsyncNetwork::run_phases`](crate::AsyncNetwork::run_phases).
///
/// The first entry covers the phase entered at `init`; each subsequent
/// entry is entered through the transition barrier that closes its
/// predecessor. After the final entry's budget, one last barrier lets the
/// protocol retire (return `false` from `on_quiescent`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhasePlan {
    phases: Vec<PhaseBudget>,
}

impl PhasePlan {
    /// An empty plan (no phases; a phased run only offers the retiring
    /// barrier).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase (builder style).
    #[must_use]
    pub fn phase(mut self, name: &'static str, pulses: u64) -> Self {
        self.phases.push(PhaseBudget { name, pulses });
        self
    }

    /// A plan giving every name in `names` the same `pulses` budget.
    #[must_use]
    pub fn uniform(names: &[&'static str], pulses: u64) -> Self {
        Self { phases: names.iter().map(|&name| PhaseBudget { name, pulses }).collect() }
    }

    /// Derives the schedule from a synchronous run's phase trace — the
    /// `(version, phase name, entry round)` triples of
    /// `DistNearClique::phase_trace` (or any protocol recording the same
    /// shape) — plus the run's total executed rounds.
    ///
    /// Each phase's budget is the distance to the next phase's entry
    /// round; the final phase runs to `total_rounds`. This is the
    /// §4.1 wrapper with *exact* bounds: the resulting phased
    /// asynchronous run reproduces the synchronous run's outputs **and**
    /// its full payload ledger, pulse for round.
    ///
    /// # Panics
    ///
    /// Panics if entry rounds decrease, or if `total_rounds` is below the
    /// last entry round.
    #[must_use]
    pub fn from_trace(trace: &[(u8, &'static str, Round)], total_rounds: Round) -> Self {
        let mut phases = Vec::with_capacity(trace.len());
        for (i, &(_, name, entry)) in trace.iter().enumerate() {
            let end = match trace.get(i + 1) {
                Some(&(_, _, next_entry)) => next_entry,
                None => total_rounds,
            };
            assert!(
                end >= entry,
                "phase trace is not monotone: {name} enters at {entry}, next at {end}"
            );
            phases.push(PhaseBudget { name, pulses: end - entry });
        }
        Self { phases }
    }

    /// The scheduled phases, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseBudget] {
        &self.phases
    }

    /// Phase names in execution order (test/diagnostic convenience).
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|p| p.name).collect()
    }

    /// Number of scheduled phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` when no phase is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total pulse budget over all phases — the plan's overall §4.1 time
    /// bound.
    #[must_use]
    pub fn total_pulses(&self) -> u64 {
        self.phases.iter().map(|p| p.pulses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_totals() {
        let plan = PhasePlan::new().phase("a", 3).phase("b", 0).phase("c", 5);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.total_pulses(), 8);
        assert_eq!(plan.names(), vec!["a", "b", "c"]);
        assert_eq!(plan.phases()[1], PhaseBudget { name: "b", pulses: 0 });
    }

    #[test]
    fn uniform_assigns_same_budget() {
        let plan = PhasePlan::uniform(&["x", "y"], 7);
        assert_eq!(plan.total_pulses(), 14);
        assert!(plan.phases().iter().all(|p| p.pulses == 7));
    }

    #[test]
    fn from_trace_takes_entry_differences() {
        // announce enters at 0, roster at 4 (same-round barrier pair at
        // 4: comp-share is zero-length), winner runs 9..=12.
        let trace: Vec<(u8, &'static str, u64)> =
            vec![(0, "announce", 0), (0, "roster", 4), (0, "comp-share", 4), (0, "winner", 9)];
        let plan = PhasePlan::from_trace(&trace, 12);
        assert_eq!(plan.names(), vec!["announce", "roster", "comp-share", "winner"]);
        let budgets: Vec<u64> = plan.phases().iter().map(|p| p.pulses).collect();
        assert_eq!(budgets, vec![4, 0, 5, 3]);
        assert_eq!(plan.total_pulses(), 12);
    }

    #[test]
    fn from_trace_of_empty_trace_is_empty() {
        let plan = PhasePlan::from_trace(&[], 0);
        assert!(plan.is_empty());
        assert_eq!(plan.total_pulses(), 0);
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn from_trace_rejects_decreasing_entries() {
        let trace: Vec<(u8, &'static str, u64)> = vec![(0, "a", 5), (0, "b", 3)];
        let _ = PhasePlan::from_trace(&trace, 9);
    }
}
