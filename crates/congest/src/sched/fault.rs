//! Fault & churn models for the asynchronous engine.
//!
//! A [`FaultModel`] is a *pure description* (`Copy`, engine-config
//! sized) of what the network breaks: per-send message loss, link
//! down/up intervals, or node crash/recover windows. Like a
//! [`DelayModel`](crate::sched::DelayModel), the engine compiles it once
//! at build into an allocation-free sampler (`FaultSampler`) — every fault
//! decision is a seeded, deterministic function of `(seed, FaultModel)`
//! and the send's CSR slot / virtual time / pulse, so **any fault
//! schedule is replayable from the pair alone**: no trace files, no
//! recorded randomness.
//!
//! # The correctness contract: masking vs degradation
//!
//! Faults split into two classes with different promises, both pinned by
//! tests (`crates/core/tests/engine_equivalence.rs`,
//! `tests/asynchrony.rs`, and a G(n,p) proptest in
//! `crates/core/tests/session_determinism.rs`):
//!
//! * **Masked faults** — [`FaultModel::Drop`] and
//!   [`FaultModel::LinkFlap`] lose individual send attempts, and the
//!   executor retransmits every lost attempt on a deterministic
//!   virtual-time timeout (see below). Because the synchronizer gates
//!   already force every node to wait for its complete pulse inbox
//!   (α: no `Safe` before every payload is acknowledged; batched α: the
//!   payload *is* the edge token), retransmission restores exactly the
//!   fault-free execution: per-node **outputs and the payload-side
//!   [`Metrics`](crate::Metrics) are bit-identical to the fault-free
//!   flat run** — only
//!   [`SyncOverhead`](crate::SyncOverhead) (`retransmissions`,
//!   `dropped_messages`) and virtual time grow.
//! * **Degrading faults** — [`FaultModel::Crash`] takes whole nodes
//!   down for a pulse window. A crashed node is **fail-silent at the
//!   application layer**: its queued outgoing payloads are discarded at
//!   crash onset, payloads addressed to its crashed pulses vanish, and
//!   its protocol does not step. The synchronizer plane underneath keeps
//!   ticking (the node still enters pulses and its edges still emit
//!   `Safe`/token waves — exactly as for an empty pulse), which is what
//!   lets the surviving nodes' waves *self-heal*: no gate ever wedges,
//!   neighbors observe the loss only through the
//!   [`Protocol::on_peer_down`](crate::Protocol::on_peer_down) /
//!   [`on_peer_up`](crate::Protocol::on_peer_up) hooks and their own
//!   missing payloads, and the run completes its budget normally,
//!   reporting
//!   [`Termination::Degraded`](crate::Termination::Degraded) with the
//!   count of application payloads lost.
//!
//! # Retransmission timing
//!
//! A send attempt lost under [`FaultModel::Drop`] is retried after a
//! fixed retransmit timeout of `2 · compiled_bound + 1` virtual time
//! units — a round trip at the delay model's compiled per-run delay
//! bound plus one, the classic conservative RTO. An attempt lost under
//! [`FaultModel::LinkFlap`] (the directed port was down at send time)
//! is retried at the link's next up-edge, which the sampler computes in
//! closed form from the port's seeded phase. Both retries re-enter the
//! normal send path (fresh delay draw, fresh fault draw), and every
//! retry is metered in `SyncOverhead::retransmissions`.

use crate::protocol::Port;
use crate::rng::splitmix64;

/// Stream salt of the per-send drop coin of [`FaultModel::Drop`].
const DROP_STREAM_SALT: u64 = 0x00D2_0BAD;
/// Salt of the per-port phase table of [`FaultModel::LinkFlap`].
const FLAP_PHASE_SALT: u64 = 0x0F1A_B017;
/// Salt of the victim-set draw of [`FaultModel::Crash`].
const CRASH_VICTIM_SALT: u64 = 0x0C2A_54ED;

/// What the network breaks during an [`Engine::Async`](crate::Engine)
/// run. All models are seeded off the session's master seed: the fault
/// schedule is a deterministic function of `(seed, FaultModel)` alone,
/// so every failing run is replayable from those two values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// A perfect network — bit-identical to an engine without the fault
    /// plane (pinned by the golden ledger in `tests/asynchrony.rs`).
    #[default]
    None,
    /// Independent per-send message loss: each send attempt (payload or
    /// control envelope) is dropped with probability `p_millis / 1000`
    /// and retransmitted after the RTO. A **masked** fault: outputs and
    /// payload metrics equal the fault-free run.
    Drop {
        /// Loss probability in thousandths (`0..=999`; 50 = 5%).
        p_millis: u32,
    },
    /// Periodic per-directed-port outages: each port cycles through
    /// `down_len` time units down, `up_len` up, at a seeded per-port
    /// phase offset. Sends attempted while the port is down are lost
    /// and retransmitted at the port's next up-edge. A **masked**
    /// fault.
    LinkFlap {
        /// Length of each outage, in virtual time units (≥ 1).
        down_len: u64,
        /// Length of each up interval, in virtual time units (≥ 1).
        up_len: u64,
    },
    /// Node churn: a seeded set of `victims` distinct nodes crashes at
    /// pulse `at_pulse` and recovers `recover_after` pulses later
    /// (`0` = never). Queued state is discarded; surviving nodes
    /// re-converge and the run ends
    /// [`Degraded`](crate::Termination::Degraded). A **degrading**
    /// fault.
    Crash {
        /// How many distinct nodes crash (seeded pick; clamped to `n`).
        victims: u32,
        /// First crashed pulse (1-based, ≥ 1).
        at_pulse: u64,
        /// Crashed for this many pulses; `0` means no recovery.
        recover_after: u64,
    },
}

impl FaultModel {
    /// Short stable label (bench records, diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::None => "none",
            FaultModel::Drop { .. } => "drop",
            FaultModel::LinkFlap { .. } => "link_flap",
            FaultModel::Crash { .. } => "crash",
        }
    }

    /// `true` for the perfect-network model.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, FaultModel::None)
    }

    /// Panics unless the model is well-formed.
    pub(crate) fn validate(&self) {
        match *self {
            FaultModel::None => {}
            FaultModel::Drop { p_millis } => {
                assert!(
                    p_millis < 1000,
                    "drop: p_millis must be below 1000 (a certain drop can never be retransmitted \
                     through)"
                );
            }
            FaultModel::LinkFlap { down_len, up_len } => {
                assert!(down_len >= 1, "link_flap: down_len must be at least 1");
                assert!(up_len >= 1, "link_flap: up_len must be at least 1");
            }
            FaultModel::Crash { at_pulse, .. } => {
                assert!(at_pulse >= 1, "crash: at_pulse is 1-based and must be at least 1");
            }
        }
    }
}

/// One observable fault, streamed to
/// [`Observer::on_fault`](crate::Observer::on_fault) as the run
/// executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A send attempt left `node`'s local `port` and was lost on the
    /// wire at virtual time `at`; a retransmission has been scheduled.
    Dropped {
        /// The sending node.
        node: u32,
        /// The sender's local port.
        port: Port,
        /// Virtual time of the lost attempt.
        at: u64,
    },
    /// A payload addressed to crashed `node` (for one of its crashed
    /// pulses) arrived at virtual time `at` and was discarded — it is
    /// *not* retransmitted; the loss is application-visible.
    Lost {
        /// The crashed receiver.
        node: u32,
        /// The receiver's local port the payload arrived on.
        port: Port,
        /// Virtual time of the discarded arrival.
        at: u64,
    },
    /// `node` crashed on entering `pulse`: queued state discarded, its
    /// protocol is silent until recovery.
    NodeDown {
        /// The crashing node.
        node: u32,
        /// First crashed pulse.
        pulse: u64,
    },
    /// `node` recovered on entering `pulse` (empty queues, fresh start
    /// mid-protocol).
    NodeUp {
        /// The recovering node.
        node: u32,
        /// First recovered pulse.
        pulse: u64,
    },
}

impl FaultEvent {
    /// This fault as an observability-plane record
    /// ([`crate::obs::TraceEvent::Fault`]): the engine emits one per
    /// logged fault when it streams the log to observers.
    pub(crate) fn trace_event(self) -> crate::obs::TraceEvent {
        crate::obs::TraceEvent::Fault(self)
    }
}

/// The runtime form of a [`FaultModel`]: the shared drop-coin state plus
/// per-port and per-node tables, compiled once at engine build. All
/// sampling is allocation-free.
#[derive(Clone, Debug, Hash)]
pub(crate) struct FaultSampler {
    model: FaultModel,
    /// Shared splitmix64 stream advanced per send attempt by `Drop`.
    state: u64,
    /// Per-directed-port phase offset of `LinkFlap` (empty otherwise).
    phase: Vec<u64>,
    /// Per-node victim flags of `Crash` (empty otherwise).
    victim: Vec<bool>,
    /// Retransmit timeout for `Drop` losses: `2 · compiled_bound + 1`.
    rto: u64,
}

impl FaultSampler {
    /// Compiles `model` for a plane of `port_count` directed ports and
    /// `node_count` nodes, with delay-model compiled bound `bound`.
    ///
    /// # Panics
    ///
    /// Panics if the model is malformed (see [`FaultModel::validate`]).
    pub fn new(
        model: FaultModel,
        seed: u64,
        port_count: usize,
        node_count: usize,
        bound: u64,
    ) -> Self {
        model.validate();
        let phase = match model {
            FaultModel::LinkFlap { down_len, up_len } => {
                let period = down_len + up_len;
                let base = splitmix64(seed ^ FLAP_PHASE_SALT);
                (0..port_count)
                    .map(|slot| splitmix64(base.wrapping_add(slot as u64)) % period)
                    .collect()
            }
            _ => Vec::new(),
        };
        let victim = match model {
            FaultModel::Crash { victims, .. } => {
                let mut flags = vec![false; node_count];
                let picks = (victims as usize).min(node_count);
                let mut state = splitmix64(seed ^ CRASH_VICTIM_SALT);
                let mut chosen = 0;
                while chosen < picks {
                    state = splitmix64(state);
                    let v = (state % node_count as u64) as usize;
                    if !flags[v] {
                        flags[v] = true;
                        chosen += 1;
                    }
                }
                flags
            }
            _ => Vec::new(),
        };
        Self {
            model,
            state: splitmix64(seed ^ DROP_STREAM_SALT),
            phase,
            victim,
            rto: 2 * bound + 1,
        }
    }

    /// The compiled model.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The largest retransmission wait [`FaultSampler::retry_wait`] can
    /// return: the asynchronous engine sizes its timing wheel to
    /// `max(delay bound, retry_bound)` so retries always fit the
    /// horizon. Zero for models that never retransmit.
    pub fn retry_bound(&self) -> u64 {
        match self.model {
            FaultModel::None | FaultModel::Crash { .. } => 0,
            FaultModel::Drop { .. } => self.rto,
            // A flap retry waits exactly until the port's next up-edge,
            // at most a whole outage away.
            FaultModel::LinkFlap { down_len, .. } => down_len,
        }
    }

    /// Whether the send attempt leaving through CSR `slot` at virtual
    /// time `now` is lost on the wire. Advances the shared drop stream
    /// only under [`FaultModel::Drop`]; never allocates.
    #[inline]
    pub fn drops(&mut self, slot: usize, now: u64) -> bool {
        match self.model {
            FaultModel::None | FaultModel::Crash { .. } => false,
            FaultModel::Drop { p_millis } => {
                self.state = splitmix64(self.state);
                (self.state % 1000) < u64::from(p_millis)
            }
            FaultModel::LinkFlap { down_len, up_len } => {
                (now + self.phase[slot]) % (down_len + up_len) < down_len
            }
        }
    }

    /// How long a send attempt lost on CSR `slot` at time `now` waits
    /// before its retransmission: the RTO under [`FaultModel::Drop`],
    /// the time to the port's next up-edge under
    /// [`FaultModel::LinkFlap`]. Always ≥ 1 and ≤
    /// [`FaultSampler::retry_bound`].
    #[inline]
    pub fn retry_wait(&self, slot: usize, now: u64) -> u64 {
        match self.model {
            FaultModel::LinkFlap { down_len, up_len } => {
                let pos = (now + self.phase[slot]) % (down_len + up_len);
                debug_assert!(pos < down_len, "retry_wait on an up port");
                down_len - pos
            }
            _ => self.rto,
        }
    }

    /// Whether node `v` is crashed for pulse `pulse` (pure — the crash
    /// schedule is fixed at build).
    #[inline]
    pub fn crashed_at(&self, v: usize, pulse: u64) -> bool {
        match self.model {
            FaultModel::Crash { at_pulse, recover_after, .. } => {
                self.victim[v]
                    && pulse >= at_pulse
                    && (recover_after == 0 || pulse < at_pulse + recover_after)
            }
            _ => false,
        }
    }
}

/// The executor-side fault state: the compiled sampler plus the run's
/// fault log and loss accounting. Owned by the asynchronous engine,
/// borrowed into the synchronizer's
/// [`ControlPlane`](crate::sched::sync::ControlPlane) so control
/// envelopes ride the same faulty wire as payloads.
#[derive(Clone, Debug)]
pub(crate) struct FaultPlane {
    pub sampler: FaultSampler,
    /// Fault events buffered since the last observer flush (reused —
    /// drained every event-loop iteration).
    pub log: Vec<FaultEvent>,
    /// Per-node "currently crashed" flag, so pulse entry detects
    /// onset/offset transitions exactly once.
    pub down: Vec<bool>,
    /// Application payloads lost to crashes (discarded queues +
    /// swallowed deliveries) — reported in
    /// [`Termination::Degraded`](crate::Termination::Degraded).
    pub lost: u64,
    /// Whether any crash onset fired this run.
    pub crash_seen: bool,
}

impl FaultPlane {
    pub fn new(
        model: FaultModel,
        seed: u64,
        port_count: usize,
        node_count: usize,
        bound: u64,
    ) -> Self {
        // Sized for the worst burst between two observer flushes: one
        // `Dropped` per directed port (a full pulse wave), coincident
        // `Lost` deliveries riding the in-flight horizon, and a down/up
        // transition per node — so steady-state logging never grows the
        // buffer (the alloc probe pins this).
        let log_cap = if model.is_none() { 0 } else { 2 * port_count + 2 * node_count };
        Self {
            sampler: FaultSampler::new(model, seed, port_count, node_count, bound),
            log: Vec::with_capacity(log_cap),
            down: vec![false; node_count],
            lost: 0,
            crash_seen: false,
        }
    }

    /// The compiled model.
    pub fn model(&self) -> FaultModel {
        self.sampler.model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_none_and_names_are_stable() {
        assert_eq!(FaultModel::default(), FaultModel::None);
        assert!(FaultModel::None.is_none());
        assert_eq!(FaultModel::None.name(), "none");
        assert_eq!(FaultModel::Drop { p_millis: 10 }.name(), "drop");
        assert_eq!(FaultModel::LinkFlap { down_len: 2, up_len: 5 }.name(), "link_flap");
        assert_eq!(FaultModel::Crash { victims: 1, at_pulse: 3, recover_after: 0 }.name(), "crash");
    }

    #[test]
    fn none_never_drops_and_never_advances_state() {
        let mut s = FaultSampler::new(FaultModel::None, 7, 16, 4, 5);
        let before = s.state;
        for i in 0..1000 {
            assert!(!s.drops(i % 16, i as u64));
        }
        assert_eq!(s.state, before, "None must leave the drop stream untouched");
        assert_eq!(s.retry_bound(), 0);
        assert!(!s.crashed_at(0, 1));
    }

    #[test]
    fn drop_rate_tracks_p_millis_and_is_deterministic() {
        let mut a = FaultSampler::new(FaultModel::Drop { p_millis: 100 }, 3, 8, 4, 5);
        let mut b = FaultSampler::new(FaultModel::Drop { p_millis: 100 }, 3, 8, 4, 5);
        let draws: Vec<bool> = (0..4000).map(|i| a.drops(i % 8, i as u64)).collect();
        let again: Vec<bool> = (0..4000).map(|i| b.drops(i % 8, i as u64)).collect();
        assert_eq!(draws, again, "same (seed, model) must replay the same schedule");
        let dropped = draws.iter().filter(|&&d| d).count();
        // 10% nominal over 4000 draws.
        assert!((250..=550).contains(&dropped), "drop rate off: {dropped}/4000");
        assert_eq!(a.retry_bound(), 11, "RTO is 2·bound + 1");
        assert_eq!(a.retry_wait(0, 99), 11);
    }

    #[test]
    fn zero_probability_drop_never_drops() {
        let mut s = FaultSampler::new(FaultModel::Drop { p_millis: 0 }, 3, 8, 4, 5);
        assert!((0..2000).all(|i| !s.drops(i % 8, i as u64)));
    }

    #[test]
    fn link_flap_is_periodic_and_retries_land_on_up_edges() {
        let model = FaultModel::LinkFlap { down_len: 3, up_len: 5 };
        let mut s = FaultSampler::new(model, 11, 4, 2, 6);
        for slot in 0..4 {
            for t in 0..64u64 {
                let down = s.drops(slot, t);
                assert_eq!(down, s.drops(slot, t + 8), "flap must be periodic with period down+up");
                if down {
                    let wait = s.retry_wait(slot, t);
                    assert!((1..=3).contains(&wait), "wait {wait} outside (0, down_len]");
                    assert!(!s.drops(slot, t + wait), "retry must land on an up instant");
                }
            }
            // Every period has both phases.
            let downs = (0..8u64).filter(|&t| s.drops(slot, t)).count();
            assert_eq!(downs, 3, "slot {slot}: {downs} down instants per period");
        }
        assert_eq!(s.retry_bound(), 3);
    }

    #[test]
    fn crash_picks_exactly_the_requested_distinct_victims() {
        let model = FaultModel::Crash { victims: 3, at_pulse: 4, recover_after: 2 };
        let s = FaultSampler::new(model, 9, 0, 10, 1);
        let victims: Vec<usize> = (0..10).filter(|&v| s.crashed_at(v, 4)).collect();
        assert_eq!(victims.len(), 3);
        for &v in &victims {
            assert!(!s.crashed_at(v, 3), "window starts at at_pulse");
            assert!(s.crashed_at(v, 5), "window spans recover_after pulses");
            assert!(!s.crashed_at(v, 6), "window ends after recover_after pulses");
        }
        // Deterministic victim set.
        let t = FaultSampler::new(model, 9, 0, 10, 1);
        assert!((0..10).all(|v| s.crashed_at(v, 4) == t.crashed_at(v, 4)));
        // Wire sends are never dropped by Crash.
        let mut s = s;
        assert!((0..100).all(|i| !s.drops(0, i)));
    }

    #[test]
    fn crash_without_recovery_is_permanent_and_victims_clamp_to_n() {
        let s = FaultSampler::new(
            FaultModel::Crash { victims: 99, at_pulse: 2, recover_after: 0 },
            5,
            0,
            4,
            1,
        );
        for v in 0..4 {
            assert!(!s.crashed_at(v, 1));
            assert!(s.crashed_at(v, 2) && s.crashed_at(v, 1_000_000), "no recovery");
        }
    }

    #[test]
    #[should_panic(expected = "p_millis must be below 1000")]
    fn certain_drop_is_rejected() {
        FaultSampler::new(FaultModel::Drop { p_millis: 1000 }, 0, 0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "down_len must be at least 1")]
    fn zero_down_len_is_rejected() {
        FaultSampler::new(FaultModel::LinkFlap { down_len: 0, up_len: 3 }, 0, 0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at_pulse is 1-based")]
    fn zero_at_pulse_is_rejected() {
        FaultSampler::new(
            FaultModel::Crash { victims: 1, at_pulse: 0, recover_after: 1 },
            0,
            0,
            0,
            1,
        );
    }
}
