//! Membership churn for the asynchronous engine: epoch-versioned
//! join/leave over the immutable CSR topology.
//!
//! A [`ChurnModel`] is a *pure description* (`Copy`, engine-config
//! sized) of how the member set changes mid-run: late joiners, graceful
//! leavers, or both. Like a [`FaultModel`](crate::FaultModel), the
//! engine compiles it once at build into an allocation-free sampler
//! (`ChurnSampler`) — the complete membership schedule is a seeded,
//! deterministic function of `(seed, ChurnModel)` alone, so **any churn
//! schedule is replayable from the pair alone**: no trace files, no
//! recorded randomness.
//!
//! # Epochs and the membership overlay
//!
//! Every membership event — one node joining or leaving — opens a new
//! **epoch**. The engine tracks membership in an `EpochTopology`
//! overlay over the immutable CSR route table: per-node presence flags,
//! per-directed-port application liveness, and live degrees, all
//! pre-reserved at build for the model's compiled maximum membership so
//! steady-state pulses stay zero-alloc. At each epoch boundary the
//! overlay materializes or retires the affected ports in place; the
//! epoch index, the event, and the resulting member count are itemized
//! to observers ([`ChurnEvent`]) and the trace stream.
//!
//! # Why the synchronizer survives reconfiguration
//!
//! The synchronizer substrate deliberately spans the **static** port
//! space: an absent node's control plane keeps ticking (it enters
//! pulses, its edges still carry `Ack`/`Safe`/token waves — exactly as
//! a crashed node's does, see [`crate::sched::fault`]), while its
//! application layer is silent. Gate thresholds are evaluated live at
//! every check, so the per-edge token sets re-derive at each epoch
//! boundary *by construction*: the control-wave structure is
//! epoch-invariant and α's ±1 pulse-skew invariant holds across any
//! reconfiguration — no gate ever wedges, joins and leaves cannot
//! deadlock the run.
//!
//! What changes at an epoch boundary is the application plane:
//!
//! * a **leave** retires the node's ports — its queued outgoing
//!   payloads are drained and itemized ([`ChurnEvent::Retired`], never
//!   silently dropped), in-flight payloads to or from it are retired at
//!   delivery, live peers observe
//!   [`Protocol::on_leave`](crate::Protocol::on_leave);
//! * a **join** materializes the node's ports toward present peers —
//!   the joiner's protocol is initialized at the joining pulse, and
//!   live peers observe [`Protocol::on_join`](crate::Protocol::on_join).
//!
//! # Handoff policy
//!
//! [`ChurnPolicy`] selects what the *surviving* protocols do at an
//! epoch boundary: under the default [`ChurnPolicy::Continue`] they
//! keep their state (the self-stabilizing contract — the hooks are the
//! only signal), while [`ChurnPolicy::Restart`] re-runs
//! [`Protocol::init`](crate::Protocol::init) on every present node so
//! epoch-restart protocols rebuild from scratch each epoch.

use crate::plane::Topology;
use crate::protocol::Port;
use crate::rng::splitmix64;

/// Stream salt of the seeded joiner/leaver pick of [`ChurnModel`].
const CHURN_PICK_SALT: u64 = 0x0C42_B1E5;

/// What the surviving protocols do when an epoch opens (a member joined
/// or left).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ChurnPolicy {
    /// Protocols keep their state across epochs; the
    /// [`Protocol::on_join`](crate::Protocol::on_join) /
    /// [`Protocol::on_leave`](crate::Protocol::on_leave) hooks are the
    /// only signal. The self-stabilizing contract, and the default.
    #[default]
    Continue,
    /// Epoch-restart: [`Protocol::init`](crate::Protocol::init) is
    /// re-run on every present node at each epoch boundary (at the
    /// node's current pulse), so the protocol rebuilds its state from
    /// scratch against the new member set.
    Restart,
}

impl ChurnPolicy {
    /// Short stable label (bench records, diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ChurnPolicy::Continue => "continue",
            ChurnPolicy::Restart => "restart",
        }
    }
}

/// How the member set changes during an
/// [`Engine::Async`](crate::Engine) run. All models are seeded off the
/// session's master seed: the membership schedule is a deterministic
/// function of `(seed, ChurnModel)` alone, so every churned run is
/// replayable from those two values.
///
/// Events are **pulse-indexed** (like
/// [`FaultModel::Crash`](crate::FaultModel::Crash)): each scheduled
/// node joins or leaves on entering the scheduled pulse. The
/// interleaving explorer rejects every model but [`ChurnModel::None`]
/// for exactly that reason — a time-indexed schedule breaks the
/// fingerprint sweep's time-shift invariance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ChurnModel {
    /// A fixed member set — bit-identical to an engine without the
    /// churn plane (pinned by the golden ledger in
    /// `tests/asynchrony.rs`); advances no RNG stream.
    #[default]
    None,
    /// Staggered late joins: a seeded set of `joiners` distinct nodes
    /// starts outside the member set and joins one by one, joiner `i`
    /// at pulse `at_pulse + i·spacing`.
    Join {
        /// How many distinct nodes join late (seeded pick; clamped to
        /// `n`). Must be ≥ 1.
        joiners: u32,
        /// Pulse of the first join (1-based, ≥ 1).
        at_pulse: u64,
        /// Pulses between consecutive joins (`0` = all in one pulse).
        spacing: u64,
        /// What surviving protocols do at each epoch boundary.
        policy: ChurnPolicy,
    },
    /// Staggered graceful leaves: a seeded set of `leavers` distinct
    /// nodes leaves one by one, leaver `i` at pulse
    /// `at_pulse + i·spacing`. Leaves are permanent.
    Leave {
        /// How many distinct nodes leave (seeded pick; clamped to `n`).
        /// Must be ≥ 1.
        leavers: u32,
        /// Pulse of the first leave (1-based, ≥ 1).
        at_pulse: u64,
        /// Pulses between consecutive leaves (`0` = all in one pulse).
        spacing: u64,
        /// What surviving protocols do at each epoch boundary.
        policy: ChurnPolicy,
    },
    /// Joins then leaves: `joiners` late joiners arrive first (joiner
    /// `i` at `at_pulse + i·spacing`), then `leavers` distinct
    /// initially-present nodes leave (leaver `j` at
    /// `at_pulse + (joiners + j)·spacing`). The two seeded sets are
    /// disjoint.
    Mixed {
        /// How many distinct nodes join late (seeded pick; clamped to
        /// `n`). Must be ≥ 1.
        joiners: u32,
        /// How many distinct initially-present nodes leave (seeded
        /// pick, disjoint from the joiners; clamped to `n - joiners`).
        /// Must be ≥ 1.
        leavers: u32,
        /// Pulse of the first membership event (1-based, ≥ 1).
        at_pulse: u64,
        /// Pulses between consecutive events (`0` = all in one pulse).
        spacing: u64,
        /// What surviving protocols do at each epoch boundary.
        policy: ChurnPolicy,
    },
}

impl ChurnModel {
    /// Short stable label (bench records, diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ChurnModel::None => "none",
            ChurnModel::Join { .. } => "join",
            ChurnModel::Leave { .. } => "leave",
            ChurnModel::Mixed { .. } => "mixed",
        }
    }

    /// `true` for the fixed-membership model.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, ChurnModel::None)
    }

    /// The configured handoff policy ([`ChurnPolicy::Continue`] for
    /// [`ChurnModel::None`]).
    #[must_use]
    pub fn policy(&self) -> ChurnPolicy {
        match *self {
            ChurnModel::None => ChurnPolicy::Continue,
            ChurnModel::Join { policy, .. }
            | ChurnModel::Leave { policy, .. }
            | ChurnModel::Mixed { policy, .. } => policy,
        }
    }

    /// Panics unless the model is well-formed.
    pub(crate) fn validate(&self) {
        match *self {
            ChurnModel::None => {}
            ChurnModel::Join { joiners, at_pulse, .. } => {
                assert!(joiners >= 1, "join: joiners must be at least 1");
                assert!(at_pulse >= 1, "churn: at_pulse is 1-based and must be at least 1");
            }
            ChurnModel::Leave { leavers, at_pulse, .. } => {
                assert!(leavers >= 1, "leave: leavers must be at least 1");
                assert!(at_pulse >= 1, "churn: at_pulse is 1-based and must be at least 1");
            }
            ChurnModel::Mixed { joiners, leavers, at_pulse, .. } => {
                assert!(joiners >= 1, "mixed: joiners must be at least 1");
                assert!(leavers >= 1, "mixed: leavers must be at least 1");
                assert!(at_pulse >= 1, "churn: at_pulse is 1-based and must be at least 1");
            }
        }
    }
}

/// One observable membership event, streamed to
/// [`Observer::on_churn`](crate::Observer::on_churn) as the run
/// executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// `node` joined the member set on entering `pulse`, opening
    /// `epoch`; its protocol was initialized at that pulse.
    Join {
        /// The joining node.
        node: u32,
        /// The pulse the node joined on entering.
        pulse: u64,
        /// The epoch the join opened (1-based).
        epoch: u64,
    },
    /// `node` left the member set on entering `pulse`, opening `epoch`;
    /// its ports were retired and its queued payloads itemized as
    /// [`ChurnEvent::Retired`].
    Leave {
        /// The leaving node.
        node: u32,
        /// The pulse the node left on entering.
        pulse: u64,
        /// The epoch the leave opened (1-based).
        epoch: u64,
    },
    /// An application payload was retired by a membership change at
    /// virtual time `at` — drained from a retired port's queue or
    /// swallowed at delivery to/from an absent node. Never silent: one
    /// event per retired payload.
    Retired {
        /// The node whose port the payload was retired at.
        node: u32,
        /// The node's local port.
        port: Port,
        /// Virtual time of the retirement.
        at: u64,
    },
}

impl ChurnEvent {
    /// This membership event as an observability-plane record: the
    /// engine emits one per logged event when it streams the churn log
    /// to observers (epoch boundaries additionally emit
    /// [`crate::obs::TraceEvent::Epoch`], which carries the member
    /// count).
    pub(crate) fn trace_event(self) -> crate::obs::TraceEvent {
        match self {
            ChurnEvent::Join { node, pulse, epoch } => {
                crate::obs::TraceEvent::Join { node, pulse, epoch }
            }
            ChurnEvent::Leave { node, pulse, epoch } => {
                crate::obs::TraceEvent::Leave { node, pulse, epoch }
            }
            ChurnEvent::Retired { node, port, at: _ } => {
                crate::obs::TraceEvent::Retired { node, port: port as u32 }
            }
        }
    }
}

/// One epoch-boundary snapshot: which membership event opened the epoch
/// and the member count after it. [`RunReport::epochs`](crate::RunReport)
/// carries the full per-epoch timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochInfo {
    /// The epoch index (1-based; epoch 0 is the initial member set).
    pub epoch: u64,
    /// The pulse whose entry opened the epoch.
    pub pulse: u64,
    /// Present members after the event.
    pub members: u32,
}

/// The runtime form of a [`ChurnModel`]: the per-node join/leave pulse
/// schedule, compiled once at engine build. All queries are pure and
/// allocation-free — the schedule never changes after compilation.
#[derive(Clone, Debug, Hash)]
pub(crate) struct ChurnSampler {
    model: ChurnModel,
    /// Per-node pulse at which the node joins (`1` = present from the
    /// start).
    join_at: Vec<u64>,
    /// Per-node pulse at which the node leaves (`u64::MAX` = never).
    leave_at: Vec<u64>,
    /// Compiled event count: scheduled joins + leaves.
    events: u32,
}

impl ChurnSampler {
    /// Compiles `model` for a plane of `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the model is malformed (see [`ChurnModel::validate`]).
    pub fn new(model: ChurnModel, seed: u64, node_count: usize) -> Self {
        model.validate();
        let mut join_at = vec![1u64; node_count];
        let mut leave_at = vec![u64::MAX; node_count];
        let mut events = 0u32;
        let (joiners, leavers, at_pulse, spacing) = match model {
            ChurnModel::None => (0, 0, 1, 0),
            ChurnModel::Join { joiners, at_pulse, spacing, .. } => (joiners, 0, at_pulse, spacing),
            ChurnModel::Leave { leavers, at_pulse, spacing, .. } => (0, leavers, at_pulse, spacing),
            ChurnModel::Mixed { joiners, leavers, at_pulse, spacing, .. } => {
                (joiners, leavers, at_pulse, spacing)
            }
        };
        if joiners > 0 || leavers > 0 {
            let joins = (joiners as usize).min(node_count);
            let leaves = (leavers as usize).min(node_count - joins);
            let mut picked = vec![false; node_count];
            let mut state = splitmix64(seed ^ CHURN_PICK_SALT);
            let mut pick = |picked: &mut Vec<bool>| loop {
                state = splitmix64(state);
                let v = (state % node_count.max(1) as u64) as usize;
                if !picked[v] {
                    picked[v] = true;
                    return v;
                }
            };
            for i in 0..joins {
                let v = pick(&mut picked);
                join_at[v] = at_pulse + i as u64 * spacing;
                events += 1;
            }
            for j in 0..leaves {
                let v = pick(&mut picked);
                leave_at[v] = at_pulse + (joins + j) as u64 * spacing;
                events += 1;
            }
        }
        Self { model, join_at, leave_at, events }
    }

    /// The compiled model.
    pub fn model(&self) -> ChurnModel {
        self.model
    }

    /// Whether node `v` is outside the member set for pulse `pulse`
    /// (pure — the membership schedule is fixed at build).
    #[inline]
    pub fn absent_at(&self, v: usize, pulse: u64) -> bool {
        pulse < self.join_at[v] || pulse >= self.leave_at[v]
    }

    /// The pulse node `v` joins at (`1` = present from the start).
    pub fn join_pulse(&self, v: usize) -> u64 {
        self.join_at[v]
    }

    /// Total scheduled membership events (joins + leaves): the number
    /// of epochs a long-enough run opens.
    pub fn scheduled_events(&self) -> u32 {
        self.events
    }
}

/// The epoch-versioned membership overlay over the immutable CSR
/// [`Topology`]: presence flags, per-directed-port application
/// liveness, and live degrees. Fully pre-reserved at build — epoch
/// transitions mutate in place, steady-state pulses only read.
#[derive(Clone, Debug)]
pub(crate) struct EpochTopology {
    /// Per-node membership flag (transition detection: flipped exactly
    /// once per scheduled event, at the node's pulse entry).
    pub present: Vec<bool>,
    /// Per-directed-CSR-slot application liveness: a port is live iff
    /// both endpoints are present. Retired ports carry no payloads
    /// (the synchronizer substrate still spans them).
    pub port_live: Vec<bool>,
    /// Per-node count of live incident ports.
    pub live_degree: Vec<u32>,
    /// The current epoch (0 = the initial member set).
    pub epoch: u64,
    /// Present members.
    pub members: u32,
}

impl EpochTopology {
    /// Builds the initial overlay: joiners scheduled after pulse 1
    /// start absent, everyone else present, port liveness derived from
    /// the CSR table.
    fn new(sampler: &ChurnSampler, topo: &Topology, node_count: usize) -> Self {
        let port_count = topo.offsets[node_count] as usize;
        let present: Vec<bool> = (0..node_count).map(|v| !sampler.absent_at(v, 1)).collect();
        let members = present.iter().filter(|&&p| p).count() as u32;
        let mut overlay = Self {
            present,
            port_live: vec![false; port_count],
            live_degree: vec![0; node_count],
            epoch: 0,
            members,
        };
        for v in 0..node_count {
            if !overlay.present[v] {
                continue;
            }
            let base = topo.offsets[v];
            let degree = (topo.offsets[v + 1] - base) as usize;
            for port in 0..degree {
                let (_slot, to, _back) = topo.resolve(v, port);
                if overlay.present[to as usize] {
                    overlay.port_live[(base + port as u32) as usize] = true;
                    overlay.live_degree[v] += 1;
                }
            }
        }
        overlay
    }

    /// Applies one membership event in place: flips `v`'s presence,
    /// materializes or retires its incident ports (both directions),
    /// adjusts live degrees and the member count, and opens the next
    /// epoch. Allocation-free.
    pub fn apply(&mut self, topo: &Topology, v: usize, present: bool) {
        debug_assert_ne!(self.present[v], present, "membership events fire exactly once");
        self.present[v] = present;
        self.members = if present { self.members + 1 } else { self.members - 1 };
        self.epoch += 1;
        let base = topo.offsets[v];
        let degree = (topo.offsets[v + 1] - base) as usize;
        for port in 0..degree {
            let (slot, to, back) = topo.resolve(v, port);
            let to = to as usize;
            if !self.present[to] {
                continue;
            }
            let peer_slot = (topo.offsets[to] + back) as usize;
            self.port_live[slot] = present;
            self.port_live[peer_slot] = present;
            if present {
                self.live_degree[v] += 1;
                self.live_degree[to] += 1;
            } else {
                self.live_degree[v] -= 1;
                self.live_degree[to] -= 1;
            }
        }
        if !present {
            debug_assert_eq!(self.live_degree[v], 0, "a retired node keeps no live ports");
        }
    }
}

/// The executor-side churn state: the compiled sampler, the membership
/// overlay, the run's churn log, and the per-epoch timeline. Owned by
/// the asynchronous engine.
#[derive(Clone, Debug)]
pub(crate) struct ChurnPlane {
    pub sampler: ChurnSampler,
    /// The epoch-versioned membership overlay.
    pub overlay: EpochTopology,
    /// Churn events buffered since the last observer flush (reused —
    /// drained every event-loop iteration).
    pub log: Vec<ChurnEvent>,
    /// Per-epoch membership timeline, pre-reserved at build for the
    /// model's compiled event count — cloned into
    /// [`RunReport::epochs`](crate::RunReport) when a drive completes.
    /// (The scalar churn counters live in
    /// [`SyncOverhead`](crate::SyncOverhead).)
    pub timeline: Vec<EpochInfo>,
}

impl ChurnPlane {
    pub fn new(model: ChurnModel, seed: u64, topo: &Topology, node_count: usize) -> Self {
        let sampler = ChurnSampler::new(model, seed, node_count);
        let overlay = EpochTopology::new(&sampler, topo, node_count);
        let port_count = topo.offsets[node_count] as usize;
        // Sized for the worst burst between two observer flushes: one
        // membership event per node plus a retirement per directed
        // port (a leaving node's full queue sweep rides one flush) —
        // zero when churn is off, so the fixed-membership engine
        // carries no log at all.
        let log_cap = if model.is_none() { 0 } else { node_count + 2 * port_count };
        let events = sampler.scheduled_events() as usize;
        Self {
            sampler,
            overlay,
            log: Vec::with_capacity(log_cap),
            timeline: Vec::with_capacity(events),
        }
    }

    /// The compiled model.
    pub fn model(&self) -> ChurnModel {
        self.sampler.model()
    }

    /// Logs one retired payload at `node`'s local `port` (the caller
    /// bumps [`SyncOverhead::retired_messages`](crate::SyncOverhead)).
    pub fn retire(&mut self, node: u32, port: Port, at: u64) {
        self.log.push(ChurnEvent::Retired { node, port, at });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::Graph;

    fn sampler(model: ChurnModel, seed: u64, n: usize) -> ChurnSampler {
        ChurnSampler::new(model, seed, n)
    }

    #[test]
    fn default_model_is_none_and_names_are_stable() {
        assert_eq!(ChurnModel::default(), ChurnModel::None);
        assert!(ChurnModel::None.is_none());
        assert_eq!(ChurnModel::None.name(), "none");
        let policy = ChurnPolicy::default();
        assert_eq!(policy, ChurnPolicy::Continue);
        assert_eq!(policy.name(), "continue");
        assert_eq!(ChurnPolicy::Restart.name(), "restart");
        assert_eq!(ChurnModel::Join { joiners: 1, at_pulse: 2, spacing: 0, policy }.name(), "join");
        assert_eq!(
            ChurnModel::Leave { leavers: 1, at_pulse: 2, spacing: 0, policy }.name(),
            "leave"
        );
        let mixed = ChurnModel::Mixed { joiners: 1, leavers: 1, at_pulse: 2, spacing: 3, policy };
        assert_eq!(mixed.name(), "mixed");
        assert_eq!(mixed.policy(), ChurnPolicy::Continue);
    }

    #[test]
    fn none_schedules_nothing_and_everyone_is_always_present() {
        let s = sampler(ChurnModel::None, 7, 6);
        assert_eq!(s.scheduled_events(), 0);
        for v in 0..6 {
            assert_eq!(s.join_pulse(v), 1);
            assert!(!s.absent_at(v, 1));
            assert!(!s.absent_at(v, 1_000_000));
        }
    }

    #[test]
    fn join_staggers_the_seeded_joiners_and_replays_from_seed_and_model() {
        let model =
            ChurnModel::Join { joiners: 3, at_pulse: 4, spacing: 2, policy: ChurnPolicy::Continue };
        let s = sampler(model, 9, 10);
        let joiners: Vec<usize> = (0..10).filter(|&v| s.absent_at(v, 1)).collect();
        assert_eq!(joiners.len(), 3);
        let mut pulses: Vec<u64> = joiners.iter().map(|&v| s.join_pulse(v)).collect();
        pulses.sort_unstable();
        assert_eq!(pulses, vec![4, 6, 8], "joins stagger at at_pulse + i·spacing");
        for &v in &joiners {
            let p = s.join_pulse(v);
            assert!(s.absent_at(v, p - 1));
            assert!(!s.absent_at(v, p), "a joiner is present from its join pulse on");
            assert!(!s.absent_at(v, p + 100));
        }
        let t = sampler(model, 9, 10);
        assert!((0..10).all(|v| s.join_pulse(v) == t.join_pulse(v)));
        assert_eq!(s.scheduled_events(), 3);
    }

    #[test]
    fn leave_is_permanent_and_clamps_to_n() {
        let model = ChurnModel::Leave {
            leavers: 99,
            at_pulse: 3,
            spacing: 1,
            policy: ChurnPolicy::Continue,
        };
        let s = sampler(model, 5, 4);
        assert_eq!(s.scheduled_events(), 4, "leavers clamp to n");
        for v in 0..4 {
            assert!(!s.absent_at(v, 1), "leavers start present");
            assert!(s.absent_at(v, 3 + 3), "everyone is gone after the last leave");
            assert!(s.absent_at(v, 1_000_000), "leaves are permanent");
        }
    }

    #[test]
    fn mixed_picks_disjoint_joiner_and_leaver_sets() {
        let model = ChurnModel::Mixed {
            joiners: 3,
            leavers: 4,
            at_pulse: 5,
            spacing: 1,
            policy: ChurnPolicy::Restart,
        };
        let s = sampler(model, 11, 12);
        let joiners: Vec<usize> = (0..12).filter(|&v| s.join_pulse(v) > 1).collect();
        let leavers: Vec<usize> = (0..12).filter(|&v| s.absent_at(v, 1_000_000)).collect();
        assert_eq!(joiners.len(), 3);
        assert_eq!(leavers.len(), 4);
        assert!(joiners.iter().all(|v| !leavers.contains(v)), "sets must be disjoint");
        // Joins first, then leaves.
        let max_join = joiners.iter().map(|&v| s.join_pulse(v)).max().unwrap();
        let min_leave =
            leavers.iter().map(|&v| (1..100).find(|&p| s.absent_at(v, p)).unwrap()).min().unwrap();
        assert!(max_join < min_leave, "mixed schedules joins before leaves");
        assert_eq!(s.scheduled_events(), 7);
        assert_eq!(model.policy(), ChurnPolicy::Restart);
    }

    #[test]
    fn overlay_applies_joins_and_leaves_in_place() {
        let g = Graph::complete(4);
        let topo = Topology::build(&g, 4, 1);
        let model =
            ChurnModel::Join { joiners: 1, at_pulse: 3, spacing: 0, policy: ChurnPolicy::Continue };
        let mut plane = ChurnPlane::new(model, 13, &topo, 4);
        let joiner = (0..4).find(|&v| plane.sampler.absent_at(v, 1)).unwrap();
        assert_eq!(plane.overlay.members, 3);
        assert_eq!(plane.overlay.epoch, 0);
        assert_eq!(plane.overlay.live_degree[joiner], 0);
        for v in 0..4 {
            if v != joiner {
                assert_eq!(plane.overlay.live_degree[v], 2, "present peers see each other only");
            }
        }
        plane.overlay.apply(&topo, joiner, true);
        assert_eq!(plane.overlay.members, 4);
        assert_eq!(plane.overlay.epoch, 1);
        assert!(plane.overlay.port_live.iter().all(|&l| l), "a full clique is fully live");
        assert!((0..4).all(|v| plane.overlay.live_degree[v] == 3));
        plane.overlay.apply(&topo, joiner, false);
        assert_eq!(plane.overlay.members, 3);
        assert_eq!(plane.overlay.epoch, 2);
        assert_eq!(plane.overlay.live_degree[joiner], 0);
    }

    #[test]
    fn none_plane_reserves_no_log() {
        let g = Graph::complete(3);
        let topo = Topology::build(&g, 3, 1);
        let plane = ChurnPlane::new(ChurnModel::None, 1, &topo, 3);
        assert_eq!(plane.log.capacity(), 0);
        assert_eq!(plane.timeline.capacity(), 0);
        assert_eq!(plane.overlay.members, 3);
        assert!(plane.overlay.port_live.iter().all(|&l| l));
    }

    #[test]
    #[should_panic(expected = "at_pulse is 1-based")]
    fn zero_at_pulse_is_rejected() {
        ChurnSampler::new(
            ChurnModel::Join { joiners: 1, at_pulse: 0, spacing: 1, policy: ChurnPolicy::Continue },
            0,
            4,
        );
    }

    #[test]
    #[should_panic(expected = "joiners must be at least 1")]
    fn zero_joiners_is_rejected() {
        ChurnSampler::new(
            ChurnModel::Join { joiners: 0, at_pulse: 1, spacing: 1, policy: ChurnPolicy::Continue },
            0,
            4,
        );
    }
}
