//! Link-delay models for the asynchronous engine.
//!
//! A [`DelayModel`] is a *pure description* (`Copy`, engine-config
//! sized); the engine compiles it into a [`DelaySampler`] at build time —
//! per-port tables are computed once, and drawing a delay never
//! allocates, keeping the executor's steady state allocation-free on the
//! sampler side.

use crate::rng::splitmix64;

/// Stream salt of the shared delay-draw state. This constant predates the
/// pluggable models: [`DelayModel::Uniform`] draws are bit-identical to
/// the original fixed `1..=max_delay` engine.
const DELAY_STREAM_SALT: u64 = 0xA57_DE1A;
/// Salt of the per-port bound table of [`DelayModel::PerLink`].
const PER_LINK_SALT: u64 = 0x09E1_114B;
/// Salt of the slow-port subset of [`DelayModel::Adversarial`].
const ADVERSARIAL_SALT: u64 = 0xAD_5A_17;

/// How the asynchronous engine delays each message, in virtual time
/// units. All models are seeded off the session's master seed and bounded
/// by `max_delay` (≥ 1), so the §2 synchronizer correctness argument
/// (finite, positive link delays) holds for every variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Independent uniform draws from `1..=max_delay` — the classic
    /// model, bit-identical to the engine's original fixed draw (same
    /// stream, same salt), so pre-existing seeds reproduce exactly.
    Uniform {
        /// Upper bound on per-message link delay (≥ 1).
        max_delay: u64,
    },
    /// Heterogeneous links: every directed port gets its own seeded bound
    /// in `1..=max_delay`, and each message draws uniformly within its
    /// port's bound. Models networks where some links are consistently
    /// slower than others.
    PerLink {
        /// Upper bound on any port's delay bound (≥ 1).
        max_delay: u64,
    },
    /// A bounded Pareto-like draw (shape α = 2): most messages arrive in
    /// one or two time units, a heavy tail takes up to `max_delay`.
    /// Models congestion spikes and stragglers.
    HeavyTailed {
        /// Hard cap on the tail (≥ 1).
        max_delay: u64,
    },
    /// Deterministic worst-case-within-bound: a seeded half of the
    /// directed ports *always* takes the full `max_delay`, the other half
    /// is always instant (delay 1). No randomness per message — the
    /// adversary commits to the schedule up front, maximizing skew
    /// between neighboring nodes' pulse progress.
    Adversarial {
        /// Delay of every slow port (≥ 1); fast ports take 1.
        max_delay: u64,
    },
}

impl DelayModel {
    /// The model's delay bound: no message is ever delayed by more.
    #[must_use]
    pub fn bound(&self) -> u64 {
        match *self {
            DelayModel::Uniform { max_delay }
            | DelayModel::PerLink { max_delay }
            | DelayModel::HeavyTailed { max_delay }
            | DelayModel::Adversarial { max_delay } => max_delay,
        }
    }

    /// Short stable label (bench records, diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DelayModel::Uniform { .. } => "uniform",
            DelayModel::PerLink { .. } => "per_link",
            DelayModel::HeavyTailed { .. } => "heavy_tailed",
            DelayModel::Adversarial { .. } => "adversarial",
        }
    }

    /// Panics unless the model is well-formed (`max_delay >= 1`).
    pub(crate) fn validate(&self) {
        assert!(self.bound() >= 1, "{}: max_delay must be at least 1", self.name());
    }
}

impl Default for DelayModel {
    /// Uniform with `max_delay = 1`: synchronous-like timing (every
    /// message takes exactly one time unit).
    fn default() -> Self {
        DelayModel::Uniform { max_delay: 1 }
    }
}

/// The runtime form of a [`DelayModel`]: the shared draw state plus any
/// per-port tables, compiled once at engine build. [`DelaySampler::draw`]
/// is allocation-free.
#[derive(Clone, Debug)]
pub(crate) struct DelaySampler {
    model: DelayModel,
    /// Shared splitmix64 stream advanced by the randomized models.
    state: u64,
    /// Per-directed-port table: the port's delay bound (`PerLink`) or its
    /// fixed delay (`Adversarial`). Empty for the port-blind models.
    per_port: Vec<u64>,
}

impl DelaySampler {
    /// Compiles `model` for a plane of `port_count` directed ports.
    ///
    /// # Panics
    ///
    /// Panics if the model's `max_delay` is 0.
    pub fn new(model: DelayModel, seed: u64, port_count: usize) -> Self {
        model.validate();
        let per_port = match model {
            DelayModel::Uniform { .. } | DelayModel::HeavyTailed { .. } => Vec::new(),
            DelayModel::PerLink { max_delay } => (0..port_count)
                .map(|slot| {
                    1 + splitmix64(splitmix64(seed ^ PER_LINK_SALT).wrapping_add(slot as u64))
                        % max_delay
                })
                .collect(),
            DelayModel::Adversarial { max_delay } => (0..port_count)
                .map(|slot| {
                    let coin =
                        splitmix64(splitmix64(seed ^ ADVERSARIAL_SALT).wrapping_add(slot as u64));
                    if coin & 1 == 0 {
                        max_delay
                    } else {
                        1
                    }
                })
                .collect(),
        };
        Self { model, state: splitmix64(seed ^ DELAY_STREAM_SALT), per_port }
    }

    /// The compiled model.
    pub fn model(&self) -> DelayModel {
        self.model
    }

    /// The *compiled* delay bound: the largest delay [`DelaySampler::draw`]
    /// can actually return for this plane, which is at most the model's
    /// declared [`DelayModel::bound`] and often tighter — the per-port
    /// models (`PerLink`, `Adversarial`) draw within seeded per-port
    /// tables whose realized maximum is what matters. The asynchronous
    /// engine sizes its timing wheel off this value (wheel memory is
    /// `O(bound)` bucket headers), so a plane whose seeded links all came
    /// out fast pays for the fast horizon, not the declared one.
    pub fn compiled_bound(&self) -> u64 {
        match self.model {
            DelayModel::Uniform { max_delay } | DelayModel::HeavyTailed { max_delay } => max_delay,
            DelayModel::PerLink { .. } | DelayModel::Adversarial { .. } => {
                self.per_port.iter().copied().max().unwrap_or(1)
            }
        }
    }

    /// Draws the delay for one message leaving through the directed port
    /// at global CSR slot `slot`. Never allocates; never returns 0 or a
    /// value above the model's bound.
    #[inline]
    pub fn draw(&mut self, slot: usize) -> u64 {
        match self.model {
            DelayModel::Uniform { max_delay } => {
                self.state = splitmix64(self.state);
                1 + self.state % max_delay
            }
            DelayModel::PerLink { .. } => {
                self.state = splitmix64(self.state);
                1 + self.state % self.per_port[slot]
            }
            DelayModel::HeavyTailed { max_delay } => {
                self.state = splitmix64(self.state);
                // Bounded Pareto, shape α = 2, via inverse CDF: with
                // u ∈ (0, 1), `1/√u` exceeds d with probability d⁻².
                // `sqrt` is IEEE-exact, so the draw is fully
                // deterministic. The low bit is forced so u > 0.
                let u = ((self.state >> 11) | 1) as f64 / (1u64 << 53) as f64;
                let raw = u.sqrt().recip() as u64;
                raw.clamp(1, max_delay)
            }
            DelayModel::Adversarial { .. } => self.per_port[slot],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_the_original_fixed_draw() {
        // The pre-subsystem engine drew `state = splitmix64(state);
        // 1 + state % max_delay` off `splitmix64(seed ^ 0xA57_DE1A)`.
        // Uniform must reproduce that stream bit for bit.
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            for max_delay in [1u64, 7, 31] {
                let mut sampler = DelaySampler::new(DelayModel::Uniform { max_delay }, seed, 8);
                let mut state = splitmix64(seed ^ 0xA57_DE1A);
                for slot in 0..64 {
                    state = splitmix64(state);
                    assert_eq!(sampler.draw(slot % 8), 1 + state % max_delay);
                }
            }
        }
    }

    #[test]
    fn all_models_respect_the_bound() {
        for model in [
            DelayModel::Uniform { max_delay: 9 },
            DelayModel::PerLink { max_delay: 9 },
            DelayModel::HeavyTailed { max_delay: 9 },
            DelayModel::Adversarial { max_delay: 9 },
        ] {
            let mut sampler = DelaySampler::new(model, 3, 16);
            for i in 0..2000 {
                let d = sampler.draw(i % 16);
                assert!((1..=9).contains(&d), "{model:?} drew {d}");
            }
        }
    }

    #[test]
    fn per_link_bounds_are_port_stable() {
        let mut a = DelaySampler::new(DelayModel::PerLink { max_delay: 64 }, 11, 4);
        // Port 0's draws never exceed its bound even when other ports do.
        let bound0 = a.per_port[0];
        for _ in 0..500 {
            assert!(a.draw(0) <= bound0);
        }
    }

    #[test]
    fn adversarial_is_deterministic_and_bimodal() {
        let mut s = DelaySampler::new(DelayModel::Adversarial { max_delay: 40 }, 5, 64);
        let first: Vec<u64> = (0..64).map(|p| s.draw(p)).collect();
        let second: Vec<u64> = (0..64).map(|p| s.draw(p)).collect();
        assert_eq!(first, second, "adversarial delays are fixed per port");
        assert!(first.iter().all(|&d| d == 1 || d == 40));
        assert!(first.contains(&1) && first.contains(&40));
    }

    #[test]
    fn heavy_tail_skews_low_but_reaches_high() {
        let mut s = DelaySampler::new(DelayModel::HeavyTailed { max_delay: 100 }, 1, 1);
        let draws: Vec<u64> = (0..4000).map(|_| s.draw(0)).collect();
        let ones = draws.iter().filter(|&&d| d == 1).count();
        // P(D = 1) = 3/4 under α = 2.
        assert!(ones > 2400, "expected a fast majority, got {ones}/4000 ones");
        assert!(draws.iter().any(|&d| d > 20), "tail never materialized");
    }

    #[test]
    #[should_panic(expected = "max_delay must be at least 1")]
    fn zero_bound_is_rejected() {
        DelaySampler::new(DelayModel::HeavyTailed { max_delay: 0 }, 0, 0);
    }

    #[test]
    fn compiled_bound_is_tight_and_never_exceeded() {
        for model in [
            DelayModel::Uniform { max_delay: 13 },
            DelayModel::PerLink { max_delay: 13 },
            DelayModel::HeavyTailed { max_delay: 13 },
            DelayModel::Adversarial { max_delay: 13 },
        ] {
            let mut s = DelaySampler::new(model, 9, 32);
            let bound = s.compiled_bound();
            assert!(bound >= 1 && bound <= model.bound(), "{model:?}");
            let mut seen_max = 0;
            for i in 0..4000 {
                let d = s.draw(i % 32);
                assert!(d <= bound, "{model:?} drew {d} above compiled bound {bound}");
                seen_max = seen_max.max(d);
            }
            // The per-port models' compiled bound is *realized* — some
            // port actually has it (adversarial draws hit it; per-link's
            // uniform draws reach it with overwhelming probability over
            // 4000 samples).
            if matches!(model, DelayModel::Adversarial { .. }) {
                assert_eq!(seen_max, bound, "{model:?}");
            }
        }
    }

    #[test]
    fn compiled_bound_on_empty_planes_is_one() {
        for model in
            [DelayModel::PerLink { max_delay: 9 }, DelayModel::Adversarial { max_delay: 9 }]
        {
            assert_eq!(DelaySampler::new(model, 0, 0).compiled_bound(), 1, "{model:?}");
        }
    }
}
