//! Link-delay models for the asynchronous engine.
//!
//! A [`DelayModel`] is a *pure description* (`Copy`, engine-config
//! sized); the engine compiles it into a [`DelaySampler`] at build time —
//! per-port tables are computed once, and drawing a delay never
//! allocates, keeping the executor's steady state allocation-free on the
//! sampler side.

use std::sync::{Mutex, OnceLock};

use crate::rng::splitmix64;

/// Stream salt of the shared delay-draw state. This constant predates the
/// pluggable models: [`DelayModel::Uniform`] draws are bit-identical to
/// the original fixed `1..=max_delay` engine.
const DELAY_STREAM_SALT: u64 = 0xA57_DE1A;
/// Salt of the per-port bound table of [`DelayModel::PerLink`].
const PER_LINK_SALT: u64 = 0x09E1_114B;
/// Salt of the slow-port subset of [`DelayModel::Adversarial`].
const ADVERSARIAL_SALT: u64 = 0xAD_5A_17;

/// How the asynchronous engine delays each message, in virtual time
/// units. All models are seeded off the session's master seed and bounded
/// by `max_delay` (≥ 1), so the §2 synchronizer correctness argument
/// (finite, positive link delays) holds for every variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Independent uniform draws from `1..=max_delay` — the classic
    /// model, bit-identical to the engine's original fixed draw (same
    /// stream, same salt), so pre-existing seeds reproduce exactly.
    Uniform {
        /// Upper bound on per-message link delay (≥ 1).
        max_delay: u64,
    },
    /// Heterogeneous links: every directed port gets its own seeded bound
    /// in `1..=max_delay`, and each message draws uniformly within its
    /// port's bound. Models networks where some links are consistently
    /// slower than others.
    PerLink {
        /// Upper bound on any port's delay bound (≥ 1).
        max_delay: u64,
    },
    /// A bounded Pareto-like draw (shape α = 2): most messages arrive in
    /// one or two time units, a heavy tail takes up to `max_delay`.
    /// Models congestion spikes and stragglers.
    HeavyTailed {
        /// Hard cap on the tail (≥ 1).
        max_delay: u64,
    },
    /// Deterministic worst-case-within-bound: a seeded half of the
    /// directed ports *always* takes the full `max_delay`, the other half
    /// is always instant (delay 1). No randomness per message — the
    /// adversary commits to the schedule up front, maximizing skew
    /// between neighboring nodes' pulse progress.
    Adversarial {
        /// Delay of every slow port (≥ 1); fast ports take 1.
        max_delay: u64,
    },
    /// Replays a recorded per-send delay assignment: the `i`-th delay
    /// draw of the run returns the trace's `i`-th entry, and draws past
    /// the end return 1. This is how a schedule found by the
    /// interleaving explorer (`crate::explore`) — or recorded from any
    /// sampled run — reproduces **bit for bit** through the ordinary
    /// `Engine::Async` path: same draws in the same order mean the same
    /// execution. Traces are interned in a process-global registry so
    /// the model stays `Copy` (engine-config sized); build one via
    /// [`DelayTrace::register`](crate::explore::DelayTrace::register).
    Replay {
        /// Handle of the interned trace.
        trace: TraceHandle,
    },
}

/// An opaque handle into the process-global registry of interned replay
/// traces (see [`DelayModel::Replay`]). Obtained from
/// [`DelayTrace::register`](crate::explore::DelayTrace::register);
/// meaningless across processes — commit the trace's text form, not the
/// handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceHandle(u32);

/// One interned replay trace: the declared bound and per-draw delays.
type InternedTrace = (u64, Box<[u64]>);

/// Interned replay traces. The table only ever grows (traces are tiny
/// and test-sized); identical registrations are deduplicated.
static REPLAY_TRACES: OnceLock<Mutex<Vec<InternedTrace>>> = OnceLock::new();

fn replay_table() -> &'static Mutex<Vec<InternedTrace>> {
    REPLAY_TRACES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `(bound, delays)` and returns its handle.
///
/// # Panics
///
/// Panics unless `bound >= 1` and every delay lies in `1..=bound`.
pub(crate) fn intern_trace(bound: u64, delays: &[u64]) -> TraceHandle {
    assert!(bound >= 1, "replay: bound must be at least 1");
    assert!(
        delays.iter().all(|&d| (1..=bound).contains(&d)),
        "replay: every delay must lie in 1..=bound"
    );
    let mut table = replay_table().lock().expect("replay trace registry poisoned");
    if let Some(i) = table.iter().position(|(b, d)| *b == bound && **d == *delays) {
        return TraceHandle(i as u32);
    }
    table.push((bound, delays.into()));
    TraceHandle((table.len() - 1) as u32)
}

/// The declared bound of an interned trace.
fn trace_bound(handle: TraceHandle) -> u64 {
    replay_table().lock().expect("replay trace registry poisoned")[handle.0 as usize].0
}

/// The delay vector of an interned trace.
pub(crate) fn trace_delays(handle: TraceHandle) -> Vec<u64> {
    replay_table().lock().expect("replay trace registry poisoned")[handle.0 as usize].1.to_vec()
}

impl DelayModel {
    /// The model's delay bound: no message is ever delayed by more.
    #[must_use]
    pub fn bound(&self) -> u64 {
        match *self {
            DelayModel::Uniform { max_delay }
            | DelayModel::PerLink { max_delay }
            | DelayModel::HeavyTailed { max_delay }
            | DelayModel::Adversarial { max_delay } => max_delay,
            DelayModel::Replay { trace } => trace_bound(trace),
        }
    }

    /// Short stable label (bench records, diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DelayModel::Uniform { .. } => "uniform",
            DelayModel::PerLink { .. } => "per_link",
            DelayModel::HeavyTailed { .. } => "heavy_tailed",
            DelayModel::Adversarial { .. } => "adversarial",
            DelayModel::Replay { .. } => "replay",
        }
    }

    /// Panics unless the model is well-formed (`max_delay >= 1`).
    pub(crate) fn validate(&self) {
        assert!(self.bound() >= 1, "{}: max_delay must be at least 1", self.name());
    }
}

impl Default for DelayModel {
    /// Uniform with `max_delay = 1`: synchronous-like timing (every
    /// message takes exactly one time unit).
    fn default() -> Self {
        DelayModel::Uniform { max_delay: 1 }
    }
}

/// The runtime form of a [`DelayModel`]: the shared draw state plus any
/// per-port tables, compiled once at engine build. [`DelaySampler::draw`]
/// is allocation-free.
#[derive(Clone, Debug)]
pub(crate) struct DelaySampler {
    model: DelayModel,
    /// Shared splitmix64 stream advanced by the randomized models — and
    /// the draw cursor of `Replay`.
    state: u64,
    /// Per-directed-port table: the port's delay bound (`PerLink`) or its
    /// fixed delay (`Adversarial`) — and the full per-draw delay vector
    /// of `Replay`. Empty for the port-blind models.
    per_port: Vec<u64>,
}

impl DelaySampler {
    /// Compiles `model` for a plane of `port_count` directed ports.
    ///
    /// # Panics
    ///
    /// Panics if the model's `max_delay` is 0.
    pub fn new(model: DelayModel, seed: u64, port_count: usize) -> Self {
        model.validate();
        if let DelayModel::Replay { trace } = model {
            // The interned delay vector rides the per-port table and
            // `state` doubles as the replay cursor; the seed plays no
            // part — a replayed schedule is the whole point.
            return Self { model, state: 0, per_port: trace_delays(trace) };
        }
        let per_port = match model {
            DelayModel::Uniform { .. }
            | DelayModel::HeavyTailed { .. }
            | DelayModel::Replay { .. } => Vec::new(),
            DelayModel::PerLink { max_delay } => (0..port_count)
                .map(|slot| {
                    1 + splitmix64(splitmix64(seed ^ PER_LINK_SALT).wrapping_add(slot as u64))
                        % max_delay
                })
                .collect(),
            DelayModel::Adversarial { max_delay } => (0..port_count)
                .map(|slot| {
                    let coin =
                        splitmix64(splitmix64(seed ^ ADVERSARIAL_SALT).wrapping_add(slot as u64));
                    if coin & 1 == 0 {
                        max_delay
                    } else {
                        1
                    }
                })
                .collect(),
        };
        Self { model, state: splitmix64(seed ^ DELAY_STREAM_SALT), per_port }
    }

    /// The compiled model.
    pub fn model(&self) -> DelayModel {
        self.model
    }

    /// The *compiled* delay bound: the largest delay [`DelaySampler::draw`]
    /// can actually return for this plane, which is at most the model's
    /// declared [`DelayModel::bound`] and often tighter — the per-port
    /// models (`PerLink`, `Adversarial`) draw within seeded per-port
    /// tables whose realized maximum is what matters. The asynchronous
    /// engine sizes its timing wheel off this value (wheel memory is
    /// `O(bound)` bucket headers), so a plane whose seeded links all came
    /// out fast pays for the fast horizon, not the declared one.
    pub fn compiled_bound(&self) -> u64 {
        match self.model {
            DelayModel::Uniform { max_delay } | DelayModel::HeavyTailed { max_delay } => max_delay,
            DelayModel::PerLink { .. } | DelayModel::Adversarial { .. } => {
                self.per_port.iter().copied().max().unwrap_or(1)
            }
            // The *declared* bound, not the realized maximum: a replay
            // of a run recorded at bound `B` must size its wheel (and
            // the fault plane's RTO, which is `2·bound + 1`) exactly as
            // the original did, or retransmission timing diverges.
            DelayModel::Replay { trace } => trace_bound(trace),
        }
    }

    /// Draws the delay for one message leaving through the directed port
    /// at global CSR slot `slot`. Never allocates; never returns 0 or a
    /// value above the model's bound.
    #[inline]
    pub fn draw(&mut self, slot: usize) -> u64 {
        match self.model {
            DelayModel::Uniform { max_delay } => {
                self.state = splitmix64(self.state);
                1 + self.state % max_delay
            }
            DelayModel::PerLink { .. } => {
                self.state = splitmix64(self.state);
                1 + self.state % self.per_port[slot]
            }
            DelayModel::HeavyTailed { max_delay } => {
                self.state = splitmix64(self.state);
                // Bounded Pareto, shape α = 2, via inverse CDF: with
                // u ∈ (0, 1), `1/√u` exceeds d with probability d⁻².
                // `sqrt` is IEEE-exact, so the draw is fully
                // deterministic. The low bit is forced so u > 0.
                let u = ((self.state >> 11) | 1) as f64 / (1u64 << 53) as f64;
                let raw = u.sqrt().recip() as u64;
                raw.clamp(1, max_delay)
            }
            DelayModel::Adversarial { .. } => self.per_port[slot],
            DelayModel::Replay { .. } => {
                let i = self.state as usize;
                self.state += 1;
                // Draws past the recorded trace take the minimum delay:
                // a counterexample prefix finishes its run determin-
                // istically without having to script the tail.
                self.per_port.get(i).copied().unwrap_or(1)
            }
        }
    }
}

/// Where the asynchronous executor's per-send delays come from: the
/// compiled [`DelayModel`] sampler for ordinary runs, or an explicit
/// per-step choice script supplied by the interleaving explorer
/// (`crate::explore`), which branches on every draw within the bound.
///
/// Optionally records every realized draw onto a tape — the raw material
/// of a replayable `DelayTrace`. The sampled path with recording off is
/// **bit-identical** to calling the sampler directly, which is what
/// keeps the pre-explorer test surface (golden ledger, equivalence and
/// determinism suites, alloc probes) untouched by this refactor.
#[derive(Clone, Debug)]
pub(crate) struct DelaySource {
    kind: SourceKind,
    /// Realized draws in draw order, when recording is enabled.
    tape: Option<Vec<u64>>,
}

#[derive(Clone, Debug)]
enum SourceKind {
    Model(DelaySampler),
    Script(ScriptCursor),
}

/// The explorer's choice feed: one step's choice vector plus cursors.
#[derive(Clone, Debug)]
struct ScriptCursor {
    /// Choices of the current step; draws beyond the vector take 1.
    choices: Vec<u64>,
    cursor: usize,
    /// Envelope bound: every choice lies in `1..=bound`.
    bound: u64,
    /// Draws taken since the last [`DelaySource::begin_step`].
    draws: u64,
}

impl DelaySource {
    /// A source backed by the compiled `model` sampler (ordinary runs).
    pub fn model(model: DelayModel, seed: u64, port_count: usize) -> Self {
        Self { kind: SourceKind::Model(DelaySampler::new(model, seed, port_count)), tape: None }
    }

    /// A source fed by explorer choice scripts, bounded by `bound`, with
    /// recording on (the tape of the current branch *is* its trace).
    pub fn script(bound: u64) -> Self {
        assert!(bound >= 1, "script: bound must be at least 1");
        Self {
            kind: SourceKind::Script(ScriptCursor {
                choices: Vec::new(),
                cursor: 0,
                bound,
                draws: 0,
            }),
            tape: Some(Vec::new()),
        }
    }

    /// Enables draw recording (idempotent; keeps an existing tape).
    pub fn record(&mut self) {
        if self.tape.is_none() {
            self.tape = Some(Vec::new());
        }
    }

    /// The realized draws recorded so far (empty unless recording).
    pub fn tape(&self) -> &[u64] {
        self.tape.as_deref().unwrap_or(&[])
    }

    /// The model this source presents to engine accessors. A script
    /// source reports a nominal `Uniform` at its bound — the envelope
    /// the explorer branches within.
    pub fn delay_model(&self) -> DelayModel {
        match &self.kind {
            SourceKind::Model(s) => s.model(),
            SourceKind::Script(c) => DelayModel::Uniform { max_delay: c.bound },
        }
    }

    /// The largest delay this source can return (sizes the wheel).
    pub fn compiled_bound(&self) -> u64 {
        match &self.kind {
            SourceKind::Model(s) => s.compiled_bound(),
            SourceKind::Script(c) => c.bound,
        }
    }

    /// Loads `choices` as the next step's script and resets the per-step
    /// draw counter. Explorer (script) sources only.
    pub fn begin_step(&mut self, choices: &[u64]) {
        match &mut self.kind {
            SourceKind::Script(c) => {
                c.choices.clear();
                c.choices.extend_from_slice(choices);
                c.cursor = 0;
                c.draws = 0;
            }
            SourceKind::Model(_) => unreachable!("begin_step on a sampled delay source"),
        }
    }

    /// Draws taken since the last [`DelaySource::begin_step`].
    pub fn step_draws(&self) -> u64 {
        match &self.kind {
            SourceKind::Script(c) => c.draws,
            SourceKind::Model(_) => 0,
        }
    }

    /// Draws the delay for one message leaving through CSR `slot`.
    #[inline]
    pub fn draw(&mut self, slot: usize) -> u64 {
        let d = match &mut self.kind {
            SourceKind::Model(s) => s.draw(slot),
            SourceKind::Script(c) => {
                c.draws += 1;
                let d = if c.cursor < c.choices.len() { c.choices[c.cursor] } else { 1 };
                c.cursor += 1;
                debug_assert!((1..=c.bound).contains(&d), "scripted delay outside the bound");
                d
            }
        };
        if let Some(tape) = &mut self.tape {
            tape.push(d);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_the_original_fixed_draw() {
        // The pre-subsystem engine drew `state = splitmix64(state);
        // 1 + state % max_delay` off `splitmix64(seed ^ 0xA57_DE1A)`.
        // Uniform must reproduce that stream bit for bit.
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            for max_delay in [1u64, 7, 31] {
                let mut sampler = DelaySampler::new(DelayModel::Uniform { max_delay }, seed, 8);
                let mut state = splitmix64(seed ^ 0xA57_DE1A);
                for slot in 0..64 {
                    state = splitmix64(state);
                    assert_eq!(sampler.draw(slot % 8), 1 + state % max_delay);
                }
            }
        }
    }

    #[test]
    fn all_models_respect_the_bound() {
        for model in [
            DelayModel::Uniform { max_delay: 9 },
            DelayModel::PerLink { max_delay: 9 },
            DelayModel::HeavyTailed { max_delay: 9 },
            DelayModel::Adversarial { max_delay: 9 },
        ] {
            let mut sampler = DelaySampler::new(model, 3, 16);
            for i in 0..2000 {
                let d = sampler.draw(i % 16);
                assert!((1..=9).contains(&d), "{model:?} drew {d}");
            }
        }
    }

    #[test]
    fn per_link_bounds_are_port_stable() {
        let mut a = DelaySampler::new(DelayModel::PerLink { max_delay: 64 }, 11, 4);
        // Port 0's draws never exceed its bound even when other ports do.
        let bound0 = a.per_port[0];
        for _ in 0..500 {
            assert!(a.draw(0) <= bound0);
        }
    }

    #[test]
    fn adversarial_is_deterministic_and_bimodal() {
        let mut s = DelaySampler::new(DelayModel::Adversarial { max_delay: 40 }, 5, 64);
        let first: Vec<u64> = (0..64).map(|p| s.draw(p)).collect();
        let second: Vec<u64> = (0..64).map(|p| s.draw(p)).collect();
        assert_eq!(first, second, "adversarial delays are fixed per port");
        assert!(first.iter().all(|&d| d == 1 || d == 40));
        assert!(first.contains(&1) && first.contains(&40));
    }

    #[test]
    fn heavy_tail_skews_low_but_reaches_high() {
        let mut s = DelaySampler::new(DelayModel::HeavyTailed { max_delay: 100 }, 1, 1);
        let draws: Vec<u64> = (0..4000).map(|_| s.draw(0)).collect();
        let ones = draws.iter().filter(|&&d| d == 1).count();
        // P(D = 1) = 3/4 under α = 2.
        assert!(ones > 2400, "expected a fast majority, got {ones}/4000 ones");
        assert!(draws.iter().any(|&d| d > 20), "tail never materialized");
    }

    #[test]
    #[should_panic(expected = "max_delay must be at least 1")]
    fn zero_bound_is_rejected() {
        DelaySampler::new(DelayModel::HeavyTailed { max_delay: 0 }, 0, 0);
    }

    #[test]
    fn compiled_bound_is_tight_and_never_exceeded() {
        for model in [
            DelayModel::Uniform { max_delay: 13 },
            DelayModel::PerLink { max_delay: 13 },
            DelayModel::HeavyTailed { max_delay: 13 },
            DelayModel::Adversarial { max_delay: 13 },
        ] {
            let mut s = DelaySampler::new(model, 9, 32);
            let bound = s.compiled_bound();
            assert!(bound >= 1 && bound <= model.bound(), "{model:?}");
            let mut seen_max = 0;
            for i in 0..4000 {
                let d = s.draw(i % 32);
                assert!(d <= bound, "{model:?} drew {d} above compiled bound {bound}");
                seen_max = seen_max.max(d);
            }
            // The per-port models' compiled bound is *realized* — some
            // port actually has it (adversarial draws hit it; per-link's
            // uniform draws reach it with overwhelming probability over
            // 4000 samples).
            if matches!(model, DelayModel::Adversarial { .. }) {
                assert_eq!(seen_max, bound, "{model:?}");
            }
        }
    }

    #[test]
    fn replay_returns_the_trace_then_pads_with_one() {
        let model = DelayModel::Replay { trace: intern_trace(5, &[3, 1, 5, 2]) };
        assert_eq!(model.name(), "replay");
        assert_eq!(model.bound(), 5);
        let mut s = DelaySampler::new(model, 999, 8);
        assert_eq!(s.compiled_bound(), 5, "replay keeps the declared bound (RTO/wheel sizing)");
        // The slot argument is irrelevant: replay is a positional stream.
        let got: Vec<u64> = (0..7).map(|i| s.draw((i * 3) % 8)).collect();
        assert_eq!(got, vec![3, 1, 5, 2, 1, 1, 1]);
    }

    #[test]
    fn identical_traces_intern_to_the_same_handle() {
        let a = intern_trace(4, &[2, 2, 1]);
        let b = intern_trace(4, &[2, 2, 1]);
        let c = intern_trace(4, &[2, 2, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(DelayModel::Replay { trace: a }, DelayModel::Replay { trace: b });
    }

    #[test]
    #[should_panic(expected = "every delay must lie in 1..=bound")]
    fn out_of_bound_trace_is_rejected() {
        intern_trace(2, &[1, 3]);
    }

    #[test]
    fn sampled_source_is_bit_identical_to_the_raw_sampler() {
        // The DelaySource wrapper must be invisible to sampled runs.
        for model in [
            DelayModel::Uniform { max_delay: 7 },
            DelayModel::PerLink { max_delay: 7 },
            DelayModel::HeavyTailed { max_delay: 7 },
            DelayModel::Adversarial { max_delay: 7 },
        ] {
            let mut raw = DelaySampler::new(model, 13, 8);
            let mut src = DelaySource::model(model, 13, 8);
            assert_eq!(src.compiled_bound(), raw.compiled_bound());
            assert_eq!(src.delay_model(), model);
            for i in 0..500 {
                assert_eq!(src.draw(i % 8), raw.draw(i % 8), "{model:?}");
            }
            assert!(src.tape().is_empty(), "recording is off by default");
        }
    }

    #[test]
    fn script_source_feeds_choices_counts_draws_and_tapes() {
        let mut src = DelaySource::script(3);
        assert_eq!(src.compiled_bound(), 3);
        src.begin_step(&[2, 3]);
        assert_eq!(src.draw(0), 2);
        assert_eq!(src.draw(5), 3);
        assert_eq!(src.draw(1), 1, "draws beyond the script pad with 1");
        assert_eq!(src.step_draws(), 3);
        src.begin_step(&[]);
        assert_eq!(src.draw(2), 1);
        assert_eq!(src.step_draws(), 1);
        assert_eq!(src.tape(), &[2, 3, 1, 1], "the tape spans steps — it is the branch's trace");
        // A cloned source extends its own tape from the shared prefix.
        let mut fork = src.clone();
        fork.begin_step(&[3]);
        assert_eq!(fork.draw(0), 3);
        assert_eq!(fork.tape(), &[2, 3, 1, 1, 3]);
        assert_eq!(src.tape(), &[2, 3, 1, 1]);
    }

    #[test]
    fn compiled_bound_on_empty_planes_is_one() {
        for model in
            [DelayModel::PerLink { max_delay: 9 }, DelayModel::Adversarial { max_delay: 9 }]
        {
            assert_eq!(DelaySampler::new(model, 0, 0).compiled_bound(), 1, "{model:?}");
        }
    }
}
