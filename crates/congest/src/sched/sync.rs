//! The synchronizer layer: pluggable pulse-gating control planes for the
//! asynchronous executor.
//!
//! The asynchronous engine (`crate::asynch`) is split in two:
//!
//! * the **executor core** owns the mechanics — the CSR route table, the
//!   flat payload queues, the timing wheel of in-flight envelopes, the
//!   rotating per-pulse inboxes, and the act of stepping protocols — and
//! * a **`Synchronizer`** owns the *control plane*: it observes every
//!   payload sent and received, emits whatever control traffic its
//!   discipline requires, accounts that traffic in
//!   [`SyncOverhead`], and decides, per node, when a pulse may execute.
//!
//! Two synchronizers implement the trait, selected by the public
//! [`SyncModel`] knob on `Engine::Async { delay, sync }`:
//!
//! * [`SyncModel::Alpha`] — Awerbuch's classic synchronizer α, extracted
//!   from the pre-split engine **bit for bit**: every payload is
//!   acknowledged, a node floods `Safe` on every incident edge once its
//!   pulse's payloads are all acknowledged, and a node executes pulse `r`
//!   when every neighbor reported safe for `r`. Simple and fully
//!   message-driven, but an *empty* pulse still floods `Safe` over every
//!   directed edge — the "α tax" is `O(m)` control messages per pulse no
//!   matter how little the protocol says.
//! * [`SyncModel::BatchedAlpha`] — a quiescence-aware variant that cuts
//!   that tax. Per directed edge and pulse, CONGEST delivers at most one
//!   payload, so the payload itself can *piggyback* the edge's safety
//!   certificate: arrival of the (unique) pulse-`r` payload on an edge
//!   proves the edge clear for `r`, with no `Ack` and no `Safe` behind
//!   it. Edges that carry no payload are cleared by a **coalesced Safe
//!   wave**: a node posts one `Safe` announcement per pulse covering all
//!   of its idle ports at once — metered as a single control message —
//!   and the simulator resolves the wave's bookkeeping eagerly instead of
//!   materializing one event per idle edge. A pulse therefore costs
//!   control traffic proportional to the nodes that are *present*
//!   (`O(n)` worst case, and zero events for the fully idle part of the
//!   network), not `O(m)`; payload-carrying edges pay no control
//!   messages at all.
//!
//! Both synchronizers preserve the executor's output contract: per-node
//! outputs and the payload-side `Metrics` are **bit-identical** to the
//! synchronous engines for the same seed and budget, under every
//! [`DelayModel`](crate::sched::DelayModel). Only [`SyncOverhead`] — the
//! control plane's own cost — differs between them, which is the point.
//!
//! # Safety argument (why `BatchedAlpha` is still a synchronizer)
//!
//! Node `v` executes pulse `r` once it holds one *token* per incident
//! edge for `r`: either the edge's unique pulse-`r` payload or its
//! `Safe`-wave clear. A neighbor `u` emits its pulse-`r` tokens exactly
//! when it *enters* pulse `r`, which it does only after executing
//! `r − 1` — so `v` executing `r` implies every neighbor entered `r`,
//! and `u` entering `r + 1` implies every neighbor entered `r`. That is
//! the same ±1 pulse-skew invariant as α's, so the executor's
//! parity-indexed inboxes and two-slot token counters remain exact, and
//! a pulse executes only after its whole inbox has arrived.

use crate::message::TAG_BITS;
use crate::obs::{emit, CtrlTag, SinkSlot, TraceEvent};
use crate::plane::Topology;
use crate::protocol::Port;
use crate::sched::fault::{FaultEvent, FaultPlane};
use crate::sched::{DelaySource, EventWheel};
use crate::session::SyncOverhead;

/// Bits reserved for the pulse tag on every synchronizer envelope.
pub(crate) const PULSE_BITS: usize = 32;

/// Bits of one control envelope (`Ack`/`Safe`), and of the wrapper added
/// around a payload in flight.
pub(crate) const ENVELOPE_BITS: usize = TAG_BITS + PULSE_BITS;

/// Which synchronizer gates pulses on
/// [`Engine::Async`](crate::Engine::Async).
///
/// All synchronizers produce identical per-node outputs and payload-side
/// [`Metrics`](crate::Metrics) for the same seed and budget; they differ
/// only in the control plane they run — and therefore in the
/// [`SyncOverhead`] they report and the wall-clock they cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncModel {
    /// Classic synchronizer α (Awerbuch): per-payload `Ack`s plus a
    /// per-pulse `Safe` flood on every directed edge. The reference
    /// discipline — fully message-driven, `O(m)` control messages per
    /// pulse even when nothing is sent.
    #[default]
    Alpha,
    /// Quiescence-aware α with safety piggybacked on payloads and idle
    /// edges cleared by one coalesced `Safe` wave per node per pulse:
    /// control cost follows the active frontier, not the edge count.
    /// Outputs and payload metrics stay bit-identical to
    /// [`SyncModel::Alpha`] (and to the synchronous engines); only
    /// [`SyncOverhead`] shrinks.
    ///
    /// Two accounting caveats when comparing overheads across
    /// synchronizers. A wave is metered as **one** control message and
    /// one envelope regardless of how many idle ports it covers — the
    /// model is a posted announcement all neighbors observe (a
    /// broadcast/wave primitive), so `control_messages` compares α's
    /// per-edge messages against per-node announcements; the wall-clock
    /// columns in `BENCH_protocol.json` are the unit-free check. And
    /// because the simulator resolves wave bookkeeping eagerly (no wheel
    /// event per idle edge), pure-wave pulses do not advance
    /// `virtual_time` — it tracks payload arrivals only, so a run's
    /// trailing empty pulses leave it frozen where α's would keep
    /// growing.
    BatchedAlpha,
}

impl SyncModel {
    /// Short stable label (bench records, diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SyncModel::Alpha => "alpha",
            SyncModel::BatchedAlpha => "batched",
        }
    }
}

/// Control-message kinds a synchronizer may put on the wire. Their
/// meaning belongs to the synchronizer that sent them; the executor only
/// routes them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum CtrlKind {
    /// Receipt acknowledgment for one payload (α).
    Ack,
    /// "This edge (or this node) is clear for the tagged pulse."
    Safe,
}

impl CtrlKind {
    /// The public trace tag for this kind.
    fn tag(self) -> CtrlTag {
        match self {
            CtrlKind::Ack => CtrlTag::Ack,
            CtrlKind::Safe => CtrlTag::Safe,
        }
    }
}

/// One control envelope: kind plus the pulse it talks about.
#[derive(Clone, Copy, Debug, Hash)]
pub(crate) struct Ctrl {
    pub kind: CtrlKind,
    pub pulse: u64,
}

/// What travels on the asynchronous wire: an application payload wrapped
/// with its pulse tag, or a synchronizer control envelope.
#[derive(Clone, Debug, Hash)]
pub(crate) enum SyncMsg<M> {
    /// An application message to be consumed at `pulse`.
    Payload { pulse: u64, msg: M },
    /// A synchronizer control envelope.
    Ctrl(Ctrl),
}

/// One in-flight event on the timing wheel.
#[derive(Clone, Debug, Hash)]
pub(crate) enum Event<M> {
    /// An envelope in transit: destination resolved at send time by the
    /// CSR route table, carried in the wheel entry rather than parked in
    /// a side table.
    Deliver {
        /// Destination node.
        to: u32,
        /// The destination node's local receiving port.
        port: u32,
        /// The envelope itself.
        msg: SyncMsg<M>,
    },
    /// A retransmission timer: the attempt to send `msg` out of `from`'s
    /// local `port` was lost to a fault; when the timer fires the
    /// envelope re-enters [`transmit`] (fresh delay draw, fresh fault
    /// draw).
    Resend {
        /// The original sender.
        from: u32,
        /// The sender's local port.
        port: u32,
        /// The envelope to retransmit.
        msg: SyncMsg<M>,
    },
}

/// The one wire choke point of the asynchronous engine: every envelope —
/// application payload or synchronizer control — leaves node `from`'s
/// local `port` through here. The fault plane rules first: a lost
/// attempt is metered (`SyncOverhead::retransmissions`,
/// `SyncOverhead::dropped_messages`), logged as
/// [`FaultEvent::Dropped`], and parked as an [`Event::Resend`] timer
/// (the RTO under `Drop`, the next up-edge under `LinkFlap`); a clean
/// attempt rides the wheel as an [`Event::Deliver`] after the delay
/// model's draw, exactly as in the fault-free engine.
// Parameters stay loose: both callers (the executor and `ControlPlane`)
// borrow these field-by-field from different owning structs, so bundling
// them would just force a second borrow-splitting layer.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn transmit<M>(
    topo: &Topology,
    delays: &mut DelaySource,
    faults: &mut FaultPlane,
    events: &mut EventWheel<Event<M>>,
    overhead: &mut SyncOverhead,
    now: u64,
    from: usize,
    port: Port,
    msg: SyncMsg<M>,
) {
    let (slot, to, back) = topo.resolve(from, port);
    if faults.sampler.drops(slot, now) {
        overhead.retransmissions += 1;
        overhead.dropped_messages += 1;
        faults.log.push(FaultEvent::Dropped { node: from as u32, port, at: now });
        let at = now + faults.sampler.retry_wait(slot, now);
        events.schedule(at, Event::Resend { from: from as u32, port: port as u32, msg });
        return;
    }
    let at = now + delays.draw(slot);
    events.schedule(at, Event::Deliver { to, port: back, msg });
}

/// The executor facilities a [`Synchronizer`] hook may use: route
/// lookups, scheduling control envelopes onto the shared timing wheel
/// (with a model-drawn delay), metering into [`SyncOverhead`], and
/// waking nodes whose gate this hook may have completed.
///
/// Borrowed field-by-field from the executor for the duration of one
/// hook call, so the synchronizer state itself stays a plain `&mut`.
pub(crate) struct ControlPlane<'a, M> {
    pub topo: &'a Topology,
    pub delays: &'a mut DelaySource,
    /// The fault plane: control envelopes ride the same faulty wire as
    /// payloads, so `send_ctrl` consults it through [`transmit`].
    pub faults: &'a mut FaultPlane,
    pub events: &'a mut EventWheel<Event<M>>,
    pub overhead: &'a mut SyncOverhead,
    /// Nodes whose pulse gate may have just completed; the executor
    /// drains this worklist (iteratively — no recursion) after the hook
    /// returns. Only needed for signals resolved eagerly
    /// (`BatchedAlpha`'s waves); wheel-delivered signals wake their
    /// destination through the event loop.
    pub ready: &'a mut Vec<u32>,
    /// Current virtual time; scheduled envelopes depart now.
    pub now: u64,
    /// The observability sink (absent unless the session installed one):
    /// control-plane sends and coalesced waves are recorded here. Pure
    /// observation — recording never perturbs the run.
    pub rec: &'a mut SinkSlot,
}

impl<M> ControlPlane<'_, M> {
    /// Degree of node `v` (its port count in the CSR table).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.topo.offsets[v + 1] - self.topo.offsets[v]) as usize
    }

    /// Resolves `(v, port)` to `(neighbor node, neighbor's local port)`.
    #[inline]
    pub fn route(&self, v: usize, port: Port) -> (u32, u32) {
        let (_slot, to, back) = self.topo.resolve(v, port);
        (to, back)
    }

    /// Schedules `ctrl` from node `from`'s local `port`, delayed by the
    /// sending port's model draw — the same (faulty) wire payload
    /// envelopes ride, so a dropped control envelope is retransmitted
    /// like any payload. Metering is separate
    /// ([`ControlPlane::meter_ctrl`]): α meters on receipt, coalesced
    /// waves meter once at emission.
    #[inline]
    pub fn send_ctrl(&mut self, from: usize, port: Port, ctrl: Ctrl) {
        transmit(
            self.topo,
            self.delays,
            self.faults,
            self.events,
            self.overhead,
            self.now,
            from,
            port,
            SyncMsg::Ctrl(ctrl),
        );
        emit(
            self.rec,
            self.now,
            TraceEvent::Ctrl {
                node: from as u32,
                kind: ctrl.kind.tag(),
                pulse: ctrl.pulse,
                bits: ENVELOPE_BITS as u32,
            },
        );
    }

    /// Accounts `messages` control messages (and their envelopes) in
    /// [`SyncOverhead`].
    #[inline]
    pub fn meter_ctrl(&mut self, messages: u64) {
        self.overhead.control_messages += messages;
        self.overhead.control_bits += messages * ENVELOPE_BITS as u64;
    }

    /// Enqueues node `v` on the executor's ready worklist: its pulse gate
    /// may now be satisfied. Spurious wakes are harmless (the executor
    /// re-checks the gate); missing one stalls the run.
    #[inline]
    pub fn wake(&mut self, v: u32) {
        self.ready.push(v);
    }
}

/// A pulse-gating control plane for the asynchronous executor.
///
/// The executor calls the hooks in a fixed shape per node and pulse:
///
/// 1. entering a pulse, it drains one payload per non-empty port (in
///    port order) and calls [`Synchronizer::on_idle_port`] for each port
///    with nothing queued, then [`Synchronizer::on_pulse_begun`] once;
/// 2. every delivered payload triggers [`Synchronizer::on_payload`] (the
///    payload is already staged in the pulse inbox), every delivered
///    control envelope triggers [`Synchronizer::on_ctrl`];
/// 3. after any hook, the executor consults [`Synchronizer::ready`] and,
///    while it grants the gate, executes the pulse, calls
///    [`Synchronizer::on_executed`], advances the node and re-enters
///    step 1 — iteratively, alongside a worklist of nodes woken via
///    [`ControlPlane::wake`].
///
/// Implementations own all per-node control state (the synchronizer is
/// network-wide, so a hook for node `v` may update any node's state —
/// that is how eagerly resolved waves work) and all control metering.
pub(crate) trait Synchronizer {
    /// Node `v`, entering `pulse`, has no payload queued on `port`.
    /// Called before [`Synchronizer::on_pulse_begun`], in port order,
    /// interleaved with the payload sends of the non-empty ports.
    fn on_idle_port<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, port: Port, pulse: u64);

    /// Node `v` entered `pulse` and sent `sent` payloads (one per
    /// non-empty port). Emit whatever the discipline requires for the
    /// node's send phase.
    fn on_pulse_begun<M>(
        &mut self,
        cp: &mut ControlPlane<'_, M>,
        v: usize,
        pulse: u64,
        sent: usize,
    );

    /// A pulse-`pulse` payload arrived at node `v` on local `port` (the
    /// executor has already staged and metered it).
    fn on_payload<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, port: Port, pulse: u64);

    /// A control envelope arrived at node `v` (currently waiting on
    /// `node_pulse`) on local `port`.
    fn on_ctrl<M>(
        &mut self,
        cp: &mut ControlPlane<'_, M>,
        v: usize,
        node_pulse: u64,
        port: Port,
        ctrl: Ctrl,
    );

    /// May node `v` (degree `degree`) execute `pulse` now? The executor
    /// guarantees `v` has entered the pulse budget and is not done.
    fn ready(&self, v: usize, pulse: u64, degree: usize) -> bool;

    /// Node `v` executed `pulse`: retire its gating state so the slot
    /// can serve `pulse + 2` (the ±1 skew bound keeps two pulses live).
    fn on_executed(&mut self, v: usize, pulse: u64);
}

/// Synchronizer α, extracted verbatim from the pre-split engine.
///
/// Per pulse and node: payloads are sent, each is `Ack`ed by its
/// receiver; once all of the node's payloads are acknowledged it floods
/// `Safe { pulse }` on every incident edge; a node executes `pulse` when
/// it has announced its own safety and every neighbor's `Safe` arrived.
/// Control metering happens on receipt, exactly as before the split —
/// the golden-ledger test in `tests/asynchrony.rs` pins the whole
/// observable surface (outputs, payload ledger, `SyncOverhead` including
/// `virtual_time`) bit for bit.
#[derive(Clone, Debug, Hash)]
pub(crate) struct Alpha {
    /// Unacknowledged payloads of the current pulse's send phase.
    pending_acks: Vec<usize>,
    /// Whether `Safe` for the current pulse's sends has been emitted.
    safe_sent: Vec<bool>,
    /// Count of neighbors known safe, indexed by pulse parity: α keeps
    /// neighbors within one pulse, so at most two pulses' counts are
    /// ever live, and executing pulse `r` retires slot `r % 2` for reuse
    /// by pulse `r + 2`.
    safe_counts: Vec<[usize; 2]>,
}

impl Alpha {
    pub fn new(n: usize) -> Self {
        Self { pending_acks: vec![0; n], safe_sent: vec![false; n], safe_counts: vec![[0, 0]; n] }
    }

    /// Floods `Safe { pulse }` on every incident edge once the node has
    /// no unacknowledged payloads left (and has not announced yet).
    fn try_announce_safe<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, pulse: u64) {
        if self.safe_sent[v] || self.pending_acks[v] > 0 {
            return;
        }
        self.safe_sent[v] = true;
        for port in 0..cp.degree(v) {
            cp.send_ctrl(v, port, Ctrl { kind: CtrlKind::Safe, pulse });
        }
    }
}

impl Synchronizer for Alpha {
    fn on_idle_port<M>(&mut self, _cp: &mut ControlPlane<'_, M>, _v: usize, _port: Port, _p: u64) {
        // α says nothing per idle port; its Safe flood covers all edges.
    }

    fn on_pulse_begun<M>(
        &mut self,
        cp: &mut ControlPlane<'_, M>,
        v: usize,
        pulse: u64,
        sent: usize,
    ) {
        self.pending_acks[v] = sent;
        self.safe_sent[v] = false;
        self.try_announce_safe(cp, v, pulse);
    }

    fn on_payload<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, port: Port, pulse: u64) {
        // Acknowledge the payload back over the same edge.
        cp.send_ctrl(v, port, Ctrl { kind: CtrlKind::Ack, pulse });
    }

    fn on_ctrl<M>(
        &mut self,
        cp: &mut ControlPlane<'_, M>,
        v: usize,
        node_pulse: u64,
        _port: Port,
        ctrl: Ctrl,
    ) {
        cp.meter_ctrl(1);
        match ctrl.kind {
            CtrlKind::Ack => {
                debug_assert_eq!(ctrl.pulse, node_pulse, "ack for a stale pulse");
                self.pending_acks[v] -= 1;
                self.try_announce_safe(cp, v, node_pulse);
            }
            CtrlKind::Safe => {
                // Safe{r} from a neighbor certifies all its pulse-r
                // payloads arrived; it gates the receiver's own pulse r.
                // The ±1 skew argument bounds the live pulses to two, so
                // parity addressing is exact.
                debug_assert!(
                    ctrl.pulse == node_pulse || ctrl.pulse == node_pulse + 1,
                    "Safe outside the two-pulse horizon"
                );
                self.safe_counts[v][(ctrl.pulse & 1) as usize] += 1;
            }
        }
    }

    fn ready(&self, v: usize, pulse: u64, degree: usize) -> bool {
        self.safe_sent[v] && self.safe_counts[v][(pulse & 1) as usize] >= degree
    }

    fn on_executed(&mut self, v: usize, pulse: u64) {
        // Retire this pulse's slot; it next serves pulse + 2 (no further
        // `Safe { pulse }` can arrive: execution required all `degree`
        // of them, and each neighbor sends one per pulse).
        self.safe_counts[v][(pulse & 1) as usize] = 0;
    }
}

/// Quiescence-aware α: per-edge safety tokens, piggybacked on payloads,
/// with idle ports cleared by one coalesced `Safe` wave per node per
/// pulse.
///
/// In CONGEST each directed edge carries at most one payload per pulse,
/// so node `v` may execute pulse `r` once it holds **one token per
/// incident edge**: the edge's unique pulse-`r` payload (its arrival is
/// the safety certificate — no `Ack`, no trailing `Safe`), or the
/// edge's share of the sender's pulse-`r` Safe wave. A node entering a
/// pulse posts a single wave covering *all* of its idle ports at once —
/// metered as one control message — and the simulator resolves the
/// wave's per-edge bookkeeping eagerly instead of materializing one
/// wheel event per idle edge, which is what makes sparse and empty
/// pulses cheap in wall-clock as well as in the ledger.
///
/// The gate structure (tokens emitted on pulse entry, execution only on
/// a full token set) preserves α's ±1 neighbor-skew invariant, so
/// outputs and payload metrics stay bit-identical to the synchronous
/// engines — pinned by the grid and property tests in
/// `crates/core/tests/`.
#[derive(Clone, Debug, Hash)]
pub(crate) struct BatchedAlpha {
    /// Whether the node has entered (sent the tokens of) its current
    /// pulse — gates execution during the entry sweep, when eager waves
    /// from earlier nodes may complete a token set before the node
    /// itself has begun.
    begun: Vec<bool>,
    /// Per-edge tokens received, indexed by pulse parity (the same ±1
    /// skew bound as α's safe counts keeps two slots sufficient).
    tokens: Vec<[u32; 2]>,
}

impl BatchedAlpha {
    pub fn new(n: usize) -> Self {
        Self { begun: vec![false; n], tokens: vec![[0, 0]; n] }
    }

    /// Grants a pulse-`pulse` edge token to node `w` and wakes it if the
    /// token set is now complete.
    #[inline]
    fn grant<M>(&mut self, cp: &mut ControlPlane<'_, M>, w: u32, pulse: u64) {
        let slot = &mut self.tokens[w as usize][(pulse & 1) as usize];
        *slot += 1;
        if self.begun[w as usize] && *slot as usize >= cp.degree(w as usize) {
            cp.wake(w);
        }
    }
}

impl Synchronizer for BatchedAlpha {
    fn on_idle_port<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, port: Port, pulse: u64) {
        // Part of v's pulse wave: clear this edge at the receiver
        // eagerly. Delivery timing of pure clears is unobservable in
        // outputs (the gate, not the clock, orders execution), so no
        // wheel event is spent on them.
        let (w, _back) = cp.route(v, port);
        self.grant(cp, w, pulse);
    }

    fn on_pulse_begun<M>(
        &mut self,
        cp: &mut ControlPlane<'_, M>,
        v: usize,
        pulse: u64,
        sent: usize,
    ) {
        self.begun[v] = true;
        if sent < cp.degree(v) {
            // The node's coalesced Safe wave: one announcement covers
            // every idle port this pulse.
            cp.meter_ctrl(1);
            emit(
                cp.rec,
                cp.now,
                TraceEvent::SafeWave { node: v as u32, pulse, bits: ENVELOPE_BITS as u32 },
            );
        }
    }

    fn on_payload<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, _port: Port, pulse: u64) {
        // The payload is its edge's token — piggybacked safety, nothing
        // to send back. The executor re-checks v's gate right after.
        let slot = &mut self.tokens[v][(pulse & 1) as usize];
        *slot += 1;
        let _ = cp;
    }

    fn on_ctrl<M>(
        &mut self,
        _cp: &mut ControlPlane<'_, M>,
        _v: usize,
        _node_pulse: u64,
        _port: Port,
        _ctrl: Ctrl,
    ) {
        unreachable!("BatchedAlpha never schedules control envelopes on the wheel");
    }

    fn ready(&self, v: usize, pulse: u64, degree: usize) -> bool {
        self.begun[v] && self.tokens[v][(pulse & 1) as usize] as usize >= degree
    }

    fn on_executed(&mut self, v: usize, pulse: u64) {
        self.tokens[v][(pulse & 1) as usize] = 0;
        self.begun[v] = false;
    }
}

/// The engine-held synchronizer: static dispatch over the implemented
/// disciplines, constructed from the public [`SyncModel`] knob.
#[derive(Clone, Debug, Hash)]
pub(crate) enum SyncDriver {
    Alpha(Alpha),
    Batched(BatchedAlpha),
}

impl SyncDriver {
    /// Builds the synchronizer state for an `n`-node plane.
    pub fn new(model: SyncModel, n: usize) -> Self {
        match model {
            SyncModel::Alpha => SyncDriver::Alpha(Alpha::new(n)),
            SyncModel::BatchedAlpha => SyncDriver::Batched(BatchedAlpha::new(n)),
        }
    }

    /// The model this driver implements.
    pub fn model(&self) -> SyncModel {
        match self {
            SyncDriver::Alpha(_) => SyncModel::Alpha,
            SyncDriver::Batched(_) => SyncModel::BatchedAlpha,
        }
    }
}

impl Synchronizer for SyncDriver {
    fn on_idle_port<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, port: Port, pulse: u64) {
        match self {
            SyncDriver::Alpha(s) => s.on_idle_port(cp, v, port, pulse),
            SyncDriver::Batched(s) => s.on_idle_port(cp, v, port, pulse),
        }
    }

    fn on_pulse_begun<M>(
        &mut self,
        cp: &mut ControlPlane<'_, M>,
        v: usize,
        pulse: u64,
        sent: usize,
    ) {
        match self {
            SyncDriver::Alpha(s) => s.on_pulse_begun(cp, v, pulse, sent),
            SyncDriver::Batched(s) => s.on_pulse_begun(cp, v, pulse, sent),
        }
    }

    fn on_payload<M>(&mut self, cp: &mut ControlPlane<'_, M>, v: usize, port: Port, pulse: u64) {
        match self {
            SyncDriver::Alpha(s) => s.on_payload(cp, v, port, pulse),
            SyncDriver::Batched(s) => s.on_payload(cp, v, port, pulse),
        }
    }

    fn on_ctrl<M>(
        &mut self,
        cp: &mut ControlPlane<'_, M>,
        v: usize,
        node_pulse: u64,
        port: Port,
        ctrl: Ctrl,
    ) {
        match self {
            SyncDriver::Alpha(s) => s.on_ctrl(cp, v, node_pulse, port, ctrl),
            SyncDriver::Batched(s) => s.on_ctrl(cp, v, node_pulse, port, ctrl),
        }
    }

    fn ready(&self, v: usize, pulse: u64, degree: usize) -> bool {
        match self {
            SyncDriver::Alpha(s) => s.ready(v, pulse, degree),
            SyncDriver::Batched(s) => s.ready(v, pulse, degree),
        }
    }

    fn on_executed(&mut self, v: usize, pulse: u64) {
        match self {
            SyncDriver::Alpha(s) => s.on_executed(v, pulse),
            SyncDriver::Batched(s) => s.on_executed(v, pulse),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_alpha() {
        assert_eq!(SyncModel::default(), SyncModel::Alpha);
        assert_eq!(SyncDriver::new(SyncModel::default(), 4).model(), SyncModel::Alpha);
        assert_eq!(SyncDriver::new(SyncModel::BatchedAlpha, 4).model(), SyncModel::BatchedAlpha);
    }

    #[test]
    fn model_names_are_stable() {
        // Bench record ids build on these; changing them breaks the
        // BENCH_protocol.json trend lines.
        assert_eq!(SyncModel::Alpha.name(), "alpha");
        assert_eq!(SyncModel::BatchedAlpha.name(), "batched");
    }

    #[test]
    fn alpha_gate_needs_own_announcement_and_all_neighbors() {
        let mut a = Alpha::new(2);
        assert!(!a.ready(0, 1, 2));
        a.safe_sent[0] = true;
        a.safe_counts[0][1] = 1;
        assert!(!a.ready(0, 1, 2), "one of two neighbors safe");
        a.safe_counts[0][1] = 2;
        assert!(a.ready(0, 1, 2));
        a.on_executed(0, 1);
        assert!(!a.ready(0, 3, 2), "executed pulse retires its parity slot");
    }

    #[test]
    fn batched_gate_needs_entry_and_full_token_set() {
        let mut b = BatchedAlpha::new(1);
        b.tokens[0][1] = 3;
        assert!(!b.ready(0, 1, 3), "tokens alone never execute an unentered pulse");
        b.begun[0] = true;
        assert!(b.ready(0, 1, 3));
        b.on_executed(0, 1);
        assert!(!b.ready(0, 3, 3), "execution clears the slot and the entry flag");
    }
}
