//! The timing wheel: the asynchronous engine's zero-allocation event
//! plane.
//!
//! The α executor's in-flight events used to live in a global
//! `BinaryHeap<Reverse<(time, seq, node, port)>>` with every envelope
//! parked in a `BTreeMap` on the side — `O(log k)` sift per event plus a
//! tree allocation per message. But the event population is *horizon
//! bounded*: every delay a compiled [`DelayModel`] sampler draws is in
//! `1..=bound`, so at any instant `t` all pending events lie in
//! `(t, t + bound]` — at most `bound` distinct arrival times. A circular
//! array of `bound + 1` buckets therefore holds every pending event at a
//! unique `time % (bound + 1)` slot, and the heap's comparison work
//! disappears:
//!
//! * **push** is O(1): append to the FIFO of bucket `at % horizon`;
//! * **pop** is O(1) amortized: drain the current bucket in FIFO order,
//!   then advance the cursor to the next non-empty bucket (the scan is
//!   bounded by the horizon and touches only 16-byte bucket headers);
//! * **order is exactly the heap's**: arrival times ascend bucket by
//!   bucket, and within one bucket FIFO order *is* global insertion
//!   order — the heap's `seq` tiebreak — because insertion sequence
//!   numbers increase monotonically over the run. No `seq` needs to be
//!   stored at all.
//!
//! Storage is the flat plane's chunked-slab machinery
//! (`plane::PortQueues` with buckets as "ports"): events are strung
//! eight to a chunk on intrusive `u32` links and chunks recycle through
//! a free list, so the wheel performs **zero heap allocations** once the
//! slab has grown to the run's high-water mark. The envelope travels
//! *inside* its wheel entry — the old side-table of parked envelopes
//! (and its per-insert tree-node allocation) is gone entirely.
//!
//! The wheel is generic and public: the engine instantiates it with its
//! envelope type, and the `wheel_vs_heap` micro-bench (`cargo bench -p
//! bench --bench async_plane`) drives it head-to-head against the heap
//! it replaced.
//!
//! [`DelayModel`]: crate::sched::DelayModel

use crate::plane::PortQueues;

/// Ceiling on the bucket count: headers are 16 bytes, so a horizon of
/// 2²⁴ would already cost 256 MiB of headers. Delays are *virtual* time
/// units — real workloads use small bounds — and the engine sizes the
/// wheel off the sampler's *compiled* per-port maximum (at most the
/// model's declared [`DelayModel::bound`](crate::sched::DelayModel::bound),
/// and tighter for the per-port models), so hitting this means a
/// genuinely pathological `max_delay`.
const MAX_HORIZON: u64 = 1 << 24;

/// A horizon-bounded timing wheel over items of type `T`.
///
/// Items are scheduled at absolute times strictly greater than the
/// cursor and at most `max_delay` ahead of it; [`EventWheel::pop_next`]
/// returns them in `(time, insertion order)` order — bit-identical to a
/// min-heap keyed by `(time, global sequence number)`.
#[derive(Clone, Debug)]
pub struct EventWheel<T> {
    /// One chunked FIFO per bucket; bucket `b` holds the events arriving
    /// at times `≡ b (mod horizon)`.
    buckets: PortQueues<T>,
    /// Number of buckets, `max_delay + 1`.
    horizon: u64,
    /// Current virtual time: the arrival time of the most recently
    /// popped event (0 before any pop).
    cursor: u64,
    /// Most events ever pending at once — the run's occupancy
    /// high-water mark, surfaced to the observability plane.
    high_water: u64,
}

impl<T> EventWheel<T> {
    /// A wheel accepting delays of `1..=max_delay` time units.
    ///
    /// # Panics
    ///
    /// Panics if `max_delay` is 0 (the synchronizer needs positive link
    /// delays) or absurdly large (a horizon of `max_delay + 1 ≥ 2²⁴`
    /// buckets; wheel memory is `O(max_delay)` bucket headers).
    #[must_use]
    pub fn new(max_delay: u64) -> Self {
        assert!(max_delay >= 1, "EventWheel needs a positive delay bound");
        assert!(
            max_delay + 1 < MAX_HORIZON,
            "EventWheel bound {max_delay} is out of range: the wheel would need ≥ 2^24 \
             buckets (memory grows with the delay bound)"
        );
        let horizon = max_delay + 1;
        Self { buckets: PortQueues::new(horizon as usize), horizon, cursor: 0, high_water: 0 }
    }

    /// Number of buckets (`max_delay + 1`).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The current virtual time (arrival time of the last popped event).
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Events scheduled and not yet popped.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.buckets.queued()
    }

    /// Most events ever pending at once over the wheel's lifetime.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Schedules `item` to arrive at absolute time `at`.
    ///
    /// `at` must lie in `(cursor, cursor + max_delay]` — guaranteed by
    /// construction when `at = now + delay` with a bounded positive
    /// delay. Never allocates once the chunk slab is warm.
    #[inline]
    pub fn schedule(&mut self, at: u64, item: T) {
        debug_assert!(
            at > self.cursor && at - self.cursor < self.horizon,
            "event at {at} outside the wheel window ({}, {}]",
            self.cursor,
            self.cursor + self.horizon - 1
        );
        self.buckets.push((at % self.horizon) as u32, item);
        self.high_water = self.high_water.max(self.buckets.queued());
    }

    /// Visits every pending event in delivery order — ascending arrival
    /// time, FIFO within a time — **without** draining the wheel,
    /// passing each event's arrival time *relative to the cursor*.
    /// Relative times make the sweep time-shift invariant, which is what
    /// lets the interleaving explorer's state fingerprint identify
    /// states that differ only by when (in absolute virtual time) they
    /// were reached.
    pub(crate) fn for_each_pending(&self, mut f: impl FnMut(u64, &T)) {
        // Pending arrivals lie in `[cursor, cursor + horizon)`: schedule
        // requires `at > cursor` at insert time, but the cursor may have
        // advanced onto a bucket since.
        for rel in 0..self.horizon {
            let bucket = ((self.cursor + rel) % self.horizon) as u32;
            self.buckets.for_each(bucket, |item| f(rel, item));
        }
    }

    /// Pops the next event in `(time, insertion order)` order, advancing
    /// the cursor to its arrival time. Returns `None` when no events are
    /// pending (the cursor stays put, so a later [`EventWheel::schedule`]
    /// resumes from the current virtual time).
    #[inline]
    pub fn pop_next(&mut self) -> Option<(u64, T)> {
        if self.buckets.queued() == 0 {
            return None;
        }
        loop {
            let bucket = (self.cursor % self.horizon) as u32;
            if let Some(item) = self.buckets.pop(bucket) {
                return Some((self.cursor, item));
            }
            // Bounded scan: some bucket within the horizon is non-empty.
            self.cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn drains_in_time_then_fifo_order() {
        let mut w: EventWheel<u32> = EventWheel::new(4);
        w.schedule(3, 30);
        w.schedule(1, 10);
        w.schedule(3, 31);
        w.schedule(2, 20);
        let mut got = Vec::new();
        while let Some(e) = w.pop_next() {
            got.push(e);
        }
        assert_eq!(got, vec![(1, 10), (2, 20), (3, 30), (3, 31)]);
        assert_eq!(w.cursor(), 3);
        assert!(w.pop_next().is_none());
        assert_eq!(w.high_water(), 4, "all four events were pending at once");
    }

    #[test]
    fn wraps_around_the_horizon_many_times() {
        let mut w: EventWheel<u64> = EventWheel::new(3);
        // A self-sustaining chain: each pop schedules the next event a
        // few units ahead, cycling through every bucket repeatedly.
        w.schedule(1, 0);
        let mut hops = 0u64;
        let mut last_time = 0;
        while hops < 1000 {
            let (t, k) = w.pop_next().expect("chain is alive");
            assert!(t > last_time || hops == 0);
            last_time = t;
            hops += 1;
            if hops < 1000 {
                w.schedule(t + 1 + (k % 3), k + 1);
            }
        }
        assert_eq!(w.pending(), 0);
        assert!(last_time >= 1000 / 3);
    }

    #[test]
    fn empty_pop_keeps_cursor_for_resume() {
        let mut w: EventWheel<u8> = EventWheel::new(5);
        w.schedule(4, 1);
        assert_eq!(w.pop_next(), Some((4, 1)));
        assert_eq!(w.pop_next(), None);
        assert_eq!(w.cursor(), 4);
        // Resume exactly like the engine does after a drive boundary:
        // schedule relative to the preserved cursor.
        w.schedule(w.cursor() + 2, 2);
        assert_eq!(w.pop_next(), Some((6, 2)));
    }

    #[test]
    #[should_panic(expected = "positive delay bound")]
    fn zero_bound_is_rejected() {
        let _ = EventWheel::<u8>::new(0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The satellite contract: wheel-drain order ≡ heap-pop order for
        /// random (pulse, seq, port)-style event streams at random
        /// horizons. The reference is the exact structure the engine used
        /// to run on — `BinaryHeap<Reverse<(time, seq, payload)>>` — and
        /// the stream interleaves schedule and pop like the live engine
        /// (every handled event may schedule a few more within the
        /// bound), so the equivalence covers mid-drain insertion, not
        /// just batch loading.
        #[test]
        fn wheel_order_equals_heap_order(
            max_delay in 1u64..50,
            stream_seed in 0u64..10_000,
            initial in 1usize..40,
            fanout in 0usize..4,
        ) {
            let mut rng = crate::rng::splitmix64(stream_seed | 1);
            let mut draw = |bound: u64| {
                rng = crate::rng::splitmix64(rng);
                1 + rng % bound
            };

            let mut wheel: EventWheel<u64> = EventWheel::new(max_delay);
            let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;

            // Seed both structures with the same burst at time 0.
            for _ in 0..initial {
                let at = draw(max_delay);
                wheel.schedule(at, seq);
                heap.push(Reverse((at, seq, seq)));
                seq += 1;
            }

            let mut budget = 4000usize;
            loop {
                let from_heap = heap.pop();
                let from_wheel = wheel.pop_next();
                match (from_heap, from_wheel) {
                    (None, None) => break,
                    (Some(Reverse((ht, hseq, hpayload))), Some((wt, wpayload))) => {
                        prop_assert_eq!(ht, wt, "arrival times diverge");
                        prop_assert_eq!(hpayload, wpayload, "tiebreak order diverges");
                        prop_assert_eq!(hseq, hpayload, "heap payload is its seq");
                        // Mimic the engine: a handled event schedules a
                        // few successors within the bound.
                        if budget > 0 {
                            for _ in 0..fanout {
                                budget -= 1;
                                let at = ht + draw(max_delay);
                                wheel.schedule(at, seq);
                                heap.push(Reverse((at, seq, seq)));
                                seq += 1;
                                if budget == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    (h, w) => prop_assert!(false, "one side drained early: {h:?} vs {w:?}"),
                }
            }
            prop_assert_eq!(wheel.pending(), 0);
        }
    }
}
