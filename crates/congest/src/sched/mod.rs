//! The asynchronous scheduling subsystem: *what is delayed* × *how
//! phases advance* × *how pulses are synchronized*.
//!
//! [`Engine::Async`](crate::Engine::Async) executes the §2 Awerbuch
//! reduction — any synchronous algorithm runs unchanged under a
//! synchronizer. This module supplies the three scheduling dimensions
//! that turn that executor into an adversarial testbed:
//!
//! * [`DelayModel`] — the link-delay distribution. Four models, all
//!   seeded and deterministic: [`DelayModel::Uniform`] (the classic
//!   `1..=max_delay` draw), [`DelayModel::PerLink`] (every directed port
//!   gets its own seeded bound — heterogeneous links),
//!   [`DelayModel::HeavyTailed`] (a bounded Pareto-like draw — most
//!   messages fast, a heavy tail of stragglers), and
//!   [`DelayModel::Adversarial`] (worst-case-within-bound: a seeded half
//!   of the ports always takes the full `max_delay`, the rest are
//!   instant — maximal skew the synchronizer must absorb).
//! * [`PhasePlan`] — per-phase deterministic pulse budgets, the paper's
//!   §4.1 staged execution. A synchronizer has no quiescence barrier, so
//!   multi-phase protocols (like `DistNearClique`) assign each phase a
//!   precomputed budget; when a phase's budget elapses, every node takes
//!   its [`Protocol::on_quiescent`](crate::Protocol::on_quiescent)
//!   transition, exactly as the synchronous simulator does at
//!   quiescence. Budgets can be written by hand or derived from a
//!   synchronous dry run's phase trace
//!   ([`PhasePlan::from_trace`]).
//! * [`FaultModel`] — what the network *breaks* ([`fault`]): seeded
//!   per-send message loss ([`FaultModel::Drop`]), periodic per-port
//!   outages ([`FaultModel::LinkFlap`]) — both **masked** by a
//!   deterministic retransmit-on-timeout path so outputs and payload
//!   metrics stay bit-identical to the fault-free run — and node churn
//!   ([`FaultModel::Crash`]), under which surviving nodes re-converge
//!   and the run reports
//!   [`Termination::Degraded`](crate::Termination::Degraded). Every
//!   fault schedule is replayable from `(seed, FaultModel)` alone.
//! * [`ChurnModel`] — how the *member set* changes ([`churn`]): seeded
//!   staggered joins ([`ChurnModel::Join`]), graceful leaves
//!   ([`ChurnModel::Leave`]), or both ([`ChurnModel::Mixed`]). Each
//!   membership event opens a new **epoch**: the engine's
//!   epoch-versioned overlay retires or materializes the affected CSR
//!   ports in place, every retired in-flight payload is itemized
//!   ([`churn::ChurnEvent::Retired`]), live peers observe
//!   [`Protocol::on_join`](crate::Protocol::on_join) /
//!   [`Protocol::on_leave`](crate::Protocol::on_leave), and
//!   [`churn::ChurnPolicy`] selects whether protocols continue
//!   (self-stabilizing) or restart from `init` each epoch. Every churn
//!   schedule is replayable from `(seed, ChurnModel)` alone.
//! * [`SyncModel`] — the synchronizer itself ([`sync`]): the executor
//!   core delegates pulse gating and all control traffic to a pluggable
//!   `Synchronizer`. [`SyncModel::Alpha`] is Awerbuch's classic α
//!   (per-payload `Ack`s + a `Safe` flood per edge per pulse), the
//!   extracted reference; [`SyncModel::BatchedAlpha`] piggybacks safety
//!   on payload envelopes and coalesces the pure-`Safe` flood into one
//!   wave per node per pulse, cutting the control cost of empty and
//!   sparse pulses from `O(m)` to the active frontier.
//!
//! All knobs ride the unified [`crate::Session`] surface: the delay
//! model, synchronizer, fault model and churn model go into
//! `Engine::Async { delay, sync, fault, churn }`, the plan into
//! [`crate::SessionDriver::run_phased`]. Payload-side
//! [`crate::Metrics`] stay bit-identical to the synchronous engines'
//! under **every** delay model and **every** synchronizer — scheduling
//! reorders delivery, never traffic — which the cross-model tests in
//! `crates/core/tests/engine_equivalence.rs` and `tests/asynchrony.rs`
//! pin.
//!
//! The subsystem also owns the executor's event plane: the bounded
//! delays every model guarantees are what make the [`EventWheel`] —
//! the O(1), zero-steady-state-allocation replacement for the engine's
//! old delay heap — correct (see [`wheel`]).

pub mod churn;
mod delay;
pub mod fault;
mod phase;
pub mod sync;
pub mod wheel;

pub(crate) use churn::ChurnPlane;
pub use churn::{ChurnEvent, ChurnModel, ChurnPolicy, EpochInfo};
pub(crate) use delay::{intern_trace, DelaySource};
pub use delay::{DelayModel, TraceHandle};
pub(crate) use fault::FaultPlane;
pub use fault::{FaultEvent, FaultModel};
pub use phase::{PhaseBudget, PhasePlan};
pub use sync::SyncModel;
pub use wheel::EventWheel;
