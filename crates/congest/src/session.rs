//! The unified execution surface: one [`Session`] builder and one
//! [`Driver`] trait over all three engines.
//!
//! The paper's claim structure spans three execution models — the
//! synchronous CONGEST simulator it analyzes, the §2 remark that any
//! synchronous algorithm runs asynchronously under a synchronizer
//! (Awerbuch's α), and the §4.1 deterministic time-bound wrapper. This
//! module exposes all of them behind a single engine-agnostic API:
//!
//! * [`Engine`] selects the execution model: [`Engine::Flat`] (the
//!   zero-allocation flat message plane, optionally sharded over
//!   threads), [`Engine::Legacy`] (the preserved seed engine — a frozen
//!   test-only fixture behind the `legacy-engine` cargo feature), or
//!   [`Engine::Async`] (event-driven delivery with seeded link delays
//!   under a pluggable synchronizer).
//! * [`Session`] configures a run — graph, seed, mode, ID assignment,
//!   engine, limits, observers — and builds a [`SessionDriver`].
//! * [`Driver`] is the uniform handle every engine implements:
//!   `drive` advances rounds (pulses, for α), then outputs, endpoints
//!   and protocols are read back uniformly.
//! * [`RunReport`] is the one report type for all engines: termination,
//!   rounds-or-pulses, the payload-side [`Metrics`] (bit-identical
//!   across engines for the same seed), and the synchronizer's
//!   [`SyncOverhead`] (zero for the synchronous engines).
//! * [`Observer`] streams per-round [`RoundDelta`]s and quiescence
//!   barriers (phase transitions) while the run executes. Observers are
//!   the *user-facing* streaming hook: boxed trait objects fed
//!   round-granular aggregates, free to allocate and do arbitrary work.
//!   The engine-facing counterpart is the [`crate::obs`] recording
//!   plane — [`Session::trace`] installs a preallocated
//!   [`crate::TraceSink`] *inside* the engine hot paths, which captures
//!   typed event-granular records (pulse begins, control sends, Safe
//!   waves, retransmits, faults) with zero steady-state allocation and
//!   zero cost when absent. Use an [`Observer`] to react to a run as it
//!   executes; use [`Session::trace`] to profile or export a timeline
//!   of *how* the engine executed it ([`RunReport::profile`],
//!   [`SessionDriver::trace_sink`]).
//! * [`Session::metrics`] picks the [`crate::MetricsMode`]: the default
//!   [`crate::MetricsMode::Full`] keeps the O(rounds)
//!   `messages_per_round` history, while
//!   [`crate::MetricsMode::Streaming`] keeps only O(1) running
//!   aggregates (per-round distributions then live in the run's
//!   [`crate::RunProfile`]).
//!
//! All engines share the determinism contract pinned by
//! `crates/core/tests/engine_equivalence.rs`: for a given seed, per-node
//! outputs are identical across engines, shard counts and (for α) link
//! delays.
//!
//! # Example: one protocol, three engines
//!
//! ```
//! use congest::{
//!     ChurnModel, Context, DelayModel, Engine, FaultModel, Message, Port, Protocol, RunLimits,
//!     Session, SyncModel,
//! };
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl Message for Token {
//!     fn bit_size(&self) -> usize { 1 }
//! }
//!
//! struct Echo { seen: bool, source: bool }
//! impl Protocol for Echo {
//!     type Msg = Token;
//!     type Output = bool;
//!     fn init(&mut self, ctx: &mut Context<'_, Token>) {
//!         if self.source { ctx.broadcast(Token); }
//!     }
//!     fn step(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(Port, Token)]) {
//!         if !inbox.is_empty() && !self.seen {
//!             self.seen = true;
//!             ctx.broadcast(Token);
//!         }
//!     }
//!     fn is_idle(&self) -> bool { true }
//!     fn output(&self) -> bool { self.seen || self.source }
//! }
//!
//! let g = graphs::Graph::complete(5);
//! let factory = |e: &congest::Endpoint| Echo { seen: false, source: e.index == 0 };
//! let delay = DelayModel::Uniform { max_delay: 7 };
//! let mut flat = Vec::new();
//! let fault = FaultModel::None;
//! let churn = ChurnModel::None;
//! for engine in [
//!     Engine::Flat { shards: 2 },
//!     Engine::Async { delay, sync: SyncModel::Alpha, fault, churn },
//!     Engine::Async { delay, sync: SyncModel::BatchedAlpha, fault, churn },
//! ] {
//!     let (outputs, report) = Session::on(&g)
//!         .seed(7)
//!         .engine(engine)
//!         .limits(RunLimits::rounds(8))
//!         .run_with(factory);
//!     assert!(outputs.iter().all(|&heard| heard));
//!     assert_eq!(report.metrics.max_message_bits, 1);
//!     flat.push(report.metrics.messages);
//! }
//! // Payload metrics agree across engines and synchronizers.
//! assert!(flat.windows(2).all(|w| w[0] == w[1]));
//! ```

use graphs::{EdgeStream, Graph};

use crate::asynch::AsyncNetwork;
#[cfg(feature = "legacy-engine")]
use crate::legacy::LegacyNetwork;
use crate::metrics::Metrics;
use crate::network::{IdAssignment, Mode, Network, NetworkBuilder};
use crate::obs::{MetricsMode, RunProfile, TraceConfig, TraceSink};
use crate::protocol::{Endpoint, Protocol, Round};
use crate::sched::{
    ChurnEvent, ChurnModel, DelayModel, EpochInfo, FaultEvent, FaultModel, PhasePlan, SyncModel,
};

/// Which execution engine a [`Session`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The flat zero-allocation message plane, sharded over `shards` OS
    /// threads (1 = sequential). Results are bit-identical at any shard
    /// count.
    Flat {
        /// Number of node shards / OS threads.
        shards: usize,
    },
    /// The preserved seed engine: sequential, pointer-chasing, kept as a
    /// frozen behavioral reference for equivalence testing and
    /// benchmarking. **Test-only fixture**: available only with
    /// congest's `legacy-engine` cargo feature (default-off; the
    /// equivalence suites and the `delivery_plane` bench enable it);
    /// without the feature, building a session on it panics with a
    /// pointer at [`Engine::Flat`].
    Legacy,
    /// Event-driven asynchronous execution under a pluggable
    /// synchronizer: every message is delayed by a seeded draw from a
    /// [`DelayModel`] (uniform, per-link, heavy-tailed, or
    /// adversarial-within-bound — see [`crate::sched`]), and the
    /// synchronizer's control traffic recreates synchronous pulses (the
    /// §2 Awerbuch reduction). `sync` picks the control plane:
    /// [`SyncModel::Alpha`] (classic synchronizer α — per-payload Acks
    /// plus a per-pulse Safe flood on every edge) or
    /// [`SyncModel::BatchedAlpha`] (safety piggybacked on payloads,
    /// idle edges cleared by one coalesced Safe wave per node per
    /// pulse). Outputs and payload [`Metrics`] are identical either
    /// way; only [`SyncOverhead`] differs.
    ///
    /// Pulses are CONGEST rounds; this engine rejects
    /// [`Mode::Local`]. Always give it an explicit pulse budget via
    /// [`Session::limits`] — pulses never quiesce (even empty pulses
    /// exchange control traffic), so the budget *is* the termination
    /// rule (the paper's §4.1 deterministic time bound). Staged
    /// protocols additionally take a per-phase [`PhasePlan`] through
    /// [`SessionDriver::run_phased`].
    /// The fault plane composes with both knobs: `fault` breaks the wire
    /// (seeded message loss, link flaps — masked by deterministic
    /// retransmission) or the hosts (crash windows — surfaced as
    /// [`Termination::Degraded`]); [`FaultModel::None`] is the perfect
    /// network, bit-identical to the engine before the fault plane
    /// existed. See [`crate::sched::fault`] for the
    /// masking-vs-degradation contract.
    ///
    /// The churn plane is the fourth seeded axis: `churn` schedules
    /// membership events (staggered joins, graceful leaves, or both —
    /// see [`crate::sched::churn`]), each opening a new epoch in which
    /// the engine's membership overlay retires or materializes the
    /// affected ports in place, retired in-flight payloads are itemized
    /// to observers, and protocols take their
    /// [`Protocol::on_join`] /
    /// [`Protocol::on_leave`] handoff hooks
    /// (or restart from `init`, under
    /// [`ChurnPolicy::Restart`](crate::ChurnPolicy::Restart)).
    /// [`ChurnModel::None`] is the fixed member set, bit-identical to
    /// the engine before the churn plane existed and advancing no RNG
    /// stream.
    Async {
        /// The link-delay model (its `max_delay` must be ≥ 1).
        delay: DelayModel,
        /// The synchronizer gating pulses (default [`SyncModel::Alpha`]).
        sync: SyncModel,
        /// What the network breaks (default [`FaultModel::None`]).
        fault: FaultModel,
        /// How the member set changes (default [`ChurnModel::None`]).
        churn: ChurnModel,
    },
}

impl Default for Engine {
    fn default() -> Self {
        Engine::Flat { shards: 1 }
    }
}

/// Stop conditions for a run.
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Abort after this many rounds — or α pulses — (the deterministic
    /// time-bound wrapper of §4.1). `u64::MAX` means effectively
    /// unlimited for the synchronous engines; the α engine treats it as
    /// its pulse budget, so always set it explicitly there.
    pub max_rounds: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        Self { max_rounds: 1_000_000 }
    }
}

impl RunLimits {
    /// Limits the run to `max_rounds` rounds (pulses).
    #[must_use]
    pub fn rounds(max_rounds: u64) -> Self {
        Self { max_rounds }
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// All nodes idle, no messages anywhere, no node resumed at the final
    /// barrier. (A plain α drive never reports this — synchronizer pulses
    /// keep exchanging control traffic forever, so only the budget stops
    /// it; a phased α run does, when its [`PhasePlan`]'s closing barrier
    /// retires every node.)
    Quiescent,
    /// The [`RunLimits::max_rounds`] bound fired first.
    RoundLimit,
    /// The run completed its budget, but nodes crashed along the way
    /// ([`FaultModel::Crash`]): surviving nodes re-converged under the
    /// self-healing synchronizer waves, and `lost` application payloads
    /// (discarded send queues plus deliveries addressed to crashed
    /// pulses) never reached a protocol. The fault schedule — and so
    /// this report — is replayable from `(seed, FaultModel)` alone.
    Degraded {
        /// Application payloads lost to crashes.
        lost: u64,
    },
}

/// Synchronizer-α resource overhead. Identically zero for the
/// synchronous engines; for [`Engine::Async`] it accounts everything the
/// asynchronous execution pays *on top of* the payload traffic already
/// metered in [`Metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncOverhead {
    /// Ack + Safe control messages delivered.
    pub control_messages: u64,
    /// Control bits delivered: whole Ack/Safe envelopes plus the
    /// pulse-tag envelope wrapped around each payload.
    pub control_bits: u64,
    /// Largest event timestamp (virtual time at completion).
    pub virtual_time: u64,
    /// Retransmissions scheduled after wire-level fault losses
    /// ([`FaultModel::Drop`] / [`FaultModel::LinkFlap`]) — the price of
    /// masking; zero on a perfect wire.
    pub retransmissions: u64,
    /// Send attempts lost to faults: wire-level drops (each matched by
    /// one retransmission) plus application payloads lost to crashes
    /// (`dropped_messages − retransmissions` is exactly the `lost` of
    /// [`Termination::Degraded`]).
    pub dropped_messages: u64,
    /// Epochs opened by membership events ([`ChurnModel`]); zero for a
    /// fixed member set. The per-epoch membership timeline is in
    /// [`RunReport::epochs`].
    pub epochs: u64,
    /// Nodes that joined the member set mid-run.
    pub joins: u64,
    /// Nodes that left the member set mid-run.
    pub leaves: u64,
    /// Application payloads retired by membership changes (drained from
    /// retired ports or swallowed in flight), each itemized as a
    /// [`ChurnEvent::Retired`]. Disjoint from `dropped_messages`: churn
    /// retirement is planned reconfiguration, not a fault.
    pub retired_messages: u64,
}

impl SyncOverhead {
    /// `true` when no synchronizer overhead was paid (synchronous runs).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

/// Summary of a completed (or paused) run — the one report type shared
/// by every engine.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run ended.
    pub termination: Termination,
    /// Rounds executed (α: pulses completed).
    pub rounds: u64,
    /// Payload-side counters, identical across engines for the same
    /// seed: application messages, their bits, per-round histogram,
    /// barriers.
    pub metrics: Metrics,
    /// Synchronizer control-plane overhead (zero for synchronous runs).
    pub overhead: SyncOverhead,
    /// Per-epoch membership timeline: one [`EpochInfo`] per membership
    /// event, in occurrence order. Empty for a fixed member set and for
    /// the synchronous engines.
    pub epochs: Vec<EpochInfo>,
    /// Streaming run profile (histograms, high-water marks, event
    /// counters) — `Some` only when the session installed a recorder
    /// via [`Session::trace`]. See [`RunProfile`].
    pub profile: Option<RunProfile>,
}

impl RunReport {
    /// Total bits delivered, payload and control plane combined.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.metrics.total_bits + self.overhead.control_bits
    }
}

/// Per-round payload-delivery aggregates streamed to [`Observer`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RoundDelta {
    /// Payload messages delivered this round.
    pub messages: u64,
    /// Payload bits delivered this round.
    pub bits: u64,
    /// Widest payload message delivered this round, in bits.
    pub max_bits: usize,
}

impl RoundDelta {
    /// Folds one delivered payload of `bits` width in — the single
    /// metering implementation shared by the engines that attribute
    /// deliveries message by message (legacy, α).
    #[inline]
    pub(crate) fn record(&mut self, bits: usize) {
        self.messages += 1;
        self.bits += bits as u64;
        self.max_bits = self.max_bits.max(bits);
    }
}

/// Streaming hook into a run: called by every engine as rounds execute.
///
/// Observers replace ad-hoc post-run trace plumbing: phase transitions
/// arrive as [`Observer::on_barrier`] calls the moment the quiescence
/// barrier is granted, and per-round traffic arrives as
/// [`Observer::on_round`] deltas. The α engine completes pulses out of
/// event order across nodes, so it reports pulse deltas when `drive`
/// returns, in pulse order; the synchronous engines call back live,
/// after each round, from the control thread (never from a shard
/// worker).
pub trait Observer {
    /// Called after round `round` (1-based) executed.
    fn on_round(&mut self, round: Round, delta: &RoundDelta);

    /// Called when a quiescence barrier is granted — i.e. some node took
    /// a phase transition via [`Protocol::on_quiescent`]. `round` is the
    /// last executed round.
    fn on_barrier(&mut self, round: Round) {
        let _ = round;
    }

    /// Called when the fault plane acts: a send attempt lost on the wire
    /// (and retransmitted), a payload swallowed by a crashed node, or a
    /// node crashing / recovering (see [`FaultEvent`]). Only
    /// [`Engine::Async`] with a non-[`FaultModel::None`] fault model
    /// ever calls this; events arrive in occurrence order.
    fn on_fault(&mut self, event: FaultEvent) {
        let _ = event;
    }

    /// Called when the churn plane acts: a node joining or leaving the
    /// member set, or a payload retired by a membership change (see
    /// [`ChurnEvent`]). Only [`Engine::Async`] with a
    /// non-[`ChurnModel::None`] churn model ever calls this; events
    /// arrive in occurrence order.
    fn on_churn(&mut self, event: ChurnEvent) {
        let _ = event;
    }
}

/// The no-op observer: `drive(limits, &mut ())` observes nothing.
impl Observer for () {
    #[inline]
    fn on_round(&mut self, _round: Round, _delta: &RoundDelta) {}
}

/// Chains two observers (used to combine a [`Session`]-installed
/// observer with one passed to [`SessionDriver::run_observed`]).
struct Chain<'a>(&'a mut dyn Observer, &'a mut dyn Observer);

impl Observer for Chain<'_> {
    fn on_round(&mut self, round: Round, delta: &RoundDelta) {
        self.0.on_round(round, delta);
        self.1.on_round(round, delta);
    }

    fn on_barrier(&mut self, round: Round) {
        self.0.on_barrier(round);
        self.1.on_barrier(round);
    }

    fn on_fault(&mut self, event: FaultEvent) {
        self.0.on_fault(event);
        self.1.on_fault(event);
    }

    fn on_churn(&mut self, event: ChurnEvent) {
        self.0.on_churn(event);
        self.1.on_churn(event);
    }
}

/// The uniform execution handle implemented by every engine
/// ([`Network`], [`AsyncNetwork`], and the feature-gated
/// `LegacyNetwork`) and by
/// [`SessionDriver`].
///
/// Lifecycle: building the driver constructs one protocol per node;
/// `init` runs lazily on the first [`Driver::drive`] call; each `drive`
/// advances up to `limits.max_rounds` further rounds (α: pulses) and is
/// resumable; outputs, endpoints and per-node protocol state are
/// readable at any pause.
pub trait Driver {
    /// The protocol type instantiated at every node.
    type P: Protocol;

    /// Advances execution by at most `limits.max_rounds` rounds
    /// (pulses), streaming per-round deltas and barriers to `obs`. Pass
    /// `&mut ()` to observe nothing.
    fn drive(&mut self, limits: RunLimits, obs: &mut dyn Observer) -> RunReport;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// The endpoint facts of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    fn endpoint(&self, index: usize) -> &Endpoint;

    /// Read access to node `index`'s protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    fn protocol(&self, index: usize) -> &Self::P;

    /// Application messages queued anywhere in the engine.
    fn queued_messages(&self) -> u64;

    /// Pre-reserves per-round bookkeeping for a bounded run, so engines
    /// with a zero-allocation steady state (the flat plane) stay
    /// allocation-free over `rounds` rounds. Optional; a no-op where it
    /// does not apply.
    fn reserve_rounds(&mut self, rounds: usize) {
        let _ = rounds;
    }

    /// Collects every node's output, indexed by node.
    fn outputs(&self) -> Vec<<Self::P as Protocol>::Output> {
        (0..self.node_count()).map(|v| self.protocol(v).output()).collect()
    }
}

/// Engine-agnostic run configuration: the one way to start a run.
///
/// `Session::on(&graph)` starts from defaults (flat engine, one shard,
/// CONGEST mode, seed 0, hashed IDs, default limits); the chained
/// setters mirror the old `NetworkBuilder` knobs plus engine selection;
/// [`Session::build_with`] constructs the selected engine's driver and
/// [`Session::run_with`] additionally drives it to the configured
/// limits.
pub struct Session<'g> {
    source: Source<'g>,
    seed: u64,
    mode: Mode,
    ids: IdAssignment,
    engine: Engine,
    /// `None` until [`Session::limits`] is called; the synchronous
    /// engines then fall back to [`RunLimits::default`], while
    /// [`Engine::Async`] insists on an explicit budget.
    limits: Option<RunLimits>,
    observer: Option<Box<dyn Observer>>,
    trace: Option<TraceConfig>,
    metrics_mode: MetricsMode,
}

/// What a [`Session`] builds its topology from.
enum Source<'g> {
    /// A materialized graph — every engine accepts this.
    Graph(&'g Graph),
    /// A restartable edge stream ([`Engine::Flat`] only): the scale-tier
    /// path, which constructs the CSR route table directly from the
    /// stream and never allocates a `Graph` or an edge list.
    Stream(&'g mut dyn EdgeStream),
}

/// Unwraps the graph the engines that need one run over, with a pointer
/// at the flat engine when the session was built on a stream.
fn require_graph<'g>(source: Source<'g>, engine: &str) -> &'g Graph {
    match source {
        Source::Graph(graph) => graph,
        Source::Stream(_) => panic!(
            "{engine} executes over a materialized graph; Session::on_stream drives \
             Engine::Flat only — materialize the stream first \
             (graphs::generators::materialize) or switch to Engine::Flat"
        ),
    }
}

impl<'g> Session<'g> {
    /// Starts configuring a run over `graph`.
    #[must_use]
    pub fn on(graph: &'g Graph) -> Self {
        Self::from_source(Source::Graph(graph))
    }

    /// Starts configuring a run over a restartable [`EdgeStream`] —
    /// topology construction streams straight into the flat engine's CSR
    /// route table, so no `Graph` (and no edge list) is ever
    /// materialized. This is the million-node path: peak memory is the
    /// engine's final arrays, not the instance. For the same stream and
    /// seed the run is bit-identical to [`Session::on`] with the
    /// materialized graph.
    ///
    /// Only [`Engine::Flat`] can execute directly from a stream;
    /// building another engine from a streamed session panics.
    #[must_use]
    pub fn on_stream(stream: &'g mut dyn EdgeStream) -> Self {
        Self::from_source(Source::Stream(stream))
    }

    fn from_source(source: Source<'g>) -> Self {
        Self {
            source,
            seed: 0,
            mode: Mode::Congest,
            ids: IdAssignment::Hashed,
            engine: Engine::default(),
            limits: None,
            observer: None,
            trace: None,
            metrics_mode: MetricsMode::Full,
        }
    }

    /// Sets the master seed; node RNG streams, hashed IDs and (for α)
    /// link delays derive from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the execution engine.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the bandwidth regime (synchronous engines only; α always
    /// runs CONGEST pulses).
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the ID assignment scheme.
    #[must_use]
    pub fn ids(mut self, ids: IdAssignment) -> Self {
        self.ids = ids;
        self
    }

    /// Sets the round (pulse) budget used by [`SessionDriver::run`] and
    /// [`Session::run_with`]. Optional for the synchronous engines
    /// (which fall back to [`RunLimits::default`] and can quiesce);
    /// **required** for [`Engine::Async`], whose pulses never quiesce —
    /// the budget is its only termination rule.
    #[must_use]
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Installs a streaming observer; it receives every round delta and
    /// barrier of every subsequent `run` on the built driver.
    #[must_use]
    pub fn observer(mut self, observer: impl Observer + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Installs an in-engine recorder ([`TraceSink`]): the engine emits
    /// typed [`crate::TraceEvent`]s from its hot paths into a ring
    /// buffer preallocated to `config.capacity` records and folds them
    /// into a streaming [`RunProfile`]. Recording is purely
    /// observational — outputs, [`Metrics`] and [`SyncOverhead`] stay
    /// bit-identical to an untraced run — and allocation-free in steady
    /// state. The profile is attached to every [`RunReport`]; the
    /// timeline is exportable via [`SessionDriver::trace_sink`].
    #[must_use]
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Selects how much per-round history [`Metrics`] retains — the
    /// default [`MetricsMode::Full`] keeps the O(rounds)
    /// `messages_per_round` vector, [`MetricsMode::Streaming`] keeps
    /// only O(1) running aggregates (and skips per-round observer
    /// replay on [`Engine::Async`]).
    #[must_use]
    pub fn metrics(mut self, mode: MetricsMode) -> Self {
        self.metrics_mode = mode;
        self
    }

    /// Builds the selected engine's driver, creating each node's
    /// protocol via `factory` (called with the node's [`Endpoint`]).
    ///
    /// # Panics
    ///
    /// Panics if hashed ID assignment collides (retry with another
    /// seed), if the graph exceeds the plane's `u32` port space, or if
    /// [`Engine::Async`] is combined with [`Mode::Local`], with
    /// `max_delay == 0`, or without an explicit [`Session::limits`]
    /// budget (α pulses never quiesce, so a defaulted 1M-pulse budget
    /// would flood control traffic effectively forever).
    pub fn build_with<P, F>(self, factory: F) -> SessionDriver<P>
    where
        P: Protocol,
        F: FnMut(&Endpoint) -> P,
    {
        let inner = match self.engine {
            Engine::Flat { shards } => {
                let builder = NetworkBuilder::new()
                    .mode(self.mode)
                    .seed(self.seed)
                    .ids(self.ids)
                    .parallel(shards);
                let mut net = match self.source {
                    Source::Graph(graph) => builder.build_with(graph, factory),
                    Source::Stream(stream) => builder.build_from_stream(stream, factory),
                };
                net.configure_obs(self.trace, self.metrics_mode);
                EngineDriver::Flat(net)
            }
            #[cfg(feature = "legacy-engine")]
            Engine::Legacy => EngineDriver::Legacy(LegacyNetwork::build_with(
                require_graph(self.source, "Engine::Legacy"),
                self.mode,
                self.seed,
                self.ids,
                factory,
            )),
            #[cfg(not(feature = "legacy-engine"))]
            Engine::Legacy => panic!(
                "Engine::Legacy is a test-only fixture: enable congest's `legacy-engine` cargo \
                 feature (the equivalence suites and the delivery_plane bench do), or use \
                 Engine::Flat — it is bit-identical on every workload"
            ),
            Engine::Async { delay, sync, fault, churn } => {
                assert!(
                    self.mode == Mode::Congest,
                    "synchronizers model CONGEST pulses; Mode::Local is not executable on \
                     Engine::Async"
                );
                assert!(
                    self.limits.is_some(),
                    "Engine::Async needs an explicit pulse budget: call \
                     Session::limits(RunLimits::rounds(b)) — pulses never quiesce, the \
                     budget is the §4.1 termination rule"
                );
                let graph = require_graph(self.source, "Engine::Async");
                let mut net = AsyncNetwork::build_with(
                    graph, self.seed, delay, sync, fault, churn, self.ids, factory,
                );
                net.configure_obs(self.trace, self.metrics_mode);
                EngineDriver::Async(net)
            }
        };
        SessionDriver { inner, limits: self.limits.unwrap_or_default(), observer: self.observer }
    }

    /// Builds the driver, drives it to the configured limits, and
    /// returns per-node outputs plus the unified report.
    pub fn run_with<P, F>(self, factory: F) -> (Vec<P::Output>, RunReport)
    where
        P: Protocol,
        F: FnMut(&Endpoint) -> P,
    {
        let mut driver = self.build_with(factory);
        let report = driver.run();
        (driver.outputs(), report)
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nodes = match &self.source {
            Source::Graph(graph) => graph.node_count(),
            Source::Stream(stream) => stream.node_count(),
        };
        f.debug_struct("Session")
            .field("nodes", &nodes)
            .field("seed", &self.seed)
            .field("mode", &self.mode)
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

// One driver exists per run, never in collections, so the size spread
// between the flat and asynchronous engines is irrelevant — boxing the
// large variant would only add a pointer hop to every `drive` dispatch.
#[allow(clippy::large_enum_variant)]
enum EngineDriver<P: Protocol> {
    Flat(Network<P>),
    #[cfg(feature = "legacy-engine")]
    Legacy(LegacyNetwork<P>),
    Async(AsyncNetwork<P>),
}

/// The driver a [`Session`] builds: the selected engine plus the
/// session's limits and installed observer, behind the uniform
/// [`Driver`] interface.
pub struct SessionDriver<P: Protocol> {
    inner: EngineDriver<P>,
    limits: RunLimits,
    observer: Option<Box<dyn Observer>>,
}

impl<P: Protocol> SessionDriver<P> {
    /// Which engine this driver runs.
    #[must_use]
    pub fn engine(&self) -> Engine {
        match &self.inner {
            EngineDriver::Flat(net) => Engine::Flat { shards: net.shard_count() },
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(_) => Engine::Legacy,
            EngineDriver::Async(net) => Engine::Async {
                delay: net.delay_model(),
                sync: net.sync_model(),
                fault: net.fault_model(),
                churn: net.churn_model(),
            },
        }
    }

    /// The engine's installed [`TraceSink`], if [`Session::trace`] was
    /// called — read it after a run to export the captured timeline
    /// ([`TraceSink::to_jsonl`], [`TraceSink::to_chrome_json`]) or
    /// inspect the streaming profile. `None` when no recorder was
    /// installed (the legacy fixture never records).
    #[must_use]
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        match &self.inner {
            EngineDriver::Flat(net) => net.trace_sink(),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(_) => None,
            EngineDriver::Async(net) => net.trace_sink(),
        }
    }

    /// Drives to the session's configured limits, notifying the
    /// installed observer (if any). Resumable after a `RoundLimit` stop.
    pub fn run(&mut self) -> RunReport {
        let limits = self.limits;
        self.drive(limits, &mut ())
    }

    /// Like [`SessionDriver::run`], additionally streaming to `obs`
    /// (chained after the installed observer). Use this to collect into
    /// borrowed state without `'static` gymnastics.
    pub fn run_observed(&mut self, obs: &mut dyn Observer) -> RunReport {
        let limits = self.limits;
        self.drive(limits, obs)
    }

    /// Executes a staged run under a [`PhasePlan`] (the paper's §4.1
    /// per-phase deterministic budgets), streaming to `obs`.
    ///
    /// On [`Engine::Async`] this is
    /// [`AsyncNetwork::run_phases`](crate::AsyncNetwork::run_phases):
    /// each phase drives its pulse budget, then every node takes its
    /// scheduled [`Protocol::on_quiescent`]
    /// transition — how multi-phase protocols complete under
    /// synchronizer α. On the synchronous engines the quiescence barrier
    /// fires natively, so the plan collapses to its overall time bound
    /// ([`PhasePlan::total_pulses`]) and the run behaves exactly like
    /// [`SessionDriver::run`] with that budget — the same plan drives
    /// every engine.
    pub fn run_phased(&mut self, plan: &PhasePlan, obs: &mut dyn Observer) -> RunReport {
        let inner = &mut self.inner;
        let mut dispatch = |obs: &mut dyn Observer| match inner {
            EngineDriver::Flat(net) => net.drive(RunLimits::rounds(plan.total_pulses()), obs),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(net) => net.drive(RunLimits::rounds(plan.total_pulses()), obs),
            EngineDriver::Async(net) => net.run_phases(plan, obs),
        };
        match self.observer.as_deref_mut() {
            Some(installed) => dispatch(&mut Chain(installed, obs)),
            None => dispatch(obs),
        }
    }
}

impl<P: Protocol> Driver for SessionDriver<P> {
    type P = P;

    fn drive(&mut self, limits: RunLimits, obs: &mut dyn Observer) -> RunReport {
        let inner = &mut self.inner;
        let mut dispatch = |obs: &mut dyn Observer| match inner {
            EngineDriver::Flat(net) => net.drive(limits, obs),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(net) => net.drive(limits, obs),
            EngineDriver::Async(net) => net.drive(limits, obs),
        };
        match self.observer.as_deref_mut() {
            Some(installed) => dispatch(&mut Chain(installed, obs)),
            None => dispatch(obs),
        }
    }

    fn node_count(&self) -> usize {
        match &self.inner {
            EngineDriver::Flat(net) => net.node_count(),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(net) => net.node_count(),
            EngineDriver::Async(net) => net.node_count(),
        }
    }

    fn endpoint(&self, index: usize) -> &Endpoint {
        match &self.inner {
            EngineDriver::Flat(net) => net.endpoint(index),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(net) => net.endpoint(index),
            EngineDriver::Async(net) => net.endpoint(index),
        }
    }

    fn protocol(&self, index: usize) -> &P {
        match &self.inner {
            EngineDriver::Flat(net) => net.protocol(index),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(net) => net.protocol(index),
            EngineDriver::Async(net) => net.protocol(index),
        }
    }

    fn queued_messages(&self) -> u64 {
        match &self.inner {
            EngineDriver::Flat(net) => net.queued_messages(),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(net) => net.queued_messages(),
            EngineDriver::Async(net) => net.queued_messages(),
        }
    }

    fn reserve_rounds(&mut self, rounds: usize) {
        match &mut self.inner {
            EngineDriver::Flat(net) => net.reserve_rounds(rounds),
            #[cfg(feature = "legacy-engine")]
            EngineDriver::Legacy(_) => {}
            EngineDriver::Async(net) => net.reserve_rounds(rounds),
        }
    }
}

impl<P: Protocol> std::fmt::Debug for SessionDriver<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionDriver").field("engine", &self.engine()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::protocol::{Context, Port};
    use graphs::GraphBuilder;

    #[derive(Clone, Debug)]
    struct Rumor;
    impl Message for Rumor {
        fn bit_size(&self) -> usize {
            5
        }
    }

    #[derive(Debug)]
    struct Flood {
        is_source: bool,
        heard_at: Option<u64>,
    }

    impl Protocol for Flood {
        type Msg = Rumor;
        type Output = Option<u64>;
        fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
            if self.is_source {
                self.heard_at = Some(0);
                ctx.broadcast(Rumor);
            }
        }
        fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
            if !inbox.is_empty() && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round());
                ctx.broadcast(Rumor);
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> Option<u64> {
            self.heard_at
        }
    }

    fn ring(n: usize) -> graphs::Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.build()
    }

    fn factory(e: &Endpoint) -> Flood {
        Flood { is_source: e.index == 0, heard_at: None }
    }

    /// One engine of each kind (Legacy only when its feature is on),
    /// with `max_delay` for the asynchronous rows.
    fn engines_under_test(max_delay: u64) -> Vec<Engine> {
        let mut engines = vec![Engine::Flat { shards: 1 }];
        #[cfg(feature = "legacy-engine")]
        engines.push(Engine::Legacy);
        let delay = DelayModel::Uniform { max_delay };
        let fault = FaultModel::None;
        let churn = ChurnModel::None;
        engines.push(Engine::Async { delay, sync: SyncModel::Alpha, fault, churn });
        engines.push(Engine::Async { delay, sync: SyncModel::BatchedAlpha, fault, churn });
        engines
    }

    #[test]
    fn three_engines_one_surface_same_outputs() {
        let g = ring(12);
        let mut results = Vec::new();
        let mut engines = engines_under_test(5);
        engines.insert(1, Engine::Flat { shards: 3 });
        for engine in engines {
            let (out, report) = Session::on(&g)
                .seed(4)
                .engine(engine)
                .limits(RunLimits::rounds(12))
                .run_with(factory);
            assert_eq!(report.metrics.max_message_bits, 5, "{engine:?}");
            results.push((out, report.metrics.messages, report.metrics.total_bits));
        }
        for pair in results.windows(2) {
            assert_eq!(pair[0], pair[1], "engines disagree");
        }
    }

    #[test]
    fn only_async_pays_synchronizer_overhead() {
        let g = ring(8);
        let (_, sync_report) =
            Session::on(&g).seed(1).limits(RunLimits::rounds(6)).run_with(factory);
        assert!(sync_report.overhead.is_zero());

        let (_, async_report) = Session::on(&g)
            .seed(1)
            .engine(Engine::Async {
                delay: DelayModel::Uniform { max_delay: 3 },
                sync: SyncModel::Alpha,
                fault: FaultModel::None,
                churn: ChurnModel::None,
            })
            .limits(RunLimits::rounds(6))
            .run_with(factory);
        assert!(async_report.overhead.control_messages > 0);
        assert!(async_report.overhead.virtual_time > 0);
        assert!(async_report.total_bits() > async_report.metrics.total_bits);
    }

    #[test]
    fn observer_streams_round_deltas() {
        #[derive(Default)]
        struct Tape {
            rounds: Vec<(u64, u64)>,
        }
        impl Observer for Tape {
            fn on_round(&mut self, round: Round, delta: &RoundDelta) {
                self.rounds.push((round, delta.messages));
            }
        }

        let g = ring(6);
        for engine in engines_under_test(2) {
            let mut tape = Tape::default();
            let mut driver = Session::on(&g)
                .seed(2)
                .engine(engine)
                .limits(RunLimits::rounds(5))
                .build_with(factory);
            let report = driver.run_observed(&mut tape);
            let observed: Vec<u64> = tape.rounds.iter().map(|&(_, m)| m).collect();
            assert_eq!(
                observed, report.metrics.messages_per_round,
                "{engine:?}: observer deltas must mirror the per-round histogram"
            );
            let rounds: Vec<u64> = tape.rounds.iter().map(|&(r, _)| r).collect();
            let expect: Vec<u64> = (1..=report.rounds).collect();
            assert_eq!(rounds, expect, "{engine:?}");
        }
    }

    #[test]
    fn driver_is_resumable_across_engines() {
        let g = ring(10);
        for engine in engines_under_test(4) {
            let mut driver = Session::on(&g)
                .seed(3)
                .engine(engine)
                .limits(RunLimits::rounds(12))
                .build_with(factory);
            let first = driver.drive(RunLimits::rounds(2), &mut ());
            assert_eq!(first.termination, Termination::RoundLimit, "{engine:?}");
            assert_eq!(first.rounds, 2, "{engine:?}");
            driver.drive(RunLimits::rounds(10), &mut ());
            let full: Vec<Option<u64>> =
                Session::on(&g).seed(3).limits(RunLimits::rounds(12)).run_with(factory).0;
            assert_eq!(driver.outputs(), full, "{engine:?}: split run diverged");
        }
    }

    #[test]
    fn installed_observer_chains_with_passed_observer() {
        struct CountRounds(std::rc::Rc<std::cell::Cell<u64>>);
        impl Observer for CountRounds {
            fn on_round(&mut self, _round: Round, _delta: &RoundDelta) {
                self.0.set(self.0.get() + 1);
            }
        }

        let installed = std::rc::Rc::new(std::cell::Cell::new(0));
        let g = ring(6);
        let mut driver = Session::on(&g)
            .seed(5)
            .limits(RunLimits::rounds(4))
            .observer(CountRounds(installed.clone()))
            .build_with(factory);
        let passed = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut counter = CountRounds(passed.clone());
        let report = driver.run_observed(&mut counter);
        assert_eq!(installed.get(), report.rounds);
        assert_eq!(passed.get(), report.rounds);
    }
}
