//! The seed repository's original message plane, preserved verbatim in
//! behavior as a *reference engine*.
//!
//! [`LegacyNetwork`] keeps the original data layout — a pointer-chasing
//! `Vec<Vec<(usize, usize)>>` link table, one heap-allocated `VecDeque`
//! per port inside a node-owned [`Outbox`], and fresh `deliveries` /
//! `ports` vectors every round. It exists for two reasons:
//!
//! 1. **Equivalence**: `crates/core`'s `engine_equivalence` suite pins the
//!    flat plane ([`crate::Network`]) to this engine bit-for-bit — same
//!    labels, same metrics, same termination — on every workload family.
//! 2. **Benchmarking**: `crates/bench/benches/delivery_plane.rs` measures
//!    the old→new speedup against it (the `BENCH_protocol.json`
//!    before/after trail).
//!
//! It is sequential-only and not optimized — by design. Do not grow it.
//!
//! **Status: demoted to a test-only fixture.** This module compiles only
//! with congest's `legacy-engine` cargo feature (default-off), which the
//! equivalence suites in `crates/core/tests/` and the `delivery_plane`
//! bench enable through their dev-dependencies; without it,
//! [`Engine::Legacy`](crate::Engine::Legacy) panics with a pointer at
//! the flat plane. New capabilities land elsewhere: scheduling work
//! (delay models, phase plans, synchronizers) belongs in `crate::sched`
//! and `crate::asynch`, delivery work in the flat plane
//! (`crate::network`) — never here.

use graphs::Graph;
use rand::rngs::StdRng;

use crate::message::Message;
use crate::metrics::Metrics;
use crate::network::{assign_ids, IdAssignment, Mode};
use crate::protocol::{Context, Endpoint, Outbox, OutboxHandle, Port, Protocol, Round};
use crate::rng::node_rng;
use crate::session::{
    Driver, Observer, RoundDelta, RunLimits, RunReport, SyncOverhead, Termination,
};

struct LegacySlot<P: Protocol> {
    endpoint: Endpoint,
    protocol: P,
    outbox: Outbox<P::Msg>,
    rng: StdRng,
    inbox: Vec<(Port, P::Msg)>,
}

impl<P: Protocol> LegacySlot<P> {
    fn with_ctx<R>(
        &mut self,
        round: Round,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        let mut ctx = Context {
            endpoint: &self.endpoint,
            round,
            outbox: OutboxHandle::Owned(&mut self.outbox),
            rng: &mut self.rng,
        };
        f(&mut self.protocol, &mut ctx)
    }
}

/// The original (seed) synchronous engine. See the module docs.
pub struct LegacyNetwork<P: Protocol> {
    mode: Mode,
    nodes: Vec<LegacySlot<P>>,
    links: Vec<Vec<(usize, usize)>>,
    metrics: Metrics,
    round: Round,
    initialized: bool,
}

impl<P: Protocol> LegacyNetwork<P> {
    /// Builds the legacy engine over `graph` with the same ID assignment
    /// and RNG streams as [`crate::NetworkBuilder`], so outputs are
    /// directly comparable.
    pub fn build_with<F>(
        graph: &Graph,
        mode: Mode,
        seed: u64,
        ids: IdAssignment,
        mut factory: F,
    ) -> Self
    where
        F: FnMut(&Endpoint) -> P,
    {
        let n = graph.node_count();
        let ids = assign_ids(ids, seed, n);

        // links[u][port] = (v, port of u on v's side)
        let mut links: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
        for u in 0..n {
            links.push(
                graph
                    .neighbors(u)
                    .iter()
                    .map(|&v| {
                        let back = graph
                            .neighbors(v)
                            .binary_search(&u)
                            .expect("undirected graph must be symmetric");
                        (v, back)
                    })
                    .collect(),
            );
        }

        let nodes: Vec<LegacySlot<P>> = (0..n)
            .map(|u| {
                let endpoint =
                    Endpoint::new(u, ids[u], graph.neighbors(u).iter().map(|&v| ids[v]).collect());
                let protocol = factory(&endpoint);
                let outbox = Outbox::new(endpoint.degree());
                let rng = node_rng(seed, u);
                LegacySlot { endpoint, protocol, outbox, rng, inbox: Vec::new() }
            })
            .collect();

        Self { mode, nodes, links, metrics: Metrics::default(), round: 0, initialized: false }
    }

    /// Accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The endpoint facts of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn endpoint(&self, index: usize) -> &Endpoint {
        &self.nodes[index].endpoint
    }

    /// Collects every node's output, indexed by node.
    #[must_use]
    pub fn outputs(&self) -> Vec<P::Output> {
        self.nodes.iter().map(|s| s.protocol.output()).collect()
    }

    /// Runs until quiescence or the round limit (identical semantics to
    /// [`crate::Network::run`]).
    pub fn run(&mut self, limits: RunLimits) -> RunReport {
        self.run_observed(limits, &mut ())
    }

    /// Like [`LegacyNetwork::run`], streaming per-round deltas and
    /// barriers to `obs`.
    pub fn run_observed(&mut self, limits: RunLimits, obs: &mut dyn Observer) -> RunReport {
        if !self.initialized {
            self.initialized = true;
            for slot in &mut self.nodes {
                slot.with_ctx(0, |p, ctx| p.init(ctx));
            }
        }

        let mut executed: u64 = 0;
        let termination = loop {
            if self.is_quiescent() {
                let mut resumed = false;
                for slot in &mut self.nodes {
                    resumed |= slot.with_ctx(self.round, |p, ctx| p.on_quiescent(ctx));
                }
                if !resumed && self.all_outboxes_empty() {
                    break Termination::Quiescent;
                }
                self.metrics.barriers += 1;
                obs.on_barrier(self.round);
                continue;
            }
            if executed >= limits.max_rounds {
                break Termination::RoundLimit;
            }
            let delta = self.execute_round();
            executed += 1;
            obs.on_round(self.round, &delta);
        };

        RunReport {
            termination,
            rounds: self.metrics.rounds,
            metrics: self.metrics.clone(),
            overhead: SyncOverhead::default(),
            epochs: Vec::new(),
            profile: None,
        }
    }

    fn all_outboxes_empty(&self) -> bool {
        self.nodes.iter().all(|s| s.outbox.is_empty())
    }

    fn is_quiescent(&self) -> bool {
        self.all_outboxes_empty() && self.nodes.iter().all(|s| s.protocol.is_idle())
    }

    fn execute_round(&mut self) -> RoundDelta {
        self.round += 1;
        self.metrics.begin_round();
        let mut delta = RoundDelta::default();
        let mut meter = |metrics: &mut Metrics, bits: usize| {
            metrics.record_message(bits);
            delta.record(bits);
        };

        // Delivery phase: the seed's allocation profile, kept as-is —
        // fresh vectors every round, per-port snapshots, stable sort.
        let mut deliveries: Vec<(usize, Port, P::Msg)> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for u in 0..self.nodes.len() {
            let ports: Vec<Port> = self.nodes[u].outbox.nonempty_ports().to_vec();
            for port in ports {
                let (v, back_port) = self.links[u][port];
                match self.mode {
                    Mode::Congest => {
                        if let Some(msg) = self.nodes[u].outbox.pop(port) {
                            meter(&mut self.metrics, msg.bit_size());
                            deliveries.push((v, back_port, msg));
                        }
                    }
                    Mode::Local => {
                        while let Some(msg) = self.nodes[u].outbox.pop(port) {
                            meter(&mut self.metrics, msg.bit_size());
                            deliveries.push((v, back_port, msg));
                        }
                    }
                }
            }
        }
        for (v, port, msg) in deliveries {
            if self.nodes[v].inbox.is_empty() {
                touched.push(v);
            }
            self.nodes[v].inbox.push((port, msg));
        }
        for v in touched {
            self.nodes[v].inbox.sort_by_key(|&(port, _)| port);
        }

        // Step phase (sequential; the legacy engine is a reference, not a
        // performance target).
        let round = self.round;
        for slot in &mut self.nodes {
            let inbox = std::mem::take(&mut slot.inbox);
            slot.with_ctx(round, |p, ctx| p.step(ctx, &inbox));
        }
        delta
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to node `index`'s protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn protocol(&self, index: usize) -> &P {
        &self.nodes[index].protocol
    }

    /// Total messages queued across all outboxes. O(n).
    #[must_use]
    pub fn queued_messages(&self) -> u64 {
        self.nodes.iter().map(|s| s.outbox.queued() as u64).sum()
    }
}

impl<P: Protocol> Driver for LegacyNetwork<P> {
    type P = P;

    fn drive(&mut self, limits: RunLimits, obs: &mut dyn Observer) -> RunReport {
        self.run_observed(limits, obs)
    }

    fn node_count(&self) -> usize {
        LegacyNetwork::node_count(self)
    }

    fn endpoint(&self, index: usize) -> &Endpoint {
        LegacyNetwork::endpoint(self, index)
    }

    fn protocol(&self, index: usize) -> &P {
        LegacyNetwork::protocol(self, index)
    }

    fn queued_messages(&self) -> u64 {
        LegacyNetwork::queued_messages(self)
    }
}

impl<P: Protocol> std::fmt::Debug for LegacyNetwork<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LegacyNetwork")
            .field("nodes", &self.nodes.len())
            .field("mode", &self.mode)
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}
