//! A synchronous CONGEST/LOCAL network simulator.
//!
//! This crate is the distributed substrate of the workspace reproducing
//! Brakerski & Patt-Shamir, *Distributed Discovery of Large Near-Cliques*
//! (PODC 2009). It executes per-node [`Protocol`] state machines over a
//! [`graphs::Graph`] topology in synchronous rounds, exactly as the
//! CONGEST model of Peleg \[20\] prescribes:
//!
//! * per round, each node may send **one message per incident edge**
//!   ([`Mode::Congest`]); messages queued beyond that pipeline over
//!   subsequent rounds,
//! * every message's **bit width is metered** ([`Metrics`]), so the
//!   paper's `O(log n)` message-size claim is *checked*, not assumed,
//! * the LOCAL model ([`Mode::Local`]) is available for the
//!   neighbors'-neighbors baseline, with the same metering,
//! * execution is **deterministic given a seed** (per-node RNG streams),
//!   under both sequential and multi-threaded stepping.
//!
//! # Example: flooding
//!
//! ```
//! use congest::{Context, Message, NetworkBuilder, Port, Protocol, RunLimits};
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl Message for Token {
//!     fn bit_size(&self) -> usize { 1 }
//! }
//!
//! struct Echo { seen: bool, source: bool }
//! impl Protocol for Echo {
//!     type Msg = Token;
//!     type Output = bool;
//!     fn init(&mut self, ctx: &mut Context<'_, Token>) {
//!         if self.source { ctx.broadcast(Token); }
//!     }
//!     fn step(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(Port, Token)]) {
//!         if !inbox.is_empty() && !self.seen {
//!             self.seen = true;
//!             ctx.broadcast(Token);
//!         }
//!     }
//!     fn is_idle(&self) -> bool { true }
//!     fn output(&self) -> bool { self.seen || self.source }
//! }
//!
//! let g = graphs::Graph::complete(5);
//! let mut net = NetworkBuilder::new()
//!     .seed(7)
//!     .build_with(&g, |e| Echo { seen: false, source: e.index == 0 });
//! let report = net.run(RunLimits::default());
//! assert!(net.outputs().iter().all(|&heard| heard));
//! assert_eq!(report.metrics.max_message_bits, 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod asynch;
pub mod legacy;
pub mod message;
pub mod metrics;
pub mod network;
mod plane;
pub mod protocol;
pub mod rng;

pub use asynch::{run_synchronized, AsyncConfig, AsyncReport};
pub use legacy::LegacyNetwork;
pub use message::{bits_for_count, Message, ID_BITS, TAG_BITS};
pub use metrics::Metrics;
pub use network::{IdAssignment, Mode, Network, NetworkBuilder, RunLimits, RunReport, Termination};
pub use protocol::{Context, Endpoint, Outbox, Port, Protocol, Round};
