//! A CONGEST/LOCAL network simulator behind one execution API.
//!
//! This crate is the distributed substrate of the workspace reproducing
//! Brakerski & Patt-Shamir, *Distributed Discovery of Large Near-Cliques*
//! (PODC 2009). It executes per-node [`Protocol`] state machines over a
//! [`graphs::Graph`] topology, exactly as the CONGEST model of Peleg
//! \[20\] prescribes:
//!
//! * per round, each node may send **one message per incident edge**
//!   ([`Mode::Congest`]); messages queued beyond that pipeline over
//!   subsequent rounds,
//! * every message's **bit width is metered** ([`Metrics`]), so the
//!   paper's `O(log n)` message-size claim is *checked*, not assumed,
//! * the LOCAL model ([`Mode::Local`]) is available for the
//!   neighbors'-neighbors baseline, with the same metering,
//! * execution is **deterministic given a seed** (per-node RNG streams),
//!   across engines and thread counts.
//!
//! # One surface, three engines
//!
//! Every run starts at [`Session`], which selects an [`Engine`]:
//!
//! | engine | model | backing |
//! |---|---|---|
//! | [`Engine::Flat`] | synchronous rounds | the zero-allocation flat plane, sharded over threads |
//! | [`Engine::Legacy`] | synchronous rounds | the preserved seed engine (test-only fixture, behind the `legacy-engine` feature) |
//! | [`Engine::Async`] | event-driven, pluggable synchronizer | flat-plane queues + [`EventWheel`] event plane + [`DelayModel`]s + [`SyncModel`]s |
//!
//! The asynchronous engine's scheduling is a subsystem of its own
//! ([`sched`]): four seeded link-[`DelayModel`]s (uniform, per-link,
//! heavy-tailed, adversarial-within-bound), per-phase [`PhasePlan`]
//! pulse budgets (the paper's §4.1 staged execution) that let
//! multi-phase protocols complete under a synchronizer via
//! [`SessionDriver::run_phased`], a pluggable synchronizer layer
//! ([`SyncModel`]): classic α, or the quiescence-aware `BatchedAlpha`
//! whose control cost follows the active frontier instead of the edge
//! count — a seeded fault plane ([`FaultModel`]): per-send message
//! loss and link flaps masked by deterministic retransmission, plus
//! crash/recover churn under which surviving nodes re-converge and the
//! run reports [`Termination::Degraded`] (see [`sched::fault`]) — and a
//! seeded membership churn plane ([`ChurnModel`]): epoch-versioned
//! join/leave over the static topology, with itemized retirement of
//! in-flight payloads, [`Protocol::on_join`]/[`Protocol::on_leave`]
//! handoff hooks, and an opt-in epoch-restart policy (see
//! [`sched::churn`]).
//!
//! All three implement [`Driver`] (drive rounds → read outputs /
//! metrics / termination), report through one [`RunReport`], and stream
//! to [`Observer`]s. Per-node outputs — and the payload-side
//! [`Metrics`] — are bit-identical across engines for the same seed.
//! The observability plane ([`obs`]) adds a zero-allocation recording
//! layer on top: [`Session::trace`] installs a ring-buffer
//! [`TraceSink`] that captures typed per-pulse events, aggregates a
//! streaming [`RunProfile`], and exports deterministic JSONL / Chrome
//! trace-event timelines — without perturbing a single recorded bit.
//!
//! # Example: flooding, on all three engines
//!
//! ```
//! use congest::{
//!     ChurnModel, Context, DelayModel, Engine, FaultModel, Message, Port, Protocol, RunLimits,
//!     Session,
//! };
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl Message for Token {
//!     fn bit_size(&self) -> usize { 1 }
//! }
//!
//! struct Echo { seen: bool, source: bool }
//! impl Protocol for Echo {
//!     type Msg = Token;
//!     type Output = bool;
//!     fn init(&mut self, ctx: &mut Context<'_, Token>) {
//!         if self.source { ctx.broadcast(Token); }
//!     }
//!     fn step(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(Port, Token)]) {
//!         if !inbox.is_empty() && !self.seen {
//!             self.seen = true;
//!             ctx.broadcast(Token);
//!         }
//!     }
//!     fn is_idle(&self) -> bool { true }
//!     fn output(&self) -> bool { self.seen || self.source }
//! }
//!
//! let g = graphs::Graph::complete(5);
//! let factory = |e: &congest::Endpoint| Echo { seen: false, source: e.index == 0 };
//! let delay = DelayModel::Uniform { max_delay: 4 };
//! for engine in [
//!     Engine::Flat { shards: 1 },
//!     Engine::Flat { shards: 2 },
//!     Engine::Async {
//!         delay,
//!         sync: congest::SyncModel::Alpha,
//!         fault: FaultModel::None,
//!         churn: ChurnModel::None,
//!     },
//!     Engine::Async {
//!         delay,
//!         sync: congest::SyncModel::BatchedAlpha,
//!         fault: FaultModel::None,
//!         churn: ChurnModel::None,
//!     },
//! ] {
//!     let (outputs, report) = Session::on(&g)
//!         .seed(7)
//!         .engine(engine)
//!         .limits(RunLimits::rounds(8))
//!         .run_with(factory);
//!     assert!(outputs.iter().all(|&heard| heard));
//!     assert_eq!(report.metrics.max_message_bits, 1);
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod asynch;
pub mod explore;
#[cfg(feature = "legacy-engine")]
pub mod legacy;
pub mod message;
pub mod metrics;
pub mod network;
pub mod obs;
mod plane;
pub mod protocol;
pub mod rng;
pub mod sched;
pub mod session;

pub use asynch::AsyncNetwork;
pub use explore::{DelayTrace, Explore, ExploreReport, Violation};
#[cfg(feature = "legacy-engine")]
pub use legacy::LegacyNetwork;
pub use message::{bits_for_count, Message, ID_BITS, TAG_BITS};
pub use metrics::Metrics;
pub use network::{IdAssignment, Mode, Network, NetworkBuilder};
pub use obs::{
    CtrlTag, Hist, MetricsMode, Recorder, RunProfile, TraceConfig, TraceEvent, TraceRecord,
    TraceSink,
};
pub use plane::Topology;
pub use protocol::{Context, Endpoint, Outbox, Port, Protocol, Round};
pub use sched::{
    ChurnEvent, ChurnModel, ChurnPolicy, DelayModel, EpochInfo, EventWheel, FaultEvent, FaultModel,
    PhaseBudget, PhasePlan, SyncModel, TraceHandle,
};
pub use session::{
    Driver, Engine, Observer, RoundDelta, RunLimits, RunReport, Session, SessionDriver,
    SyncOverhead, Termination,
};
