//! The observability plane: zero-alloc structured tracing, streaming
//! run profiles, and exportable timelines for every engine.
//!
//! The paper's argument is an overhead ledger — synchronizer control
//! traffic versus the synchronous baseline — and until this module the
//! repro could only report end-of-run totals ([`crate::Metrics`],
//! [`crate::SyncOverhead`]). The observability plane records *where
//! inside a run* the α tax, a Safe wave, or a retransmission storm
//! happens, without perturbing the run it watches:
//!
//! * [`Recorder`] — the recording contract. Every method is a pure
//!   observation: a recorder never draws randomness, never meters
//!   traffic, never reorders events, so an enabled recorder leaves
//!   outputs, metrics and overhead bit-identical to a disabled one.
//!   The no-op impl for `()` is the default; a disabled recorder costs
//!   one null check per site.
//! * [`TraceSink`] — the production recorder: a preallocated ring
//!   buffer of fixed-size [`TraceRecord`]s plus a streaming profile.
//!   Once built, the steady state performs **zero allocations**: ring
//!   pushes within capacity reuse preallocated slots, overflow
//!   overwrites the oldest record (counted, never grown).
//! * [`RunProfile`] — O(1)-per-event aggregates: fixed-bucket
//!   power-of-two histograms ([`Hist`]) over pulse occupancy, delivery
//!   batch sizes, wheel occupancy, and control-vs-payload bits per
//!   pulse frontier, plus running counters and high-water marks. This
//!   is the bounded-metrics machinery the million-node tier needs:
//!   with [`MetricsMode::Streaming`] the O(rounds) per-round history
//!   is dropped and the profile *is* the per-round view.
//! * Exporters — [`TraceSink::to_jsonl`] (line-oriented event log) and
//!   [`TraceSink::to_chrome_json`] (Chrome trace-event JSON that loads
//!   in Perfetto / `chrome://tracing`, one track per node plus a
//!   control-plane track). Both are pure functions of the recorded
//!   ring, built from integers with a stable field order: the same
//!   `(seed, delay, sync, fault)` tuple yields **byte-identical**
//!   exports, so traces can be committed as fixtures exactly like the
//!   PR 7 `DelayTrace`s.
//!
//! Tracing rides the unified session surface:
//! [`crate::Session::trace`] installs a sink, the run attaches a
//! [`RunProfile`] to its [`crate::RunReport`], and
//! [`crate::SessionDriver::trace_sink`] hands the ring back for
//! export.
//!
//! # Per-pulse bit attribution
//!
//! In the asynchronous engine pulse numbers are not globally monotone
//! — node A can execute pulse 5 while node B is still in pulse 3 — so
//! an exact per-pulse bit split cannot be computed in O(1) space. The
//! profile instead attributes bits to *frontier advances*: control and
//! payload bits accumulate until the maximum pulse number seen so far
//! advances, then flush into the histograms. Under the synchronous
//! engines the frontier advances exactly once per round, so the
//! distribution is exactly per-round there; under the asynchronous
//! engine it is a deterministic per-frontier-window aggregate.

use crate::sched::FaultEvent;

/// How much per-round metrics history a run keeps.
///
/// The default, [`MetricsMode::Full`], preserves the historical
/// behaviour: [`crate::Metrics::messages_per_round`] grows one entry
/// per round — O(rounds) memory — and observers replay every round
/// delta. [`MetricsMode::Streaming`] keeps only O(1) running
/// aggregates (totals, current-round count, peak), the million-node
/// prerequisite from the roadmap: the per-round vector stays empty and
/// the [`RunProfile`] histograms become the per-round view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MetricsMode {
    /// Keep the full O(rounds) per-round history (the default; all
    /// equivalence suites run in this mode unchanged).
    #[default]
    Full,
    /// Keep only O(1) running aggregates; `messages_per_round` stays
    /// empty and per-round observer replay is skipped.
    Streaming,
}

/// Configuration for a [`TraceSink`] installed via
/// [`crate::Session::trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in records. The ring is preallocated once
    /// at build time; when full, the oldest record is overwritten (and
    /// counted in [`RunProfile::dropped`]). A capacity of `0` keeps
    /// only the streaming profile — no timeline, still zero-alloc.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 1 << 16 }
    }
}

impl TraceConfig {
    /// A config retaining up to `capacity` records.
    pub fn events(capacity: usize) -> Self {
        Self { capacity }
    }

    /// A profile-only config: streaming aggregates, no timeline ring.
    pub fn profile_only() -> Self {
        Self { capacity: 0 }
    }
}

/// Which control envelope a [`TraceEvent::Ctrl`] send carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtrlTag {
    /// A per-payload acknowledgement (synchronizer α).
    Ack,
    /// A safety announcement (`Safe` flood or its batched carrier).
    Safe,
}

impl CtrlTag {
    fn name(self) -> &'static str {
        match self {
            CtrlTag::Ack => "ack",
            CtrlTag::Safe => "safe",
        }
    }
}

/// One typed, fixed-size trace event. Every variant is `Copy` and
/// carries only integers: recording never touches the allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node began a pulse, sending `sent` payload messages.
    PulseBegin {
        /// The node beginning the pulse.
        node: u32,
        /// The 1-based pulse number.
        pulse: u64,
        /// Payload messages sent at pulse begin.
        sent: u32,
    },
    /// A node executed a pulse over a delivery batch of `batch`
    /// messages.
    PulseExec {
        /// The executing node.
        node: u32,
        /// The 1-based pulse number executed.
        pulse: u64,
        /// Delivery batch size (messages handed to the protocol).
        batch: u32,
    },
    /// A payload message was delivered.
    Payload {
        /// The receiving node.
        node: u32,
        /// The sender's pulse number stamped on the envelope.
        pulse: u64,
        /// Payload bits.
        bits: u32,
    },
    /// A pure control envelope was sent.
    Ctrl {
        /// The sending node.
        node: u32,
        /// Which control message.
        kind: CtrlTag,
        /// The pulse the envelope refers to.
        pulse: u64,
        /// Envelope bits metered for the send.
        bits: u32,
    },
    /// A coalesced Safe wave was metered (one per node per pulse under
    /// `BatchedAlpha`, replacing the per-edge `Safe` flood).
    SafeWave {
        /// The announcing node.
        node: u32,
        /// The pulse the wave covers.
        pulse: u64,
        /// Envelope bits metered for the wave.
        bits: u32,
    },
    /// A retransmit timer fired and the payload was re-sent.
    Retransmit {
        /// The retransmitting node.
        node: u32,
        /// The node-local port being retried.
        port: u32,
    },
    /// A fault was injected (or a masked loss surfaced).
    Fault(FaultEvent),
    /// A node joined the member set (membership churn), opening a new
    /// epoch.
    Join {
        /// The joining node.
        node: u32,
        /// The pulse the node joined on entering.
        pulse: u64,
        /// The epoch the join opened (1-based).
        epoch: u64,
    },
    /// A node left the member set (membership churn), opening a new
    /// epoch.
    Leave {
        /// The leaving node.
        node: u32,
        /// The pulse the node left on entering.
        pulse: u64,
        /// The epoch the leave opened (1-based).
        epoch: u64,
    },
    /// An epoch boundary was crossed: the member count after the
    /// membership event that opened it.
    Epoch {
        /// The epoch just opened (1-based).
        epoch: u64,
        /// Present members after the event.
        members: u32,
    },
    /// An application payload was retired by a membership change —
    /// drained from a retired port or swallowed at delivery to an
    /// absent node.
    Retired {
        /// The node whose port the payload was retired at.
        node: u32,
        /// The node-local port.
        port: u32,
    },
    /// A phase boundary was crossed (`run_phased`).
    Phase {
        /// Zero-based index of the phase that just completed.
        index: u32,
        /// The pulse budget that phase consumed.
        budget: u64,
    },
    /// A synchronous round completed (flat / legacy engines).
    Round {
        /// The 1-based round number.
        round: u64,
        /// Messages delivered this round.
        messages: u64,
        /// Payload bits delivered this round.
        bits: u64,
    },
}

/// A timestamped [`TraceEvent`]. `at` is virtual time under the
/// asynchronous engine and the round number under the synchronous
/// engines; records are emitted in nondecreasing `at` order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Event timestamp (virtual time or round).
    pub at: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// The recording contract: every hook is a pure observation with a
/// no-op default, so `()` is the zero-cost disabled recorder and any
/// implementor is forbidden (by contract, and pinned by the bit-
/// identity suites) from perturbing the run it watches.
pub trait Recorder {
    /// Record one timestamped event.
    fn record(&mut self, at: u64, ev: TraceEvent) {
        let _ = (at, ev);
    }
    /// Sample the event-wheel occupancy after a drain step.
    fn sample_wheel(&mut self, depth: u64) {
        let _ = depth;
    }
    /// Sample an inbox queue depth.
    fn sample_queue(&mut self, depth: u64) {
        let _ = depth;
    }
}

/// The always-disabled recorder.
impl Recorder for () {}

/// The engine-side recorder slot: absent by default (one null check per
/// instrumentation site, nothing else), boxed when tracing is on so
/// engine structs stay small and cloneable.
pub(crate) type SinkSlot = Option<Box<TraceSink>>;

/// Record `ev` into `slot` if tracing is enabled. The disabled path is
/// a single branch; the enabled path is a pure observation (no RNG, no
/// metering, no allocation).
#[inline]
pub(crate) fn emit(slot: &mut SinkSlot, at: u64, ev: TraceEvent) {
    if let Some(sink) = slot.as_deref_mut() {
        sink.record(at, ev);
    }
}

/// A fixed-bucket power-of-two histogram with running count / sum /
/// min / max. O(1) per sample, zero allocations: bucket `0` holds the
/// value `0`, bucket `i` holds values whose bit length is `i`
/// (`2^(i-1) ..= 2^i - 1`), saturating in the last bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; Hist::BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self { buckets: [0; Hist::BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Hist {
    /// Bucket 0 plus one bucket per bit length up to 32, saturating.
    pub const BUCKETS: usize = 33;

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (`buckets[0]` = zeros, `buckets[i]` =
    /// samples of bit length `i`, last bucket saturating).
    pub fn buckets(&self) -> &[u64; Hist::BUCKETS] {
        &self.buckets
    }
}

/// The streaming per-run aggregate attached to
/// [`crate::RunReport::profile`]. Every field is O(1) per event to
/// maintain; nothing here grows with the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunProfile {
    /// Payload messages sent per pulse begin (per round under the
    /// synchronous engines).
    pub pulse_occupancy: Hist,
    /// Delivery batch sizes per pulse execution.
    pub queue_depth: Hist,
    /// Event-wheel occupancy sampled after each drain step.
    pub wheel_occupancy: Hist,
    /// Control bits per pulse-frontier advance (see the module docs on
    /// per-pulse bit attribution).
    pub ctrl_bits_per_pulse: Hist,
    /// Payload bits per pulse-frontier advance.
    pub payload_bits_per_pulse: Hist,
    /// Total records offered to the sink (including overwritten ones).
    pub records: u64,
    /// Records overwritten because the ring was full.
    pub dropped: u64,
    /// Pure control envelopes sent (`Ack` + `Safe`).
    pub ctrl_sends: u64,
    /// Coalesced Safe waves metered (`BatchedAlpha`).
    pub safe_waves: u64,
    /// Retransmit timers fired.
    pub retransmits: u64,
    /// Fault events injected or surfaced.
    pub faults: u64,
    /// Membership churn records (joins, leaves, epoch boundaries and
    /// retired payloads).
    pub churn: u64,
    /// High-water mark of the event wheel (scheduled, not yet popped).
    pub max_wheel_occupancy: u64,
    /// High-water mark of the inbox/port queues.
    pub max_queue_depth: u64,
}

/// The production recorder: a preallocated ring of [`TraceRecord`]s
/// plus a streaming [`RunProfile`]. Build once, record allocation-free
/// forever: the ring never grows past its configured capacity and the
/// profile is all fixed-size arrays and scalars.
#[derive(Clone, Debug)]
pub struct TraceSink {
    ring: Vec<TraceRecord>,
    /// Next write position once the ring has wrapped.
    head: usize,
    cap: usize,
    nodes: u32,
    profile: RunProfile,
    /// Pulse frontier for bit attribution.
    frontier: u64,
    ctrl_acc: u64,
    payload_acc: u64,
}

impl TraceSink {
    /// A sink for a `nodes`-node run, ring preallocated to
    /// `config.capacity`.
    pub fn new(config: TraceConfig, nodes: u32) -> Self {
        Self {
            ring: Vec::with_capacity(config.capacity),
            head: 0,
            cap: config.capacity,
            nodes,
            profile: RunProfile::default(),
            frontier: 0,
            ctrl_acc: 0,
            payload_acc: 0,
        }
    }

    #[inline]
    fn advance_frontier(&mut self, pulse: u64) {
        if pulse > self.frontier {
            if self.frontier > 0 {
                self.profile.ctrl_bits_per_pulse.record(self.ctrl_acc);
                self.profile.payload_bits_per_pulse.record(self.payload_acc);
            }
            self.frontier = pulse;
            self.ctrl_acc = 0;
            self.payload_acc = 0;
        }
    }

    #[inline]
    fn push(&mut self, rec: TraceRecord) {
        if self.cap == 0 {
            return;
        }
        if self.ring.len() < self.cap {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.profile.dropped += 1;
        }
    }

    /// Flush the trailing frontier window and note external high-water
    /// marks, then hand back the profile. Engines call this once at
    /// the end of a drive.
    pub fn finish(&mut self, max_wheel: u64, max_queue: u64) -> RunProfile {
        if self.frontier > 0 {
            self.profile.ctrl_bits_per_pulse.record(self.ctrl_acc);
            self.profile.payload_bits_per_pulse.record(self.payload_acc);
            self.ctrl_acc = 0;
            self.payload_acc = 0;
            // Re-flushing the same frontier on a later finish() (resumed
            // drives) must not double-count: bump past it.
            self.frontier += 1;
        }
        self.profile.max_wheel_occupancy = self.profile.max_wheel_occupancy.max(max_wheel);
        self.profile.max_queue_depth = self.profile.max_queue_depth.max(max_queue);
        self.profile.clone()
    }

    /// The streaming profile as aggregated so far.
    pub fn profile(&self) -> &RunProfile {
        &self.profile
    }

    /// Number of records currently retained in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Visit the retained records oldest-first.
    pub fn for_each(&self, mut f: impl FnMut(&TraceRecord)) {
        let n = self.ring.len();
        for i in 0..n {
            f(&self.ring[(self.head + i) % n.max(1)]);
        }
    }

    /// Export the retained timeline as one JSON object per line, in
    /// chronological order. Byte-deterministic: integers only, stable
    /// field order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        self.for_each(|r| {
            jsonl_line(&mut out, r);
            out.push('\n');
        });
        out
    }

    /// Export the retained timeline as Chrome trace-event JSON
    /// (Perfetto / `chrome://tracing`): instant events on one track
    /// per node (`tid = node + 1`) plus a control-plane track
    /// (`tid = 0`). Byte-deterministic for a fixed run.
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"traceEvents\":[\n");
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"control plane\"}}}}"
        );
        for v in 0..self.nodes {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"node {v}\"}}}}",
                v + 1
            );
        }
        self.for_each(|r| {
            out.push_str(",\n");
            chrome_event(&mut out, r);
        });
        out.push_str("\n]}\n");
        out
    }
}

impl Recorder for TraceSink {
    #[inline]
    fn record(&mut self, at: u64, ev: TraceEvent) {
        TraceSink::record(self, at, ev);
    }

    #[inline]
    fn sample_wheel(&mut self, depth: u64) {
        TraceSink::sample_wheel(self, depth);
    }

    #[inline]
    fn sample_queue(&mut self, depth: u64) {
        TraceSink::sample_queue(self, depth);
    }
}

impl TraceSink {
    /// Record one timestamped event (see [`Recorder::record`]).
    #[inline]
    pub fn record(&mut self, at: u64, ev: TraceEvent) {
        self.profile.records += 1;
        match ev {
            TraceEvent::PulseBegin { pulse, sent, .. } => {
                self.advance_frontier(pulse);
                self.profile.pulse_occupancy.record(sent as u64);
            }
            TraceEvent::PulseExec { batch, .. } => {
                self.profile.queue_depth.record(batch as u64);
            }
            TraceEvent::Payload { pulse, bits, .. } => {
                self.advance_frontier(pulse);
                self.payload_acc += bits as u64;
            }
            TraceEvent::Ctrl { pulse, bits, .. } => {
                self.advance_frontier(pulse);
                self.ctrl_acc += bits as u64;
                self.profile.ctrl_sends += 1;
            }
            TraceEvent::SafeWave { pulse, bits, .. } => {
                self.advance_frontier(pulse);
                self.ctrl_acc += bits as u64;
                self.profile.safe_waves += 1;
            }
            TraceEvent::Retransmit { .. } => self.profile.retransmits += 1,
            TraceEvent::Fault(_) => self.profile.faults += 1,
            TraceEvent::Join { .. }
            | TraceEvent::Leave { .. }
            | TraceEvent::Epoch { .. }
            | TraceEvent::Retired { .. } => self.profile.churn += 1,
            TraceEvent::Phase { .. } => {}
            TraceEvent::Round { round, messages, bits } => {
                self.advance_frontier(round);
                self.profile.pulse_occupancy.record(messages);
                self.payload_acc += bits;
            }
        }
        self.push(TraceRecord { at, ev });
    }

    /// Sample the event-wheel occupancy (see [`Recorder::sample_wheel`]).
    #[inline]
    pub fn sample_wheel(&mut self, depth: u64) {
        self.profile.wheel_occupancy.record(depth);
    }

    /// Sample an inbox queue depth (see [`Recorder::sample_queue`]).
    #[inline]
    pub fn sample_queue(&mut self, depth: u64) {
        self.profile.queue_depth.record(depth);
    }
}

fn jsonl_line(out: &mut String, r: &TraceRecord) {
    use std::fmt::Write as _;
    let at = r.at;
    let _ = match r.ev {
        TraceEvent::PulseBegin { node, pulse, sent } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"pulse_begin\",\"node\":{node},\"pulse\":{pulse},\
             \"sent\":{sent}}}"
        ),
        TraceEvent::PulseExec { node, pulse, batch } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"pulse_exec\",\"node\":{node},\"pulse\":{pulse},\
             \"batch\":{batch}}}"
        ),
        TraceEvent::Payload { node, pulse, bits } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"payload\",\"node\":{node},\"pulse\":{pulse},\"bits\":{bits}}}"
        ),
        TraceEvent::Ctrl { node, kind, pulse, bits } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"ctrl\",\"node\":{node},\"kind\":\"{}\",\"pulse\":{pulse},\
             \"bits\":{bits}}}",
            kind.name()
        ),
        TraceEvent::SafeWave { node, pulse, bits } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"safe_wave\",\"node\":{node},\"pulse\":{pulse},\
             \"bits\":{bits}}}"
        ),
        TraceEvent::Retransmit { node, port } => {
            write!(out, "{{\"at\":{at},\"ev\":\"retransmit\",\"node\":{node},\"port\":{port}}}")
        }
        TraceEvent::Fault(f) => match f {
            FaultEvent::Dropped { node, port, at: when } => write!(
                out,
                "{{\"at\":{at},\"ev\":\"fault_dropped\",\"node\":{node},\"port\":{port},\
                 \"when\":{when}}}"
            ),
            FaultEvent::Lost { node, port, at: when } => write!(
                out,
                "{{\"at\":{at},\"ev\":\"fault_lost\",\"node\":{node},\"port\":{port},\
                 \"when\":{when}}}"
            ),
            FaultEvent::NodeDown { node, pulse } => write!(
                out,
                "{{\"at\":{at},\"ev\":\"node_down\",\"node\":{node},\"pulse\":{pulse}}}"
            ),
            FaultEvent::NodeUp { node, pulse } => {
                write!(out, "{{\"at\":{at},\"ev\":\"node_up\",\"node\":{node},\"pulse\":{pulse}}}")
            }
        },
        TraceEvent::Join { node, pulse, epoch } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"join\",\"node\":{node},\"pulse\":{pulse},\"epoch\":{epoch}}}"
        ),
        TraceEvent::Leave { node, pulse, epoch } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"leave\",\"node\":{node},\"pulse\":{pulse},\"epoch\":{epoch}}}"
        ),
        TraceEvent::Epoch { epoch, members } => {
            write!(out, "{{\"at\":{at},\"ev\":\"epoch\",\"epoch\":{epoch},\"members\":{members}}}")
        }
        TraceEvent::Retired { node, port } => {
            write!(out, "{{\"at\":{at},\"ev\":\"retired\",\"node\":{node},\"port\":{port}}}")
        }
        TraceEvent::Phase { index, budget } => {
            write!(out, "{{\"at\":{at},\"ev\":\"phase\",\"index\":{index},\"budget\":{budget}}}")
        }
        TraceEvent::Round { round, messages, bits } => write!(
            out,
            "{{\"at\":{at},\"ev\":\"round\",\"round\":{round},\"messages\":{messages},\
             \"bits\":{bits}}}"
        ),
    };
}

/// The Chrome track an event renders on: `tid 0` is the control-plane
/// track, payload-plane events ride `tid = node + 1`.
fn chrome_tid(ev: &TraceEvent) -> u32 {
    match *ev {
        TraceEvent::PulseBegin { node, .. }
        | TraceEvent::PulseExec { node, .. }
        | TraceEvent::Payload { node, .. }
        | TraceEvent::Join { node, .. }
        | TraceEvent::Leave { node, .. }
        | TraceEvent::Retired { node, .. } => node + 1,
        TraceEvent::Ctrl { .. }
        | TraceEvent::SafeWave { .. }
        | TraceEvent::Retransmit { .. }
        | TraceEvent::Fault(_)
        | TraceEvent::Epoch { .. }
        | TraceEvent::Phase { .. }
        | TraceEvent::Round { .. } => 0,
    }
}

fn chrome_event(out: &mut String, r: &TraceRecord) {
    use std::fmt::Write as _;
    let (name, args) = chrome_args(&r.ev);
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\
         \"args\":{{{args}}}}}",
        r.at,
        chrome_tid(&r.ev)
    );
}

fn chrome_args(ev: &TraceEvent) -> (&'static str, String) {
    match *ev {
        TraceEvent::PulseBegin { pulse, sent, .. } => {
            ("pulse_begin", format!("\"pulse\":{pulse},\"sent\":{sent}"))
        }
        TraceEvent::PulseExec { pulse, batch, .. } => {
            ("pulse_exec", format!("\"pulse\":{pulse},\"batch\":{batch}"))
        }
        TraceEvent::Payload { pulse, bits, .. } => {
            ("payload", format!("\"pulse\":{pulse},\"bits\":{bits}"))
        }
        TraceEvent::Ctrl { node, kind, pulse, bits } => (
            match kind {
                CtrlTag::Ack => "ack",
                CtrlTag::Safe => "safe",
            },
            format!("\"node\":{node},\"pulse\":{pulse},\"bits\":{bits}"),
        ),
        TraceEvent::SafeWave { node, pulse, bits } => {
            ("safe_wave", format!("\"node\":{node},\"pulse\":{pulse},\"bits\":{bits}"))
        }
        TraceEvent::Retransmit { node, port } => {
            ("retransmit", format!("\"node\":{node},\"port\":{port}"))
        }
        TraceEvent::Fault(f) => match f {
            FaultEvent::Dropped { node, port, at } => {
                ("fault_dropped", format!("\"node\":{node},\"port\":{port},\"when\":{at}"))
            }
            FaultEvent::Lost { node, port, at } => {
                ("fault_lost", format!("\"node\":{node},\"port\":{port},\"when\":{at}"))
            }
            FaultEvent::NodeDown { node, pulse } => {
                ("node_down", format!("\"node\":{node},\"pulse\":{pulse}"))
            }
            FaultEvent::NodeUp { node, pulse } => {
                ("node_up", format!("\"node\":{node},\"pulse\":{pulse}"))
            }
        },
        TraceEvent::Join { node, pulse, epoch } => {
            ("join", format!("\"node\":{node},\"pulse\":{pulse},\"epoch\":{epoch}"))
        }
        TraceEvent::Leave { node, pulse, epoch } => {
            ("leave", format!("\"node\":{node},\"pulse\":{pulse},\"epoch\":{epoch}"))
        }
        TraceEvent::Epoch { epoch, members } => {
            ("epoch", format!("\"epoch\":{epoch},\"members\":{members}"))
        }
        TraceEvent::Retired { node, port } => {
            ("retired", format!("\"node\":{node},\"port\":{port}"))
        }
        TraceEvent::Phase { index, budget } => {
            ("phase", format!("\"index\":{index},\"budget\":{budget}"))
        }
        TraceEvent::Round { round, messages, bits } => {
            ("round", format!("\"round\":{round},\"messages\":{messages},\"bits\":{bits}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_by_bit_length() {
        let mut h = Hist::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let b = h.buckets();
        assert_eq!(b[0], 1, "one zero");
        assert_eq!(b[1], 1, "value 1");
        assert_eq!(b[2], 2, "values 2, 3");
        assert_eq!(b[3], 2, "values 4, 7");
        assert_eq!(b[4], 1, "value 8");
        assert_eq!(b[Hist::BUCKETS - 1], 1, "u64::MAX saturates");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut s = TraceSink::new(TraceConfig::events(2), 1);
        for i in 0..5u64 {
            s.record(i, TraceEvent::Retransmit { node: 0, port: i as u32 });
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.profile().dropped, 3);
        assert_eq!(s.profile().records, 5);
        let mut ats = Vec::new();
        s.for_each(|r| ats.push(r.at));
        assert_eq!(ats, vec![3, 4], "oldest records were overwritten first");
    }

    #[test]
    fn profile_only_sink_keeps_no_ring() {
        let mut s = TraceSink::new(TraceConfig::profile_only(), 1);
        s.record(0, TraceEvent::PulseBegin { node: 0, pulse: 1, sent: 3 });
        assert!(s.is_empty());
        assert_eq!(s.profile().records, 1);
        assert_eq!(s.profile().pulse_occupancy.count(), 1);
        assert_eq!(s.profile().dropped, 0, "a capacity-0 ring drops nothing it promised to keep");
    }

    #[test]
    fn frontier_attribution_flushes_per_advance() {
        let mut s = TraceSink::new(TraceConfig::default(), 2);
        s.record(0, TraceEvent::Payload { node: 0, pulse: 1, bits: 10 });
        s.record(0, TraceEvent::Ctrl { node: 1, kind: CtrlTag::Ack, pulse: 1, bits: 34 });
        s.record(1, TraceEvent::Payload { node: 0, pulse: 2, bits: 20 });
        let p = s.finish(0, 0);
        assert_eq!(p.payload_bits_per_pulse.count(), 2);
        assert_eq!(p.payload_bits_per_pulse.sum(), 30);
        assert_eq!(p.ctrl_bits_per_pulse.sum(), 34);
        assert_eq!(p.ctrl_sends, 1);
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let mut s = TraceSink::new(TraceConfig::default(), 2);
            s.record(0, TraceEvent::PulseBegin { node: 0, pulse: 1, sent: 1 });
            s.record(2, TraceEvent::Payload { node: 1, pulse: 1, bits: 64 });
            s.record(2, TraceEvent::Ctrl { node: 1, kind: CtrlTag::Ack, pulse: 1, bits: 34 });
            s.record(3, TraceEvent::SafeWave { node: 0, pulse: 1, bits: 34 });
            s
        };
        let (a, b) = (build(), build());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
        assert!(a.to_jsonl().lines().count() == 4);
        // Chrome export is valid-ish JSON shape: balanced braces, one
        // metadata row per node plus the control track.
        let chrome = a.to_chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.trim_end().ends_with("]}"));
        assert_eq!(chrome.matches("thread_name").count(), 3);
    }
}
