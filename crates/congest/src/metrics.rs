//! Run metrics: rounds, messages, and — most importantly — bits.
//!
//! The CONGEST model's defining resource is message *width*. Experiments
//! E5 (round complexity) and E10 (message size) read these counters; the
//! invariant tests assert that `DistNearClique` never exceeds its
//! `O(log n)` budget while the neighbors'-neighbors baseline blows
//! through it.

/// Counters accumulated over one network run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Metrics {
    /// Rounds actually executed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Total bits delivered.
    pub total_bits: u64,
    /// Width of the widest single message delivered.
    pub max_message_bits: usize,
    /// Messages delivered per round (index 0 = round 1). Empty under
    /// [`MetricsMode::Streaming`](crate::MetricsMode::Streaming), which
    /// keeps only the O(1) scalar aggregates — per-round distributions
    /// then live in the run's
    /// [`RunProfile`](crate::RunProfile) instead.
    pub messages_per_round: Vec<u64>,
    /// Number of quiescence barriers taken (phase transitions granted by
    /// [`crate::Protocol::on_quiescent`]).
    pub barriers: u64,
}

impl Metrics {
    /// Records one delivered message of the given width. Only the legacy
    /// fixture meters message by message; the production engines fold
    /// per-shard deltas ([`Metrics::absorb_delivery`]) or per-pulse
    /// scalars ([`Metrics::record_payload`]).
    #[cfg_attr(not(feature = "legacy-engine"), allow(dead_code))]
    pub(crate) fn record_message(&mut self, bits: usize) {
        self.messages += 1;
        self.total_bits += bits as u64;
        self.max_message_bits = self.max_message_bits.max(bits);
        if let Some(last) = self.messages_per_round.last_mut() {
            *last += 1;
        }
    }

    /// Folds one round's delivery counters in (the flat plane meters
    /// per-shard and merges after the parallel phases join). All inputs
    /// are commutative aggregates, so the fold order cannot affect the
    /// result — part of the engine's determinism contract.
    pub(crate) fn absorb_delivery(&mut self, messages: u64, bits: u64, max_bits: usize) {
        self.messages += messages;
        self.total_bits += bits;
        self.max_message_bits = self.max_message_bits.max(max_bits);
        if let Some(last) = self.messages_per_round.last_mut() {
            *last += messages;
        }
    }

    /// Opens the accounting window for a new round.
    pub(crate) fn begin_round(&mut self) {
        self.rounds += 1;
        self.messages_per_round.push(0);
    }

    /// Opens a new round without extending the per-round history — the
    /// [`MetricsMode::Streaming`](crate::MetricsMode::Streaming) path.
    /// Scalar totals keep accumulating (the per-message folds guard on
    /// an open history window), memory stays O(1) in the round count.
    pub(crate) fn begin_round_bounded(&mut self) {
        self.rounds += 1;
    }

    /// Records one delivered payload's scalar aggregates without opening
    /// a [`Metrics::begin_round`] window. The asynchronous engine
    /// completes pulses out of event order, so it meters scalars here
    /// and rebuilds the per-round history from its per-pulse deltas when
    /// a drive completes (keeping one ledger, not two).
    pub(crate) fn record_payload(&mut self, bits: usize) {
        self.messages += 1;
        self.total_bits += bits as u64;
        self.max_message_bits = self.max_message_bits.max(bits);
    }

    /// Pre-reserves the per-round history, so metered loops of known
    /// length perform no allocation in steady state.
    pub fn reserve_rounds(&mut self, rounds: usize) {
        self.messages_per_round.reserve(rounds);
    }

    /// Mean messages per round (0 if no rounds ran).
    #[must_use]
    pub fn mean_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }

    /// Peak messages in any single round. Reads the per-round history,
    /// so it reports 0 under
    /// [`MetricsMode::Streaming`](crate::MetricsMode::Streaming) — use
    /// the run profile's pulse-occupancy maximum there.
    #[must_use]
    pub fn peak_messages_per_round(&self) -> u64 {
        self.messages_per_round.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = Metrics::default();
        m.begin_round();
        m.record_message(10);
        m.record_message(20);
        m.begin_round();
        m.record_message(5);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages, 3);
        assert_eq!(m.total_bits, 35);
        assert_eq!(m.max_message_bits, 20);
        assert_eq!(m.messages_per_round, vec![2, 1]);
        assert_eq!(m.peak_messages_per_round(), 2);
        assert!((m.mean_messages_per_round() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_rounds_keep_totals_without_history() {
        let mut m = Metrics::default();
        m.begin_round_bounded();
        m.absorb_delivery(2, 30, 20);
        m.begin_round_bounded();
        m.absorb_delivery(1, 5, 5);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages, 3);
        assert_eq!(m.total_bits, 35);
        assert_eq!(m.max_message_bits, 20);
        assert!(m.messages_per_round.is_empty(), "streaming keeps no history");
        assert_eq!(m.peak_messages_per_round(), 0);
        assert!((m.mean_messages_per_round() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::default();
        assert_eq!(m.mean_messages_per_round(), 0.0);
        assert_eq!(m.peak_messages_per_round(), 0);
    }
}
