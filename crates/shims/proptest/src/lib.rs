//! Offline drop-in replacement for the subset of the `proptest` crate API
//! this workspace's property tests use.
//!
//! The build environment has no crates.io access, so this shim provides
//! deterministic random-input testing without shrinking: every
//! [`test_runner::TestRunner`] draws inputs from a fixed-seed
//! [`rand::rngs::StdRng`], so failures are reproducible run-to-run. The
//! [`proptest!`] macro, [`strategy::Strategy`] combinators (`prop_map`,
//! `prop_flat_map`), range/tuple/collection strategies, [`any`], and the
//! `prop_assert*` macros cover everything the workspace's suites need.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its drawn values via the panic message only), no persistence files,
//! and `prop_assert*` panics instead of returning `Err`.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Strategies: value generators and their combinators.
pub mod strategy {
    use super::test_runner::TestRunner;
    use rand::rngs::StdRng;
    use rand::{Rng, UniformInt};

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Mirrors proptest's tree API (no shrinking: the tree is a leaf).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Leaf<Self::Value>, String> {
            Ok(Leaf(self.generate(runner.rng())))
        }
    }

    /// A generated value plus its (trivial) shrink state.
    pub trait ValueTree {
        /// The value type.
        type Value;

        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// Leaf tree: a bare value, no shrinking.
    #[derive(Clone, Debug)]
    pub struct Leaf<V>(pub(crate) V);

    impl<V: Clone> ValueTree for Leaf<V> {
        type Value = V;

        fn current(&self) -> V {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T: UniformInt> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut StdRng) -> u64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Test driving: configuration and the case runner.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Suite configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each `proptest!` test runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Draws inputs for one test's cases, deterministically.
    pub struct TestRunner {
        config: Config,
        rng: StdRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::new(Config::default())
        }
    }

    impl TestRunner {
        /// A runner over `config` with the fixed shim seed.
        #[must_use]
        pub fn new(config: Config) -> Self {
            // Fixed seed: deterministic suites; vary inputs per case via
            // the stream, not the clock.
            Self { config, rng: StdRng::seed_from_u64(0x5EED_CAFE_F00D) }
        }

        /// Number of cases to run.
        #[must_use]
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The underlying RNG (used by `Strategy::new_tree`).
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        /// Draws one value from `strategy`.
        pub fn draw<S: crate::strategy::Strategy>(&mut self, strategy: &S) -> S::Value {
            strategy.generate(&mut self.rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Something convertible to a size range for [`fn@vec`].
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values with length from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Fair-coin boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The boolean "any" strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An abstract index into collections of then-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// This index resolved against a collection of `size` elements.
        ///
        /// # Panics
        ///
        /// Panics if `size == 0`.
        #[must_use]
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl crate::Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen())
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@body $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            for _case in 0..config.cases {
                $(let $arg = runner.draw(&($strat));)+
                $body
            }
        }
        $crate::proptest!(@body $cfg; $($rest)*);
    };
    (@body $cfg:expr;) => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access mirroring the real prelude's `prop` module.
    pub mod prop {
        pub use crate::{bool, collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    proptest! {
        /// Drawn values respect their range strategies.
        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 0u64..5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(x in 0usize..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn combinators_and_collections() {
        let strat = (2usize..=5).prop_flat_map(|n| {
            crate::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| (n, pairs))
        });
        let mut runner = crate::test_runner::TestRunner::default();
        for _ in 0..50 {
            let (n, pairs) = runner.draw(&strat);
            assert!((2..=5).contains(&n));
            assert!(pairs.len() < n * 2);
            for (u, v) in pairs {
                assert!(u < n && v < n);
            }
        }
    }

    #[test]
    fn tree_api_and_index() {
        let mut runner = crate::test_runner::TestRunner::default();
        let tree = crate::collection::vec(crate::bool::ANY, 10).new_tree(&mut runner).unwrap();
        assert_eq!(tree.current().len(), 10);
        let idx = runner.draw(&any::<crate::sample::Index>());
        assert!(idx.index(7) < 7);
    }
}
