//! Offline drop-in replacement for the subset of the `criterion` crate API
//! this workspace's benches use.
//!
//! The build environment has no crates.io access, so benches link against
//! this minimal harness instead: it warms up, times `sample_size` samples
//! per benchmark, prints a human-readable table, and — when the
//! `BENCH_JSON` environment variable names a file — appends one JSON
//! record per benchmark so perf trajectories (e.g. `BENCH_protocol.json`)
//! can be machine-assembled.
//!
//! Statistical machinery (outlier analysis, regressions, plots) is out of
//! scope; mean/median/min over wall-clock samples is enough to track the
//! ≥2× deltas this repo's perf work targets.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// One timed result record.
#[derive(Clone, Debug)]
struct Record {
    group: String,
    id: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    /// Extra numeric fields attached via [`BenchmarkGroup::annotate`],
    /// written verbatim into the record's `BENCH_JSON` line (e.g. a
    /// workload's control-message count next to its timing).
    extra: Vec<(String, u64)>,
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`];
/// call [`Bencher::iter`] with the code under test.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Option<(Vec<Duration>, u64)>,
}

impl Bencher<'_> {
    /// Times `f`, auto-calibrating iterations per sample so each sample
    /// lasts at least ~5 ms (or one iteration, whichever is longer).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: run until 5 ms or 3 iterations.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(5) && calib_iters < 1_000_000 {
            black_box(f());
            calib_iters += 1;
            if calib_iters >= 3 && calib_start.elapsed() >= Duration::from_millis(1) {
                break;
            }
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        let iters: u64 = if per_iter >= Duration::from_millis(5) {
            1
        } else {
            (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64
        };

        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            durations.push(start.elapsed() / iters as u32);
        }
        *self.result = Some((durations, iters));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut result = None;
        let mut bencher = Bencher { samples: self.sample_size, result: &mut result };
        f(&mut bencher);
        self.record(&id, result);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &T),
    {
        let id = id.into();
        let mut result = None;
        let mut bencher = Bencher { samples: self.sample_size, result: &mut result };
        f(&mut bencher, input);
        self.record(&id, result);
        self
    }

    /// Finishes the group (printing happens per-record as it runs).
    pub fn finish(&mut self) {}

    /// Attaches an extra numeric field to the most recently recorded
    /// benchmark of this group; it is appended to that record's
    /// `BENCH_JSON` line. Call right after the `bench_function` /
    /// `bench_with_input` whose record it describes. (Shim extension —
    /// the real criterion has no JSON side channel to annotate.)
    pub fn annotate(&mut self, key: &str, value: u64) -> &mut Self {
        if let Some(record) = self.criterion.records.last_mut() {
            record.extra.push((key.to_string(), value));
        }
        self
    }

    fn record(&mut self, id: &BenchmarkId, result: Option<(Vec<Duration>, u64)>) {
        let Some((mut durations, iters)) = result else {
            return;
        };
        durations.sort_unstable();
        let min_ns = durations.first().map_or(0.0, |d| d.as_nanos() as f64);
        let median_ns = durations[durations.len() / 2].as_nanos() as f64;
        let mean_ns =
            durations.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / durations.len() as f64;
        let rec = Record {
            group: self.name.clone(),
            id: id.id.clone(),
            mean_ns,
            median_ns,
            min_ns,
            samples: durations.len(),
            iters_per_sample: iters,
            extra: Vec::new(),
        };
        println!(
            "{:<40} mean {:>12}  median {:>12}  min {:>12}  ({} samples × {} iters)",
            format!("{}/{}", rec.group, rec.id),
            fmt_ns(rec.mean_ns),
            fmt_ns(rec.median_ns),
            fmt_ns(rec.min_ns),
            rec.samples,
            rec.iters_per_sample,
        );
        self.criterion.records.push(rec);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Mirrors the real crate's builder entry point; no CLI args are
    /// interpreted by the shim (benchmark filters are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group {name}");
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 10 }
    }

    /// Writes accumulated records as JSON lines to the file named by the
    /// `BENCH_JSON` environment variable (appending), if set.
    pub fn final_summary(&mut self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("BENCH_JSON: cannot open {path}");
            return;
        };
        for r in &self.records {
            let extra: String =
                r.extra.iter().map(|(k, v)| format!(",\"{}\":{}", json_escape(k), v)).collect();
            let _ = writeln!(
                f,
                "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}{}}}",
                json_escape(&r.group),
                json_escape(&r.id),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample,
                extra,
            );
        }
        eprintln!("wrote {} bench records to {path}", self.records.len());
    }
}

/// Peak-RSS tracking for memory-annotated benches (shim extension).
///
/// Linux exposes a per-process resident-set high-water mark (`VmHWM` in
/// `/proc/self/status`) that the kernel resets to the *current* RSS when
/// `5` is written to `/proc/self/clear_refs`. Benches bracket a build or
/// run with [`rss::reset_peak`] / [`rss::peak_kb`] and attach the delta
/// via [`BenchmarkGroup::annotate`] — e.g. the `delivery_plane_xl`
/// group's `peak_rss_kb` records. On non-Linux targets every reader
/// returns `None` and the reset reports `false`.
pub mod rss {
    /// Reads a kB-denominated field from `/proc/self/status`.
    #[cfg(target_os = "linux")]
    fn status_kb(field: &str) -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with(field))?;
        line.split_whitespace().nth(1)?.parse().ok()
    }

    /// Peak resident set size in kB (`VmHWM`) since process start or the
    /// last successful [`reset_peak`].
    #[must_use]
    pub fn peak_kb() -> Option<u64> {
        #[cfg(target_os = "linux")]
        {
            status_kb("VmHWM:")
        }
        #[cfg(not(target_os = "linux"))]
        {
            None
        }
    }

    /// Current resident set size in kB (`VmRSS`).
    #[must_use]
    pub fn current_kb() -> Option<u64> {
        #[cfg(target_os = "linux")]
        {
            status_kb("VmRSS:")
        }
        #[cfg(not(target_os = "linux"))]
        {
            None
        }
    }

    /// Resets the peak-RSS watermark to the current RSS, so the next
    /// [`peak_kb`] read reflects only allocations made after this call.
    /// Returns `false` where the kernel interface is unavailable (the
    /// watermark then keeps accumulating from process start).
    pub fn reset_peak() -> bool {
        #[cfg(target_os = "linux")]
        {
            std::fs::write("/proc/self/clear_refs", "5").is_ok()
        }
        #[cfg(not(target_os = "linux"))]
        {
            false
        }
    }

    #[cfg(all(test, target_os = "linux"))]
    mod tests {
        use super::*;

        #[test]
        fn watermark_tracks_allocations() {
            assert!(reset_peak(), "clear_refs must accept a peak reset");
            let before = peak_kb().expect("VmHWM present");
            // Touch ~8 MiB so the watermark visibly moves.
            let v = vec![1u8; 8 << 20];
            std::hint::black_box(&v);
            let after = peak_kb().expect("VmHWM present");
            assert!(after >= before + (4 << 10), "peak {after} kB vs {before} kB");
            assert!(current_kb().is_some());
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_formats() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::from_parameter(42), &42, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[1].id, "42");
        assert!(c.records[0].mean_ns >= 0.0);
    }

    #[test]
    fn annotate_attaches_to_the_latest_record() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(1);
            g.bench_function("first", |b| b.iter(|| 1 + 1));
            g.annotate("control_messages", 7);
            g.bench_function("second", |b| b.iter(|| 2 + 2));
            g.annotate("control_messages", 9).annotate("control_bits", 1024);
            g.finish();
        }
        assert_eq!(c.records[0].extra, vec![("control_messages".to_string(), 7)]);
        assert_eq!(
            c.records[1].extra,
            vec![("control_messages".to_string(), 9), ("control_bits".to_string(), 1024)]
        );
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
