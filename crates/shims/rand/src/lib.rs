//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation: [`rngs::StdRng`] is a
//! xoshiro256++ generator seeded via SplitMix64 (statistically strong for
//! simulation purposes, *not* cryptographic), and the [`Rng`],
//! [`SeedableRng`] and [`seq::SliceRandom`] traits expose exactly the
//! methods the workspace calls (`gen`, `gen_bool`, `gen_range`, `shuffle`).
//!
//! Value streams differ from the real `rand` crate's ChaCha-based `StdRng`;
//! everything in the workspace treats seeds as opaque reproducibility
//! handles, so only determinism — not any specific stream — is relied on.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution of [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; `hi > lo` guaranteed by caller.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply rejection sampling (Lemire): unbiased.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let x = u128::sample(rng);
                    if x <= zone {
                        return lo.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformInt for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                // Widened span handles hi == MAX (span up to 2^64 fits
                // in u128) with the same unbiased rejection sampling as
                // the exclusive ranges.
                let span = (hi as u128 - lo as u128) + 1;
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let x = u128::sample(rng);
                    if x <= zone {
                        return lo.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_inclusive_range!(usize, u64, u32, i64, i32);

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T` (uniform over the
    /// integer domain, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like `rand`'s `seed_from_u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Deterministic, 2²⁵⁶−1 period,
    /// passes BigCrush; not cryptographically secure.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn inclusive_range_respects_lower_bound_at_max() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range((usize::MAX - 3)..=usize::MAX);
            assert!(v >= usize::MAX - 3);
            let w = rng.gen_range(5u64..=u64::MAX);
            assert!(w >= 5);
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5..6usize);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = takes_generic(&mut rng);
    }
}
