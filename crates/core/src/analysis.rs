//! Executable forms of the paper's §5.2 analysis machinery.
//!
//! The proof of Theorem 5.7 goes through several intermediate objects that
//! are all computable on planted instances:
//!
//! * the **core** `C = K_{ε²}(D) ∩ D` with `|C| ≥ (1 − ε)|D| − 1/ε²`
//!   (Lemma 5.4) — [`core_size_bound`];
//! * the **witness sample** `X* = S⁽¹⁾ ∩ C`, which lies within a single
//!   connected component of `G[S]` w.h.p. (Lemma 5.5) —
//!   [`x_star`], [`x_star_in_one_component`];
//! * **representativeness** of `X*` (the two conditions before Claim 2) —
//!   [`representativeness`];
//! * the conclusion `|T_ε(X*)| ≥ (1 − 13ε/2)|D| − ε⁻²` (Lemma 5.6) —
//!   [`lemma_5_6_conclusion`].
//!
//! Experiment E13 samples these quantities over many trials and reports
//! how often each step of the proof chain holds — a reproduction of the
//! paper's *argument*, not only its statement.

use graphs::{density, FixedBitSet, Graph};

use crate::sample::SamplePlan;

/// Lemma 5.4's bound: `(1 − ε)|D| − 1/ε²` (may be negative for small
/// `|D|`, in which case the lemma is vacuous).
#[must_use]
pub fn core_size_bound(d_size: usize, epsilon: f64) -> f64 {
    (1.0 - epsilon) * d_size as f64 - 1.0 / (epsilon * epsilon)
}

/// The witness sample `X* = S⁽¹⁾ ∩ C` of §5.2.
///
/// # Panics
///
/// Panics if capacities disagree.
#[must_use]
pub fn x_star(plan: &SamplePlan, version: u32, c_set: &FixedBitSet) -> FixedBitSet {
    let mut x = plan.s1(version).clone();
    x.intersect_with(c_set);
    x
}

/// Whether `X*` lies within one connected component of `G[S]`
/// (Lemma 5.5's event). Empty and singleton `X*` count as `true`.
///
/// # Panics
///
/// Panics if capacities disagree.
#[must_use]
pub fn x_star_in_one_component(g: &Graph, s: &FixedBitSet, x: &FixedBitSet) -> bool {
    if x.len() <= 1 {
        return true;
    }
    g.components_within(s).iter().any(|comp| x.iter().all(|v| comp.binary_search(&v).is_ok()))
}

/// The two representativeness conditions of §5.2 (preceding Claim 2):
///
/// 1. `|K_{ε²}(D) \ K_{2ε²}(X*)| < ε·|C|`
/// 2. `|K_{2ε²}(X*) \ K_{3ε²}(C)| < ε²·|C|`
///
/// Returns `(cond1, cond2)`.
///
/// # Panics
///
/// Panics if capacities disagree or ε thresholds leave `[0, 1]`.
#[must_use]
pub fn representativeness(
    g: &Graph,
    d_set: &FixedBitSet,
    c_set: &FixedBitSet,
    x: &FixedBitSet,
    epsilon: f64,
) -> (bool, bool) {
    let e2 = epsilon * epsilon;
    let k_d = density::k_eps(g, d_set, e2.min(1.0));
    let k_x = density::k_eps(g, x, (2.0 * e2).min(1.0));
    let k_c = density::k_eps(g, c_set, (3.0 * e2).min(1.0));
    let c_size = c_set.len() as f64;
    let cond1 = (k_d.difference_count(&k_x) as f64) < epsilon * c_size;
    let cond2 = (k_x.difference_count(&k_c) as f64) < e2 * c_size;
    (cond1, cond2)
}

/// Claim 2's conclusion for a concrete representative `X*`:
/// `|C \\ T_ε(X*)| ≤ (11/2)·ε·|C|`.
///
/// Returns `(missing, holds)` where `missing = |C \\ T_ε(X*)|`.
///
/// # Panics
///
/// Panics if capacities disagree.
#[must_use]
pub fn claim_2_conclusion(
    g: &Graph,
    c_set: &FixedBitSet,
    x: &FixedBitSet,
    epsilon: f64,
) -> (usize, bool) {
    let t = density::t_eps(g, x, epsilon);
    let missing = c_set.difference_count(&t);
    (missing, missing as f64 <= 5.5 * epsilon * c_set.len() as f64)
}

/// Lemma 5.6's conclusion for a concrete `X*`:
/// `|T_ε(X*)| ≥ (1 − 13ε/2)·|D| − ε⁻²`.
///
/// Returns `(t_size, holds)` where `holds` is vacuously true when the
/// right-hand side is non-positive.
///
/// # Panics
///
/// Panics if capacities disagree.
#[must_use]
pub fn lemma_5_6_conclusion(
    g: &Graph,
    d_set: &FixedBitSet,
    x: &FixedBitSet,
    epsilon: f64,
) -> (usize, bool) {
    let t = density::t_eps(g, x, epsilon);
    let bound = (1.0 - 13.0 * epsilon / 2.0) * d_set.len() as f64 - 1.0 / (epsilon * epsilon);
    (t.len(), t.len() as f64 >= bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lemma_5_4_holds_on_planted_instances() {
        // The lemma is unconditional for ε³-near cliques; verify over
        // several instances.
        let epsilon: f64 = 0.25;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = generators::planted_near_clique(200, 100, epsilon.powi(3), 0.02, &mut rng);
            let c = density::core_c(&p.graph, &p.dense_set, epsilon);
            let bound = core_size_bound(100, epsilon);
            assert!(c.len() as f64 >= bound, "seed {seed}: |C| = {} < bound {bound}", c.len());
        }
    }

    #[test]
    fn x_star_is_intersection() {
        let plan = SamplePlan::draw(100, 1, 0.2, 3);
        let c = FixedBitSet::from_iter_with_capacity(100, 0..50);
        let x = x_star(&plan, 0, &c);
        for v in x.iter() {
            assert!(v < 50);
            assert!(plan.s1(0).contains(v));
        }
    }

    #[test]
    fn one_component_check() {
        // Path 0-1-2-3; S = {0, 1, 3}; X = {0, 3} spans two components.
        let mut b = graphs::GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        let g = b.build();
        let s = FixedBitSet::from_iter_with_capacity(4, [0, 1, 3]);
        let spanning = FixedBitSet::from_iter_with_capacity(4, [0, 3]);
        assert!(!x_star_in_one_component(&g, &s, &spanning));
        let tight = FixedBitSet::from_iter_with_capacity(4, [0, 1]);
        assert!(x_star_in_one_component(&g, &s, &tight));
        assert!(x_star_in_one_component(&g, &s, &FixedBitSet::new(4)));
    }

    #[test]
    fn claim_2_on_planted_instances() {
        // When X* is representative, C is almost entirely inside T_ε(X*).
        let epsilon: f64 = 0.25;
        let mut holds = 0;
        let mut applicable = 0;
        for seed in 0..12 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = generators::planted_near_clique(200, 100, epsilon.powi(3), 0.02, &mut rng);
            let c = density::core_c(&p.graph, &p.dense_set, epsilon);
            let plan = SamplePlan::draw(200, 1, 0.04, seed ^ 0xC2);
            let x = x_star(&plan, 0, &c);
            if x.is_empty() {
                continue;
            }
            let (c1, c2) = representativeness(&p.graph, &p.dense_set, &c, &x, epsilon);
            if c1 && c2 {
                applicable += 1;
                let (_missing, ok) = claim_2_conclusion(&p.graph, &c, &x, epsilon);
                if ok {
                    holds += 1;
                }
            }
        }
        assert!(applicable >= 4, "too few representative samples ({applicable})");
        assert_eq!(holds, applicable, "Claim 2 must hold whenever X* is representative");
    }

    #[test]
    fn representativeness_on_a_clean_clique() {
        // On an isolated clique, K-sets coincide and both conditions hold
        // for any reasonable X*.
        let g = graphs::Graph::complete(60);
        let d = FixedBitSet::full(60);
        let eps = 0.25;
        let c = density::core_c(&g, &d, eps);
        let x = FixedBitSet::from_iter_with_capacity(60, [1, 7, 13, 22]);
        let (c1, c2) = representativeness(&g, &d, &c, &x, eps);
        assert!(c1 && c2);
        let (t, holds) = lemma_5_6_conclusion(&g, &d, &x, eps);
        assert_eq!(t, 60);
        assert!(holds);
    }
}
