//! Centralized executable specification of `DistNearClique`.
//!
//! Given the *same* graph, ID assignment and [`SamplePlan`] as a
//! distributed run, [`reference_run`] computes — with plain centralized
//! set arithmetic over [`graphs::density`]-style kernels — exactly the
//! components, candidate subsets `X(Sᵢ)`, candidate sets `T_ε(X(Sᵢ))`,
//! votes and final labels that the distributed protocol must produce.
//! Property tests assert `distributed ≡ reference` on random graphs and
//! seeds; the experiments use the reference to analyze outcomes without
//! paying simulation cost where message/round metrics are not needed.

use std::collections::BTreeMap;

use graphs::{FixedBitSet, Graph};

use crate::params::{k_threshold, NearCliqueParams};
use crate::sample::SamplePlan;

/// One component's candidate as the reference computes it.
#[derive(Clone, Debug)]
pub struct RefCandidate {
    /// Boosting version this candidate came from.
    pub version: u32,
    /// Component root (minimum member ID).
    pub root: u64,
    /// Component member node *indices*.
    pub component: Vec<usize>,
    /// The argmax subset as node indices.
    pub x_star: Vec<usize>,
    /// `T_ε(X(Sᵢ))` as a node set.
    pub t_set: FixedBitSet,
    /// `|T_ε(X(Sᵢ))|`.
    pub t_size: u32,
    /// Participants `Γ(Sᵢ) ∪ Sᵢ` (the voters).
    pub participants: FixedBitSet,
    /// Whether the decision stage let this candidate survive.
    pub survived: bool,
}

/// Full result of a reference run.
#[derive(Clone, Debug)]
pub struct ReferenceResult {
    /// Per-node labels (component root IDs), `None` = ⊥.
    pub labels: Vec<Option<u64>>,
    /// Every candidate generated, across versions, in deterministic order.
    pub candidates: Vec<RefCandidate>,
    /// Whether any component exceeded the size cap and was skipped.
    pub oversized_skipped: bool,
}

/// Runs the centralized specification. `ids[i]` is node `i`'s identifier
/// (use `congest::Network`'s endpoint IDs for cross-validation).
///
/// # Panics
///
/// Panics if `ids.len() != g.node_count()`, the plan's node count or
/// version count disagrees with `g`/`params`, or IDs are not distinct.
#[must_use]
pub fn reference_run(
    g: &Graph,
    ids: &[u64],
    params: &NearCliqueParams,
    plan: &SamplePlan,
) -> ReferenceResult {
    let n = g.node_count();
    assert_eq!(ids.len(), n, "one ID per node required");
    assert_eq!(plan.node_count(), n, "plan drawn for a different node count");
    assert_eq!(plan.versions(), params.lambda, "plan drawn for a different lambda");
    {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "node IDs must be distinct");
    }

    let inner_eps = params.inner_epsilon();
    let mut candidates: Vec<RefCandidate> = Vec::new();
    let mut oversized_skipped = false;

    for version in 0..params.lambda {
        let s = plan.sample(version);
        for comp in g.components_within(&s) {
            if comp.len() > params.max_component_size as usize {
                oversized_skipped = true;
                continue;
            }
            candidates.push(component_candidate(g, ids, params, version, &comp, inner_eps));
        }
    }

    run_decision(g, ids, params, &mut candidates);

    let mut labels: Vec<Option<(u32, u64)>> = vec![None; n];
    for cand in &candidates {
        if !cand.survived {
            continue;
        }
        for v in cand.t_set.iter() {
            let incoming = (cand.t_size, cand.root);
            if labels[v].is_none_or(|cur| incoming > cur) {
                labels[v] = Some(incoming);
            }
        }
    }

    ReferenceResult {
        labels: labels.into_iter().map(|l| l.map(|(_, root)| root)).collect(),
        candidates,
        oversized_skipped,
    }
}

/// `K_ε`-style membership with the `X \ {v}` convention, matching both
/// `graphs::density::k_eps` and the distributed threshold arithmetic.
fn k_members(g: &Graph, x_set: &FixedBitSet, eps: f64) -> FixedBitSet {
    let n = g.node_count();
    let size = x_set.len();
    let mut out = FixedBitSet::new(n);
    for v in 0..n {
        let base = size - usize::from(x_set.contains(v));
        if g.degree_into(v, x_set) >= k_threshold(base, eps) {
            out.insert(v);
        }
    }
    out
}

fn component_candidate(
    g: &Graph,
    ids: &[u64],
    params: &NearCliqueParams,
    version: u32,
    comp: &[usize],
    inner_eps: f64,
) -> RefCandidate {
    let n = g.node_count();
    // Roster sorted by ID — the subset-index convention of the protocol.
    let mut roster: Vec<usize> = comp.to_vec();
    roster.sort_unstable_by_key(|&v| ids[v]);
    let root = ids[roster[0]];
    let k = roster.len();

    // Participants: Γ(Sᵢ) ∪ Sᵢ.
    let mut participants = FixedBitSet::new(n);
    for &m in comp {
        participants.insert(m);
        for &u in g.neighbors(m) {
            participants.insert(u);
        }
    }

    let mut best: Option<(u32, usize, FixedBitSet)> = None; // (t_size, x, t_set)
    for x in 1u32..(1u32 << k) {
        let mut x_set = FixedBitSet::new(n);
        for (i, &m) in roster.iter().enumerate() {
            if x & (1 << i) != 0 {
                x_set.insert(m);
            }
        }
        let k_set = k_members(g, &x_set, inner_eps);
        let k_size = k_set.len();
        // T_ε(X) = K_ε(K_{2ε²}(X)) ∩ K_{2ε²}(X); members of K are their own
        // non-neighbors, hence the size-1 base.
        let mut t_set = FixedBitSet::new(n);
        for v in k_set.iter() {
            if g.degree_into(v, &k_set) >= k_threshold(k_size - 1, params.epsilon) {
                t_set.insert(v);
            }
        }
        let t_size = t_set.len() as u32;
        // argmax with ties toward the smallest subset index (protocol rule).
        let better = match &best {
            None => true,
            Some((bt, _, _)) => t_size > *bt,
        };
        if better {
            best = Some((t_size, x as usize, t_set));
        }
    }
    let (t_size, x_star_mask, t_set) = best.expect("components are non-empty");
    let x_star: Vec<usize> = roster
        .iter()
        .enumerate()
        .filter(|(i, _)| x_star_mask & (1 << i) != 0)
        .map(|(_, &m)| m)
        .collect();

    RefCandidate {
        version,
        root,
        component: {
            let mut c = comp.to_vec();
            c.sort_unstable();
            c
        },
        x_star,
        t_set,
        t_size,
        participants,
        survived: false,
    }
}

/// Decision stage: every participant votes for its best candidate
/// (largest `|T|`, then largest root ID, then largest version); a
/// candidate survives iff no participant prefers another candidate and it
/// meets the minimum-size filter.
fn run_decision(
    g: &Graph,
    _ids: &[u64],
    params: &NearCliqueParams,
    candidates: &mut [RefCandidate],
) {
    let n = g.node_count();
    let min_size = params.min_candidate_size.unwrap_or(1);
    // best[v] = key of v's preferred candidate.
    let mut best: Vec<Option<(u32, u64, u32)>> = vec![None; n];
    for cand in candidates.iter() {
        let key = (cand.t_size, cand.root, cand.version);
        for v in cand.participants.iter() {
            if best[v].is_none_or(|cur| key > cur) {
                best[v] = Some(key);
            }
        }
    }
    let mut aborted: BTreeMap<(u32, u64, u32), bool> = BTreeMap::new();
    for cand in candidates.iter() {
        let key = (cand.t_size, cand.root, cand.version);
        let any_defector = cand.participants.iter().any(|v| best[v] != Some(key));
        aborted.insert(key, any_defector);
    }
    for cand in candidates.iter_mut() {
        let key = (cand.t_size, cand.root, cand.version);
        cand.survived = !aborted[&key] && cand.t_size >= min_size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps: f64, p: f64) -> NearCliqueParams {
        NearCliqueParams::new(eps, p).unwrap()
    }

    fn seq_ids(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn clique_reference_finds_whole_clique() {
        let g = Graph::complete(20);
        let prm = params(0.25, 0.2);
        let plan = SamplePlan::draw(20, 1, prm.p, 3);
        let ids = seq_ids(20);
        let res = reference_run(&g, &ids, &prm, &plan);
        if plan.sample(0).is_empty() {
            assert!(res.candidates.is_empty());
        } else {
            // In a clique, G[S] is connected: exactly one candidate, whose
            // T is the whole graph.
            assert_eq!(res.candidates.len(), 1);
            let cand = &res.candidates[0];
            assert_eq!(cand.t_size, 20);
            assert!(cand.survived);
            assert!(res.labels.iter().all(|l| l.is_some()));
        }
    }

    #[test]
    fn empty_graph_reference_small_candidates_filtered() {
        let g = Graph::empty(15);
        let prm = params(0.2, 0.3).with_min_candidate_size(2);
        let plan = SamplePlan::draw(15, 1, prm.p, 4);
        let res = reference_run(&g, &seq_ids(15), &prm, &plan);
        assert!(res.labels.iter().all(|l| l.is_none()));
        for c in &res.candidates {
            assert!(!c.survived);
            assert_eq!(c.t_size, 1, "singleton components give singleton T");
        }
    }

    #[test]
    fn oversized_components_are_skipped() {
        let g = Graph::complete(12);
        let prm = params(0.25, 0.9).with_max_component_size(3);
        let plan = SamplePlan::draw(12, 1, prm.p, 5);
        let res = reference_run(&g, &seq_ids(12), &prm, &plan);
        if plan.sample(0).len() > 3 {
            assert!(res.oversized_skipped);
            assert!(res.candidates.is_empty());
        }
    }

    #[test]
    fn decision_kills_the_smaller_of_two_adjacent_candidates() {
        // A 10-clique and a 6-clique sharing a connecting node: the shared
        // node is a participant of both and votes for the bigger one.
        let mut b = graphs::GraphBuilder::new(16);
        b.add_clique(&(0..10).collect::<Vec<_>>());
        b.add_clique(&(10..16).collect::<Vec<_>>());
        b.add_edge(0, 10);
        let g = b.build();
        let prm = params(0.25, 0.5);
        let plan = SamplePlan::draw(16, 1, prm.p, 11);
        let res = reference_run(&g, &seq_ids(16), &prm, &plan);
        let survivors: Vec<_> = res.candidates.iter().filter(|c| c.survived).collect();
        // If both cliques produced candidates, the shared border node can
        // kill at most one of them; the largest always survives.
        if res.candidates.len() >= 2 {
            let max_size = res.candidates.iter().map(|c| c.t_size).max().unwrap();
            assert!(survivors.iter().any(|c| c.t_size == max_size));
        }
    }

    #[test]
    fn labels_only_from_surviving_candidates() {
        let g = Graph::complete(18);
        let prm = params(0.25, 0.3);
        let plan = SamplePlan::draw(18, 1, prm.p, 7);
        let res = reference_run(&g, &seq_ids(18), &prm, &plan);
        for (v, label) in res.labels.iter().enumerate() {
            if let Some(root) = label {
                let covering = res
                    .candidates
                    .iter()
                    .find(|c| c.survived && c.root == *root && c.t_set.contains(v));
                assert!(covering.is_some(), "label of node {v} has no surviving candidate");
            }
        }
    }

    #[test]
    #[should_panic(expected = "IDs must be distinct")]
    fn duplicate_ids_panic() {
        let g = Graph::empty(3);
        let prm = params(0.2, 0.5);
        let plan = SamplePlan::draw(3, 1, prm.p, 0);
        let _ = reference_run(&g, &[1, 1, 2], &prm, &plan);
    }
}
