//! The sampling stage (and its §5.2 two-coin refinement).
//!
//! The sampling stage of `DistNearClique` is purely local: every node
//! joins `S` independently with probability `p`. The analysis of §5.2
//! refines the coin into two independent coins — `coin₁` with probability
//! `p₁ = p/2` and `coin₂` with probability `p₂ = (p − p₁)/(1 − p₁)` — such
//! that a node enters `S` iff at least one shows heads; `S⁽¹⁾` (the
//! `coin₁` heads) is the sub-sample the existence proof intersects with
//! the core `C`.
//!
//! [`SamplePlan`] materializes those flips for every node and version
//! up-front from the master seed (the same per-node RNG streams the
//! simulator would hand out), so the distributed protocol and the
//! centralized reference provably run on the *same* sample, and analysis
//! experiments (E6, and the representativeness checks behind Lemma 5.6)
//! can inspect `S⁽¹⁾`/`S⁽²⁾` directly.

use congest::rng::node_rng;
use graphs::FixedBitSet;
use rand::Rng;

/// Per-node, per-version coin flips of the sampling stage.
#[derive(Clone, Debug)]
pub struct SamplePlan {
    n: usize,
    /// `coin1[v]` — the `S⁽¹⁾` flips, one bitset per version.
    coin1: Vec<FixedBitSet>,
    /// `coin2[v]` — the `S⁽²⁾` flips, one bitset per version.
    coin2: Vec<FixedBitSet>,
}

impl SamplePlan {
    /// Draws the plan for `n` nodes, `lambda` versions, sampling
    /// probability `p`, from `seed`.
    ///
    /// Node `i` uses the RNG stream `node_rng(seed, i)` and draws its
    /// version-0 coins first, then version-1, and so on — the order the
    /// distributed sampling stage would draw them in.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)` or `lambda == 0`.
    #[must_use]
    pub fn draw(n: usize, lambda: u32, p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
        assert!(lambda >= 1, "lambda must be at least 1");
        let p1 = p / 2.0;
        let p2 = (p - p1) / (1.0 - p1);
        let mut coin1: Vec<FixedBitSet> = (0..lambda).map(|_| FixedBitSet::new(n)).collect();
        let mut coin2: Vec<FixedBitSet> = (0..lambda).map(|_| FixedBitSet::new(n)).collect();
        for i in 0..n {
            let mut rng = node_rng(seed, i);
            for v in 0..lambda as usize {
                if rng.gen_bool(p1) {
                    coin1[v].insert(i);
                }
                if rng.gen_bool(p2) {
                    coin2[v].insert(i);
                }
            }
        }
        Self { n, coin1, coin2 }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of versions.
    #[must_use]
    pub fn versions(&self) -> u32 {
        self.coin1.len() as u32
    }

    /// Whether node `i` is in `S` for `version` (either coin heads).
    ///
    /// # Panics
    ///
    /// Panics if `version` or `i` is out of range.
    #[must_use]
    pub fn in_sample(&self, version: u32, i: usize) -> bool {
        self.coin1[version as usize].contains(i) || self.coin2[version as usize].contains(i)
    }

    /// The sample `S` of `version` as a node set.
    ///
    /// # Panics
    ///
    /// Panics if `version` is out of range.
    #[must_use]
    pub fn sample(&self, version: u32) -> FixedBitSet {
        let mut s = self.coin1[version as usize].clone();
        s.union_with(&self.coin2[version as usize]);
        s
    }

    /// The §5.2 sub-sample `S⁽¹⁾` (`coin₁` heads) of `version`.
    ///
    /// # Panics
    ///
    /// Panics if `version` is out of range.
    #[must_use]
    pub fn s1(&self, version: u32) -> &FixedBitSet {
        &self.coin1[version as usize]
    }

    /// The §5.2 sub-sample `S⁽²⁾` (`coin₂` heads) of `version`.
    ///
    /// # Panics
    ///
    /// Panics if `version` is out of range.
    #[must_use]
    pub fn s2(&self, version: u32) -> &FixedBitSet {
        &self.coin2[version as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_is_union_of_coins() {
        let plan = SamplePlan::draw(500, 2, 0.05, 7);
        for v in 0..2 {
            let s = plan.sample(v);
            for i in 0..500 {
                assert_eq!(
                    s.contains(i),
                    plan.s1(v).contains(i) || plan.s2(v).contains(i),
                    "node {i} version {v}"
                );
                assert_eq!(s.contains(i), plan.in_sample(v, i));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SamplePlan::draw(200, 3, 0.1, 42);
        let b = SamplePlan::draw(200, 3, 0.1, 42);
        for v in 0..3 {
            assert_eq!(a.sample(v), b.sample(v));
        }
        let c = SamplePlan::draw(200, 3, 0.1, 43);
        assert_ne!(a.sample(0), c.sample(0), "different seed, different sample");
    }

    #[test]
    fn versions_are_independent() {
        let plan = SamplePlan::draw(2000, 2, 0.05, 1);
        assert_ne!(plan.sample(0), plan.sample(1));
    }

    #[test]
    fn sample_size_near_expectation() {
        let n = 20_000;
        let p = 0.02;
        let plan = SamplePlan::draw(n, 1, p, 9);
        let size = plan.sample(0).len() as f64;
        let expected = p * n as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!((size - expected).abs() < 5.0 * sd, "|S| = {size}, expected {expected}");
    }

    #[test]
    fn coin1_probability_is_half_of_p() {
        let n = 50_000;
        let plan = SamplePlan::draw(n, 1, 0.04, 11);
        let c1 = plan.s1(0).len() as f64;
        let expected = 0.02 * n as f64;
        let sd = (expected * 0.98).sqrt();
        assert!((c1 - expected).abs() < 5.0 * sd, "|S1| = {c1}, expected {expected}");
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn bad_p_panics() {
        let _ = SamplePlan::draw(10, 1, 0.0, 0);
    }
}
