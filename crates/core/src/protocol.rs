//! The `DistNearClique` protocol as a CONGEST state machine.
//!
//! Each node runs the phases below in lockstep; phase boundaries are the
//! quiescence barriers of [`congest`] (the simulator's stand-in for the
//! paper's §4.1 deterministic time-bound wrapper — see
//! `congest::Protocol::on_quiescent`). The phases map onto the paper's
//! pseudo-code as follows:
//!
//! | Phase | Paper step |
//! |---|---|
//! | `Announce` | Sampling stage (the flips themselves come from [`crate::SamplePlan`]) + "who of my neighbors is in S" |
//! | `Roster` | Exploration 1–2: spanning tree (min-ID flooding) + component membership gather |
//! | `CompShare` | Exploration 3: `Comp(v)` to all neighbors; parent pointers for `Γ(S)`; tree children learned |
//! | `KConverge` | Exploration 4a–4c: `K_{2ε²}(X)` bits, attach, pipelined convergecast of counts |
//! | `KBroadcast` | Exploration 4d–4e: `\|K_{2ε²}(X)\|` down, `KMember` announcements to all neighbors |
//! | `TConverge` | Exploration 4f + Decision 1: `T_ε(X)` bits, pipelined convergecast of counts |
//! | `CandidateDown` | Decision 2: the argmax `X(Sᵢ)` and `\|T_ε(X(Sᵢ))\|` to all participants |
//! | `Vote` | Decision 3: ack/abort votes, aggregated up the tree |
//! | `Winner` | Decision 4: surviving roots announce; members of `T_ε(X(Sᵢ))` label themselves |
//!
//! With boosting (λ > 1) the `Announce…CandidateDown` block repeats per
//! version and a single `Vote`/`Winner` pass judges all collected
//! candidates (§4.1).
//!
//! Two deliberate deviations from the letter of the pseudo-code, both
//! documented in DESIGN.md:
//!
//! * The spanning tree comes from min-ID flooding (first-arrival parents)
//!   rather than layered BFS; any rooted spanning tree supports the
//!   convergecasts, and flooding needs one phase instead of two.
//! * Subsets are enumerated as `X ⊆ Sᵢ`, `X ≠ ∅` (the empty subset's
//!   `T_ε(∅)` would require global knowledge and is never the sample of a
//!   near-clique).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use congest::{Context, Port, Protocol, Round};

use crate::component::{CandidateInfo, CompView, FanoutStream, VectorConverge};
use crate::msg::Msg;
use crate::params::NearCliqueParams;

/// Execution phases; see the module docs for the mapping to the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Announce,
    Roster,
    CompShare,
    KConverge,
    KBroadcast,
    TConverge,
    CandidateDown,
    Vote,
    Winner,
    Done,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Announce => "announce",
            Phase::Roster => "roster",
            Phase::CompShare => "comp-share",
            Phase::KConverge => "k-converge",
            Phase::KBroadcast => "k-broadcast",
            Phase::TConverge => "t-converge",
            Phase::CandidateDown => "candidate-down",
            Phase::Vote => "vote",
            Phase::Winner => "winner",
            Phase::Done => "done",
        }
    }
}

/// What a node reports when the run ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeOutput {
    /// The node's identifier.
    pub id: u64,
    /// The near-clique label (a component root ID), or `None` (the paper's
    /// `⊥`).
    pub label: Option<u64>,
    /// Whether the node was sampled into `S`, per boosting version.
    pub in_sample: Vec<bool>,
    /// A component this node saw exceeded the size cap and was skipped.
    pub oversized_component: bool,
}

/// Per-node protocol state for `DistNearClique`.
///
/// Construct via [`DistNearClique::new`] with the node's per-version
/// sample flags (drawn by [`crate::SamplePlan`]), then hand to
/// `congest::Session::build_with`. Most users should call
/// [`crate::run_near_clique`] instead, which wires everything up.
#[derive(Debug)]
pub struct DistNearClique {
    params: NearCliqueParams,
    /// Sample membership per version (the sampling stage, precomputed).
    sample_flags: Vec<bool>,

    phase: Phase,
    version: u8,
    entry_round: Round,

    // --- per-version transient state (reset at Announce) ---
    /// Ports leading to neighbors in `S` for the current version.
    s_ports: Vec<Port>,
    /// Component member IDs in learn order (gossip payload queue).
    roster_ids: Vec<u64>,
    roster_set: BTreeSet<u64>,
    /// Per-`s_ports` gossip cursors.
    roster_cursors: Vec<usize>,
    /// Current minimum known ID (the root when gossip converges).
    current_min: u64,
    /// Port that first delivered the current minimum (tree parent).
    parent_port: Option<Port>,
    /// Tree children (senders of `Adopt`).
    adopt_children: Vec<Port>,
    /// `CompShare` roster being streamed to all neighbors.
    comp_share_list: Vec<u64>,
    /// Per-port `CompShare` cursors.
    comp_share_cursors: Vec<usize>,

    // --- cross-version state ---
    /// Views of every component this node participates in, keyed by
    /// `(version, root)`.
    views: BTreeMap<(u8, u64), CompView>,
    /// Neighbor IDs as a set (adjacency tests against rosters).
    neighbor_id_set: BTreeSet<u64>,
    /// Adopted label with its score, for best-of conflict resolution.
    label: Option<(u32, u64)>,
    oversized_seen: bool,
    my_id: u64,
    /// Phase transitions as (version, phase name, entry round). Phases are
    /// globally synchronized, so any single node's trace describes the
    /// whole execution.
    trace: Vec<(u8, &'static str, Round)>,
}

impl DistNearClique {
    /// Creates the per-node state. `sample_flags[v]` says whether this
    /// node is in `S` for boosting version `v`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_flags.len() != params.lambda`.
    #[must_use]
    pub fn new(params: NearCliqueParams, sample_flags: Vec<bool>) -> Self {
        assert_eq!(
            sample_flags.len(),
            params.lambda as usize,
            "one sample flag per boosting version required"
        );
        assert!(params.lambda <= u8::MAX as u32, "lambda must fit in u8");
        Self {
            params,
            sample_flags,
            phase: Phase::Announce,
            version: 0,
            entry_round: 0,
            s_ports: Vec::new(),
            roster_ids: Vec::new(),
            roster_set: BTreeSet::new(),
            roster_cursors: Vec::new(),
            current_min: u64::MAX,
            parent_port: None,
            adopt_children: Vec::new(),
            comp_share_list: Vec::new(),
            comp_share_cursors: Vec::new(),
            views: BTreeMap::new(),
            neighbor_id_set: BTreeSet::new(),
            label: None,
            oversized_seen: false,
            my_id: 0,
            trace: Vec::new(),
        }
    }

    /// The phase transitions this node observed, as
    /// `(version, phase name, entry round)` triples. Phase boundaries are
    /// global barriers, so every node reports the same spans; the runner
    /// exposes node 0's trace as the run's phase profile.
    #[must_use]
    pub fn phase_trace(&self) -> &[(u8, &'static str, Round)] {
        &self.trace
    }

    /// The canonical phase-entry order for `lambda` boosting versions —
    /// the names a complete run's [`DistNearClique::phase_trace`] (and
    /// any `congest::PhasePlan` scheduling it, e.g. one built by
    /// `PhasePlan::from_trace`) walks through: the seven-phase
    /// exploration block once per version, then the single
    /// `vote`/`winner` decision pass.
    #[must_use]
    pub fn phase_sequence(lambda: u32) -> Vec<&'static str> {
        let per_version = [
            Phase::Announce,
            Phase::Roster,
            Phase::CompShare,
            Phase::KConverge,
            Phase::KBroadcast,
            Phase::TConverge,
            Phase::CandidateDown,
        ];
        let mut names = Vec::with_capacity(per_version.len() * lambda.max(1) as usize + 2);
        for _ in 0..lambda.max(1) {
            names.extend(per_version.iter().map(|p| p.name()));
        }
        names.push(Phase::Vote.name());
        names.push(Phase::Winner.name());
        names
    }

    /// Name of the phase this node currently executes (the §4.1 wrapper
    /// and the phased async runner use this to diagnose mis-budgeted
    /// schedules).
    #[must_use]
    pub fn current_phase(&self) -> &'static str {
        self.phase.name()
    }

    fn record_phase(&mut self, round: Round) {
        self.trace.push((self.version, self.phase.name(), round));
    }

    fn in_s(&self) -> bool {
        self.sample_flags[self.version as usize]
    }

    fn cap(&self) -> u32 {
        self.params.max_component_size
    }

    // ---------------- phase entries ----------------

    fn enter_announce(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::Announce;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        self.s_ports.clear();
        self.roster_ids.clear();
        self.roster_set.clear();
        self.roster_cursors.clear();
        self.current_min = u64::MAX;
        self.parent_port = None;
        self.adopt_children.clear();
        self.comp_share_list.clear();
        self.comp_share_cursors.clear();
        if self.in_s() {
            ctx.broadcast(Msg::InS { version: self.version });
        }
    }

    fn enter_roster(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::Roster;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        if self.in_s() {
            self.roster_ids.push(ctx.id());
            self.roster_set.insert(ctx.id());
            self.current_min = ctx.id();
            self.parent_port = None;
            self.roster_cursors = vec![0; self.s_ports.len()];
        }
    }

    fn enter_comp_share(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::CompShare;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        if !self.in_s() {
            return;
        }
        if let Some(parent) = self.parent_port {
            ctx.send(parent, Msg::Adopt { version: self.version });
        }
        let root = self.current_min;
        let mut view = CompView::new(self.version, root, true);
        view.total = self.roster_set.len() as u32;
        view.ids = self.roster_set.clone();
        view.parent_port = self.parent_port;
        view.oversized = view.total > self.cap();
        if view.oversized {
            self.oversized_seen = true;
        }
        self.views.insert((self.version, root), view);

        self.comp_share_list = self.roster_set.iter().copied().collect();
        self.comp_share_cursors = vec![0; ctx.degree()];
    }

    fn enter_k_converge(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::KConverge;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        let inner_eps = self.params.inner_epsilon();
        let version = self.version;
        let my_id = self.my_id;
        let adopt_children = std::mem::take(&mut self.adopt_children);
        for ((v, _root), view) in self.views.iter_mut() {
            if *v != version || view.oversized {
                continue;
            }
            view.fix_roster(my_id, &self.neighbor_id_set, inner_eps);
            if view.is_member {
                let mut converge = VectorConverge::new(view.n_coords(), &view.k_bits);
                for &child in &adopt_children {
                    converge.add_contributor(child);
                }
                view.contributors = adopt_children.clone();
                view.k_converge = Some(converge);
                view.locked = false;
            } else {
                let parent = view.parent_port.expect("non-member views always have a parent");
                ctx.send(parent, Msg::Attach { version, root: view.root });
                view.k_up_next = 1;
            }
        }
    }

    fn enter_k_broadcast(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::KBroadcast;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        let version = self.version;
        let degree = ctx.degree();
        for ((v, _), view) in self.views.iter_mut() {
            if *v != version || view.oversized {
                continue;
            }
            let all_ports: Vec<Port> = (0..degree).collect();
            view.member_stream = Some(FanoutStream::new(&all_ports));
            if view.is_member {
                view.down = Some(FanoutStream::new(&view.contributors));
                if view.parent_port.is_none() {
                    // Root: the convergecast totals are the global counts.
                    let converge = view.k_converge.as_ref().expect("root has a converge");
                    let totals = converge.totals().to_vec();
                    for (x, &total) in totals.iter().enumerate().skip(1) {
                        view.k_sizes[x] = total;
                        view.down.as_mut().expect("just set").push(x as u32, total);
                        if view.k_bits[x] {
                            view.member_stream.as_mut().expect("just set").push(x as u32, total);
                        }
                    }
                }
            }
        }
    }

    fn enter_t_converge(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::TConverge;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        let epsilon = self.params.epsilon;
        let version = self.version;
        for ((v, _), view) in self.views.iter_mut() {
            if *v != version || view.oversized {
                continue;
            }
            view.compute_t_bits(epsilon);
            if view.is_member {
                let mut converge = VectorConverge::new(view.n_coords(), &view.t_bits);
                for &c in &view.contributors {
                    converge.add_contributor(c);
                }
                view.t_converge = Some(converge);
            } else {
                view.t_up_next = 1;
            }
        }
    }

    fn enter_candidate_down(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::CandidateDown;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        let version = self.version;
        for ((v, _), view) in self.views.iter_mut() {
            if *v != version || view.oversized {
                continue;
            }
            if view.is_member && view.parent_port.is_none() {
                let totals = view.t_converge.as_ref().expect("root has t-converge").totals();
                // argmax |T_ε(X)|, ties toward the smallest subset index —
                // a fixed deterministic rule mirrored by the reference.
                let mut best_x = 1usize;
                let mut best = totals.get(1).copied().unwrap_or(0);
                for (x, &t) in totals.iter().enumerate().skip(2) {
                    if t > best {
                        best = t;
                        best_x = x;
                    }
                }
                let info =
                    CandidateInfo { x: best_x as u32, size: best, my_t_bit: view.t_bits[best_x] };
                view.candidate = Some(info);
                for &port in &view.contributors {
                    ctx.send(
                        port,
                        Msg::Candidate { version, root: view.root, x: info.x, size: info.size },
                    );
                }
                view.release_heavy();
            }
        }
    }

    fn enter_vote(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::Vote;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        // Best candidate across versions: largest |T|, then largest root
        // ID (the paper's tie-break), then largest version.
        let best = self
            .views
            .iter()
            .filter(|(_, view)| !view.oversized && view.candidate.is_some())
            .map(|(&(v, root), view)| (view.candidate.expect("filtered").size, root, v))
            .max();
        let version_keys: Vec<(u8, u64)> = self.views.keys().copied().collect();
        for key in version_keys {
            let view = self.views.get_mut(&key).expect("key enumerated");
            if view.oversized || view.candidate.is_none() {
                view.vote_done = true;
                continue;
            }
            let cand = view.candidate.expect("checked");
            let me = (cand.size, key.1, key.0);
            let my_abort = best != Some(me);
            if view.is_member {
                view.abort_acc |= my_abort;
                // Own vote is folded in; child votes arrive in `step`.
                Self::try_send_vote(view, key, ctx);
            } else {
                let parent = view.parent_port.expect("non-member has parent");
                ctx.send(parent, Msg::Vote { version: key.0, root: key.1, abort: my_abort });
                view.vote_done = true;
            }
        }
    }

    /// Sends the aggregated vote up once all contributor votes arrived.
    /// At the root, "sending" means recording the final verdict.
    fn try_send_vote(view: &mut CompView, key: (u8, u64), ctx: &mut Context<'_, Msg>) {
        if view.vote_done || view.votes_received < view.contributors.len() {
            return;
        }
        view.vote_done = true;
        if let Some(parent) = view.parent_port {
            ctx.send(parent, Msg::Vote { version: key.0, root: key.1, abort: view.abort_acc });
        }
        // Root: `abort_acc` now holds the component's verdict.
    }

    fn enter_winner(&mut self, ctx: &mut Context<'_, Msg>) {
        self.phase = Phase::Winner;
        self.entry_round = ctx.round();
        self.record_phase(ctx.round());
        let min_size = self.params.min_candidate_size.unwrap_or(1);
        let keys: Vec<(u8, u64)> = self.views.keys().copied().collect();
        for key in keys {
            let view = self.views.get_mut(&key).expect("key enumerated");
            let is_surviving_root =
                view.is_member && view.parent_port.is_none() && !view.oversized && !view.abort_acc;
            if !is_surviving_root {
                continue;
            }
            let cand = view.candidate.expect("roots always have a candidate");
            if cand.size < min_size {
                continue;
            }
            for &port in &view.contributors {
                ctx.send(port, Msg::Winner { version: key.0, root: key.1 });
            }
            if cand.my_t_bit {
                Self::adopt_label(&mut self.label, cand.size, key.1);
            }
        }
    }

    fn adopt_label(label: &mut Option<(u32, u64)>, size: u32, root: u64) {
        let incoming = (size, root);
        if label.is_none_or(|cur| incoming > cur) {
            *label = Some(incoming);
        }
    }

    // ---------------- step handlers ----------------

    fn step_announce(&mut self, inbox: &[(Port, Msg)]) {
        for (port, msg) in inbox {
            match msg {
                Msg::InS { version } => {
                    debug_assert_eq!(*version, self.version);
                    self.s_ports.push(*port);
                }
                other => panic!("unexpected message in Announce: {other:?}"),
            }
        }
    }

    fn step_roster(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        for (port, msg) in inbox {
            match msg {
                Msg::Roster { version, id } => {
                    debug_assert_eq!(*version, self.version);
                    debug_assert!(self.in_s(), "roster gossip reached a non-member");
                    if self.roster_set.insert(*id) {
                        self.roster_ids.push(*id);
                    }
                    if *id < self.current_min {
                        self.current_min = *id;
                        self.parent_port = Some(*port);
                    }
                }
                other => panic!("unexpected message in Roster: {other:?}"),
            }
        }
        if self.in_s() {
            for i in 0..self.s_ports.len() {
                if self.roster_cursors[i] < self.roster_ids.len() {
                    let id = self.roster_ids[self.roster_cursors[i]];
                    self.roster_cursors[i] += 1;
                    ctx.send(self.s_ports[i], Msg::Roster { version: self.version, id });
                }
            }
        }
    }

    fn step_comp_share(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        for (port, msg) in inbox {
            match msg {
                Msg::Adopt { version } => {
                    debug_assert_eq!(*version, self.version);
                    self.adopt_children.push(*port);
                }
                Msg::CompShare { version, root, id, total } => {
                    debug_assert_eq!(*version, self.version);
                    let key = (*version, *root);
                    if let Some(view) = self.views.get(&key) {
                        if view.is_member {
                            continue; // echo of our own component's roster
                        }
                    }
                    let cap = self.cap();
                    let view = self.views.entry(key).or_insert_with(|| {
                        let mut v = CompView::new(*version, *root, false);
                        v.parent_port = Some(*port);
                        v
                    });
                    view.total = *total;
                    view.ids.insert(*id);
                    if *total > cap {
                        view.oversized = true;
                        self.oversized_seen = true;
                    }
                }
                other => panic!("unexpected message in CompShare: {other:?}"),
            }
        }
        if self.in_s() {
            let root = self.current_min;
            let total = self.comp_share_list.len() as u32;
            for port in 0..self.comp_share_cursors.len() {
                if self.comp_share_cursors[port] < self.comp_share_list.len() {
                    let id = self.comp_share_list[self.comp_share_cursors[port]];
                    self.comp_share_cursors[port] += 1;
                    ctx.send(port, Msg::CompShare { version: self.version, root, id, total });
                }
            }
        }
    }

    fn step_k_converge(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        let version = self.version;
        for (port, msg) in inbox {
            match msg {
                Msg::Attach { version: v, root } => {
                    debug_assert_eq!(*v, version);
                    let view =
                        self.views.get_mut(&(*v, *root)).expect("attach to a non-member view");
                    debug_assert!(view.is_member, "attach must target a member");
                    view.contributors.push(*port);
                    view.k_converge.as_mut().expect("member has converge").add_contributor(*port);
                }
                Msg::KCount { version: v, root, x, count } => {
                    let view = self.views.get_mut(&(*v, *root)).expect("count for unknown view");
                    view.k_converge.as_mut().expect("member has converge").receive(
                        *port,
                        *x as usize,
                        *count,
                    );
                }
                other => panic!("unexpected message in KConverge: {other:?}"),
            }
        }
        // Lock contributor sets after the attach round has been processed.
        let locked_now = ctx.round() > self.entry_round;
        for ((v, root), view) in self.views.iter_mut() {
            if *v != version || view.oversized {
                continue;
            }
            if view.is_member {
                if locked_now {
                    view.locked = true;
                }
                if view.locked {
                    if let Some(parent) = view.parent_port {
                        let converge = view.k_converge.as_mut().expect("member has converge");
                        if let Some((x, sum)) = converge.next_ready() {
                            ctx.send(
                                parent,
                                Msg::KCount { version, root: *root, x: x as u32, count: sum },
                            );
                        }
                    }
                }
            } else if view.k_up_next < view.n_coords() {
                let x = view.k_up_next;
                view.k_up_next += 1;
                let parent = view.parent_port.expect("non-member has parent");
                ctx.send(
                    parent,
                    Msg::KCount {
                        version,
                        root: *root,
                        x: x as u32,
                        count: u32::from(view.k_bits[x]),
                    },
                );
            }
        }
    }

    fn step_k_broadcast(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        for (_port, msg) in inbox {
            match msg {
                Msg::KSize { version, root, x, size } => {
                    let view = self.views.get_mut(&(*version, *root)).expect("ksize unknown view");
                    let x = *x as usize;
                    view.k_sizes[x] = *size;
                    if view.is_member {
                        view.down.as_mut().expect("member has down stream").push(x as u32, *size);
                    }
                    if view.k_bits[x] {
                        view.member_stream
                            .as_mut()
                            .expect("participant has member stream")
                            .push(x as u32, *size);
                    }
                }
                Msg::KMember { version, root, x, size } => {
                    // Count the announcement if we participate in that
                    // component; ignore otherwise (we cannot be in any
                    // T_ε(X) of a component we are not adjacent to).
                    if let Some(view) = self.views.get_mut(&(*version, *root)) {
                        if !view.oversized {
                            let x = *x as usize;
                            view.kmember_counts[x] += 1;
                            view.k_sizes[x] = *size;
                        }
                    }
                }
                other => panic!("unexpected message in KBroadcast: {other:?}"),
            }
        }
        let version = self.version;
        for ((v, root), view) in self.views.iter_mut() {
            if *v != version || view.oversized {
                continue;
            }
            if let Some(down) = view.down.as_mut() {
                for (port, x, size) in down.pump() {
                    ctx.send(port, Msg::KSize { version, root: *root, x, size });
                }
            }
            if let Some(ms) = view.member_stream.as_mut() {
                for (port, x, size) in ms.pump() {
                    ctx.send(port, Msg::KMember { version, root: *root, x, size });
                }
            }
        }
    }

    fn step_t_converge(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        let version = self.version;
        for (port, msg) in inbox {
            match msg {
                Msg::TCount { version: v, root, x, count } => {
                    let view = self.views.get_mut(&(*v, *root)).expect("tcount unknown view");
                    view.t_converge.as_mut().expect("member has t-converge").receive(
                        *port,
                        *x as usize,
                        *count,
                    );
                }
                other => panic!("unexpected message in TConverge: {other:?}"),
            }
        }
        for ((v, root), view) in self.views.iter_mut() {
            if *v != version || view.oversized {
                continue;
            }
            if view.is_member {
                if let Some(parent) = view.parent_port {
                    let converge = view.t_converge.as_mut().expect("member has t-converge");
                    if let Some((x, sum)) = converge.next_ready() {
                        ctx.send(
                            parent,
                            Msg::TCount { version, root: *root, x: x as u32, count: sum },
                        );
                    }
                }
            } else if view.t_up_next < view.n_coords() {
                let x = view.t_up_next;
                view.t_up_next += 1;
                let parent = view.parent_port.expect("non-member has parent");
                ctx.send(
                    parent,
                    Msg::TCount {
                        version,
                        root: *root,
                        x: x as u32,
                        count: u32::from(view.t_bits[x]),
                    },
                );
            }
        }
    }

    fn step_candidate_down(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        for (_port, msg) in inbox {
            match msg {
                Msg::Candidate { version, root, x, size } => {
                    let view =
                        self.views.get_mut(&(*version, *root)).expect("candidate unknown view");
                    let x_us = *x as usize;
                    let my_t_bit = view.t_bits.get(x_us).copied().unwrap_or(false);
                    view.candidate = Some(CandidateInfo { x: *x, size: *size, my_t_bit });
                    if view.is_member {
                        for &port in &view.contributors {
                            ctx.send(
                                port,
                                Msg::Candidate {
                                    version: *version,
                                    root: *root,
                                    x: *x,
                                    size: *size,
                                },
                            );
                        }
                    }
                    view.release_heavy();
                }
                other => panic!("unexpected message in CandidateDown: {other:?}"),
            }
        }
    }

    fn step_vote(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        for (_port, msg) in inbox {
            match msg {
                Msg::Vote { version, root, abort } => {
                    let key = (*version, *root);
                    let view = self.views.get_mut(&key).expect("vote for unknown view");
                    debug_assert!(view.is_member, "votes route to members only");
                    view.votes_received += 1;
                    view.abort_acc |= *abort;
                    Self::try_send_vote(view, key, ctx);
                }
                other => panic!("unexpected message in Vote: {other:?}"),
            }
        }
    }

    fn step_winner(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        for (_port, msg) in inbox {
            match msg {
                Msg::Winner { version, root } => {
                    let view = self.views.get_mut(&(*version, *root)).expect("winner unknown");
                    let cand = view.candidate.expect("winner implies candidate");
                    if cand.my_t_bit {
                        Self::adopt_label(&mut self.label, cand.size, *root);
                    }
                    if view.is_member {
                        for &port in &view.contributors {
                            ctx.send(port, Msg::Winner { version: *version, root: *root });
                        }
                    }
                }
                other => panic!("unexpected message in Winner: {other:?}"),
            }
        }
    }
}

impl Protocol for DistNearClique {
    type Msg = Msg;
    type Output = NodeOutput;

    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        self.my_id = ctx.id();
        self.neighbor_id_set = (0..ctx.degree()).map(|p| ctx.neighbor_id(p)).collect();
        self.enter_announce(ctx);
    }

    fn step(&mut self, ctx: &mut Context<'_, Msg>, inbox: &[(Port, Msg)]) {
        match self.phase {
            Phase::Announce => self.step_announce(inbox),
            Phase::Roster => self.step_roster(ctx, inbox),
            Phase::CompShare => self.step_comp_share(ctx, inbox),
            Phase::KConverge => self.step_k_converge(ctx, inbox),
            Phase::KBroadcast => self.step_k_broadcast(ctx, inbox),
            Phase::TConverge => self.step_t_converge(ctx, inbox),
            Phase::CandidateDown => self.step_candidate_down(ctx, inbox),
            Phase::Vote => self.step_vote(ctx, inbox),
            Phase::Winner => self.step_winner(ctx, inbox),
            Phase::Done => debug_assert!(inbox.is_empty(), "message after Done"),
        }
    }

    fn is_idle(&self) -> bool {
        let version = self.version;
        match self.phase {
            Phase::Announce | Phase::CandidateDown | Phase::Winner | Phase::Done => true,
            Phase::Roster => {
                !self.in_s() || self.roster_cursors.iter().all(|&c| c >= self.roster_ids.len())
            }
            Phase::CompShare => {
                !self.in_s()
                    || self.comp_share_cursors.iter().all(|&c| c >= self.comp_share_list.len())
            }
            Phase::KConverge => self.views.iter().all(|((v, _), view)| {
                *v != version || view.oversized || {
                    if view.is_member {
                        view.locked
                            && (view.parent_port.is_none()
                                || !view.k_converge.as_ref().expect("member").ready())
                    } else {
                        view.k_up_next >= view.n_coords()
                    }
                }
            }),
            Phase::KBroadcast => self.views.iter().all(|((v, _), view)| {
                *v != version || view.oversized || {
                    view.down.as_ref().is_none_or(FanoutStream::drained)
                        && view.member_stream.as_ref().is_none_or(FanoutStream::drained)
                }
            }),
            Phase::TConverge => self.views.iter().all(|((v, _), view)| {
                *v != version || view.oversized || {
                    if view.is_member {
                        view.parent_port.is_none()
                            || !view.t_converge.as_ref().expect("member").ready()
                    } else {
                        view.t_up_next >= view.n_coords()
                    }
                }
            }),
            Phase::Vote => self.views.values().all(|view| view.vote_done),
        }
    }

    fn on_quiescent(&mut self, ctx: &mut Context<'_, Msg>) -> bool {
        match self.phase {
            Phase::Announce => self.enter_roster(ctx),
            Phase::Roster => self.enter_comp_share(ctx),
            Phase::CompShare => self.enter_k_converge(ctx),
            Phase::KConverge => self.enter_k_broadcast(ctx),
            Phase::KBroadcast => self.enter_t_converge(ctx),
            Phase::TConverge => self.enter_candidate_down(ctx),
            Phase::CandidateDown => {
                if u32::from(self.version) + 1 < self.params.lambda {
                    self.version += 1;
                    self.enter_announce(ctx);
                } else {
                    self.enter_vote(ctx);
                }
            }
            Phase::Vote => self.enter_winner(ctx),
            Phase::Winner => {
                self.phase = Phase::Done;
                return false;
            }
            Phase::Done => return false,
        }
        true
    }

    fn output(&self) -> NodeOutput {
        NodeOutput {
            id: self.my_id,
            label: self.label.map(|(_, root)| root),
            in_sample: self.sample_flags.clone(),
            oversized_component: self.oversized_seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SamplePlan;
    use congest::{Engine, Session, Termination};
    use graphs::{Graph, GraphBuilder};

    fn run(
        graph: &Graph,
        params: &NearCliqueParams,
        seed: u64,
    ) -> (Vec<NodeOutput>, congest::Metrics) {
        let plan = SamplePlan::draw(graph.node_count(), params.lambda, params.p, seed);
        let (outputs, report) = Session::on(graph).seed(seed).run_with(|e| {
            let flags = (0..params.lambda).map(|v| plan.in_sample(v, e.index)).collect();
            DistNearClique::new(params.clone(), flags)
        });
        assert_eq!(report.termination, Termination::Quiescent, "protocol must quiesce");
        (outputs, report.metrics)
    }

    #[test]
    fn complete_graph_labels_everyone_together() {
        let g = Graph::complete(30);
        let params = NearCliqueParams::new(0.25, 0.15).unwrap();
        let (outputs, _) = run(&g, &params, 3);
        let labels: Vec<_> = outputs.iter().map(|o| o.label).collect();
        let first = labels[0];
        assert!(first.is_some(), "a clique must be found");
        assert!(labels.iter().all(|&l| l == first), "single component, single label");
    }

    #[test]
    fn empty_graph_labels_nothing_big() {
        // With no edges, every sampled node is a singleton component and
        // every candidate has size 1; min_candidate_size filters them out.
        let g = Graph::empty(40);
        let params = NearCliqueParams::new(0.2, 0.1).unwrap().with_min_candidate_size(2);
        let (outputs, _) = run(&g, &params, 5);
        assert!(outputs.iter().all(|o| o.label.is_none()));
    }

    #[test]
    fn no_sampled_nodes_terminates_cleanly() {
        let g = Graph::complete(10);
        let params = NearCliqueParams::new(0.2, 0.2).unwrap();
        // Seed chosen freely: we override the flags to simulate an empty S.
        let (outputs, report) =
            Session::on(&g).seed(1).run_with(|_| DistNearClique::new(params.clone(), vec![false]));
        assert_eq!(report.termination, Termination::Quiescent);
        assert!(outputs.iter().all(|o| o.label.is_none()));
    }

    #[test]
    fn message_bits_stay_logarithmic() {
        let g = Graph::complete(25);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap();
        let (_, metrics) = run(&g, &params, 7);
        assert!(
            metrics.max_message_bits <= crate::msg::max_message_bits(),
            "{} bits exceeds the CONGEST budget",
            metrics.max_message_bits
        );
    }

    #[test]
    fn two_disjoint_cliques_get_distinct_labels() {
        // Two 15-cliques with no connection: both survive (no voter sees
        // both), with different root labels.
        let mut b = GraphBuilder::new(30);
        b.add_clique(&(0..15).collect::<Vec<_>>());
        b.add_clique(&(15..30).collect::<Vec<_>>());
        let g = b.build();
        let params = NearCliqueParams::new(0.25, 0.25).unwrap();
        let (outputs, _) = run(&g, &params, 11);
        let left: Vec<_> = outputs[..15].iter().filter_map(|o| o.label).collect();
        let right: Vec<_> = outputs[15..].iter().filter_map(|o| o.label).collect();
        if let (Some(&l), Some(&r)) = (left.first(), right.first()) {
            assert_ne!(l, r, "disjoint cliques must not share a label");
        }
        // At least one side should be discovered with this sample rate.
        assert!(!left.is_empty() || !right.is_empty(), "at least one clique should be labeled");
    }

    #[test]
    fn boosting_runs_multiple_versions() {
        let g = Graph::complete(20);
        let params = NearCliqueParams::new(0.25, 0.12).unwrap().with_lambda(3);
        let (outputs, metrics) = run(&g, &params, 13);
        assert!(outputs.iter().all(|o| o.in_sample.len() == 3));
        assert!(outputs.iter().any(|o| o.label.is_some()));
        // Seven phase barriers per version (Announce→…→CandidateDown→next)
        // plus the Vote→Winner barrier.
        assert!(metrics.barriers > 7 * 3, "three versions of phase barriers");
    }

    #[test]
    fn oversized_components_are_skipped_not_fatal() {
        let g = Graph::complete(30);
        // Absurd p so S is large; cap tiny.
        let params = NearCliqueParams::new(0.25, 0.9).unwrap().with_max_component_size(3);
        let (outputs, _) = run(&g, &params, 17);
        assert!(outputs.iter().any(|o| o.oversized_component));
        // Nothing labeled since the (single) component was skipped.
        assert!(outputs.iter().all(|o| o.label.is_none()));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Graph::complete(24);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap();
        let (a, am) = run(&g, &params, 23);
        let (b, bm) = run(&g, &params, 23);
        assert_eq!(a, b);
        assert_eq!(am.rounds, bm.rounds);
        assert_eq!(am.total_bits, bm.total_bits);
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let g = Graph::complete(24);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap();
        let plan = SamplePlan::draw(24, 1, params.p, 29);
        let build = |shards| {
            Session::on(&g)
                .seed(29)
                .engine(Engine::Flat { shards })
                .run_with(|e| DistNearClique::new(params.clone(), vec![plan.in_sample(0, e.index)]))
                .0
        };
        assert_eq!(build(1), build(4));
    }
}
