//! Output checkers for the paper's unconditional guarantees.
//!
//! Lemma 5.3 holds for *every* output of the algorithm on *every* graph
//! (not only when the promise of Theorem 2.1 holds): any emitted candidate
//! `T_ε(X)` of size `t` is an `(n/t)·ε`-near clique. These checkers turn
//! that into executable assertions used by integration tests, the E7
//! experiment, and anyone consuming the library who wants runtime
//! validation of outputs.

use graphs::{density, FixedBitSet, Graph};

/// The verdict for one labeled output set.
#[derive(Clone, Debug)]
pub struct SetCheck {
    /// The label (component root).
    pub label: u64,
    /// The set.
    pub set: FixedBitSet,
    /// Measured pair density (Definition 1).
    pub density: f64,
    /// The Lemma 5.3 bound `(n/t)·ε` (may exceed 1, in which case the
    /// lemma is vacuous for this size).
    pub lemma_bound: f64,
    /// `density ≥ 1 − lemma_bound` (always true when the implementation
    /// is correct; vacuously true when `lemma_bound ≥ 1`).
    pub satisfies_lemma: bool,
}

/// Violations found by [`check_labels`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelViolation {
    /// A labeled set's density fell below the Lemma 5.3 bound — an
    /// implementation bug by Lemma 5.3.
    DensityBelowLemmaBound {
        /// The offending label.
        label: u64,
    },
}

impl std::fmt::Display for LabelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabelViolation::DensityBelowLemmaBound { label } => {
                write!(f, "labeled set {label} violates the Lemma 5.3 density bound")
            }
        }
    }
}

impl std::error::Error for LabelViolation {}

/// Checks every labeled set of a run against Lemma 5.3.
///
/// Returns the per-set reports; `Err` carries the first violation (which
/// indicates a protocol implementation bug, never bad input).
///
/// # Errors
///
/// [`LabelViolation::DensityBelowLemmaBound`] if any set fails the bound.
pub fn check_labels(
    g: &Graph,
    labels: &[Option<u64>],
    epsilon: f64,
) -> Result<Vec<SetCheck>, LabelViolation> {
    let n = g.node_count();
    assert_eq!(labels.len(), n, "one label slot per node required");
    let mut by_label: std::collections::BTreeMap<u64, FixedBitSet> =
        std::collections::BTreeMap::new();
    for (v, label) in labels.iter().enumerate() {
        if let Some(root) = label {
            by_label.entry(*root).or_insert_with(|| FixedBitSet::new(n)).insert(v);
        }
    }
    let mut checks = Vec::with_capacity(by_label.len());
    for (label, set) in by_label {
        let t = set.len();
        let lemma_bound = density::lemma_5_3_bound(n, t, epsilon);
        let d = density::density(g, &set);
        let satisfies = d >= 1.0 - lemma_bound - 1e-9;
        if !satisfies {
            return Err(LabelViolation::DensityBelowLemmaBound { label });
        }
        checks.push(SetCheck { label, set, density: d, lemma_bound, satisfies_lemma: true });
    }
    Ok(checks)
}

/// Theorem 5.7's two assertions for a single output set against a known
/// planted near-clique `d_set`: returns
/// `(size_ok, density_ok)` where
///
/// * `size_ok`: `|D′| ≥ (1 − 13ε/2)·|D| − ε⁻²` (assertion 2), and
/// * `density_ok`: `D′` is a `(ε/δ)/(1 − 13ε/2)`-near clique
///   (assertion 1), with `δ = |D|/n`.
#[must_use]
pub fn check_theorem_5_7(
    g: &Graph,
    output: &FixedBitSet,
    d_set: &FixedBitSet,
    epsilon: f64,
) -> (bool, bool) {
    let n = g.node_count() as f64;
    let d = d_set.len() as f64;
    let delta = d / n;
    let shrink = 1.0 - 13.0 * epsilon / 2.0;
    if shrink <= 0.0 {
        // ε ≥ 2/13: both assertions are vacuous (the size bound is
        // non-positive and the density slack exceeds 1).
        return (true, true);
    }
    let size_ok = output.len() as f64 >= shrink * d - 1.0 / (epsilon * epsilon);
    let eps_out = (epsilon / delta) / shrink;
    let density_ok = density::is_near_clique(g, output, eps_out.clamp(0.0, 1.0));
    (size_ok, density_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{Graph, GraphBuilder};

    #[test]
    fn clique_labels_pass() {
        let g = Graph::complete(10);
        let labels: Vec<Option<u64>> = vec![Some(1); 10];
        let checks = check_labels(&g, &labels, 0.2).unwrap();
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].density, 1.0);
        assert!(checks[0].satisfies_lemma);
    }

    #[test]
    fn independent_set_label_fails_when_bound_tight() {
        // Label the whole empty graph as one set: density 0; with
        // t = n the bound is ε < 1, so density 0 violates it.
        let g = Graph::empty(10);
        let labels: Vec<Option<u64>> = vec![Some(7); 10];
        let err = check_labels(&g, &labels, 0.3).unwrap_err();
        assert_eq!(err, LabelViolation::DensityBelowLemmaBound { label: 7 });
    }

    #[test]
    fn tiny_sets_pass_vacuously() {
        // t = 2 in a 100-node graph: bound (100/2)·0.1 = 5 ≥ 1, vacuous.
        let mut b = GraphBuilder::new(100);
        b.add_edge(0, 1);
        let g = b.build();
        let mut labels: Vec<Option<u64>> = vec![None; 100];
        labels[5] = Some(1);
        labels[90] = Some(1); // not even an edge between them
        let checks = check_labels(&g, &labels, 0.1).unwrap();
        assert!(checks[0].lemma_bound >= 1.0);
    }

    #[test]
    fn unlabeled_run_passes_trivially() {
        let g = Graph::empty(5);
        let checks = check_labels(&g, &[None; 5], 0.2).unwrap();
        assert!(checks.is_empty());
    }

    #[test]
    fn theorem_check_on_perfect_recovery() {
        let g = Graph::complete(40);
        let d = graphs::FixedBitSet::full(40);
        let (size_ok, density_ok) = check_theorem_5_7(&g, &d, &d, 0.05);
        assert!(size_ok && density_ok);
    }

    #[test]
    fn theorem_check_vacuous_for_large_epsilon() {
        // ε ≥ 2/13 makes both assertions vacuous.
        let g = Graph::empty(10);
        let d = graphs::FixedBitSet::full(10);
        let empty = graphs::FixedBitSet::new(10);
        assert_eq!(check_theorem_5_7(&g, &empty, &d, 0.2), (true, true));
    }

    #[test]
    fn theorem_check_fails_on_tiny_output() {
        // ε = 0.1: size bound is 0.35·2000 − 100 = 600 ≫ 5, and a 5-node
        // set in the empty graph has density 0.
        let g = Graph::empty(2000);
        let d = graphs::FixedBitSet::full(2000);
        let tiny = graphs::FixedBitSet::from_iter_with_capacity(2000, 0..5);
        let (size_ok, density_ok) = check_theorem_5_7(&g, &tiny, &d, 0.1);
        assert!(!size_ok);
        assert!(!density_ok);
    }
}
