//! `DistNearClique` — the distributed near-clique discovery algorithm of
//! Brakerski & Patt-Shamir, *Distributed Discovery of Large Near-Cliques*
//! (PODC 2009), reproduced faithfully on a CONGEST simulator.
//!
//! Given an undirected graph and `0 ≤ ε ≤ 1`, a node set is an *ε-near
//! clique* if all but an ε fraction of its (directed) node pairs are
//! edges. The paper's algorithm finds, in a constant number of
//! synchronous rounds with `O(log n)`-bit messages and constant success
//! probability, an `O(ε/δ)`-near clique of size `(1 − O(ε))·|D|` whenever
//! an ε³-near clique `D` with `|D| ≥ δn` exists (Theorem 2.1).
//!
//! # Crate layout
//!
//! * [`params`] — ε, `p`, boosting λ, and the Theorem 2.1 instantiation
//!   of `p`.
//! * [`sample`] — the sampling stage and the §5.2 two-coin refinement.
//! * [`msg`] / [`component`] / [`protocol`] — the CONGEST state machine:
//!   message alphabet, per-component bookkeeping, phase logic.
//! * [`runner`] — one-call execution over a [`congest::Network`].
//! * [`mod@reference`] — a centralized executable specification; property
//!   tests pin the distributed protocol to it.
//! * [`verify`] — executable forms of the paper's unconditional
//!   guarantees (Lemma 5.3) and of Theorem 5.7's assertions.
//!
//! # Quickstart
//!
//! ```
//! use graphs::generators::planted_near_clique;
//! use nearclique::{run_near_clique, NearCliqueParams};
//! use rand::SeedableRng;
//!
//! // A 200-node graph with a planted 0.008-near clique on 100 nodes
//! // (0.008 = ε³ for ε = 0.2).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let planted = planted_near_clique(200, 100, 0.008, 0.02, &mut rng);
//!
//! let params = NearCliqueParams::new(0.2, 0.05)?;
//! let run = run_near_clique(&planted.graph, &params, 7);
//! if let Some(found) = run.largest_set() {
//!     println!("found a near-clique of {} nodes", found.len());
//! }
//! # Ok::<(), nearclique::InvalidParams>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod component;
pub mod estimate;
pub mod msg;
pub mod params;
pub mod protocol;
pub mod reference;
pub mod runner;
pub mod sample;
pub mod verify;

pub use congest::{Driver, Engine, Session};
pub use msg::Msg;
pub use params::{InvalidParams, NearCliqueParams};
pub use protocol::{DistNearClique, NodeOutput};
pub use reference::{reference_run, RefCandidate, ReferenceResult};
pub use runner::{
    near_clique_phase_plan, run_near_clique, run_near_clique_phased, run_near_clique_with,
    NearCliqueRun, RunOptions,
};
pub use sample::SamplePlan;
pub use verify::{check_labels, check_theorem_5_7, LabelViolation, SetCheck};

#[cfg(test)]
mod equivalence_tests {
    //! The load-bearing tests of this crate: the distributed protocol must
    //! agree, node for node and label for label, with the centralized
    //! reference specification on arbitrary graphs and seeds.

    use crate::{reference_run, run_near_clique, NearCliqueParams};
    use graphs::generators;
    use graphs::{Graph, GraphBuilder};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_equivalent(g: &Graph, params: &NearCliqueParams, seed: u64) {
        let run = run_near_clique(g, params, seed);
        assert_eq!(
            run.termination,
            congest::Termination::Quiescent,
            "protocol must quiesce (n = {}, seed = {seed})",
            g.node_count()
        );
        let reference = reference_run(g, &run.ids, params, &run.plan);
        assert_eq!(
            run.labels,
            reference.labels,
            "distributed and reference labels diverge (n = {}, seed = {seed})",
            g.node_count()
        );
    }

    #[test]
    fn equivalence_on_planted_instances() {
        let params = NearCliqueParams::new(0.25, 0.08).unwrap();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = generators::planted_near_clique(120, 50, 0.015, 0.05, &mut rng);
            assert_equivalent(&p.graph, &params, seed * 31 + 1);
        }
    }

    #[test]
    fn equivalence_on_shingles_counterexample() {
        let params = NearCliqueParams::new(0.2, 0.05).unwrap();
        let s = generators::shingles_counterexample(150, 0.5);
        for seed in 0..5 {
            assert_equivalent(&s.graph, &params, seed * 17 + 3);
        }
    }

    #[test]
    fn equivalence_with_boosting() {
        let params = NearCliqueParams::new(0.25, 0.06).unwrap().with_lambda(3);
        let mut rng = StdRng::seed_from_u64(99);
        let p = generators::planted_clique(100, 40, 0.05, &mut rng);
        for seed in 0..5 {
            assert_equivalent(&p.graph, &params, seed * 13 + 5);
        }
    }

    #[test]
    fn equivalence_with_min_size_filter() {
        let params = NearCliqueParams::new(0.2, 0.1).unwrap().with_min_candidate_size(8);
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp(80, 0.15, &mut rng);
        for seed in 0..5 {
            assert_equivalent(&g, &params, seed * 7 + 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random sparse graphs, random seeds: exact agreement.
        #[test]
        fn equivalence_on_random_graphs(
            n in 10usize..60,
            edge_factor in 1usize..4,
            graph_seed in 0u64..1000,
            run_seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(graph_seed);
            let p = (edge_factor as f64) * 2.0 / n as f64;
            let g = generators::gnp(n, p.min(0.5), &mut rng);
            let params = NearCliqueParams::new(0.25, 0.12).unwrap();
            assert_equivalent(&g, &params, run_seed);
        }

        /// Lemma 5.3 invariant on arbitrary inputs: every labeled set
        /// satisfies the density bound.
        #[test]
        fn lemma_5_3_on_random_graphs(
            n in 10usize..50,
            graph_seed in 0u64..1000,
            run_seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(graph_seed);
            let g = generators::gnp(n, 0.2, &mut rng);
            let params = NearCliqueParams::new(0.3, 0.15).unwrap();
            let run = run_near_clique(&g, &params, run_seed);
            prop_assert!(crate::check_labels(&g, &run.labels, params.epsilon).is_ok());
        }
    }

    #[test]
    fn equivalence_on_structured_graphs() {
        let params = NearCliqueParams::new(0.25, 0.1).unwrap();
        // Path, star, two cliques joined by an edge.
        let mut path = GraphBuilder::new(30);
        for i in 0..29 {
            path.add_edge(i, i + 1);
        }
        assert_equivalent(&path.build(), &params, 41);

        let mut star = GraphBuilder::new(30);
        for i in 1..30 {
            star.add_edge(0, i);
        }
        assert_equivalent(&star.build(), &params, 42);

        let mut joined = GraphBuilder::new(24);
        joined.add_clique(&(0..12).collect::<Vec<_>>());
        joined.add_clique(&(12..24).collect::<Vec<_>>());
        joined.add_edge(11, 12);
        assert_equivalent(&joined.build(), &params, 43);
    }
}
