//! Per-component participant state and the pipelined aggregation helpers.
//!
//! A node participates in a component `Sᵢ` of `G[S]` when it is a member
//! or a neighbor of one (`Γ(Sᵢ) ∪ Sᵢ` — the paper's "we effectively add to
//! each spanning tree all adjacent nodes", §4). For every component it
//! participates in, a node holds one [`CompView`]: the roster, its place
//! in the spanning tree, its `K`/`T` membership bits, and the streaming
//! state of the pipelined convergecasts (steps 4b–4e and Decision 1–2).
//!
//! Two small machines implement the paper's pipelining:
//!
//! * [`VectorConverge`] — coordinate-wise summation of per-subset counts
//!   flowing *up* the tree, one `(subset, partial-count)` message per
//!   round per edge, emitted in increasing subset order (step 4c).
//! * [`FanoutStream`] — an ordered stream of `(subset, value)` pairs
//!   flowing *down* or *out*, advanced one message per destination per
//!   round (steps 4d–4e).

use std::collections::BTreeSet;

use congest::Port;

use crate::params::k_threshold;

/// Upper bound on subset-index width; mirrors
/// `NearCliqueParams::COMPONENT_SIZE_CEILING`.
pub(crate) const MAX_K: u32 = 24;

/// Coordinate-wise, in-order summation of contributor streams.
///
/// Each contributor (a tree child or an attached neighbor) sends counts
/// for subsets `1, 2, …, 2^k − 1` in increasing order, one per round.
/// A coordinate is *final* once every contributor has delivered it; final
/// coordinates are released in order, one per [`next_ready`] call —
/// matching the one-message-per-round uplink budget.
///
/// [`next_ready`]: VectorConverge::next_ready
#[derive(Clone, Debug)]
pub struct VectorConverge {
    n_coords: usize,
    sums: Vec<u32>,
    /// `(port, next coordinate expected)` per contributor.
    cursors: Vec<(Port, usize)>,
    /// Next coordinate to release.
    up_next: usize,
}

impl VectorConverge {
    /// Creates the accumulator over coordinates `1..n_coords`, seeded with
    /// this node's own contribution (`own[x]`, where index 0 is unused).
    ///
    /// # Panics
    ///
    /// Panics if `own.len() != n_coords`.
    #[must_use]
    pub fn new(n_coords: usize, own: &[bool]) -> Self {
        assert_eq!(own.len(), n_coords, "own-bit vector length mismatch");
        Self {
            n_coords,
            sums: own.iter().map(|&b| u32::from(b)).collect(),
            cursors: Vec::new(),
            up_next: 1,
        }
    }

    /// Registers a contributor stream arriving from `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is already registered or counting started.
    pub fn add_contributor(&mut self, port: Port) {
        assert!(self.cursors.iter().all(|&(p, _)| p != port), "port {port} registered twice");
        assert_eq!(self.up_next, 1, "contributors must be added before counting starts");
        self.cursors.push((port, 1));
    }

    /// Number of registered contributors.
    #[must_use]
    pub fn contributor_count(&self) -> usize {
        self.cursors.len()
    }

    /// Accepts one `(x, count)` message from `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a contributor or the stream is out of order
    /// (both indicate a protocol bug, not bad input).
    pub fn receive(&mut self, port: Port, x: usize, count: u32) {
        let cursor = self
            .cursors
            .iter_mut()
            .find(|(p, _)| *p == port)
            .unwrap_or_else(|| panic!("count from non-contributor port {port}"));
        assert_eq!(cursor.1, x, "out-of-order stream from port {port}: got {x}");
        assert!(x < self.n_coords, "coordinate {x} out of range");
        self.sums[x] += count;
        cursor.1 += 1;
    }

    fn finalized_up_to(&self) -> usize {
        self.cursors.iter().map(|&(_, next)| next).min().unwrap_or(self.n_coords)
    }

    /// `true` if at least one finalized coordinate awaits release.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.up_next < self.finalized_up_to()
    }

    /// Releases the next finalized coordinate `(x, total)`, if any.
    pub fn next_ready(&mut self) -> Option<(usize, u32)> {
        if self.ready() {
            let x = self.up_next;
            self.up_next += 1;
            Some((x, self.sums[x]))
        } else {
            None
        }
    }

    /// `true` once every coordinate has been released.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.up_next >= self.n_coords
    }

    /// The accumulated totals (index 0 unused). Meaningful at the root
    /// after completion.
    #[must_use]
    pub fn totals(&self) -> &[u32] {
        &self.sums
    }
}

/// An append-only stream of `(x, value)` pairs fanned out to a fixed set
/// of destinations, advanced at most one message per destination per
/// [`pump`](FanoutStream::pump) call (= per round).
#[derive(Clone, Debug)]
pub struct FanoutStream {
    items: Vec<(u32, u32)>,
    /// `(port, next item index)` per destination.
    cursors: Vec<(Port, usize)>,
}

impl FanoutStream {
    /// Creates a stream toward `ports`.
    #[must_use]
    pub fn new(ports: &[Port]) -> Self {
        Self { items: Vec::new(), cursors: ports.iter().map(|&p| (p, 0)).collect() }
    }

    /// Appends an item; it will be sent to every destination in order.
    pub fn push(&mut self, x: u32, value: u32) {
        self.items.push((x, value));
    }

    /// Items appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Advances every lagging destination by one item, returning the
    /// `(port, x, value)` sends to perform this round.
    pub fn pump(&mut self) -> Vec<(Port, u32, u32)> {
        let mut out = Vec::new();
        for (port, next) in &mut self.cursors {
            if *next < self.items.len() {
                let (x, v) = self.items[*next];
                out.push((*port, x, v));
                *next += 1;
            }
        }
        out
    }

    /// `true` when every destination has received every appended item.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.cursors.iter().all(|&(_, next)| next >= self.items.len())
    }
}

/// The candidate a component settled on (Decision step 2 state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateInfo {
    /// The chosen subset index `X(Sᵢ)`.
    pub x: u32,
    /// `|T_ε(X(Sᵢ))|`.
    pub size: u32,
    /// Whether this node belongs to `T_ε(X(Sᵢ))`.
    pub my_t_bit: bool,
}

/// One node's view of one component of `G[S]` it participates in.
#[derive(Clone, Debug)]
pub struct CompView {
    /// Boosting version this component belongs to.
    pub version: u8,
    /// Component root: the minimum member ID.
    pub root: u64,
    /// Declared component size.
    pub total: u32,
    /// Member IDs (complete and sorted once `ids.len() == total`).
    pub ids: BTreeSet<u64>,
    /// Whether this node is a member of the component.
    pub is_member: bool,
    /// Port toward the root (`None` for the root itself).
    pub parent_port: Option<Port>,
    /// Component exceeds the configured cap; all heavy stages skipped.
    pub oversized: bool,

    /// Sorted roster, fixed at the exploration stage.
    pub members: Vec<u64>,
    /// Bitmask over `members` of this node's neighbors.
    pub my_adj_mask: u32,
    /// This node's own bit in `members` (0 when not a member).
    pub my_member_bit: u32,
    /// `K_{2ε²}(X)` membership per subset (index 0 unused).
    pub k_bits: Vec<bool>,
    /// `|K_{2ε²}(X)|` per subset, learned from the root (step 4d).
    pub k_sizes: Vec<u32>,
    /// Neighbors announced in `K_{2ε²}(X)` per subset (step 4e tally).
    pub kmember_counts: Vec<u32>,
    /// `T_ε(X)` membership per subset (step 4f).
    pub t_bits: Vec<bool>,

    /// Contributor ports (tree children + attached neighbors).
    pub contributors: Vec<Port>,
    /// Contributor set finalized (attach round passed).
    pub locked: bool,
    /// Up-flowing `K` count aggregation (members only).
    pub k_converge: Option<VectorConverge>,
    /// Up-flowing `T` count aggregation (members only).
    pub t_converge: Option<VectorConverge>,
    /// Non-member up-stream cursor: next subset index to send (K stage).
    pub k_up_next: usize,
    /// Non-member up-stream cursor (T stage).
    pub t_up_next: usize,
    /// Down-flowing `|K(X)|` stream to contributors (members only).
    pub down: Option<FanoutStream>,
    /// `KMember` announcements to *all* neighbors.
    pub member_stream: Option<FanoutStream>,

    /// Decision-stage candidate.
    pub candidate: Option<CandidateInfo>,
    /// Votes received so far (members only).
    pub votes_received: usize,
    /// OR-aggregated abort flag, including this node's own vote.
    pub abort_acc: bool,
    /// This node's vote has been folded in / sent.
    pub vote_done: bool,
}

impl CompView {
    /// Creates a fresh view. `total == 0` means "unknown yet" (non-member
    /// views learn it from the first `CompShare`).
    #[must_use]
    pub fn new(version: u8, root: u64, is_member: bool) -> Self {
        Self {
            version,
            root,
            total: 0,
            ids: BTreeSet::new(),
            is_member,
            parent_port: None,
            oversized: false,
            members: Vec::new(),
            my_adj_mask: 0,
            my_member_bit: 0,
            k_bits: Vec::new(),
            k_sizes: Vec::new(),
            kmember_counts: Vec::new(),
            t_bits: Vec::new(),
            contributors: Vec::new(),
            locked: false,
            k_converge: None,
            t_converge: None,
            k_up_next: 1,
            t_up_next: 1,
            down: None,
            member_stream: None,
            candidate: None,
            votes_received: 0,
            abort_acc: false,
            vote_done: false,
        }
    }

    /// Component size `k` (valid once the roster is fixed).
    #[must_use]
    pub fn k(&self) -> usize {
        self.members.len()
    }

    /// Number of subset coordinates (`2^k`; index 0 unused).
    #[must_use]
    pub fn n_coords(&self) -> usize {
        1usize << self.k()
    }

    /// Fixes the roster and computes this node's adjacency mask and `K`
    /// bits from the set of its neighbor IDs.
    ///
    /// # Panics
    ///
    /// Panics if the roster is larger than `MAX_K` (callers must mark
    /// such components oversized instead) or if the member count differs
    /// from the declared total.
    pub fn fix_roster(&mut self, my_id: u64, neighbor_ids: &BTreeSet<u64>, inner_eps: f64) {
        assert_eq!(self.ids.len(), self.total as usize, "roster incomplete at fix time");
        self.members = self.ids.iter().copied().collect();
        let k = self.members.len();
        assert!(k as u32 <= MAX_K, "roster of size {k} exceeds MAX_K; must be marked oversized");

        self.my_adj_mask = 0;
        self.my_member_bit = 0;
        for (i, &m) in self.members.iter().enumerate() {
            if neighbor_ids.contains(&m) {
                self.my_adj_mask |= 1 << i;
            }
            if m == my_id {
                self.my_member_bit = 1 << i;
            }
        }
        debug_assert_eq!(self.is_member, self.my_member_bit != 0);

        let n_coords = self.n_coords();
        self.k_bits = vec![false; n_coords];
        for x in 1..n_coords as u32 {
            let cnt = (self.my_adj_mask & x).count_ones() as usize;
            let in_x = self.my_member_bit & x != 0;
            let base = x.count_ones() as usize - usize::from(in_x);
            self.k_bits[x as usize] = cnt >= k_threshold(base, inner_eps);
        }
        self.k_sizes = vec![0; n_coords];
        self.kmember_counts = vec![0; n_coords];
    }

    /// Computes the `T_ε(X)` bits from the tallied `KMember`
    /// announcements (step 4f): `u ∈ T_ε(X)` iff `u ∈ K_{2ε²}(X)` and
    /// `|Γ(u) ∩ K_{2ε²}(X)| ≥ (1 − ε)·|K_{2ε²}(X) \ {u}|`.
    pub fn compute_t_bits(&mut self, epsilon: f64) {
        let n_coords = self.n_coords();
        self.t_bits = vec![false; n_coords];
        for x in 1..n_coords {
            if !self.k_bits[x] {
                continue;
            }
            let k_size = self.k_sizes[x] as usize;
            let base = k_size.saturating_sub(1); // we are in K(X) here
            self.t_bits[x] = self.kmember_counts[x] as usize >= k_threshold(base, epsilon);
        }
    }

    /// Frees the `Θ(2^k)` vectors once the candidate is recorded.
    pub fn release_heavy(&mut self) {
        self.k_bits = Vec::new();
        self.k_sizes = Vec::new();
        self.kmember_counts = Vec::new();
        self.t_bits = Vec::new();
        self.k_converge = None;
        self.t_converge = None;
        self.down = None;
        self.member_stream = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converge_without_contributors_releases_everything() {
        let own = vec![false, true, false, true];
        let mut c = VectorConverge::new(4, &own);
        assert!(c.ready());
        assert_eq!(c.next_ready(), Some((1, 1)));
        assert_eq!(c.next_ready(), Some((2, 0)));
        assert_eq!(c.next_ready(), Some((3, 1)));
        assert_eq!(c.next_ready(), None);
        assert!(c.complete());
    }

    #[test]
    fn converge_waits_for_all_contributors() {
        let own = vec![false, true, true, false];
        let mut c = VectorConverge::new(4, &own);
        c.add_contributor(0);
        c.add_contributor(2);
        assert!(!c.ready());
        c.receive(0, 1, 5);
        assert!(!c.ready(), "port 2 has not delivered coordinate 1");
        c.receive(2, 1, 2);
        assert_eq!(c.next_ready(), Some((1, 8)));
        assert_eq!(c.next_ready(), None);
        c.receive(0, 2, 1);
        c.receive(0, 3, 1);
        assert!(!c.ready());
        c.receive(2, 2, 0);
        assert_eq!(c.next_ready(), Some((2, 2)));
        c.receive(2, 3, 4);
        assert_eq!(c.next_ready(), Some((3, 5)));
        assert!(c.complete());
        assert_eq!(c.totals(), &[0, 8, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn converge_rejects_out_of_order() {
        let mut c = VectorConverge::new(4, &[false; 4]);
        c.add_contributor(1);
        c.receive(1, 2, 0);
    }

    #[test]
    #[should_panic(expected = "non-contributor")]
    fn converge_rejects_unknown_port() {
        let mut c = VectorConverge::new(4, &[false; 4]);
        c.receive(3, 1, 0);
    }

    #[test]
    fn fanout_pumps_one_per_destination() {
        let mut f = FanoutStream::new(&[0, 3]);
        assert!(f.drained() && f.is_empty());
        f.push(1, 10);
        f.push(2, 20);
        assert_eq!(f.len(), 2);
        let round1 = f.pump();
        assert_eq!(round1, vec![(0, 1, 10), (3, 1, 10)]);
        let round2 = f.pump();
        assert_eq!(round2, vec![(0, 2, 20), (3, 2, 20)]);
        assert!(f.drained());
        assert!(f.pump().is_empty());
        // Late append restarts pumping.
        f.push(3, 30);
        assert!(!f.drained());
        assert_eq!(f.pump(), vec![(0, 3, 30), (3, 3, 30)]);
    }

    fn view_with_roster(members: &[u64], me: u64, neighbors: &[u64]) -> CompView {
        let mut v = CompView::new(0, members[0], members.contains(&me));
        v.total = members.len() as u32;
        v.ids = members.iter().copied().collect();
        let nb: BTreeSet<u64> = neighbors.iter().copied().collect();
        v.fix_roster(me, &nb, 0.08);
        v
    }

    #[test]
    fn fix_roster_masks() {
        // Members 10 < 20 < 30; I am 20, adjacent to 10 and 30.
        let v = view_with_roster(&[10, 20, 30], 20, &[10, 30, 99]);
        assert_eq!(v.k(), 3);
        assert_eq!(v.my_member_bit, 0b010);
        assert_eq!(v.my_adj_mask, 0b101);
        // X = {10, 30} (mask 0b101): I see both, |X \ {me}| = 2,
        // threshold(2, 0.08) = 2 -> in K.
        assert!(v.k_bits[0b101]);
        // X = {10, 20} (mask 0b011): I'm in X, see 10 only: 1 >= threshold(1) = 1.
        assert!(v.k_bits[0b011]);
    }

    #[test]
    fn fix_roster_nonmember() {
        // I am 99, adjacent to members 10, 30 but not 20.
        let v = view_with_roster(&[10, 20, 30], 99, &[10, 30]);
        assert_eq!(v.my_member_bit, 0);
        assert_eq!(v.my_adj_mask, 0b101);
        // X = all three: 2 of 3 neighbors; threshold(3, .08) = 3 -> out.
        assert!(!v.k_bits[0b111]);
        // X = {10, 30}: 2 of 2 -> in.
        assert!(v.k_bits[0b101]);
    }

    #[test]
    fn compute_t_bits_uses_counts_and_sizes() {
        let mut v = view_with_roster(&[10, 20], 20, &[10]);
        // Pretend the K stage finished: X = {10} (mask 0b01).
        v.k_sizes[0b01] = 4;
        v.kmember_counts[0b01] = 3; // three of my neighbors are in K
        v.compute_t_bits(0.25);
        // I'm in K (k_bits[0b01] true: adjacent to 10). |K \ {me}| = 3,
        // threshold(3, 0.25) = ceil(2.25) = 3 -> count 3 passes.
        assert!(v.k_bits[0b01]);
        assert!(v.t_bits[0b01]);
        // With fewer announcements it fails.
        v.kmember_counts[0b01] = 2;
        v.compute_t_bits(0.25);
        assert!(!v.t_bits[0b01]);
    }

    #[test]
    fn release_heavy_clears_vectors() {
        let mut v = view_with_roster(&[10, 20, 30], 20, &[10, 30]);
        v.release_heavy();
        assert!(v.k_bits.is_empty() && v.k_sizes.is_empty());
        assert!(v.k_converge.is_none());
    }

    #[test]
    #[should_panic(expected = "roster incomplete")]
    fn fix_roster_requires_complete_roster() {
        let mut v = CompView::new(0, 10, false);
        v.total = 3;
        v.ids.insert(10);
        v.fix_roster(99, &BTreeSet::new(), 0.08);
    }
}
