//! High-level entry points: build the network, run, collect results.
//!
//! [`run_near_clique`] is the one-call API most users (and all examples)
//! want: draw the sampling stage, execute the protocol through a
//! [`congest::Session`] (any [`Engine`] — synchronous, or asynchronous
//! under synchronizer α with a precomputed [`PhasePlan`]), and return
//! labels, per-node outputs, metrics and everything needed for
//! verification or cross-checking against the centralized reference.

use congest::{
    ChurnModel, DelayModel, Driver, Engine, FaultModel, Metrics, Observer, PhasePlan, RoundDelta,
    RunLimits, Session, SyncModel, Termination,
};
use graphs::{FixedBitSet, Graph};

use crate::params::NearCliqueParams;
use crate::protocol::{DistNearClique, NodeOutput};
use crate::reference::{reference_run, ReferenceResult};
use crate::sample::SamplePlan;

/// Execution knobs orthogonal to the algorithm parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Deterministic round bound (§4.1 wrapper); the run aborts with
    /// whatever labels exist if exceeded.
    pub max_rounds: u64,
    /// Which engine executes the protocol. All engines are bit-identical
    /// on labels, outputs and payload metrics for the same seed (the flat
    /// engine at any shard count; [`Engine::Async`] under any
    /// [`DelayModel`], scheduled by a derived [`PhasePlan`]) — the
    /// determinism contract `engine_equivalence` enforces.
    pub engine: Engine,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { max_rounds: 10_000_000, engine: Engine::default() }
    }
}

impl RunOptions {
    /// Default limits on the flat engine, sharded over `threads` OS
    /// threads. Results are bit-identical at any thread count (the flat
    /// plane's determinism contract; see `crates/congest/src/network.rs`).
    #[must_use]
    pub fn threaded(threads: usize) -> Self {
        Self { engine: Engine::Flat { shards: threads }, ..Self::default() }
    }

    /// Default limits on an explicit engine.
    #[must_use]
    pub fn with_engine(engine: Engine) -> Self {
        Self { engine, ..Self::default() }
    }
}

/// Collects the rounds at which quiescence barriers (phase transitions)
/// were granted — the streaming replacement for post-run trace plumbing.
#[derive(Default)]
struct BarrierTrace {
    rounds: Vec<u64>,
}

impl Observer for BarrierTrace {
    fn on_round(&mut self, _round: u64, _delta: &RoundDelta) {}

    fn on_barrier(&mut self, round: u64) {
        self.rounds.push(round);
    }
}

/// Everything a `DistNearClique` execution produced.
#[derive(Clone, Debug)]
pub struct NearCliqueRun {
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<NodeOutput>,
    /// Per-node labels (`outputs[i].label`, extracted for convenience).
    pub labels: Vec<Option<u64>>,
    /// Simulator metrics: rounds, messages, bits.
    pub metrics: Metrics,
    /// Synchronizer control-plane overhead — identically zero on the
    /// synchronous engines; on [`Engine::Async`], the configured
    /// [`SyncModel`]'s control traffic (α's Ack/Safe flood, or the
    /// batched variant's coalesced Safe waves) and the virtual
    /// completion time.
    pub overhead: congest::SyncOverhead,
    /// Whether the run quiesced or hit the round bound.
    pub termination: Termination,
    /// The sampling-stage coin flips used.
    pub plan: SamplePlan,
    /// The ID assignment used (for reference cross-validation).
    pub ids: Vec<u64>,
    /// The parameters the run used.
    pub params: NearCliqueParams,
    /// Phase transitions as `(version, phase name, entry round)` —
    /// node 0's trace; phases are global barriers so it describes the
    /// whole run.
    pub phase_trace: Vec<(u8, &'static str, u64)>,
    /// Rounds at which a quiescence barrier was granted, streamed by a
    /// [`congest::Observer`] during the run (one entry per barrier in
    /// `metrics.barriers`).
    pub barrier_rounds: Vec<u64>,
}

impl NearCliqueRun {
    /// Groups labeled nodes into their output near-cliques, sorted by
    /// decreasing size (ties by label).
    #[must_use]
    pub fn labeled_sets(&self) -> Vec<(u64, FixedBitSet)> {
        let n = self.labels.len();
        let mut by_label: std::collections::BTreeMap<u64, FixedBitSet> =
            std::collections::BTreeMap::new();
        for (v, label) in self.labels.iter().enumerate() {
            if let Some(root) = label {
                by_label.entry(*root).or_insert_with(|| FixedBitSet::new(n)).insert(v);
            }
        }
        let mut sets: Vec<(u64, FixedBitSet)> = by_label.into_iter().collect();
        sets.sort_by_key(|(label, set)| (std::cmp::Reverse(set.len()), *label));
        sets
    }

    /// The largest output near-clique, if any node was labeled.
    #[must_use]
    pub fn largest_set(&self) -> Option<FixedBitSet> {
        self.labeled_sets().into_iter().next().map(|(_, set)| set)
    }

    /// Size of the sample `S` of `version` (diagnostics; Lemma 5.2).
    ///
    /// # Panics
    ///
    /// Panics if `version` is out of range.
    #[must_use]
    pub fn sample_size(&self, version: u32) -> usize {
        self.plan.sample(version).len()
    }

    /// Full candidate-level introspection: recomputes the run centrally
    /// (same sample, same IDs) via [`reference_run`], exposing every
    /// candidate component, its `X(Sᵢ)`, `T_ε(X(Sᵢ))` and whether it
    /// survived the decision stage. The returned labels are guaranteed to
    /// equal [`Self::labels`] (enforced by the crate's equivalence tests).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not the graph this run executed on.
    #[must_use]
    pub fn candidate_report(&self, g: &graphs::Graph) -> ReferenceResult {
        reference_run(g, &self.ids, &self.params, &self.plan)
    }
}

/// Runs `DistNearClique` on `g` with default options.
///
/// `seed` determines the sampling stage, the ID assignment and nothing
/// else (the protocol is otherwise deterministic). See
/// [`run_near_clique_with`] for execution knobs.
#[must_use]
pub fn run_near_clique(g: &Graph, params: &NearCliqueParams, seed: u64) -> NearCliqueRun {
    run_near_clique_with(g, params, seed, RunOptions::default())
}

/// Runs `DistNearClique` with explicit [`RunOptions`], through the
/// unified [`Session`] surface.
///
/// On the synchronous engines, phase transitions happen at the
/// simulator's quiescence barriers. On [`Engine::Async`] — where
/// synchronizer α has no quiescence barrier — the runner first
/// *precomputes* the §4.1 schedule with [`near_clique_phase_plan`] (a
/// synchronous dry run on the flat engine; the stand-in for the paper's
/// offline round-bound analysis) and then executes the phased
/// asynchronous run via [`run_near_clique_phased`]. Labels, outputs and
/// the payload-side [`Metrics`] equal the synchronous engines' bit for
/// bit, under every [`DelayModel`].
#[must_use]
pub fn run_near_clique_with(
    g: &Graph,
    params: &NearCliqueParams,
    seed: u64,
    options: RunOptions,
) -> NearCliqueRun {
    if let Engine::Async { delay, sync, fault, churn } = options.engine {
        let plan = near_clique_phase_plan(g, params, seed, options.max_rounds);
        return run_near_clique_phased(g, params, seed, delay, sync, fault, churn, &plan);
    }
    let plan = SamplePlan::draw(g.node_count(), params.lambda, params.p, seed);
    let mut driver = Session::on(g)
        .seed(seed)
        .engine(options.engine)
        .limits(RunLimits::rounds(options.max_rounds))
        .build_with(|endpoint| {
            let flags = (0..params.lambda).map(|v| plan.in_sample(v, endpoint.index)).collect();
            DistNearClique::new(params.clone(), flags)
        });
    // Pre-reserve the per-round metrics history (bounded): with it, the
    // flat engine's steady-state rounds perform zero heap allocations.
    driver.reserve_rounds(options.max_rounds.min(4096) as usize);
    let mut barriers = BarrierTrace::default();
    let report = driver.run_observed(&mut barriers);
    let outputs = driver.outputs();
    let labels = outputs.iter().map(|o| o.label).collect();
    let ids = (0..g.node_count()).map(|v| driver.endpoint(v).id).collect();
    let phase_trace =
        if g.node_count() > 0 { driver.protocol(0).phase_trace().to_vec() } else { Vec::new() };
    NearCliqueRun {
        outputs,
        labels,
        metrics: report.metrics,
        overhead: report.overhead,
        termination: report.termination,
        plan,
        ids,
        params: params.clone(),
        phase_trace,
        barrier_rounds: barriers.rounds,
    }
}

/// Precomputes the §4.1 per-phase pulse schedule for a `DistNearClique`
/// run: a synchronous dry run on the flat engine (same seed, same
/// sampling stage, same IDs) records its phase trace, and
/// [`PhasePlan::from_trace`] turns the barrier entry rounds into exact
/// per-phase budgets.
///
/// The paper precomputes these bounds analytically; the harness
/// precomputes them by simulation — either way the asynchronous
/// execution receives a *deterministic* schedule fixed before it starts.
/// Derive the plan once and reuse it across delay models: the schedule
/// depends only on `(g, params, seed)`.
///
/// If the dry run hits `max_rounds` before quiescing, the plan covers
/// only the phases reached — the phased run will then also stop at the
/// round limit.
#[must_use]
pub fn near_clique_phase_plan(
    g: &Graph,
    params: &NearCliqueParams,
    seed: u64,
    max_rounds: u64,
) -> PhasePlan {
    let dry = run_near_clique_with(
        g,
        params,
        seed,
        RunOptions { max_rounds, engine: Engine::Flat { shards: 1 } },
    );
    PhasePlan::from_trace(&dry.phase_trace, dry.metrics.rounds)
}

/// Runs `DistNearClique` on [`Engine::Async`] under an explicit
/// [`PhasePlan`] — the `sync` synchronizer (classic α or the batched
/// Safe-wave variant) with the given link-[`DelayModel`], phase
/// transitions fired on the plan's schedule instead of at quiescence.
///
/// With a plan from [`near_clique_phase_plan`], the run reproduces the
/// synchronous execution exactly (labels, outputs, payload metrics,
/// phase trace — pulse for round) under **either** synchronizer; they
/// differ only in the control-plane `overhead` they report. Hand-written
/// plans may deviate: a *truncated* plan (fewer phases) stops cleanly at
/// [`Termination::RoundLimit`] with no labels; a plan that cuts a phase
/// *short* fires the next transition while stale-phase messages are
/// still in flight, which `DistNearClique` — a phase-pure protocol —
/// rejects with a panic. Both are faithful §4.1 failure modes: a
/// mis-derived deterministic bound breaks the staged algorithm.
///
/// The `fault` model injects seeded message loss, link flaps or node
/// crashes (see [`FaultModel`]). Under the masked models
/// ([`FaultModel::Drop`], [`FaultModel::LinkFlap`]) retransmission hides
/// every fault: labels, outputs and payload metrics still equal the
/// synchronous run bit for bit, and only the reported `overhead` (and
/// virtual time) grows. Under [`FaultModel::Crash`] the run degrades
/// deterministically and reports [`Termination::Degraded`].
///
/// The `churn` model evolves the member set mid-run (seeded joins and
/// graceful leaves opening epochs; see [`ChurnModel`]).
/// [`ChurnModel::None`] is the fixed member set, bit-identical to the
/// pre-churn engine.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_near_clique_phased(
    g: &Graph,
    params: &NearCliqueParams,
    seed: u64,
    delay: DelayModel,
    sync: SyncModel,
    fault: FaultModel,
    churn: ChurnModel,
    phases: &PhasePlan,
) -> NearCliqueRun {
    let plan = SamplePlan::draw(g.node_count(), params.lambda, params.p, seed);
    let mut driver = Session::on(g)
        .seed(seed)
        .engine(Engine::Async { delay, sync, fault, churn })
        .limits(RunLimits::rounds(phases.total_pulses()))
        .build_with(|endpoint| {
            let flags = (0..params.lambda).map(|v| plan.in_sample(v, endpoint.index)).collect();
            DistNearClique::new(params.clone(), flags)
        });
    let mut barriers = BarrierTrace::default();
    let report = driver.run_phased(phases, &mut barriers);
    let outputs = driver.outputs();
    let labels = outputs.iter().map(|o| o.label).collect();
    let ids = (0..g.node_count()).map(|v| driver.endpoint(v).id).collect();
    let phase_trace =
        if g.node_count() > 0 { driver.protocol(0).phase_trace().to_vec() } else { Vec::new() };
    NearCliqueRun {
        outputs,
        labels,
        metrics: report.metrics,
        overhead: report.overhead,
        termination: report.termination,
        plan,
        ids,
        params: params.clone(),
        phase_trace,
        barrier_rounds: barriers.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::GraphBuilder;

    #[test]
    fn runner_end_to_end_on_clique() {
        let g = Graph::complete(25);
        let params = NearCliqueParams::new(0.25, 0.15).unwrap();
        let run = run_near_clique(&g, &params, 3);
        assert_eq!(run.termination, Termination::Quiescent);
        let sets = run.labeled_sets();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].1.len(), 25);
        assert_eq!(run.largest_set().unwrap().len(), 25);
    }

    #[test]
    fn labeled_sets_sorted_by_size() {
        let mut b = GraphBuilder::new(26);
        b.add_clique(&(0..16).collect::<Vec<_>>());
        b.add_clique(&(16..26).collect::<Vec<_>>());
        let g = b.build();
        let params = NearCliqueParams::new(0.25, 0.3).unwrap();
        let run = run_near_clique(&g, &params, 5);
        let sets = run.labeled_sets();
        for pair in sets.windows(2) {
            assert!(pair[0].1.len() >= pair[1].1.len());
        }
    }

    #[test]
    fn round_bound_aborts_gracefully() {
        let g = Graph::complete(20);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap();
        let options = RunOptions { max_rounds: 2, ..RunOptions::default() };
        let run = run_near_clique_with(&g, &params, 9, options);
        assert_eq!(run.termination, Termination::RoundLimit);
        // Aborted mid-protocol: no labels, never inconsistent ones.
        assert!(run.labels.iter().all(Option::is_none));
    }

    #[test]
    fn phase_trace_covers_all_phases_in_order() {
        let g = Graph::complete(20);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap().with_lambda(2);
        let run = run_near_clique(&g, &params, 37);
        let names: Vec<&str> = run.phase_trace.iter().map(|&(_, name, _)| name).collect();
        // Two versions of the exploration block, one decision pass.
        let announces = names.iter().filter(|&&n| n == "announce").count();
        assert_eq!(announces, 2);
        assert_eq!(names.iter().filter(|&&n| n == "vote").count(), 1);
        assert_eq!(names.last(), Some(&"winner"));
        // Entry rounds are non-decreasing.
        let rounds: Vec<u64> = run.phase_trace.iter().map(|&(_, _, r)| r).collect();
        assert!(rounds.windows(2).all(|w| w[0] <= w[1]));
        // The observer saw every barrier the metrics counted, in order.
        assert_eq!(run.barrier_rounds.len() as u64, run.metrics.barriers);
        assert!(run.barrier_rounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn candidate_report_matches_labels() {
        let g = Graph::complete(20);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap();
        let run = run_near_clique(&g, &params, 31);
        let report = run.candidate_report(&g);
        assert_eq!(report.labels, run.labels);
        for cand in &report.candidates {
            assert!(cand.t_size as usize <= 20);
        }
    }

    #[test]
    fn sample_size_reports_plan() {
        let g = Graph::complete(50);
        let params = NearCliqueParams::new(0.25, 0.1).unwrap();
        let run = run_near_clique(&g, &params, 21);
        assert_eq!(run.sample_size(0), run.plan.sample(0).len());
    }

    #[test]
    fn async_engine_runs_dist_near_clique_end_to_end() {
        let g = Graph::complete(25);
        let params = NearCliqueParams::new(0.25, 0.15).unwrap();
        let sync = run_near_clique(&g, &params, 3);
        for model in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
            let options = RunOptions::with_engine(Engine::Async {
                delay: DelayModel::HeavyTailed { max_delay: 6 },
                sync: model,
                fault: FaultModel::None,
                churn: ChurnModel::None,
            });
            let run = run_near_clique_with(&g, &params, 3, options);
            assert_eq!(run.termination, Termination::Quiescent, "{model:?}");
            assert_eq!(run.labels, sync.labels, "{model:?}");
            assert_eq!(run.outputs, sync.outputs, "{model:?}");
            assert_eq!(run.metrics, sync.metrics, "{model:?}: payload ledger must match");
            assert_eq!(run.phase_trace, sync.phase_trace, "{model:?}");
            assert_eq!(run.barrier_rounds, sync.barrier_rounds, "{model:?}");
            // Only the asynchronous run pays a control plane, and the
            // run reports it.
            assert!(sync.overhead.is_zero());
            assert!(run.overhead.control_messages > 0, "{model:?}");
            assert!(run.overhead.virtual_time > 0, "{model:?}");
        }
    }

    #[test]
    fn derived_phase_plan_walks_the_canonical_phase_sequence() {
        let g = Graph::complete(20);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap().with_lambda(2);
        let plan = near_clique_phase_plan(&g, &params, 37, 10_000);
        assert_eq!(plan.names(), DistNearClique::phase_sequence(2));
        assert!(plan.total_pulses() > 0);
    }

    #[test]
    fn truncated_phase_plan_aborts_with_round_limit() {
        let g = Graph::complete(20);
        let params = NearCliqueParams::new(0.25, 0.2).unwrap();
        // Only the announce phase is scheduled (its true length is one
        // pulse); the schedule then runs out while nodes want to resume.
        let truncated = PhasePlan::new().phase("announce", 1);
        let run = run_near_clique_phased(
            &g,
            &params,
            9,
            DelayModel::Uniform { max_delay: 2 },
            SyncModel::Alpha,
            FaultModel::None,
            ChurnModel::None,
            &truncated,
        );
        assert_eq!(run.termination, Termination::RoundLimit);
        assert!(run.labels.iter().all(Option::is_none));
        // The schedule's one barrier was taken (announce → roster).
        assert_eq!(run.metrics.barriers, 1);
    }
}
