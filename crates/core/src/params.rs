//! Algorithm parameters and the paper's derived quantities.
//!
//! `DistNearClique` takes two inputs besides the graph: the density slack
//! `ε` and the sampling probability `p` (Algorithm box, §4). Theorem 5.7's
//! guarantee additionally fixes how `p` should scale —
//! `p = O(log(1/εδ)/(ε⁴δ))/n` — which [`NearCliqueParams::for_theorem`]
//! implements.

use std::fmt;

/// Validated parameter set for one `DistNearClique` execution.
#[derive(Clone, Debug, PartialEq)]
pub struct NearCliqueParams {
    /// The density slack ε. The analysis assumes `ε < 1/3` (§5.2); we
    /// enforce `0 < ε < 1/3`.
    pub epsilon: f64,
    /// Per-node sampling probability `p ∈ (0, 1)`.
    pub p: f64,
    /// Number of independent sampling+exploration versions (the §4.1
    /// boosting wrapper). `1` is the plain algorithm.
    pub lambda: u32,
    /// Safety valve: components of `G[S]` larger than this are skipped
    /// (their subsets are never enumerated; no candidate is produced).
    /// The algorithm's 2^{|S|} state is only feasible for small samples —
    /// the paper's `p` keeps `E|S|` constant — and this cap bounds memory
    /// when the coin flips come out unlucky. Skips are reported in
    /// [`crate::NodeOutput::oversized_component`].
    pub max_component_size: u32,
    /// Optional lower bound on an acceptable candidate size (the paper's
    /// "small node sets … can be disqualified if a lower bound on the size
    /// of the dense subgraph is known", §4). Candidates below it are not
    /// labeled.
    pub min_candidate_size: Option<u32>,
}

/// Error returned when parameters are out of range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidParams(String);

impl fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidParams {}

impl NearCliqueParams {
    /// Hard ceiling on [`max_component_size`](Self::max_component_size)
    /// (the per-node state is `Θ(2^k)`).
    pub const COMPONENT_SIZE_CEILING: u32 = 24;

    /// Creates a parameter set with `lambda = 1` and the default component
    /// cap (16).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] unless `0 < epsilon < 1/3` and
    /// `0 < p < 1`.
    pub fn new(epsilon: f64, p: f64) -> Result<Self, InvalidParams> {
        let params =
            Self { epsilon, p, lambda: 1, max_component_size: 16, min_candidate_size: None };
        params.validate()?;
        Ok(params)
    }

    /// The Theorem 2.1 instantiation: given `ε`, `δ` and `n`, sets
    /// `p = c·log(1/(εδ)) / (ε⁴ δ n)`.
    ///
    /// Only the *form* is the theorem's; the constant `c` is calibrated
    /// (experiment E1) to `0.008` so that the expected sample `E|S| = pn`
    /// lands in single digits for moderate ε. The theorem's own hidden
    /// constant would demand samples whose `2^|S|` subset enumeration no
    /// implementation (or network) could execute — the paper itself
    /// targets `|S| ≤ O(log log n)` for computability (§5.3).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] if `ε ∉ (0, 1/3)`, `δ ∉ (0, 1]`, or the
    /// derived `p` leaves `(0, 1)`.
    pub fn for_theorem(epsilon: f64, delta: f64, n: usize) -> Result<Self, InvalidParams> {
        if !(0.0..=1.0).contains(&delta) || delta == 0.0 {
            return Err(InvalidParams(format!("delta must be in (0, 1], got {delta}")));
        }
        let c = 0.008;
        let pn = c * (1.0 / (epsilon * delta)).ln() / (epsilon.powi(4) * delta);
        let p = (pn / n as f64).min(0.999);
        Self::new(epsilon, p)
    }

    /// Practical instantiation: choose `p` so that `E|S| = pn` equals
    /// `expected_sample` (the knob experiments sweep — round and message
    /// complexity scale with `2^{E|S|}`, Lemma 5.1).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] if the derived `p` leaves `(0, 1)` or
    /// `ε ∉ (0, 1/3)`.
    pub fn for_expected_sample(
        epsilon: f64,
        expected_sample: f64,
        n: usize,
    ) -> Result<Self, InvalidParams> {
        Self::new(epsilon, expected_sample / n as f64)
    }

    /// Builder-style: sets the boosting factor λ (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if `lambda == 0`.
    #[must_use]
    pub fn with_lambda(mut self, lambda: u32) -> Self {
        assert!(lambda >= 1, "lambda must be at least 1");
        self.lambda = lambda;
        self
    }

    /// Builder-style: sets the component-size safety cap.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ cap ≤ COMPONENT_SIZE_CEILING`.
    #[must_use]
    pub fn with_max_component_size(mut self, cap: u32) -> Self {
        assert!(
            (1..=Self::COMPONENT_SIZE_CEILING).contains(&cap),
            "cap must be in 1..={}, got {cap}",
            Self::COMPONENT_SIZE_CEILING
        );
        self.max_component_size = cap;
        self
    }

    /// Builder-style: sets the minimum acceptable candidate size.
    #[must_use]
    pub fn with_min_candidate_size(mut self, min: u32) -> Self {
        self.min_candidate_size = Some(min);
        self
    }

    /// The inner threshold `2ε²` used by `K_{2ε²}(X)` (Equation 2).
    #[must_use]
    pub fn inner_epsilon(&self) -> f64 {
        2.0 * self.epsilon * self.epsilon
    }

    fn validate(&self) -> Result<(), InvalidParams> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0 / 3.0) {
            return Err(InvalidParams(format!(
                "epsilon must be in (0, 1/3) (§5.2 assumption), got {}",
                self.epsilon
            )));
        }
        if !(self.p > 0.0 && self.p < 1.0) {
            return Err(InvalidParams(format!("p must be in (0, 1), got {}", self.p)));
        }
        Ok(())
    }
}

/// The integer membership threshold shared by the distributed protocol and
/// the centralized reference: `v ∈ K_ε(X)` iff
/// `|Γ(v) ∩ X| ≥ ceil((1 − ε)·|X \ {v}|)`.
///
/// Must stay bit-for-bit consistent with `graphs::density::k_eps`; the
/// cross-crate property tests enforce that.
#[must_use]
pub fn k_threshold(size_excluding_self: usize, epsilon: f64) -> usize {
    ((1.0 - epsilon) * size_excluding_self as f64 - 1e-9).ceil().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_epsilon_range() {
        assert!(NearCliqueParams::new(0.2, 0.01).is_ok());
        assert!(NearCliqueParams::new(0.0, 0.01).is_err());
        assert!(NearCliqueParams::new(0.34, 0.01).is_err());
        assert!(NearCliqueParams::new(-0.1, 0.01).is_err());
    }

    #[test]
    fn new_validates_p_range() {
        assert!(NearCliqueParams::new(0.2, 0.0).is_err());
        assert!(NearCliqueParams::new(0.2, 1.0).is_err());
        assert!(NearCliqueParams::new(0.2, 0.5).is_ok());
    }

    #[test]
    fn theorem_p_scales_inversely_with_n() {
        let a = NearCliqueParams::for_theorem(0.25, 0.5, 1000).unwrap();
        let b = NearCliqueParams::for_theorem(0.25, 0.5, 2000).unwrap();
        assert!((a.p / b.p - 2.0).abs() < 1e-9, "p should halve when n doubles");
    }

    #[test]
    fn theorem_expected_sample_is_constant_in_n() {
        let a = NearCliqueParams::for_theorem(0.25, 0.5, 1000).unwrap();
        let b = NearCliqueParams::for_theorem(0.25, 0.5, 4000).unwrap();
        assert!((a.p * 1000.0 - b.p * 4000.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_rejects_bad_delta() {
        assert!(NearCliqueParams::for_theorem(0.2, 0.0, 100).is_err());
        assert!(NearCliqueParams::for_theorem(0.2, 1.5, 100).is_err());
    }

    #[test]
    fn builders() {
        let p = NearCliqueParams::new(0.2, 0.1)
            .unwrap()
            .with_lambda(3)
            .with_max_component_size(12)
            .with_min_candidate_size(5);
        assert_eq!(p.lambda, 3);
        assert_eq!(p.max_component_size, 12);
        assert_eq!(p.min_candidate_size, Some(5));
        assert!((p.inner_epsilon() - 0.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cap must be in")]
    fn oversized_cap_panics() {
        let _ = NearCliqueParams::new(0.2, 0.1).unwrap().with_max_component_size(30);
    }

    #[test]
    fn k_threshold_matches_density_convention() {
        // ceil((1-eps)*s) with exact-integer care.
        assert_eq!(k_threshold(0, 0.2), 0);
        assert_eq!(k_threshold(10, 0.0), 10);
        assert_eq!(k_threshold(10, 0.2), 8);
        assert_eq!(k_threshold(10, 0.25), 8); // 7.5 -> 8
        assert_eq!(k_threshold(3, 0.32), 3); // 2.04 -> 3
    }

    #[test]
    fn invalid_params_displays() {
        let err = NearCliqueParams::new(0.9, 0.5).unwrap_err();
        assert!(err.to_string().contains("epsilon"));
    }
}
