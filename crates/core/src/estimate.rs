//! The §5.3 computational-complexity remark, as an ablation.
//!
//! The paper notes that step 4f (checking `u ∈ K_ε(K_{2ε²}(X))` by
//! inspecting *all* neighbors) dominates local computation, and that one
//! can instead "select a sample of the neighbors and estimate, rather
//! than determine, membership in `T_ε(X)`", reducing local work to
//! `poly(|S|)` per round — while explicitly omitting the analysis of this
//! modification.
//!
//! We implement the exact step in the protocol (the analyzed algorithm)
//! and provide the estimator here, centrally, so the ablation experiment
//! (bench `ablation_step4f`) can quantify what the paper left
//! unanalyzed: how often the estimate disagrees with the exact
//! membership, as a function of the sample budget.

use graphs::{density, FixedBitSet, Graph};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::params::k_threshold;

/// Estimated `T_ε(X)`: the inner set `K_{2ε²}(X)` is computed exactly
/// (it costs only `|X|` work per node), but the outer membership test
/// `|Γ(u) ∩ K| ≥ (1 − ε)|K \ {u}|` is estimated from `sample_budget`
/// uniformly sampled neighbors of each `u`.
///
/// Returns the estimated set. With `sample_budget ≥ deg(u)` for all `u`
/// this coincides with [`density::t_eps`].
///
/// # Panics
///
/// Panics if `x.capacity() != g.node_count()`, ε thresholds leave
/// `[0, 1]`, or `sample_budget == 0`.
#[must_use]
pub fn t_eps_estimated<R: Rng + ?Sized>(
    g: &Graph,
    x: &FixedBitSet,
    epsilon: f64,
    sample_budget: usize,
    rng: &mut R,
) -> FixedBitSet {
    assert!(sample_budget > 0, "sample_budget must be positive");
    let inner_eps = (2.0 * epsilon * epsilon).min(1.0);
    let k_set = density::k_eps(g, x, inner_eps);
    let k_size = k_set.len();
    let n = g.node_count();
    let mut t = FixedBitSet::new(n);
    for u in k_set.iter() {
        let neighbors = g.neighbors(u);
        let in_k = if neighbors.len() <= sample_budget {
            // Exact when the budget covers the whole neighborhood.
            let cnt = g.degree_into(u, &k_set);
            cnt >= k_threshold(k_size - 1, epsilon)
        } else {
            // Estimate the fraction |Γ(u) ∩ K| / |Γ(u)| from a sample,
            // then scale to a count.
            let mut idx: Vec<usize> = (0..neighbors.len()).collect();
            idx.shuffle(rng);
            let hits =
                idx[..sample_budget].iter().filter(|&&i| k_set.contains(neighbors[i])).count();
            let est_cnt = hits as f64 / sample_budget as f64 * neighbors.len() as f64;
            est_cnt >= k_threshold(k_size - 1, epsilon) as f64 - 0.5
        };
        if in_k {
            t.insert(u);
        }
    }
    t
}

/// Agreement between the estimated and exact `T_ε(X)` on one instance:
/// `(|symmetric difference|, |exact|)`.
#[must_use]
pub fn estimate_disagreement<R: Rng + ?Sized>(
    g: &Graph,
    x: &FixedBitSet,
    epsilon: f64,
    sample_budget: usize,
    rng: &mut R,
) -> (usize, usize) {
    let exact = density::t_eps(g, x, epsilon);
    let approx = t_eps_estimated(g, x, epsilon, sample_budget, rng);
    let sym = exact.difference_count(&approx) + approx.difference_count(&exact);
    (sym, exact.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_budget_matches_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = generators::planted_near_clique(150, 60, 0.02, 0.05, &mut rng);
        let x = FixedBitSet::from_iter_with_capacity(150, p.dense_set.iter().take(4));
        let exact = density::t_eps(&p.graph, &x, 0.25);
        let approx = t_eps_estimated(&p.graph, &x, 0.25, 10_000, &mut rng);
        assert_eq!(exact, approx);
    }

    #[test]
    fn small_budget_stays_close_on_planted_instance() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = generators::planted_near_clique(200, 100, 0.0156, 0.02, &mut rng);
        let x = FixedBitSet::from_iter_with_capacity(200, p.dense_set.iter().take(5));
        let (sym, exact) = estimate_disagreement(&p.graph, &x, 0.25, 30, &mut rng);
        assert!(exact > 50, "instance sanity: exact T is large");
        assert!((sym as f64) < 0.2 * exact as f64, "disagreement {sym} too large vs |T| = {exact}");
    }

    #[test]
    fn disagreement_shrinks_with_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = generators::planted_near_clique(300, 150, 0.0156, 0.05, &mut rng);
        let x = FixedBitSet::from_iter_with_capacity(300, p.dense_set.iter().take(5));
        let mut last = usize::MAX;
        let mut non_increasing_pairs = 0;
        for &budget in &[5usize, 20, 80, 100_000] {
            let mut total = 0;
            for seed in 0..5 {
                let mut r = StdRng::seed_from_u64(seed);
                let (sym, _) = estimate_disagreement(&p.graph, &x, 0.25, budget, &mut r);
                total += sym;
            }
            if total <= last {
                non_increasing_pairs += 1;
            }
            last = total;
        }
        assert!(non_increasing_pairs >= 3, "disagreement should trend down with budget");
    }

    #[test]
    #[should_panic(expected = "sample_budget must be positive")]
    fn zero_budget_panics() {
        let g = graphs::Graph::complete(4);
        let x = FixedBitSet::from_iter_with_capacity(4, [0]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = t_eps_estimated(&g, &x, 0.2, 0, &mut rng);
    }
}
