//! The protocol's message alphabet.
//!
//! Every variant carries a constant number of identifiers, subset indices
//! and counters — `O(log n)` bits, the CONGEST budget. The simulator
//! meters [`congest::Message::bit_size`] on every delivery, so the claim
//! is enforced empirically (experiment E10) rather than assumed.
//!
//! Field conventions: `version` tags the boosting repetition (§4.1);
//! `root` identifies a component of `G[S]` by its minimum member ID;
//! `x` is a subset index — the bitmask of a subset `X ⊆ Sᵢ` over the
//! component roster sorted by ID.

use congest::{bits_for_count, Message, ID_BITS, TAG_BITS};

/// Bits charged for a subset index (components are capped at
/// `NearCliqueParams::COMPONENT_SIZE_CEILING = 24` members).
const X_BITS: usize = 24;
/// Bits charged for a count (bounded by `n`; we charge a fixed 32,
/// a constant multiple of `log n` for all feasible `n`).
const COUNT_BITS: usize = 32;
/// Bits charged for the version tag.
const VERSION_BITS: usize = 8;

/// Messages of `DistNearClique`. See the module docs for field
/// conventions and the stage walk-through in [`crate::protocol`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// "I am in S (version v)" — sampling-stage announcement.
    InS {
        /// Boosting version.
        version: u8,
    },
    /// Roster gossip within `G[S]`: one member ID per message
    /// (Exploration step 2, implemented as a flooding gather).
    Roster {
        /// Boosting version.
        version: u8,
        /// A member ID of the sender's component.
        id: u64,
    },
    /// "You are my tree parent" — sent once the flooding tree stabilizes,
    /// so parents learn their children.
    Adopt {
        /// Boosting version.
        version: u8,
    },
    /// Component roster pushed to *all* neighbors (Exploration step 3).
    CompShare {
        /// Boosting version.
        version: u8,
        /// Component root (minimum member ID).
        root: u64,
        /// One member ID.
        id: u64,
        /// Component size, so receivers know when the roster is complete.
        total: u32,
    },
    /// A non-member participant attaches to the spanning tree through its
    /// chosen parent (so step 4c sums count every participant exactly
    /// once — the paper's "we effectively add to each spanning tree all
    /// adjacent nodes", §4).
    Attach {
        /// Boosting version.
        version: u8,
        /// Component root.
        root: u64,
    },
    /// Partial sum of `|K_{2ε²}(X)|` flowing up the tree (steps 4b–4c),
    /// one subset per message, pipelined in increasing `x` order.
    KCount {
        /// Boosting version.
        version: u8,
        /// Component root.
        root: u64,
        /// Subset index.
        x: u32,
        /// Partial membership count for the sender's subtree.
        count: u32,
    },
    /// `|K_{2ε²}(X)|` flowing back down from the root (step 4d).
    KSize {
        /// Boosting version.
        version: u8,
        /// Component root.
        root: u64,
        /// Subset index.
        x: u32,
        /// The global count for this subset.
        size: u32,
    },
    /// "I am in `K_{2ε²}(X)`, whose size is `size`" — broadcast by members
    /// to all their neighbors (step 4e) so neighbors can evaluate
    /// `K_ε(K_{2ε²}(X))` membership (step 4f).
    KMember {
        /// Boosting version.
        version: u8,
        /// Component root.
        root: u64,
        /// Subset index.
        x: u32,
        /// `|K_{2ε²}(X)|`.
        size: u32,
    },
    /// Partial sum of `|T_ε(X)|` flowing up the tree (Decision step 1).
    TCount {
        /// Boosting version.
        version: u8,
        /// Component root.
        root: u64,
        /// Subset index.
        x: u32,
        /// Partial membership count for the sender's subtree.
        count: u32,
    },
    /// The component's chosen candidate `X(Sᵢ)` and its `|T_ε(X(Sᵢ))|`,
    /// flowing down to all participants (Decision step 2).
    Candidate {
        /// Boosting version.
        version: u8,
        /// Component root.
        root: u64,
        /// The argmax subset index.
        x: u32,
        /// `|T_ε(X(Sᵢ))|`.
        size: u32,
    },
    /// Acknowledge/abort vote flowing up the tree (Decision step 3);
    /// intermediate nodes aggregate with OR on `abort`.
    Vote {
        /// Boosting version.
        version: u8,
        /// Component root.
        root: u64,
        /// `true` = abort (some node in the subtree prefers another
        /// component).
        abort: bool,
    },
    /// The surviving component announces itself (Decision step 4);
    /// participants with a `T_ε(X(Sᵢ))` bit adopt `root` as their label.
    Winner {
        /// Boosting version.
        version: u8,
        /// Component root (= the output label).
        root: u64,
    },
}

impl Message for Msg {
    fn bit_size(&self) -> usize {
        let payload = match self {
            Msg::InS { .. } => VERSION_BITS,
            Msg::Roster { .. } => VERSION_BITS + ID_BITS,
            Msg::Adopt { .. } => VERSION_BITS,
            Msg::CompShare { .. } => VERSION_BITS + ID_BITS + ID_BITS + COUNT_BITS,
            Msg::Attach { .. } => VERSION_BITS + ID_BITS,
            Msg::KCount { .. } | Msg::KSize { .. } | Msg::KMember { .. } | Msg::TCount { .. } => {
                VERSION_BITS + ID_BITS + X_BITS + COUNT_BITS
            }
            Msg::Candidate { .. } => VERSION_BITS + ID_BITS + X_BITS + COUNT_BITS,
            Msg::Vote { .. } => VERSION_BITS + ID_BITS + 1,
            Msg::Winner { .. } => VERSION_BITS + ID_BITS,
        };
        TAG_BITS + payload
    }
}

/// An upper bound on the widest message the protocol can emit, used by the
/// E10 harness as the "budget line" in its tables.
#[must_use]
pub fn max_message_bits() -> usize {
    TAG_BITS + VERSION_BITS + ID_BITS + ID_BITS + COUNT_BITS
}

/// Helper for assertions: `bits_for_count(n)`-scaled budget, i.e. how many
/// "`log n` units" a width represents.
#[must_use]
pub fn log_units(bits: usize, n: usize) -> f64 {
    bits as f64 / bits_for_count(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::InS { version: 0 },
            Msg::Roster { version: 0, id: 7 },
            Msg::Adopt { version: 1 },
            Msg::CompShare { version: 0, root: 1, id: 2, total: 3 },
            Msg::Attach { version: 0, root: 1 },
            Msg::KCount { version: 0, root: 1, x: 5, count: 2 },
            Msg::KSize { version: 0, root: 1, x: 5, size: 9 },
            Msg::KMember { version: 0, root: 1, x: 5, size: 9 },
            Msg::TCount { version: 0, root: 1, x: 5, count: 2 },
            Msg::Candidate { version: 0, root: 1, x: 5, size: 9 },
            Msg::Vote { version: 0, root: 1, abort: false },
            Msg::Winner { version: 0, root: 1 },
        ]
    }

    #[test]
    fn every_variant_fits_the_budget() {
        let budget = max_message_bits();
        for m in samples() {
            assert!(m.bit_size() <= budget, "{m:?} exceeds {budget} bits");
            assert!(m.bit_size() >= TAG_BITS, "{m:?} suspiciously small");
        }
    }

    #[test]
    fn budget_is_o_log_n() {
        // The budget is a constant number of "log n units" for n = 2^32.
        let units = log_units(max_message_bits(), u32::MAX as usize);
        assert!(units <= 7.0, "budget is {units} log-units");
    }

    #[test]
    fn sizes_are_stable() {
        // Pin the widths so accidental encoding changes show up in review.
        assert_eq!(Msg::InS { version: 0 }.bit_size(), 16);
        assert_eq!(Msg::Winner { version: 0, root: 0 }.bit_size(), 80);
        assert_eq!(
            Msg::KCount { version: 0, root: 0, x: 0, count: 0 }.bit_size(),
            8 + 8 + 64 + 24 + 32
        );
        assert_eq!(max_message_bits(), 8 + 8 + 64 + 64 + 32);
    }
}
