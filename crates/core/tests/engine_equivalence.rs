//! Engine-equivalence suite: the flat message plane must be
//! **bit-identical** — labels, full metrics (rounds, messages, bits,
//! per-round histogram, barriers) and termination — across
//!
//! * thread counts (`parallel(1)` vs `parallel(4)`),
//! * the old→new engine boundary ([`congest::LegacyNetwork`], the seed
//!   repository's pointer-chasing engine, vs [`congest::Network`]), and
//! * the centralized executable specification ([`nearclique::reference_run`]),
//!
//! over the workload families of the paper's experiments: planted
//! near-cliques, G(n,p) noise, stars, paths, and the Figure 1 shingles
//! counterexample.

use congest::{IdAssignment, LegacyNetwork, Mode, RunLimits};
use graphs::{generators, Graph, GraphBuilder};
use nearclique::{
    reference_run, run_near_clique_with, DistNearClique, NearCliqueParams, RunOptions, SamplePlan,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build()
}

fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_edge(i, i + 1);
    }
    b.build()
}

fn workloads() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(71);
    vec![
        ("planted", generators::planted_near_clique(140, 60, 0.015, 0.04, &mut rng).graph),
        ("gnp", generators::gnp(120, 0.08, &mut rng)),
        ("star", star(80)),
        ("path", path(80)),
        ("counterexample", generators::shingles_counterexample(120, 0.5).graph),
    ]
}

/// `parallel(1)` and `parallel(4)` runs must agree on everything,
/// including the full metrics structure, and must match the centralized
/// reference specification.
/// ε = 0.25, E|S| = 7 (the benches' operating point): the exploration
/// stage enumerates 2^|S| subsets, so pinning E|S| keeps the suite fast.
fn test_params(n: usize) -> NearCliqueParams {
    NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap().with_lambda(2)
}

#[test]
fn thread_counts_are_bit_identical_and_match_reference() {
    for (name, g) in workloads() {
        let params = test_params(g.node_count());
        for seed in [3u64, 19] {
            let sequential = run_near_clique_with(
                &g,
                &params,
                seed,
                RunOptions { max_rounds: 10_000_000, threads: 1 },
            );
            let sharded = run_near_clique_with(
                &g,
                &params,
                seed,
                RunOptions { max_rounds: 10_000_000, threads: 4 },
            );
            assert_eq!(
                sequential.labels, sharded.labels,
                "labels diverge across thread counts ({name}, seed {seed})"
            );
            assert_eq!(
                sequential.metrics, sharded.metrics,
                "metrics diverge across thread counts ({name}, seed {seed})"
            );
            assert_eq!(
                sequential.termination, sharded.termination,
                "termination diverges across thread counts ({name}, seed {seed})"
            );

            let reference = reference_run(&g, &sequential.ids, &params, &sequential.plan);
            assert_eq!(
                sequential.labels, reference.labels,
                "distributed labels diverge from the centralized reference ({name}, seed {seed})"
            );
        }
    }
}

/// The legacy (seed) engine and the flat plane must agree bit-for-bit on
/// `DistNearClique` runs: same sample plan, same IDs, same labels, same
/// metrics, same termination.
#[test]
fn legacy_and_flat_engines_agree_on_dist_near_clique() {
    for (name, g) in workloads() {
        let params = test_params(g.node_count());
        for seed in [5u64, 23] {
            let flat = run_near_clique_with(
                &g,
                &params,
                seed,
                RunOptions { max_rounds: 10_000_000, threads: 2 },
            );

            let plan = SamplePlan::draw(g.node_count(), params.lambda, params.p, seed);
            let mut legacy = LegacyNetwork::build_with(
                &g,
                Mode::Congest,
                seed,
                IdAssignment::Hashed,
                |endpoint| {
                    let flags =
                        (0..params.lambda).map(|v| plan.in_sample(v, endpoint.index)).collect();
                    DistNearClique::new(params.clone(), flags)
                },
            );
            let legacy_report = legacy.run(RunLimits::rounds(10_000_000));

            let legacy_labels: Vec<Option<u64>> =
                legacy.outputs().iter().map(|o| o.label).collect();
            assert_eq!(
                flat.labels, legacy_labels,
                "labels diverge across engines ({name}, seed {seed})"
            );
            assert_eq!(
                flat.metrics, legacy_report.metrics,
                "metrics diverge across engines ({name}, seed {seed})"
            );
            assert_eq!(
                flat.termination, legacy_report.termination,
                "termination diverges across engines ({name}, seed {seed})"
            );
        }
    }
}

/// LOCAL-mode trains: the whole-queue delivery path (multi-message ports,
/// FIFO within a train) must match across engines and thread counts.
#[test]
fn local_mode_trains_are_equivalent() {
    use congest::{bits_for_count, Context, Message, NetworkBuilder, Port, Protocol};

    #[derive(Clone, Debug)]
    struct Seq(u32);
    impl Message for Seq {
        fn bit_size(&self) -> usize {
            bits_for_count(1 << 16)
        }
    }

    /// Every node sends a distinct train to each lower-indexed neighbor in
    /// `init`, then every receiver records (round, port, payload) — a
    /// direct probe of delivery order.
    struct Trains {
        start: bool,
        heard: Vec<(u64, Port, u32)>,
    }
    impl Protocol for Trains {
        type Msg = Seq;
        type Output = Vec<(u64, Port, u32)>;

        fn init(&mut self, ctx: &mut Context<'_, Seq>) {
            if self.start {
                for port in 0..ctx.degree() {
                    for k in 0..5u32 {
                        ctx.send(port, Seq(port as u32 * 100 + k));
                    }
                }
            }
        }

        fn step(&mut self, ctx: &mut Context<'_, Seq>, inbox: &[(Port, Seq)]) {
            for (port, msg) in inbox {
                self.heard.push((ctx.round(), *port, msg.0));
            }
        }

        fn is_idle(&self) -> bool {
            true
        }

        fn output(&self) -> Vec<(u64, Port, u32)> {
            self.heard.clone()
        }
    }

    for (name, g) in workloads() {
        for mode in [Mode::Congest, Mode::Local] {
            let factory = |e: &congest::Endpoint| Trains {
                start: e.index.is_multiple_of(3),
                heard: Vec::new(),
            };

            let mut flat1 =
                NetworkBuilder::new().mode(mode).seed(9).parallel(1).build_with(&g, factory);
            let r1 = flat1.run(RunLimits::default());

            let mut flat4 =
                NetworkBuilder::new().mode(mode).seed(9).parallel(4).build_with(&g, factory);
            let r4 = flat4.run(RunLimits::default());

            let mut legacy = LegacyNetwork::build_with(&g, mode, 9, IdAssignment::Hashed, factory);
            let rl = legacy.run(RunLimits::default());

            assert_eq!(flat1.outputs(), flat4.outputs(), "{name} {mode:?}: thread counts");
            assert_eq!(flat1.outputs(), legacy.outputs(), "{name} {mode:?}: engines");
            assert_eq!(r1.metrics, r4.metrics, "{name} {mode:?}: thread-count metrics");
            assert_eq!(r1.metrics, rl.metrics, "{name} {mode:?}: engine metrics");
        }
    }
}
