//! Engine-equivalence suite: runs started through the unified
//! [`congest::Session`] surface must be **bit-identical** — labels, full
//! metrics (rounds, messages, bits, per-round histogram, barriers) and
//! termination — across
//!
//! * thread counts (`Engine::Flat { shards: 1 }` vs `{ shards: 4 }`),
//! * the old→new engine boundary (`Engine::Legacy`, the seed
//!   repository's pointer-chasing engine, vs the flat plane),
//! * the synchronous/asynchronous boundary (`Engine::Async`, the §2
//!   synchronizer-α reduction, vs the flat plane — equal outputs and an
//!   equal payload-side ledger at any link-delay bound), and
//! * the centralized executable specification
//!   ([`nearclique::reference_run`]),
//!
//! over the workload families of the paper's experiments: planted
//! near-cliques, G(n,p) noise, stars, paths, and the Figure 1 shingles
//! counterexample.

use congest::{
    ChurnModel, Context, DelayModel, Engine, FaultModel, Message, Mode, Port, Protocol, RunLimits,
    Session, SyncModel,
};
use graphs::{generators, Graph, GraphBuilder};
use nearclique::{
    near_clique_phase_plan, reference_run, run_near_clique_phased, run_near_clique_with,
    DistNearClique, NearCliqueParams, RunOptions, SamplePlan,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The delay-model grid the asynchronous equivalence tests sweep: the
/// classic uniform draw at several bounds, plus one of each pluggable
/// model (per-link, heavy-tailed, adversarial-within-bound).
fn delay_models() -> Vec<DelayModel> {
    vec![
        DelayModel::Uniform { max_delay: 1 },
        DelayModel::Uniform { max_delay: 7 },
        DelayModel::Uniform { max_delay: 31 },
        DelayModel::PerLink { max_delay: 7 },
        DelayModel::HeavyTailed { max_delay: 7 },
        DelayModel::Adversarial { max_delay: 7 },
    ]
}

fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build()
}

fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_edge(i, i + 1);
    }
    b.build()
}

fn workloads() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(71);
    vec![
        ("planted", generators::planted_near_clique(140, 60, 0.015, 0.04, &mut rng).graph),
        ("gnp", generators::gnp(120, 0.08, &mut rng)),
        ("star", star(80)),
        ("path", path(80)),
        ("counterexample", generators::shingles_counterexample(120, 0.5).graph),
    ]
}

/// `Engine::Flat` at different shard counts must agree on everything,
/// including the full metrics structure, and must match the centralized
/// reference specification.
/// ε = 0.25, E|S| = 7 (the benches' operating point): the exploration
/// stage enumerates 2^|S| subsets, so pinning E|S| keeps the suite fast.
fn test_params(n: usize) -> NearCliqueParams {
    NearCliqueParams::for_expected_sample(0.25, 7.0, n).unwrap().with_lambda(2)
}

#[test]
fn thread_counts_are_bit_identical_and_match_reference() {
    for (name, g) in workloads() {
        let params = test_params(g.node_count());
        for seed in [3u64, 19] {
            let sequential = run_near_clique_with(&g, &params, seed, RunOptions::threaded(1));
            let sharded = run_near_clique_with(&g, &params, seed, RunOptions::threaded(4));
            assert_eq!(
                sequential.labels, sharded.labels,
                "labels diverge across thread counts ({name}, seed {seed})"
            );
            assert_eq!(
                sequential.metrics, sharded.metrics,
                "metrics diverge across thread counts ({name}, seed {seed})"
            );
            assert_eq!(
                sequential.termination, sharded.termination,
                "termination diverges across thread counts ({name}, seed {seed})"
            );

            let reference = reference_run(&g, &sequential.ids, &params, &sequential.plan);
            assert_eq!(
                sequential.labels, reference.labels,
                "distributed labels diverge from the centralized reference ({name}, seed {seed})"
            );
        }
    }
}

/// The legacy (seed) engine and the flat plane must agree bit-for-bit on
/// `DistNearClique` runs — selected purely by `RunOptions::engine`, same
/// entry point, same everything else.
#[test]
fn legacy_and_flat_engines_agree_on_dist_near_clique() {
    for (name, g) in workloads() {
        let params = test_params(g.node_count());
        for seed in [5u64, 23] {
            let flat = run_near_clique_with(&g, &params, seed, RunOptions::threaded(2));
            let legacy =
                run_near_clique_with(&g, &params, seed, RunOptions::with_engine(Engine::Legacy));

            assert_eq!(
                flat.labels, legacy.labels,
                "labels diverge across engines ({name}, seed {seed})"
            );
            assert_eq!(
                flat.metrics, legacy.metrics,
                "metrics diverge across engines ({name}, seed {seed})"
            );
            assert_eq!(
                flat.termination, legacy.termination,
                "termination diverges across engines ({name}, seed {seed})"
            );
            assert_eq!(
                flat.barrier_rounds, legacy.barrier_rounds,
                "observed barriers diverge across engines ({name}, seed {seed})"
            );
        }
    }
}

/// LOCAL-mode trains: the whole-queue delivery path (multi-message ports,
/// FIFO within a train) must match across engines and thread counts.
#[test]
fn local_mode_trains_are_equivalent() {
    use congest::{bits_for_count, Context, Message, Port, Protocol};

    #[derive(Clone, Debug)]
    struct Seq(u32);
    impl Message for Seq {
        fn bit_size(&self) -> usize {
            bits_for_count(1 << 16)
        }
    }

    /// Every node sends a distinct train to each lower-indexed neighbor in
    /// `init`, then every receiver records (round, port, payload) — a
    /// direct probe of delivery order.
    struct Trains {
        start: bool,
        heard: Vec<(u64, Port, u32)>,
    }
    impl Protocol for Trains {
        type Msg = Seq;
        type Output = Vec<(u64, Port, u32)>;

        fn init(&mut self, ctx: &mut Context<'_, Seq>) {
            if self.start {
                for port in 0..ctx.degree() {
                    for k in 0..5u32 {
                        ctx.send(port, Seq(port as u32 * 100 + k));
                    }
                }
            }
        }

        fn step(&mut self, ctx: &mut Context<'_, Seq>, inbox: &[(Port, Seq)]) {
            for (port, msg) in inbox {
                self.heard.push((ctx.round(), *port, msg.0));
            }
        }

        fn is_idle(&self) -> bool {
            true
        }

        fn output(&self) -> Vec<(u64, Port, u32)> {
            self.heard.clone()
        }
    }

    for (name, g) in workloads() {
        for mode in [Mode::Congest, Mode::Local] {
            let factory = |e: &congest::Endpoint| Trains {
                start: e.index.is_multiple_of(3),
                heard: Vec::new(),
            };

            let run = |engine| Session::on(&g).mode(mode).seed(9).engine(engine).run_with(factory);
            let (out1, r1) = run(Engine::Flat { shards: 1 });
            let (out4, r4) = run(Engine::Flat { shards: 4 });
            let (outl, rl) = run(Engine::Legacy);

            assert_eq!(out1, out4, "{name} {mode:?}: thread counts");
            assert_eq!(out1, outl, "{name} {mode:?}: engines");
            assert_eq!(r1.metrics, r4.metrics, "{name} {mode:?}: thread-count metrics");
            assert_eq!(r1.metrics, rl.metrics, "{name} {mode:?}: engine metrics");
        }
    }
}

#[derive(Clone, Debug)]
struct Word(u64);
impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Flood: the source announces; nodes record the round they first
/// heard it and forward once.
struct Flood {
    source: bool,
    heard_at: Option<u64>,
}
impl Protocol for Flood {
    type Msg = Word;
    type Output = Option<u64>;
    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        if self.source {
            self.heard_at = Some(0);
            ctx.broadcast(Word(ctx.id()));
        }
    }
    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        if !inbox.is_empty() && self.heard_at.is_none() {
            self.heard_at = Some(ctx.round());
            ctx.broadcast(Word(ctx.id()));
        }
    }
    fn is_idle(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        self.heard_at
    }
}

/// Gossip: every node floods the largest (randomized) token it has
/// seen — exercises per-node RNG streams, multi-source traffic and
/// repeated broadcasts.
struct MaxGossip {
    best: u64,
    log: Vec<(u64, u64)>,
}
impl Protocol for MaxGossip {
    type Msg = Word;
    type Output = (u64, Vec<(u64, u64)>);
    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        use rand::Rng;
        self.best = ctx.rng().gen_range(0..1 << 48);
        let token = self.best;
        ctx.broadcast(Word(token));
    }
    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        let mut improved = false;
        for &(_, Word(w)) in inbox {
            if w > self.best {
                self.best = w;
                improved = true;
            }
        }
        if improved {
            self.log.push((ctx.round(), self.best));
            let token = self.best;
            ctx.broadcast(Word(token));
        }
    }
    fn is_idle(&self) -> bool {
        true
    }
    fn output(&self) -> (u64, Vec<(u64, u64)>) {
        (self.best, self.log.clone())
    }
}

/// The §2 reduction on the unified surface: `Engine::Async` (any
/// `max_delay`, either synchronizer) must produce the flat engine's
/// exact outputs — and the exact payload-side ledger, pulse for round —
/// on gossip and flood protocols, for the same seed and budget.
#[test]
fn async_engine_matches_flat_on_gossip_and_flood() {
    const BUDGET: u64 = 24;

    fn check<P, F>(name: &str, g: &Graph, factory: F)
    where
        P: Protocol,
        P::Output: PartialEq + std::fmt::Debug,
        F: Fn(&congest::Endpoint) -> P + Copy,
    {
        let (flat_out, flat_report) = Session::on(g)
            .seed(17)
            .engine(Engine::Flat { shards: 2 })
            .limits(RunLimits::rounds(BUDGET))
            .run_with(factory);

        for delay in delay_models() {
            for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
                let (async_out, async_report) = Session::on(g)
                    .seed(17)
                    .engine(Engine::Async {
                        delay,
                        sync,
                        fault: FaultModel::None,
                        churn: ChurnModel::None,
                    })
                    .limits(RunLimits::rounds(BUDGET))
                    .run_with(factory);
                assert_eq!(async_out, flat_out, "{name}, {delay:?}, {sync:?}: outputs diverge");

                // The payload ledger matches pulse-for-round — under
                // every delay model and synchronizer (scheduling reorders
                // delivery, never traffic): the asynchronous engine
                // executes the full budget, so its histogram may only
                // extend the flat engine's (quiescent) one with empty
                // pulses.
                let fm = &flat_report.metrics;
                let am = &async_report.metrics;
                assert_eq!(am.messages, fm.messages, "{name}, {delay:?}, {sync:?}");
                assert_eq!(am.total_bits, fm.total_bits, "{name}, {delay:?}, {sync:?}");
                assert_eq!(am.max_message_bits, fm.max_message_bits, "{name}, {delay:?}, {sync:?}");
                let executed = fm.messages_per_round.len();
                assert_eq!(
                    &am.messages_per_round[..executed],
                    &fm.messages_per_round[..],
                    "{name}, {delay:?}, {sync:?}: per-round histogram diverges"
                );
                assert!(
                    am.messages_per_round[executed..].iter().all(|&m| m == 0),
                    "{name}, {delay:?}, {sync:?}: trailing pulses must be empty"
                );
            }
        }
    }

    for (name, g) in workloads() {
        check(name, &g, |e: &congest::Endpoint| Flood { source: e.index == 0, heard_at: None });
        check(name, &g, |_: &congest::Endpoint| MaxGossip { best: 0, log: Vec::new() });
    }
}

/// The async engine is seed-deterministic end to end through the
/// session surface (outputs, ledger and overhead alike).
#[test]
fn async_engine_is_deterministic_via_session() {
    let mut rng = StdRng::seed_from_u64(41);
    let g = generators::gnp(60, 0.1, &mut rng);
    let params = test_params(60);
    // A single-phase probe protocol seeded by the same sampling stage
    // the real runs use; `dist_near_clique_under_alpha_matches_flat`
    // below covers the staged protocol itself.
    let plan = SamplePlan::draw(60, params.lambda, params.p, 7);
    for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
        let run = || {
            Session::on(&g)
                .seed(7)
                .engine(Engine::Async {
                    delay: DelayModel::Uniform { max_delay: 9 },
                    sync,
                    fault: FaultModel::None,
                    churn: ChurnModel::None,
                })
                .limits(RunLimits::rounds(16))
                .run_with(|e| Probe { sampled: plan.in_sample(0, e.index), seen: 0 })
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b, "{sync:?}");
        assert_eq!(ra.metrics, rb.metrics, "{sync:?}");
        assert_eq!(ra.overhead, rb.overhead, "{sync:?}");
    }

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {
        fn bit_size(&self) -> usize {
            8
        }
    }

    struct Probe {
        sampled: bool,
        seen: u64,
    }
    impl Protocol for Probe {
        type Msg = Ping;
        type Output = u64;
        fn init(&mut self, ctx: &mut Context<'_, Ping>) {
            if self.sampled {
                ctx.broadcast(Ping);
            }
        }
        fn step(&mut self, ctx: &mut Context<'_, Ping>, inbox: &[(Port, Ping)]) {
            self.seen += inbox.len() as u64;
            if !inbox.is_empty() && self.seen == inbox.len() as u64 {
                ctx.broadcast(Ping);
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> u64 {
            self.seen
        }
    }
}

/// The acceptance boundary of the scheduling subsystem: the *staged*
/// `DistNearClique` protocol completes under synchronizer α — phase
/// transitions fired by a `PhasePlan` derived from a synchronous dry run
/// (`near_clique_phase_plan`, the §4.1 precomputed schedule) — and its
/// labels, outputs, full payload metrics and phase trace equal the flat
/// engine's, under **all four** delay models.
#[test]
fn dist_near_clique_under_alpha_matches_flat() {
    let acceptance = ["planted", "gnp", "star"];
    for (name, g) in workloads().into_iter().filter(|(n, _)| acceptance.contains(n)) {
        let params = test_params(g.node_count());
        let seed = 11;
        let flat = run_near_clique_with(&g, &params, seed, RunOptions::threaded(1));

        // One schedule serves every delay model: it depends only on
        // (graph, params, seed).
        let plan = near_clique_phase_plan(&g, &params, seed, 1_000_000);
        assert_eq!(
            plan.names(),
            DistNearClique::phase_sequence(params.lambda),
            "{name}: derived schedule must walk the canonical phase order"
        );

        for delay in [
            DelayModel::Uniform { max_delay: 5 },
            DelayModel::PerLink { max_delay: 5 },
            DelayModel::HeavyTailed { max_delay: 5 },
            DelayModel::Adversarial { max_delay: 5 },
        ] {
            for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
                let alpha = run_near_clique_phased(
                    &g,
                    &params,
                    seed,
                    delay,
                    sync,
                    FaultModel::None,
                    ChurnModel::None,
                    &plan,
                );
                assert_eq!(alpha.labels, flat.labels, "{name}, {delay:?}, {sync:?}: labels");
                assert_eq!(alpha.outputs, flat.outputs, "{name}, {delay:?}, {sync:?}: outputs");
                assert_eq!(
                    alpha.metrics, flat.metrics,
                    "{name}, {delay:?}, {sync:?}: payload ledger diverges \
                     (rounds/messages/bits/histogram)"
                );
                assert_eq!(
                    alpha.termination, flat.termination,
                    "{name}, {delay:?}, {sync:?}: termination diverges"
                );
                assert_eq!(
                    alpha.phase_trace, flat.phase_trace,
                    "{name}, {delay:?}, {sync:?}: phase entry rounds diverge"
                );
                assert_eq!(
                    alpha.barrier_rounds, flat.barrier_rounds,
                    "{name}, {delay:?}, {sync:?}: observed barriers diverge"
                );
            }
        }
    }
}

/// The synchronizer contract, as a grid: `SyncModel::Alpha` and
/// `SyncModel::BatchedAlpha` are **bit-identical on outputs and the full
/// payload ledger** across all four delay models and all five workload
/// families, on both a deterministic flood and a randomized gossip —
/// while the batched control plane pays strictly less than α's
/// per-edge Ack/Safe flood.
#[test]
fn batched_alpha_equals_alpha_on_outputs_and_payload_grid() {
    const BUDGET: u64 = 20;

    fn grid<P, F>(kind: &str, g: &Graph, name: &str, factory: F)
    where
        P: Protocol,
        P::Output: PartialEq + std::fmt::Debug,
        F: Fn(&congest::Endpoint) -> P + Copy,
    {
        for delay in [
            DelayModel::Uniform { max_delay: 6 },
            DelayModel::PerLink { max_delay: 6 },
            DelayModel::HeavyTailed { max_delay: 6 },
            DelayModel::Adversarial { max_delay: 6 },
        ] {
            let run = |sync| {
                Session::on(g)
                    .seed(29)
                    .engine(Engine::Async {
                        delay,
                        sync,
                        fault: FaultModel::None,
                        churn: ChurnModel::None,
                    })
                    .limits(RunLimits::rounds(BUDGET))
                    .run_with(factory)
            };
            let (alpha_out, alpha) = run(SyncModel::Alpha);
            let (batched_out, batched) = run(SyncModel::BatchedAlpha);
            assert_eq!(alpha_out, batched_out, "{kind}, {name}, {delay:?}: outputs diverge");
            assert_eq!(
                alpha.metrics, batched.metrics,
                "{kind}, {name}, {delay:?}: payload ledger diverges"
            );
            // What the synchronizer layer is for: the batched Safe waves
            // undercut α's per-edge flood on every one of these
            // workloads (all have 2m > n and mostly-sparse pulses).
            assert!(
                batched.overhead.control_messages < alpha.overhead.control_messages,
                "{kind}, {name}, {delay:?}: batched {} vs alpha {} control messages",
                batched.overhead.control_messages,
                alpha.overhead.control_messages
            );
            assert!(
                batched.overhead.control_bits < alpha.overhead.control_bits,
                "{kind}, {name}, {delay:?}: control bits must shrink too"
            );
        }
    }

    for (name, g) in workloads() {
        grid("flood", &g, name, |e: &congest::Endpoint| Flood {
            source: e.index == 0,
            heard_at: None,
        });
        grid("gossip", &g, name, |_: &congest::Endpoint| MaxGossip { best: 0, log: Vec::new() });
    }
}

/// The fault plane's **masking contract**, as a grid: under the masked
/// fault models — seeded per-send loss ([`FaultModel::Drop`]) and
/// periodic link outages ([`FaultModel::LinkFlap`]) — deterministic
/// retransmission hides every fault from the protocol. Outputs and the
/// payload-side ledger equal the fault-free flat run **bit for bit**
/// across all four delay models, all five workload families and both
/// synchronizers; only the reported overhead (retransmissions = dropped
/// messages, and the virtual completion time) grows. Every assertion
/// prints the `(seed, FaultModel)` pair, which alone replays the
/// failing fault schedule.
#[test]
fn masked_faults_leave_outputs_and_payload_ledger_untouched() {
    const BUDGET: u64 = 20;
    const SEED: u64 = 29;

    fn grid<P, F>(kind: &str, g: &Graph, name: &str, factory: F)
    where
        P: Protocol,
        P::Output: PartialEq + std::fmt::Debug,
        F: Fn(&congest::Endpoint) -> P + Copy,
    {
        let (flat_out, flat) = Session::on(g)
            .seed(SEED)
            .engine(Engine::Flat { shards: 2 })
            .limits(RunLimits::rounds(BUDGET))
            .run_with(factory);

        for fault in
            [FaultModel::Drop { p_millis: 60 }, FaultModel::LinkFlap { down_len: 2, up_len: 5 }]
        {
            for delay in [
                DelayModel::Uniform { max_delay: 6 },
                DelayModel::PerLink { max_delay: 6 },
                DelayModel::HeavyTailed { max_delay: 6 },
                DelayModel::Adversarial { max_delay: 6 },
            ] {
                for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
                    let (out, report) = Session::on(g)
                        .seed(SEED)
                        .engine(Engine::Async { delay, sync, fault, churn: ChurnModel::None })
                        .limits(RunLimits::rounds(BUDGET))
                        .run_with(factory);
                    // `(seed, FaultModel)` replays the fault schedule.
                    let ctx =
                        format!("{kind}, {name}, {delay:?}, {sync:?}, seed {SEED}, {fault:?}");
                    assert_eq!(out, flat_out, "{ctx}: outputs diverge");

                    let fm = &flat.metrics;
                    let am = &report.metrics;
                    assert_eq!(am.messages, fm.messages, "{ctx}: payload message count");
                    assert_eq!(am.total_bits, fm.total_bits, "{ctx}: payload bits");
                    assert_eq!(am.max_message_bits, fm.max_message_bits, "{ctx}: width");
                    let executed = fm.messages_per_round.len();
                    assert_eq!(
                        &am.messages_per_round[..executed],
                        &fm.messages_per_round[..],
                        "{ctx}: per-round payload histogram diverges"
                    );
                    assert!(
                        am.messages_per_round[executed..].iter().all(|&m| m == 0),
                        "{ctx}: trailing pulses must be empty"
                    );

                    // The faults were real — and all of them were masked
                    // by retransmission, none lost.
                    assert!(
                        report.overhead.retransmissions > 0,
                        "{ctx}: the schedule injected no faults"
                    );
                    assert_eq!(
                        report.overhead.dropped_messages, report.overhead.retransmissions,
                        "{ctx}: a masked model loses nothing (dropped = retransmitted)"
                    );
                }
            }
        }
    }

    for (name, g) in workloads() {
        grid("flood", &g, name, |e: &congest::Endpoint| Flood {
            source: e.index == 0,
            heard_at: None,
        });
        grid("gossip", &g, name, |_: &congest::Endpoint| MaxGossip { best: 0, log: Vec::new() });
    }
}

/// Masking holds for the staged protocol too: `run_near_clique_phased`
/// under `Drop`/`LinkFlap` reproduces the synchronous labels, outputs,
/// payload metrics and phase trace exactly, with the §4.1 schedule
/// unchanged — the pulse budgets are virtual-time-free, so masked
/// retransmission (which only stretches virtual time) cannot skew them.
#[test]
fn dist_near_clique_masks_drop_and_link_flap() {
    let seed = 11;
    let (_, g) = workloads().into_iter().find(|(n, _)| *n == "gnp").unwrap();
    let params = test_params(g.node_count());
    let flat = run_near_clique_with(&g, &params, seed, RunOptions::threaded(1));
    let plan = near_clique_phase_plan(&g, &params, seed, 1_000_000);

    let delay = DelayModel::HeavyTailed { max_delay: 5 };
    for fault in
        [FaultModel::Drop { p_millis: 60 }, FaultModel::LinkFlap { down_len: 2, up_len: 5 }]
    {
        for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
            let run = run_near_clique_phased(
                &g,
                &params,
                seed,
                delay,
                sync,
                fault,
                ChurnModel::None,
                &plan,
            );
            let ctx = format!("gnp, {sync:?}, seed {seed}, {fault:?}");
            assert_eq!(run.labels, flat.labels, "{ctx}: labels diverge");
            assert_eq!(run.outputs, flat.outputs, "{ctx}: outputs diverge");
            assert_eq!(run.metrics, flat.metrics, "{ctx}: payload ledger diverges");
            assert_eq!(run.phase_trace, flat.phase_trace, "{ctx}: phase trace diverges");
            assert_eq!(run.termination, flat.termination, "{ctx}: termination diverges");
            assert!(run.overhead.retransmissions > 0, "{ctx}: no faults injected");
            assert_eq!(
                run.overhead.dropped_messages, run.overhead.retransmissions,
                "{ctx}: masked faults lose nothing"
            );
        }
    }
}

/// The §2 reduction **on every schedule**, not one sample per seed: the
/// interleaving explorer exhausts every delivery interleaving a delay
/// bound of 2 admits on a 3-node path — for flood and gossip, under
/// synchronizer α *and* `BatchedAlpha` — and checks every completed
/// schedule against the same flat-engine reference. Both synchronizers
/// reproducing one synchronous ground truth on **all** schedules is the
/// exhaustive form of `async_engine_matches_flat_on_gossip_and_flood`:
/// Alpha ≡ BatchedAlpha ≡ Flat over the whole schedule space, and the
/// state counts pin the exploration as deterministic.
#[test]
fn alpha_and_batched_alpha_match_flat_on_every_schedule() {
    use congest::Explore;

    #[derive(Clone, Debug, Hash)]
    struct XWord(u64);
    impl Message for XWord {
        fn bit_size(&self) -> usize {
            64
        }
    }

    #[derive(Clone, Debug, Hash)]
    struct XFlood {
        source: bool,
        heard_at: Option<u64>,
    }
    impl Protocol for XFlood {
        type Msg = XWord;
        type Output = Option<u64>;
        fn init(&mut self, ctx: &mut Context<'_, XWord>) {
            if self.source {
                self.heard_at = Some(0);
                ctx.broadcast(XWord(ctx.id()));
            }
        }
        fn step(&mut self, ctx: &mut Context<'_, XWord>, inbox: &[(Port, XWord)]) {
            if !inbox.is_empty() && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round());
                ctx.broadcast(XWord(ctx.id()));
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> Option<u64> {
            self.heard_at
        }
    }

    #[derive(Clone, Debug, Hash)]
    struct XGossip {
        best: u64,
    }
    impl Protocol for XGossip {
        type Msg = XWord;
        type Output = u64;
        fn init(&mut self, ctx: &mut Context<'_, XWord>) {
            use rand::Rng;
            self.best = ctx.rng().gen_range(0..1 << 48);
            let token = self.best;
            ctx.broadcast(XWord(token));
        }
        fn step(&mut self, ctx: &mut Context<'_, XWord>, inbox: &[(Port, XWord)]) {
            let mut improved = false;
            for &(_, XWord(w)) in inbox {
                if w > self.best {
                    self.best = w;
                    improved = true;
                }
            }
            if improved {
                let token = self.best;
                ctx.broadcast(XWord(token));
            }
        }
        fn is_idle(&self) -> bool {
            true
        }
        fn output(&self) -> u64 {
            self.best
        }
    }

    let g = path(3);
    for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
        // Flood needs two pulses to cross the path; gossip needs two for
        // the max to travel end to end. check_flat is on by default, so
        // every completed schedule is held against the flat reference.
        let flood = Explore::on(&g)
            .seed(17)
            .bound(2)
            .budget(2)
            .sync(sync)
            .run_with(|e: &congest::Endpoint| XFlood { source: e.index == 0, heard_at: None });
        assert!(flood.is_clean(), "flood under {sync:?}: {:?}", flood.violations);
        assert!(flood.deduped > 0, "flood under {sync:?} must branch and reconverge");

        let gossip = Explore::on(&g)
            .seed(17)
            .bound(2)
            .budget(2)
            .sync(sync)
            .run_with(|_: &congest::Endpoint| XGossip { best: 0 });
        assert!(gossip.is_clean(), "gossip under {sync:?}: {:?}", gossip.violations);
        assert!(gossip.deduped > 0, "gossip under {sync:?} must branch and reconverge");
    }

    // Determinism pin: the exploration itself is reproducible — same
    // state graph, same walk, both synchronizers.
    for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
        let a = Explore::on(&g)
            .seed(17)
            .bound(2)
            .budget(2)
            .sync(sync)
            .run_with(|e: &congest::Endpoint| XFlood { source: e.index == 0, heard_at: None });
        let b = Explore::on(&g)
            .seed(17)
            .bound(2)
            .budget(2)
            .sync(sync)
            .run_with(|e: &congest::Endpoint| XFlood { source: e.index == 0, heard_at: None });
        assert_eq!(
            (a.states, a.schedules, a.deduped, a.max_depth),
            (b.states, b.schedules, b.deduped, b.max_depth),
            "exploration must be deterministic under {sync:?}"
        );
    }
}
