//! Property test locking the determinism contract into the unified
//! [`congest::Session`] surface: for random G(n,p) graphs and seeds, a
//! randomized protocol run is **bit-identical** across
//! `Engine::Flat { shards: 1 }`, `Engine::Flat { shards: 4 }` and
//! `Engine::Legacy` — per-node outputs, the full metrics structure
//! (per-round histogram included) and termination.
//!
//! The protocol below deliberately leans on everything the contract
//! covers: per-node RNG streams (random payloads *and* random ports),
//! multi-message trains on single ports (CONGEST pipelining), and
//! data-dependent sends.

use congest::{
    ChurnModel, ChurnPolicy, Context, DelayModel, Engine, FaultModel, Message, Port, Protocol,
    RunLimits, Session, SyncModel, Termination,
};
use graphs::generators;
use nearclique::{
    near_clique_phase_plan, run_near_clique_phased, run_near_clique_with, DistNearClique,
    NearCliqueParams, RunOptions,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug)]
struct Token(u64);

impl Message for Token {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Randomized gossip: every node keeps a rolling hash of everything it
/// heard (order-sensitive within a round) and, for a few rounds, sends
/// fresh random tokens to randomly drawn ports — sometimes several to
/// the same port in one round, so trains pipeline.
struct RandomGossip {
    bursts_left: u32,
    acc: u64,
}

impl Protocol for RandomGossip {
    type Msg = Token;
    type Output = u64;

    fn init(&mut self, ctx: &mut Context<'_, Token>) {
        let degree = ctx.degree();
        if degree == 0 {
            self.bursts_left = 0;
            return;
        }
        let token = ctx.rng().gen_range(0..u64::MAX);
        ctx.broadcast(Token(token));
    }

    fn step(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(Port, Token)]) {
        for &(port, Token(w)) in inbox {
            self.acc = self
                .acc
                .rotate_left(7)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(w ^ port as u64);
        }
        if self.bursts_left > 0 && !inbox.is_empty() {
            self.bursts_left -= 1;
            let degree = ctx.degree();
            for _ in 0..3 {
                let port = ctx.rng().gen_range(0..degree);
                let token = ctx.rng().gen_range(0..u64::MAX);
                ctx.send(port, Token(token));
            }
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) -> u64 {
        self.acc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random sparse graphs, random seeds: the three synchronous engine
    /// configurations agree bit for bit through one `Session` entry.
    #[test]
    fn session_runs_are_bit_identical_across_engines(
        n in 8usize..48,
        edge_factor in 1usize..5,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let p = (edge_factor as f64) * 2.0 / n as f64;
        let g = generators::gnp(n, p.min(0.6), &mut rng);

        let run = |engine| {
            Session::on(&g)
                .seed(run_seed)
                .engine(engine)
                .limits(RunLimits::rounds(200))
                .run_with(|_| RandomGossip { bursts_left: 4, acc: 0 })
        };

        let (flat1_out, flat1) = run(Engine::Flat { shards: 1 });
        let (flat4_out, flat4) = run(Engine::Flat { shards: 4 });
        let (legacy_out, legacy) = run(Engine::Legacy);

        prop_assert_eq!(&flat1_out, &flat4_out, "shard counts diverge");
        prop_assert_eq!(&flat1_out, &legacy_out, "flat vs legacy diverge");
        prop_assert_eq!(&flat1.metrics, &flat4.metrics, "shard-count metrics diverge");
        prop_assert_eq!(&flat1.metrics, &legacy.metrics, "engine metrics diverge");
        prop_assert_eq!(flat1.termination, flat4.termination);
        prop_assert_eq!(flat1.termination, legacy.termination);
        // The workload itself must be non-trivial and finish.
        prop_assert_eq!(flat1.termination, Termination::Quiescent);
        prop_assert!(flat1.metrics.messages > 0 || g.edge_count() == 0);
    }

    /// The §4.1 schedule contract on random G(n,p): a `PhasePlan` derived
    /// from a synchronous `DistNearClique` run enters phases in exactly
    /// the order of the sync engine's `phase_trace` names (= the
    /// protocol's canonical phase sequence), and replaying that plan on
    /// the asynchronous engine reproduces the same trace and labels.
    #[test]
    fn phase_plan_order_matches_sync_phase_trace(
        n in 8usize..40,
        edge_factor in 1usize..5,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
        lambda in 1u32..4,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let p = (edge_factor as f64) * 2.0 / n as f64;
        let g = generators::gnp(n, p.min(0.6), &mut rng);
        let params = NearCliqueParams::for_expected_sample(0.25, 4.0, n)
            .expect("valid params")
            .with_lambda(lambda);

        let sync = run_near_clique_with(&g, &params, run_seed, RunOptions::threaded(1));
        prop_assert_eq!(sync.termination, Termination::Quiescent);
        let plan = near_clique_phase_plan(&g, &params, run_seed, 1_000_000);

        let sync_names: Vec<&'static str> =
            sync.phase_trace.iter().map(|&(_, name, _)| name).collect();
        prop_assert_eq!(&plan.names(), &sync_names, "plan order diverges from the sync trace");
        prop_assert_eq!(&sync_names, &DistNearClique::phase_sequence(lambda));

        let alpha = run_near_clique_phased(
            &g,
            &params,
            run_seed,
            DelayModel::Uniform { max_delay: 3 },
            SyncModel::Alpha,
            FaultModel::None,
            ChurnModel::None,
            &plan,
        );
        prop_assert_eq!(&alpha.phase_trace, &sync.phase_trace);
        prop_assert_eq!(&alpha.labels, &sync.labels);
        prop_assert_eq!(&alpha.metrics, &sync.metrics);
    }

    /// Regression for the slab-backed event plane (timing wheel +
    /// rotating inboxes): `PhasePlan`-driven phased runs still match the
    /// flat engine **bit for bit** on random G(n,p), under every delay
    /// model and random bounds — labels, the full payload `Metrics`
    /// (per-pulse histogram and barrier count included) and the phase
    /// trace. The delay bound varies so the wheel's horizon (and, for
    /// the per-port models, its *compiled* tighter bound) is exercised
    /// at many sizes.
    #[test]
    fn phased_alpha_runs_match_flat_under_every_delay_model(
        n in 8usize..36,
        edge_factor in 1usize..5,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
        model_pick in 0usize..4,
        max_delay in 1u64..24,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let p = (edge_factor as f64) * 2.0 / n as f64;
        let g = generators::gnp(n, p.min(0.6), &mut rng);
        let params = NearCliqueParams::for_expected_sample(0.25, 4.0, n).expect("valid params");

        let sync = run_near_clique_with(&g, &params, run_seed, RunOptions::threaded(1));
        prop_assert_eq!(sync.termination, Termination::Quiescent);

        let plan = near_clique_phase_plan(&g, &params, run_seed, 1_000_000);
        let delay = match model_pick {
            0 => DelayModel::Uniform { max_delay },
            1 => DelayModel::PerLink { max_delay },
            2 => DelayModel::HeavyTailed { max_delay },
            _ => DelayModel::Adversarial { max_delay },
        };
        let alpha = run_near_clique_phased(
            &g,
            &params,
            run_seed,
            delay,
            SyncModel::Alpha,
            FaultModel::None,
            ChurnModel::None,
            &plan,
        );
        prop_assert_eq!(&alpha.labels, &sync.labels, "{:?}", delay);
        prop_assert_eq!(&alpha.metrics, &sync.metrics, "{:?}", delay);
        prop_assert_eq!(&alpha.phase_trace, &sync.phase_trace, "{:?}", delay);
        prop_assert_eq!(alpha.termination, Termination::Quiescent, "{:?}", delay);
    }

    /// The synchronizer-layer contract on random G(n,p): a
    /// `BatchedAlpha` phased run — safety piggybacked on payloads, idle
    /// edges cleared by coalesced Safe waves — reproduces the flat
    /// engine's labels, full payload `Metrics` and phase trace bit for
    /// bit, under every delay model and random bounds, while paying at
    /// most α's control traffic.
    #[test]
    fn phased_batched_alpha_runs_match_flat(
        n in 8usize..36,
        edge_factor in 1usize..5,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
        model_pick in 0usize..4,
        max_delay in 1u64..24,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let p = (edge_factor as f64) * 2.0 / n as f64;
        let g = generators::gnp(n, p.min(0.6), &mut rng);
        let params = NearCliqueParams::for_expected_sample(0.25, 4.0, n).expect("valid params");

        let sync = run_near_clique_with(&g, &params, run_seed, RunOptions::threaded(1));
        prop_assert_eq!(sync.termination, Termination::Quiescent);

        let plan = near_clique_phase_plan(&g, &params, run_seed, 1_000_000);
        let delay = match model_pick {
            0 => DelayModel::Uniform { max_delay },
            1 => DelayModel::PerLink { max_delay },
            2 => DelayModel::HeavyTailed { max_delay },
            _ => DelayModel::Adversarial { max_delay },
        };
        let batched = run_near_clique_phased(
            &g,
            &params,
            run_seed,
            delay,
            SyncModel::BatchedAlpha,
            FaultModel::None,
            ChurnModel::None,
            &plan,
        );
        prop_assert_eq!(&batched.labels, &sync.labels, "{:?}", delay);
        prop_assert_eq!(&batched.metrics, &sync.metrics, "{:?}", delay);
        prop_assert_eq!(&batched.phase_trace, &sync.phase_trace, "{:?}", delay);
        prop_assert_eq!(batched.termination, Termination::Quiescent, "{:?}", delay);

        let alpha = run_near_clique_phased(
            &g,
            &params,
            run_seed,
            delay,
            SyncModel::Alpha,
            FaultModel::None,
            ChurnModel::None,
            &plan,
        );
        prop_assert!(
            batched.overhead.control_messages <= alpha.overhead.control_messages,
            "batched {} vs alpha {} control messages ({:?})",
            batched.overhead.control_messages,
            alpha.overhead.control_messages,
            delay
        );
    }

    /// The fault plane's masking contract on random G(n,p) graphs: a
    /// phased `DistNearClique` run under seeded message loss (`Drop`)
    /// or periodic link outages (`LinkFlap`) — with random fault
    /// parameters, delay model, bound and synchronizer — reproduces the
    /// synchronous engine's labels, full payload `Metrics` and phase
    /// trace bit for bit, still quiescing; only the overhead grows,
    /// with every drop accounted as exactly one retransmission. Every
    /// assertion prints `(run_seed, FaultModel)`, which alone replays
    /// the failing fault schedule.
    #[test]
    fn masked_faults_preserve_phased_runs_on_gnp(
        n in 8usize..36,
        edge_factor in 1usize..5,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
        model_pick in 0usize..4,
        max_delay in 1u64..12,
        sync_pick in 0usize..2,
        fault_pick in 0usize..2,
        p_millis in 1u32..150,
        down_len in 1u64..4,
        up_len in 2u64..8,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let p = (edge_factor as f64) * 2.0 / n as f64;
        let g = generators::gnp(n, p.min(0.6), &mut rng);
        let params = NearCliqueParams::for_expected_sample(0.25, 4.0, n).expect("valid params");

        let sync = run_near_clique_with(&g, &params, run_seed, RunOptions::threaded(1));
        prop_assert_eq!(sync.termination, Termination::Quiescent);

        let plan = near_clique_phase_plan(&g, &params, run_seed, 1_000_000);
        let delay = match model_pick {
            0 => DelayModel::Uniform { max_delay },
            1 => DelayModel::PerLink { max_delay },
            2 => DelayModel::HeavyTailed { max_delay },
            _ => DelayModel::Adversarial { max_delay },
        };
        let sync_model = if sync_pick == 0 { SyncModel::Alpha } else { SyncModel::BatchedAlpha };
        let fault = if fault_pick == 0 {
            FaultModel::Drop { p_millis }
        } else {
            FaultModel::LinkFlap { down_len, up_len }
        };

        let faulty =
            run_near_clique_phased(&g, &params, run_seed, delay, sync_model, fault, ChurnModel::None, &plan);
        prop_assert_eq!(
            &faulty.labels, &sync.labels,
            "seed {}, {:?}, {:?}, {:?}: labels", run_seed, fault, delay, sync_model
        );
        prop_assert_eq!(
            &faulty.metrics, &sync.metrics,
            "seed {}, {:?}, {:?}, {:?}: payload ledger", run_seed, fault, delay, sync_model
        );
        prop_assert_eq!(
            &faulty.phase_trace, &sync.phase_trace,
            "seed {}, {:?}, {:?}, {:?}: phase trace", run_seed, fault, delay, sync_model
        );
        prop_assert_eq!(
            faulty.termination, Termination::Quiescent,
            "seed {}, {:?}, {:?}, {:?}: termination", run_seed, fault, delay, sync_model
        );
        prop_assert_eq!(
            faulty.overhead.dropped_messages, faulty.overhead.retransmissions,
            "seed {}, {:?}, {:?}, {:?}: masked faults lose nothing",
            run_seed, fault, delay, sync_model
        );
    }

    /// The record/replay bridge between sampled runs and the
    /// interleaving explorer's trace format: recording the realized
    /// delay draws of a *sampled* asynchronous run (any delay model,
    /// either synchronizer, masked faults included) as a `DelayTrace`,
    /// round-tripping it through its committable text form, and
    /// replaying it through the ordinary `Engine::Async` via
    /// `DelayModel::Replay` reproduces the run **bit for bit** —
    /// per-node outputs, the full payload `Metrics`, and the
    /// `SyncOverhead` ledger (virtual completion time included).
    #[test]
    fn recorded_async_runs_replay_bit_identically(
        n in 4usize..12,
        edge_factor in 1usize..4,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
        model_pick in 0usize..4,
        max_delay in 1u64..8,
        sync_pick in 0usize..2,
        fault_pick in 0usize..3,
        p_millis in 1u32..200,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let p = (edge_factor as f64) * 2.0 / n as f64;
        let g = generators::gnp(n, p.min(0.6), &mut rng);

        let delay = match model_pick {
            0 => DelayModel::Uniform { max_delay },
            1 => DelayModel::PerLink { max_delay },
            2 => DelayModel::HeavyTailed { max_delay },
            _ => DelayModel::Adversarial { max_delay },
        };
        let sync_model = if sync_pick == 0 { SyncModel::Alpha } else { SyncModel::BatchedAlpha };
        let fault = match fault_pick {
            0 => FaultModel::None,
            1 => FaultModel::Drop { p_millis },
            _ => FaultModel::LinkFlap { down_len: 2, up_len: 5 },
        };
        let make = |_: &congest::Endpoint| RandomGossip { bursts_left: 2, acc: 0 };

        let (outputs, report, trace) = congest::explore::record_run(
            &g,
            run_seed,
            delay,
            sync_model,
            fault,
            RunLimits::rounds(12),
            make,
        );

        // Round-trip through the committable text form first: the
        // replayed model is exactly what a regression fixture would
        // load from disk.
        let reloaded = congest::DelayTrace::from_text(&trace.to_text())
            .expect("recorded traces serialize losslessly");
        prop_assert_eq!(&reloaded, &trace);

        let (re_out, re_report) = Session::on(&g)
            .seed(run_seed)
            .engine(Engine::Async { delay: reloaded.register(), sync: sync_model, fault, churn: ChurnModel::None })
            .limits(RunLimits::rounds(12))
            .run_with(make);
        prop_assert_eq!(
            &re_out, &outputs,
            "seed {}, {:?}, {:?}, {:?}: replayed outputs", run_seed, delay, sync_model, fault
        );
        prop_assert_eq!(
            &re_report.metrics, &report.metrics,
            "seed {}, {:?}, {:?}, {:?}: replayed payload ledger",
            run_seed, delay, sync_model, fault
        );
        prop_assert_eq!(
            &re_report.overhead, &report.overhead,
            "seed {}, {:?}, {:?}, {:?}: replayed sync overhead",
            run_seed, delay, sync_model, fault
        );
        prop_assert_eq!(re_report.termination, report.termination);
    }

    /// The churn plane's determinism contract on random G(n,p): a
    /// churned run — staggered joins, graceful leaves, or both, under
    /// either handoff policy — is a pure function of
    /// `(seed, ChurnModel)`. Under **every** delay model and **both**
    /// synchronizers, replaying the same pair reproduces per-node
    /// outputs, the payload `Metrics`, the `SyncOverhead` ledger (churn
    /// counters included) and the per-epoch membership timeline **bit
    /// for bit**.
    #[test]
    fn churned_runs_replay_bit_for_bit_on_gnp(
        n in 8usize..28,
        edge_factor in 1usize..5,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
        churn_pick in 0usize..3,
        movers in 1u32..4,
        at_pulse in 1u64..8,
        spacing in 0u64..3,
        restart in proptest::bool::ANY,
        max_delay in 1u64..8,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let p = (edge_factor as f64) * 2.0 / n as f64;
        let g = generators::gnp(n, p.min(0.6), &mut rng);
        let policy = if restart { ChurnPolicy::Restart } else { ChurnPolicy::Continue };
        let churn = match churn_pick {
            0 => ChurnModel::Join { joiners: movers, at_pulse, spacing, policy },
            1 => ChurnModel::Leave { leavers: movers, at_pulse, spacing, policy },
            _ => ChurnModel::Mixed { joiners: movers, leavers: movers, at_pulse, spacing, policy },
        };
        for delay in [
            DelayModel::Uniform { max_delay },
            DelayModel::PerLink { max_delay },
            DelayModel::HeavyTailed { max_delay },
            DelayModel::Adversarial { max_delay },
        ] {
            for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
                let run = || {
                    Session::on(&g)
                        .seed(run_seed)
                        .engine(Engine::Async { delay, sync, fault: FaultModel::None, churn })
                        .limits(RunLimits::rounds(24))
                        .run_with(|_| RandomGossip { bursts_left: 2, acc: 0 })
                };
                let (out_a, rep_a) = run();
                let (out_b, rep_b) = run();
                prop_assert_eq!(
                    &out_a, &out_b,
                    "seed {}, {:?}, {:?}, {:?}: churned outputs", run_seed, churn, delay, sync
                );
                prop_assert_eq!(
                    &rep_a.metrics, &rep_b.metrics,
                    "seed {}, {:?}, {:?}, {:?}: churned payload ledger",
                    run_seed, churn, delay, sync
                );
                prop_assert_eq!(
                    &rep_a.overhead, &rep_b.overhead,
                    "seed {}, {:?}, {:?}, {:?}: churned sync overhead",
                    run_seed, churn, delay, sync
                );
                prop_assert_eq!(
                    &rep_a.epochs, &rep_b.epochs,
                    "seed {}, {:?}, {:?}, {:?}: epoch timeline",
                    run_seed, churn, delay, sync
                );
                prop_assert_eq!(rep_a.termination, rep_b.termination);
                prop_assert_eq!(
                    rep_a.overhead.epochs,
                    rep_a.overhead.joins + rep_a.overhead.leaves,
                    "every epoch is opened by exactly one membership event"
                );
            }
        }
    }
}
