//! Plain-text edge-list input/output.
//!
//! The experiments use generated graphs, but a downstream user will want
//! to run the algorithm on their own data. The format is the common
//! whitespace-separated edge list: one `u v` pair per line, `#`-prefixed
//! comment lines ignored, node ids `0..n` (with `n` inferred from the
//! largest endpoint unless given explicitly).
//!
//! # Examples
//!
//! ```
//! let text = "# a triangle plus an isolated node\n0 1\n1 2\n2 0\n";
//! let g = graphs::io::parse_edge_list(text, Some(4))?;
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 3);
//! let round_trip = graphs::io::to_edge_list(&g);
//! let g2 = graphs::io::parse_edge_list(&round_trip, Some(4))?;
//! assert_eq!(g2.edge_count(), 3);
//! # Ok::<(), graphs::io::ParseGraphError>(())
//! ```

use std::fmt;

use crate::graph::{Graph, GraphBuilder};

/// Error parsing an edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseGraphError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge list line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseGraphError {}

/// Parses a whitespace-separated edge list.
///
/// `n` fixes the node count; `None` infers `max endpoint + 1`. Duplicate
/// edges are deduplicated; self-loops are rejected.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines, out-of-range endpoints
/// (when `n` is given), or self-loops.
pub fn parse_edge_list(text: &str, n: Option<usize>) -> Result<Graph, ParseGraphError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_node = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |reason: String| ParseGraphError { line: lineno + 1, reason };
        let u: usize = parts
            .next()
            .ok_or_else(|| err("missing first endpoint".into()))?
            .parse()
            .map_err(|e| err(format!("bad first endpoint: {e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| err("missing second endpoint".into()))?
            .parse()
            .map_err(|e| err(format!("bad second endpoint: {e}")))?;
        if parts.next().is_some() {
            return Err(err("trailing tokens after edge".into()));
        }
        if u == v {
            return Err(err(format!("self-loop at node {u}")));
        }
        if let Some(n) = n {
            if u >= n || v >= n {
                return Err(err(format!("endpoint out of range for n = {n}")));
            }
        }
        max_node = max_node.max(u).max(v);
        edges.push((u, v));
    }
    let n = n.unwrap_or(if edges.is_empty() { 0 } else { max_node + 1 });
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges);
    Ok(b.build())
}

/// Serializes a graph as an edge list (one `u v` line per edge, with a
/// header comment recording the node count).
#[must_use]
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = format!("# nodes: {}\n# edges: {}\n", g.node_count(), g.edge_count());
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_comments_and_blanks() {
        let g = parse_edge_list("# c\n\n0 1\n 1 2 \n", None).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn infers_node_count() {
        let g = parse_edge_list("0 5\n", None).unwrap();
        assert_eq!(g.node_count(), 6);
    }

    #[test]
    fn explicit_node_count_validates() {
        assert!(parse_edge_list("0 5\n", Some(6)).is_ok());
        let err = parse_edge_list("0 5\n", Some(5)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list("0\n", None).is_err());
        assert!(parse_edge_list("a b\n", None).is_err());
        assert!(parse_edge_list("0 1 2\n", None).is_err());
        let loop_err = parse_edge_list("0 1\n3 3\n", None).unwrap_err();
        assert!(loop_err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("", None).unwrap();
        assert_eq!(g.node_count(), 0);
        let g2 = parse_edge_list("# only comments\n", Some(7)).unwrap();
        assert_eq!(g2.node_count(), 7);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn round_trip() {
        let original = crate::Graph::complete(5);
        let text = to_edge_list(&original);
        assert!(text.starts_with("# nodes: 5"));
        let parsed = parse_edge_list(&text, Some(5)).unwrap();
        assert_eq!(parsed.edge_count(), 10);
        assert!(original.edges().eq(parsed.edges()));
    }

    #[test]
    fn dedupes() {
        let g = parse_edge_list("0 1\n1 0\n0 1\n", None).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
