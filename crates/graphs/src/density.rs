//! The paper's density and approximate-neighborhood kernels.
//!
//! This module is the *centralized reference semantics* for everything the
//! distributed protocol computes:
//!
//! * [`directed_internal_edges`] / [`density`] / [`is_near_clique`] —
//!   Definition 1 of the paper (each undirected edge counted as two
//!   anti-symmetric directed edges; a set `D` is ε-near clique when its
//!   directed internal edge count is at least `(1 − ε)·|D|·(|D| − 1)`).
//! * [`k_eps`] — Equation (1): `K_ε(X) = { v : |Γ(v) ∩ X| ≥ (1 − ε)|X| }`.
//! * [`t_eps`] — Equation (2): `T_ε(X) = K_ε(K_{2ε²}(X)) ∩ K_{2ε²}(X)`.
//! * [`core_c`] — the set `C = K_{ε²}(D) ∩ D` of §5.2.
//!
//! # Examples
//!
//! ```
//! use graphs::{Graph, bitset::FixedBitSet, density};
//!
//! let g = Graph::complete(10);
//! let all = FixedBitSet::full(10);
//! assert_eq!(density::density(&g, &all), 1.0);
//! assert!(density::is_near_clique(&g, &all, 0.0));
//! // In a clique, K_ε(X) is everyone, hence so is T_ε(X).
//! assert_eq!(density::t_eps(&g, &all, 0.25).len(), 10);
//! ```

use crate::bitset::FixedBitSet;
use crate::graph::Graph;

/// Number of *directed* edges internal to `set`, i.e.
/// `|{(u,v) ∈ set×set : {u,v} ∈ E}|` (Definition 1 counts each undirected
/// edge twice).
///
/// # Panics
///
/// Panics if `set.capacity() != g.node_count()`.
#[must_use]
pub fn directed_internal_edges(g: &Graph, set: &FixedBitSet) -> usize {
    assert_eq!(set.capacity(), g.node_count(), "set capacity must equal node count");
    set.iter().map(|v| g.degree_into(v, set)).sum()
}

/// Density of `set` per Definition 1: directed internal edges divided by
/// `|set|·(|set| − 1)`.
///
/// Degenerate sets (size 0 or 1) have density 1 by convention: they satisfy
/// the ε-near-clique inequality vacuously for every ε.
///
/// # Panics
///
/// Panics if `set.capacity() != g.node_count()`.
#[must_use]
pub fn density(g: &Graph, set: &FixedBitSet) -> f64 {
    let s = set.len();
    if s <= 1 {
        return 1.0;
    }
    directed_internal_edges(g, set) as f64 / (s as f64 * (s as f64 - 1.0))
}

/// Whether `set` is an ε-near clique (Definition 1):
/// `directed_internal_edges ≥ (1 − ε)·|set|·(|set| − 1)`.
///
/// The comparison is done in exact integer arithmetic where possible to
/// avoid accepting sets on floating-point noise.
///
/// # Panics
///
/// Panics if `set.capacity() != g.node_count()` or `epsilon` is not in
/// `[0, 1]`.
#[must_use]
pub fn is_near_clique(g: &Graph, set: &FixedBitSet, epsilon: f64) -> bool {
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1], got {epsilon}");
    let s = set.len();
    if s <= 1 {
        return true;
    }
    let pairs = (s * (s - 1)) as f64;
    directed_internal_edges(g, set) as f64 >= (1.0 - epsilon) * pairs - 1e-9
}

/// The smallest ε for which `set` is an ε-near clique, i.e. `1 − density`.
///
/// # Panics
///
/// Panics if `set.capacity() != g.node_count()`.
#[must_use]
pub fn near_clique_epsilon(g: &Graph, set: &FixedBitSet) -> f64 {
    (1.0 - density(g, set)).max(0.0)
}

/// The ε-approximate common-neighborhood set of Equation (1):
/// `K_ε(X) = { v ∈ V : |Γ(v) ∩ X| ≥ (1 − ε)|X \ {v}| }`.
///
/// The paper writes the threshold as `(1 − ε)|X|`, but its strict
/// definition `K(V′) = { v : Γ(v) ⊇ V′ \ {v} }` (§4, "the basic idea")
/// — and the key observation `D ⊆ K(D)` for cliques that the whole
/// construction rests on — measures `v` against `X` *without itself*
/// (`Γ(v)` never contains `v`). We therefore use `|X \ {v}|` on the
/// right-hand side, which coincides with the paper's formula for all
/// `v ∉ X` and makes `K_0(X)` agree with the strict `K(X)` for `v ∈ X`.
/// `K_ε(∅) = V` (vacuous threshold), matching the formula.
///
/// # Panics
///
/// Panics if `x.capacity() != g.node_count()` or `epsilon ∉ [0, 1]`.
#[must_use]
pub fn k_eps(g: &Graph, x: &FixedBitSet, epsilon: f64) -> FixedBitSet {
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1], got {epsilon}");
    assert_eq!(x.capacity(), g.node_count(), "set capacity must equal node count");
    let n = g.node_count();
    let size = x.len();
    // Integer thresholds: |Γ(v) ∩ X| ≥ ceil((1 − ε)·|X \ {v}|) avoids float
    // comparisons on the hot path. (1 − ε)|X| may itself be integral; a tiny
    // slack keeps exact-threshold cases (e.g. ε = 0) correct.
    let threshold = |base: usize| ((1.0 - epsilon) * base as f64 - 1e-9).ceil().max(0.0) as usize;
    let threshold_out = threshold(size);
    let threshold_in = threshold(size.saturating_sub(1));
    let mut out = FixedBitSet::new(n);
    for v in 0..n {
        let t = if x.contains(v) { threshold_in } else { threshold_out };
        if g.degree_into(v, x) >= t {
            out.insert(v);
        }
    }
    out
}

/// The strict common-neighborhood set `K(X) = K_0(X)`: nodes adjacent to
/// *all* nodes of `X` (other than themselves).
///
/// # Panics
///
/// Panics if `x.capacity() != g.node_count()`.
#[must_use]
pub fn k_strict(g: &Graph, x: &FixedBitSet) -> FixedBitSet {
    k_eps(g, x, 0.0)
}

/// The candidate-set operator of Equation (2):
/// `T_ε(X) = K_ε(K_{2ε²}(X)) ∩ K_{2ε²}(X)`.
///
/// # Panics
///
/// Panics if `x.capacity() != g.node_count()` or `epsilon ∉ [0, 1]`.
#[must_use]
pub fn t_eps(g: &Graph, x: &FixedBitSet, epsilon: f64) -> FixedBitSet {
    let inner_eps = 2.0 * epsilon * epsilon;
    let k_inner = k_eps(g, x, inner_eps.min(1.0));
    let mut out = k_eps(g, &k_inner, epsilon);
    out.intersect_with(&k_inner);
    out
}

/// The strict variant `T(X) = K(K(X)) ∩ K(X)` used in the paper's "basic
/// idea" discussion (§4): if `D` is a clique then `D ⊆ T(D)` and `T(D)` is
/// itself a clique.
///
/// # Panics
///
/// Panics if `x.capacity() != g.node_count()`.
#[must_use]
pub fn t_strict(g: &Graph, x: &FixedBitSet) -> FixedBitSet {
    let k = k_strict(g, x);
    let mut out = k_strict(g, &k);
    out.intersect_with(&k);
    out
}

/// The core `C = K_{ε²}(D) ∩ D` of §5.2: members of the near-clique `D`
/// that are adjacent to all but an ε² fraction of `D`.
///
/// Lemma 5.4 guarantees `|C| ≥ (1 − ε)|D| − 1/ε²` when `D` is an ε³-near
/// clique.
///
/// # Panics
///
/// Panics if `d.capacity() != g.node_count()` or `epsilon ∉ [0, 1]`.
#[must_use]
pub fn core_c(g: &Graph, d: &FixedBitSet, epsilon: f64) -> FixedBitSet {
    let mut c = k_eps(g, d, (epsilon * epsilon).min(1.0));
    c.intersect_with(d);
    c
}

/// The Lemma 5.3 guarantee for a candidate: a non-empty `T_ε(X)` of size
/// `t` is an `(n/t)·ε`-near clique. Returns that bound (may exceed 1, in
/// which case the lemma is vacuous).
#[must_use]
pub fn lemma_5_3_bound(n: usize, t: usize, epsilon: f64) -> f64 {
    if t == 0 {
        return 1.0;
    }
    (n as f64 / t as f64) * epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn clique_plus_pendant(k: usize) -> Graph {
        // Nodes 0..k form a clique; node k hangs off node 0.
        let mut b = GraphBuilder::new(k + 1);
        b.add_clique(&(0..k).collect::<Vec<_>>());
        b.add_edge(0, k);
        b.build()
    }

    #[test]
    fn density_of_clique_is_one() {
        let g = Graph::complete(6);
        let all = FixedBitSet::full(6);
        assert_eq!(directed_internal_edges(&g, &all), 6 * 5);
        assert_eq!(density(&g, &all), 1.0);
        assert!(is_near_clique(&g, &all, 0.0));
    }

    #[test]
    fn density_of_independent_set_is_zero() {
        let g = Graph::empty(5);
        let all = FixedBitSet::full(5);
        assert_eq!(density(&g, &all), 0.0);
        assert!(!is_near_clique(&g, &all, 0.5));
        assert!(is_near_clique(&g, &all, 1.0));
    }

    #[test]
    fn degenerate_sets_have_density_one() {
        let g = Graph::empty(3);
        let empty = FixedBitSet::new(3);
        let single = FixedBitSet::from_iter_with_capacity(3, [1]);
        assert_eq!(density(&g, &empty), 1.0);
        assert_eq!(density(&g, &single), 1.0);
        assert!(is_near_clique(&g, &single, 0.0));
    }

    #[test]
    fn near_clique_epsilon_matches_missing_fraction() {
        // 4-clique minus one edge: 10 directed internal edges of 12.
        let mut b = GraphBuilder::new(4);
        b.add_clique(&[0, 1, 2, 3]);
        let g = b.build();
        let mut b2 = GraphBuilder::new(4);
        for (u, v) in g.edges() {
            if (u, v) != (2, 3) {
                b2.add_edge(u, v);
            }
        }
        let g2 = b2.build();
        let all = FixedBitSet::full(4);
        let eps = near_clique_epsilon(&g2, &all);
        assert!((eps - 2.0 / 12.0).abs() < 1e-12);
        assert!(is_near_clique(&g2, &all, 2.0 / 12.0));
        assert!(!is_near_clique(&g2, &all, 0.1));
    }

    #[test]
    fn k_strict_requires_all_edges() {
        let g = clique_plus_pendant(4);
        // X = {1, 2}: nodes adjacent to both are 0, 3 (and each of 1, 2 is
        // adjacent to the other, so Γ(v) ⊇ X \ {v} holds for them too).
        let x = FixedBitSet::from_iter_with_capacity(5, [1, 2]);
        let k = k_strict(&g, &x);
        assert_eq!(k.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn k_eps_of_empty_set_is_everything() {
        let g = Graph::empty(4);
        let k = k_eps(&g, &FixedBitSet::new(4), 0.3);
        assert_eq!(k.len(), 4);
    }

    #[test]
    fn k_eps_threshold_rounding_is_exact_at_eps_zero() {
        let g = clique_plus_pendant(3);
        let x = FixedBitSet::from_iter_with_capacity(4, [0, 1, 2]);
        // With eps = 0 every member of K must see all of X (minus self).
        let k = k_eps(&g, &x, 0.0);
        assert_eq!(k.to_vec(), vec![0, 1, 2]);
        // The pendant (node 3) sees only node 0: 1 of 3 < (1 − 0.5)·3? With
        // eps = 0.7 the threshold is ceil(0.9) = 1, so it qualifies.
        let k2 = k_eps(&g, &x, 0.7);
        assert!(k2.contains(3));
    }

    #[test]
    fn t_strict_of_clique_contains_clique_and_is_clique() {
        // Paper §4 "basic idea": D clique ⊆ T(D), and T(D) is a clique.
        let g = clique_plus_pendant(5);
        let d = FixedBitSet::from_iter_with_capacity(6, 0..5);
        let t = t_strict(&g, &d);
        assert!(d.is_subset(&t));
        assert!(is_near_clique(&g, &t, 0.0), "T(D) must be a clique");
    }

    #[test]
    fn t_eps_on_clique_is_whole_clique() {
        let g = Graph::complete(8);
        let x = FixedBitSet::from_iter_with_capacity(8, [0, 3, 5]);
        let t = t_eps(&g, &x, 0.2);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn core_c_lemma_5_4_bound_holds_on_planted_instance() {
        // Build an exact clique (which is an ε³-near clique for any ε).
        let g = Graph::complete(40);
        let d = FixedBitSet::full(40);
        let eps = 0.3;
        let c = core_c(&g, &d, eps);
        let bound = (1.0 - eps) * 40.0 - 1.0 / (eps * eps);
        assert!(c.len() as f64 >= bound, "|C| = {} < bound {}", c.len(), bound);
        // For a perfect clique C = D.
        assert_eq!(c.len(), 40);
    }

    #[test]
    fn lemma_5_3_bound_values() {
        assert_eq!(lemma_5_3_bound(100, 0, 0.1), 1.0);
        assert!((lemma_5_3_bound(100, 50, 0.1) - 0.2).abs() < 1e-12);
        assert!(lemma_5_3_bound(100, 5, 0.1) > 1.0, "vacuous when t tiny");
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn bad_epsilon_panics() {
        let g = Graph::empty(2);
        let _ = k_eps(&g, &FixedBitSet::new(2), 1.5);
    }
}
