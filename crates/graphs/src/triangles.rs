//! Triangle counting and clustering coefficients.
//!
//! Near-cliques are triangle-rich by definition (a `(1 − ε)`-dense set of
//! `t` nodes carries `Ω((1 − 3ε)·t³/6)` triangles), which makes local
//! triangle statistics a useful diagnostic for the workloads in this
//! repository: planted instances light up, `G(n,p)` noise does not.
//!
//! # Examples
//!
//! ```
//! use graphs::{Graph, triangles};
//!
//! let g = Graph::complete(5);
//! assert_eq!(triangles::triangle_count(&g), 10); // C(5,3)
//! assert_eq!(triangles::global_clustering(&g), 1.0);
//! ```

use crate::graph::Graph;

/// Number of triangles incident to each node.
///
/// Uses the rank-ordered merge method: `O(Σ deg²)` worst case, fast in
/// practice on the sparse instances used here.
#[must_use]
pub fn per_node_triangles(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut count = vec![0usize; n];
    for u in 0..n {
        let nu = g.neighbors(u);
        for (i, &v) in nu.iter().enumerate() {
            if v < u {
                continue;
            }
            for &w in &nu[i + 1..] {
                // u < v < w candidate triangle (nu is sorted).
                if w > v && g.has_edge(v, w) {
                    count[u] += 1;
                    count[v] += 1;
                    count[w] += 1;
                }
            }
        }
    }
    count
}

/// Total number of triangles in the graph.
#[must_use]
pub fn triangle_count(g: &Graph) -> usize {
    per_node_triangles(g).iter().sum::<usize>() / 3
}

/// Local clustering coefficient of every node
/// (`triangles(v) / C(deg(v), 2)`, 0 for degree < 2).
#[must_use]
pub fn local_clustering(g: &Graph) -> Vec<f64> {
    per_node_triangles(g)
        .into_iter()
        .enumerate()
        .map(|(v, t)| {
            let d = g.degree(v);
            if d < 2 {
                0.0
            } else {
                2.0 * t as f64 / (d as f64 * (d as f64 - 1.0))
            }
        })
        .collect()
}

/// Global clustering coefficient (transitivity):
/// `3·triangles / open-or-closed wedges`. Returns 0 when the graph has no
/// wedge.
#[must_use]
pub fn global_clustering(g: &Graph) -> f64 {
    let triangles = triangle_count(g);
    let wedges: usize = g
        .nodes()
        .map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(triangle_count(&Graph::empty(5)), 0);
        let mut b = GraphBuilder::new(4); // 4-cycle
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = b.build();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn single_triangle() {
        let mut b = GraphBuilder::new(4);
        b.add_clique(&[0, 1, 2]).add_edge(2, 3);
        let g = b.build();
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(per_node_triangles(&g), vec![1, 1, 1, 0]);
        let local = local_clustering(&g);
        assert_eq!(local[0], 1.0);
        assert!((local[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local[3], 0.0);
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(6);
        assert_eq!(triangle_count(&g), 20); // C(6,3)
        assert_eq!(per_node_triangles(&g), vec![10; 6]); // C(5,2)
        assert!(local_clustering(&g).iter().all(|&c| (c - 1.0).abs() < 1e-12));
        assert_eq!(global_clustering(&g), 1.0);
    }

    #[test]
    fn gnp_clustering_near_p() {
        // In G(n, p) the expected clustering coefficient is p.
        let mut rng = StdRng::seed_from_u64(12);
        let p = 0.15;
        let g = generators::gnp(400, p, &mut rng);
        let c = global_clustering(&g);
        assert!((c - p).abs() < 0.03, "clustering {c} should approximate p = {p}");
    }

    #[test]
    fn planted_instance_lights_up() {
        let mut rng = StdRng::seed_from_u64(13);
        let planted = generators::planted_clique(200, 50, 0.05, &mut rng);
        let null = generators::gnp(200, 0.05, &mut rng);
        assert!(
            triangle_count(&planted.graph) > 10 * triangle_count(&null).max(1),
            "planted clique must dominate the triangle count"
        );
        // Nodes of the planted set have much higher local clustering.
        let local = local_clustering(&planted.graph);
        let inside: f64 = planted.dense_set.iter().map(|v| local[v]).sum::<f64>()
            / planted.dense_set.len() as f64;
        // Background neighbors dilute the closed neighborhoods, so the
        // inside coefficient sits below 1 but far above the p = 0.05 noise.
        assert!(inside > 0.6, "inside clustering {inside}");
    }
}
