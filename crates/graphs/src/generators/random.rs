//! Erdős–Rényi random graphs.

use rand::Rng;

use crate::generators::stream::PairSampler;
use crate::graph::{Graph, GraphBuilder};

/// Samples `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
///
/// Used as background noise around planted structures and as the null model
/// in invariant tests (Lemma 5.3 must hold on *any* graph).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = graphs::generators::gnp(100, 0.1, &mut rng);
/// assert_eq!(g.node_count(), 100);
/// ```
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if p >= 1.0 {
        return Graph::complete(n);
    }
    let mut b = GraphBuilder::new(n);
    if p > 0.0 {
        // Geometric skipping: O(m) expected time instead of O(n^2). The
        // sampler emits each pair at most once, in lexicographic order, so
        // the builder can take the sort-free unique-edge path.
        let mut sampler = PairSampler::new(n, p);
        while let Some((a, bn)) = sampler.next_pair(rng) {
            b.add_unique_edge(a, bn);
        }
    }
    b.build()
}

/// Maps a linear index in `0..n(n-1)/2` to the corresponding unordered pair
/// `(u, v)` with `u < v`, enumerating pairs row by row:
/// `(0,1), (0,2), …, (0,n−1), (1,2), …`.
#[cfg(test)]
fn pair_from_index(mut idx: usize, n: usize) -> (usize, usize) {
    let mut u = 0usize;
    loop {
        let row = n - 1 - u;
        if idx < row {
            return (u, u + 1 + idx);
        }
        idx -= row;
        u += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_from_index_enumerates_all_pairs() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)), "pair ({u},{v}) repeated");
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn gnp_zero_and_one_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(20, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(20, 1.0, &mut rng).edge_count(), 190);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 300;
        let p = 0.2;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // 4 standard deviations of slack.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!((got - expected).abs() < 4.0 * sd, "got {got}, expected {expected} ± {sd}");
    }

    #[test]
    fn gnp_matches_reference_skip_sampler() {
        // Pins gnp (now on the incremental PairSampler) to the original
        // non-incremental decode: same draws, same edges, same order.
        let n = 57;
        let p = 0.23;
        let g = gnp(n, p, &mut StdRng::seed_from_u64(13));
        let mut rng = StdRng::seed_from_u64(13);
        let log_q = (1.0 - p).ln();
        let total = n * (n - 1) / 2;
        let mut idx: i64 = -1;
        let mut edges = Vec::new();
        loop {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = (u.ln() / log_q).floor() as i64 + 1;
            idx += skip.max(1);
            if idx as usize >= total {
                break;
            }
            edges.push(pair_from_index(idx as usize, n));
        }
        assert_eq!(g.edges().collect::<Vec<_>>(), edges);
    }

    #[test]
    fn gnp_deterministic_given_seed() {
        let g1 = gnp(50, 0.3, &mut StdRng::seed_from_u64(9));
        let g2 = gnp(50, 0.3, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert!(g1.edges().eq(g2.edges()));
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn gnp_rejects_bad_probability() {
        let _ = gnp(5, 1.5, &mut StdRng::seed_from_u64(0));
    }
}
