//! The paper's two adversarial constructions.
//!
//! * [`shingles_counterexample`] — the Figure 1 / Claim 1 graph on which
//!   the shingles algorithm provably cannot output a large near-clique.
//! * [`barbell_with_path`] — the §6 graph (clique `A`, clique `B`, long
//!   path between them) showing no sub-diameter algorithm can output *only*
//!   the globally largest near-clique.

use crate::bitset::FixedBitSet;
use crate::graph::{Graph, GraphBuilder};

/// The Figure 1 construction with its labeled parts.
///
/// Nodes are laid out as `I₁ | C₁ | C₂ | I₂` in index order. `C₁`, `C₂`
/// are cliques of size `δn/2` forming together the planted clique
/// `C = C₁ ∪ C₂` of size `δn`; `I₁`, `I₂` are independent sets of size
/// `(1−δ)n/2`; complete bipartite connections join `(I₁, C₁)`, `(C₁, C₂)`
/// and `(C₂, I₂)`.
#[derive(Clone, Debug)]
pub struct ShinglesGraph {
    /// The constructed graph.
    pub graph: Graph,
    /// Independent set `I₁` (attached to `C₁`).
    pub i1: FixedBitSet,
    /// Clique half `C₁`.
    pub c1: FixedBitSet,
    /// Clique half `C₂`.
    pub c2: FixedBitSet,
    /// Independent set `I₂` (attached to `C₂`).
    pub i2: FixedBitSet,
}

impl ShinglesGraph {
    /// The planted clique `C = C₁ ∪ C₂` (ground truth of Claim 1).
    #[must_use]
    pub fn clique(&self) -> FixedBitSet {
        let mut c = self.c1.clone();
        c.union_with(&self.c2);
        c
    }

    /// Claim 1's threshold: the shingles algorithm cannot output an ε-near
    /// clique of size `(1−ε)δn` for any `ε < min{(1−δ)/(1+δ), 1/9}`.
    #[must_use]
    pub fn claim_epsilon_threshold(delta: f64) -> f64 {
        ((1.0 - delta) / (1.0 + delta)).min(1.0 / 9.0)
    }
}

/// Builds the Figure 1 graph for a given `n` and clique fraction `δ`.
///
/// Sizes are rounded so the four parts partition `n` nodes: `|C₁| = |C₂| =
/// ⌊δn/2⌋` and `I₁`, `I₂` split the remainder as evenly as possible (the
/// paper assumes divisibility "for simplicity"; rounding preserves the
/// asymptotics of Claim 1).
///
/// # Panics
///
/// Panics if `delta ∉ (0, 1)` or the rounded clique halves are empty.
#[must_use]
pub fn shingles_counterexample(n: usize, delta: f64) -> ShinglesGraph {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1), got {delta}");
    let half_c = ((delta * n as f64) / 2.0).floor() as usize;
    assert!(half_c >= 1, "n = {n} too small for delta = {delta}");
    let rest = n - 2 * half_c;
    let i1_size = rest / 2;

    let i1: Vec<usize> = (0..i1_size).collect();
    let c1: Vec<usize> = (i1_size..i1_size + half_c).collect();
    let c2: Vec<usize> = (i1_size + half_c..i1_size + 2 * half_c).collect();
    let i2: Vec<usize> = (i1_size + 2 * half_c..n).collect();

    let mut b = GraphBuilder::new(n);
    b.add_clique(&c1);
    b.add_clique(&c2);
    b.add_biclique(&i1, &c1);
    b.add_biclique(&c1, &c2);
    b.add_biclique(&c2, &i2);

    let to_set = |v: &[usize]| FixedBitSet::from_iter_with_capacity(n, v.iter().copied());
    ShinglesGraph {
        graph: b.build(),
        i1: to_set(&i1),
        c1: to_set(&c1),
        c2: to_set(&c2),
        i2: to_set(&i2),
    }
}

/// The §6 impossibility construction with its labeled parts.
#[derive(Clone, Debug)]
pub struct Barbell {
    /// The constructed graph.
    pub graph: Graph,
    /// The large clique `A`.
    pub a: FixedBitSet,
    /// The small clique `B`.
    pub b: FixedBitSet,
    /// The path nodes `P` (excluding the clique endpoints they attach to).
    pub path: FixedBitSet,
    /// Number of hops between the closest nodes of `A` and `B`.
    pub separation: usize,
}

/// Builds the §6 graph: an `a_size`-clique `A`, a `b_size`-clique `B`, and
/// a simple path of `path_len` intermediate nodes joining one node of `A`
/// to one node of `B`.
///
/// The paper's instantiation is `a_size = n/2`, `b_size = n/4`,
/// `path_len = n/4`. Since no node of `B` can distinguish in fewer than
/// `|P|` rounds whether `A`'s edges exist, any sub-diameter algorithm must
/// sometimes let `B` output a label even though `A` is larger.
///
/// # Panics
///
/// Panics if either clique is empty.
#[must_use]
pub fn barbell_with_path(a_size: usize, b_size: usize, path_len: usize) -> Barbell {
    assert!(a_size >= 1 && b_size >= 1, "cliques must be non-empty");
    let n = a_size + b_size + path_len;
    let a_nodes: Vec<usize> = (0..a_size).collect();
    let p_nodes: Vec<usize> = (a_size..a_size + path_len).collect();
    let b_nodes: Vec<usize> = (a_size + path_len..n).collect();

    let mut builder = GraphBuilder::new(n);
    builder.add_clique(&a_nodes);
    builder.add_clique(&b_nodes);
    // Chain: A's node 0 — p_1 — p_2 — … — p_k — B's first node.
    let mut prev = a_nodes[0];
    for &p in &p_nodes {
        builder.add_edge(prev, p);
        prev = p;
    }
    builder.add_edge(prev, b_nodes[0]);

    let to_set = |v: &[usize]| FixedBitSet::from_iter_with_capacity(n, v.iter().copied());
    Barbell {
        graph: builder.build(),
        a: to_set(&a_nodes),
        b: to_set(&b_nodes),
        path: to_set(&p_nodes),
        separation: path_len + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density;

    #[test]
    fn shingles_graph_partition_sizes() {
        let s = shingles_counterexample(100, 0.5);
        assert_eq!(s.c1.len(), 25);
        assert_eq!(s.c2.len(), 25);
        assert_eq!(s.i1.len() + s.i2.len(), 50);
        assert_eq!(s.i1.len() + s.c1.len() + s.c2.len() + s.i2.len(), s.graph.node_count());
    }

    #[test]
    fn shingles_graph_planted_clique_is_clique() {
        let s = shingles_counterexample(80, 0.5);
        let c = s.clique();
        assert_eq!(c.len(), 40);
        assert!(density::is_near_clique(&s.graph, &c, 0.0));
    }

    #[test]
    fn shingles_graph_independent_sets_are_independent() {
        let s = shingles_counterexample(60, 0.4);
        for set in [&s.i1, &s.i2] {
            assert_eq!(density::directed_internal_edges(&s.graph, set), 0);
        }
    }

    #[test]
    fn shingles_graph_bicliques_present_and_absent() {
        let s = shingles_counterexample(40, 0.5);
        let i1 = s.i1.to_vec();
        let c1 = s.c1.to_vec();
        let c2 = s.c2.to_vec();
        let i2 = s.i2.to_vec();
        // Present: (I1, C1), (C1, C2), (C2, I2).
        assert!(s.graph.has_edge(i1[0], c1[0]));
        assert!(s.graph.has_edge(c1[0], c2[0]));
        assert!(s.graph.has_edge(c2[0], i2[0]));
        // Absent: (I1, C2), (I1, I2), (C1, I2).
        assert!(!s.graph.has_edge(i1[0], c2[0]));
        assert!(!s.graph.has_edge(i1[0], i2[0]));
        assert!(!s.graph.has_edge(c1[0], i2[0]));
    }

    #[test]
    fn case1_candidate_set_density_matches_claim() {
        // Claim 1 case 1: the candidate set C1 ∪ C2 ∪ I1 has density
        // exactly 2δ/(1+δ) asymptotically.
        let n = 2000;
        let delta = 0.5;
        let s = shingles_counterexample(n, delta);
        let mut cand = s.clique();
        cand.union_with(&s.i1);
        let d = density::density(&s.graph, &cand);
        let predicted = 2.0 * delta / (1.0 + delta);
        assert!((d - predicted).abs() < 0.01, "density {d} vs predicted {predicted}");
    }

    #[test]
    fn claim_threshold_formula() {
        assert!((ShinglesGraph::claim_epsilon_threshold(0.5) - 1.0 / 9.0).abs() < 1e-12);
        let t = ShinglesGraph::claim_epsilon_threshold(0.95);
        assert!((t - 0.05 / 1.95).abs() < 1e-12);
    }

    #[test]
    fn barbell_structure() {
        let bb = barbell_with_path(10, 5, 4);
        assert_eq!(bb.graph.node_count(), 19);
        assert!(density::is_near_clique(&bb.graph, &bb.a, 0.0));
        assert!(density::is_near_clique(&bb.graph, &bb.b, 0.0));
        assert_eq!(bb.separation, 5);
        // Distance between A's attachment and B's attachment is path + 1.
        let dist = bb.graph.bfs_distances(0);
        let b_first = bb.b.min().unwrap();
        assert_eq!(dist[b_first], 5);
        assert_eq!(bb.graph.diameter(), Some(5 + 1 + 1)); // far A node → far B node
    }

    #[test]
    fn barbell_path_is_a_path() {
        let bb = barbell_with_path(6, 4, 3);
        for p in bb.path.iter() {
            assert!(bb.graph.degree(p) == 2, "path node {p} must have degree 2");
        }
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn bad_delta_panics() {
        let _ = shingles_counterexample(10, 1.0);
    }
}
