//! Graph generators with planted ground truth.
//!
//! Every workload in the experiment harness comes from this module. The
//! generators fall into four families:
//!
//! * [`random`] — Erdős–Rényi `G(n, p)` background noise.
//! * [`planted`] — graphs with a planted clique or planted ε-near clique,
//!   the instances Theorem 2.1 / Corollaries 2.2–2.3 speak about.
//! * [`counterexample`] — the paper's two adversarial constructions: the
//!   Figure 1 graph that defeats the shingles algorithm (Claim 1) and the
//!   §6 barbell-with-path graph behind the sub-diameter impossibility.
//! * [`communities`] — synthetic stand-ins for the paper's motivating Web
//!   workloads (tightly-knit communities, bursty blog events), since no
//!   real crawl ships with ground truth.
//! * [`stream`] — streaming, restartable [`EdgeStream`] variants of the
//!   random and planted families for scale-tier instances that must never
//!   materialize an edge list.
//!
//! All generators are deterministic given an RNG (streams: given a seed),
//! and return the planted structure alongside the graph so experiments can
//! score recovery.

pub mod communities;
pub mod counterexample;
pub mod planted;
pub mod random;
pub mod stream;

pub use communities::{blog_burst, caveman, overlapping_communities, BlogBurst, CommunityGraph};
pub use counterexample::{barbell_with_path, shingles_counterexample, Barbell, ShinglesGraph};
pub use planted::{planted_clique, planted_near_clique, Planted};
pub use random::gnp;
pub use stream::{materialize, EdgeStream, GnpStream, PlantedNearCliqueStream, VecEdgeStream};
