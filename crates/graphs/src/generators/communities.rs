//! Synthetic community workloads.
//!
//! The paper motivates near-clique discovery with Web analysis: "tightly
//! knit communities" that skew link-based ranking \[15\], and dense
//! subgraphs marking significant events in the evolution of blog links
//! \[14\]. Real crawls ship no ground truth, so these generators produce the
//! same *shapes* with planted answers:
//!
//! * [`overlapping_communities`] — several dense communities that may share
//!   members, over sparse background noise.
//! * [`blog_burst`] — a sequence of graph snapshots in which a dense
//!   "event" community appears, peaks, and dissolves.
//! * [`caveman`] — the classic relaxed-caveman clustering benchmark.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::bitset::FixedBitSet;
use crate::graph::{Graph, GraphBuilder};

/// A graph with several planted (possibly overlapping) dense communities.
#[derive(Clone, Debug)]
pub struct CommunityGraph {
    /// The generated graph.
    pub graph: Graph,
    /// Planted communities, each a node set.
    pub communities: Vec<FixedBitSet>,
}

impl CommunityGraph {
    /// The largest planted community (ties broken arbitrarily), or `None`
    /// if none were planted.
    #[must_use]
    pub fn largest(&self) -> Option<&FixedBitSet> {
        self.communities.iter().max_by_key(|c| c.len())
    }

    /// Best overlap score of `set` against any planted community:
    /// `max_i |set ∩ Cᵢ| / |set ∪ Cᵢ|` (Jaccard).
    ///
    /// # Panics
    ///
    /// Panics if `set` has a different capacity than the graph.
    #[must_use]
    pub fn best_jaccard(&self, set: &FixedBitSet) -> f64 {
        self.communities
            .iter()
            .map(|c| {
                let inter = set.intersection_count(c);
                let union = set.union_count(c);
                if union == 0 {
                    0.0
                } else {
                    inter as f64 / union as f64
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Plants `count` communities of the given `size` over `G(n, background_p)`
/// noise. Within each community every pair is connected with probability
/// `internal_p`; consecutive communities share `overlap` members.
///
/// # Panics
///
/// Panics if parameters are inconsistent (probabilities outside `[0, 1]`,
/// `overlap ≥ size`, or the communities do not fit in `n` nodes).
#[must_use]
pub fn overlapping_communities<R: Rng + ?Sized>(
    n: usize,
    count: usize,
    size: usize,
    overlap: usize,
    internal_p: f64,
    background_p: f64,
    rng: &mut R,
) -> CommunityGraph {
    assert!((0.0..=1.0).contains(&internal_p), "internal_p must be in [0, 1]");
    assert!((0.0..=1.0).contains(&background_p), "background_p must be in [0, 1]");
    assert!(overlap < size || count <= 1, "overlap = {overlap} must be < size = {size}");
    let fresh_per_community = size - overlap;
    let needed = if count == 0 { 0 } else { size + (count - 1) * fresh_per_community };
    assert!(needed <= n, "{count} communities of size {size} need {needed} > n = {n} nodes");

    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);

    let mut b = GraphBuilder::new(n);
    let mut communities = Vec::with_capacity(count);
    let mut cursor = 0usize;
    let mut prev_tail: Vec<usize> = Vec::new();
    for c in 0..count {
        let mut members: Vec<usize> = prev_tail.clone();
        let take = if c == 0 { size } else { fresh_per_community };
        members.extend_from_slice(&ids[cursor..cursor + take]);
        cursor += take;
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.gen_bool(internal_p) {
                    b.add_edge(members[i], members[j]);
                }
            }
        }
        prev_tail = members[members.len() - overlap.min(members.len())..].to_vec();
        communities.push(FixedBitSet::from_iter_with_capacity(n, members.iter().copied()));
    }

    if background_p > 0.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(background_p) {
                    b.add_edge(u, v);
                }
            }
        }
    }

    CommunityGraph { graph: b.build(), communities }
}

/// A temporal sequence of graph snapshots with a planted "event" window.
#[derive(Clone, Debug)]
pub struct BlogBurst {
    /// One graph per time step, all on the same node set.
    pub snapshots: Vec<Graph>,
    /// The event community.
    pub event_set: FixedBitSet,
    /// Time steps `start..end` during which the event community is dense.
    pub event_window: (usize, usize),
}

/// Generates `steps` snapshots of a blog-link graph: background `G(n, p)`
/// noise re-sampled per step, plus a dense community on `event_size`
/// nodes whose internal edge probability ramps from 0 to `peak_p` and back
/// within `event_window` (Kumar et al.'s "bursty evolution" shape \[14\]).
///
/// # Panics
///
/// Panics on inconsistent parameters (window outside `0..steps`,
/// probabilities outside `[0, 1]`, `event_size > n`).
#[must_use]
pub fn blog_burst<R: Rng + ?Sized>(
    n: usize,
    steps: usize,
    event_size: usize,
    event_window: (usize, usize),
    peak_p: f64,
    background_p: f64,
    rng: &mut R,
) -> BlogBurst {
    assert!(event_size <= n, "event_size must be at most n");
    assert!((0.0..=1.0).contains(&peak_p) && (0.0..=1.0).contains(&background_p));
    let (start, end) = event_window;
    assert!(start < end && end <= steps, "invalid event window {event_window:?} for {steps} steps");

    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    let members: Vec<usize> = ids[..event_size].to_vec();
    let event_set = FixedBitSet::from_iter_with_capacity(n, members.iter().copied());

    let mut snapshots = Vec::with_capacity(steps);
    for t in 0..steps {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(background_p) {
                    b.add_edge(u, v);
                }
            }
        }
        // Triangular ramp: 0 at the window edges, peak_p in the middle.
        if t >= start && t < end {
            let span = (end - start) as f64;
            let pos = (t - start) as f64 + 0.5;
            let ramp = 1.0 - (2.0 * pos / span - 1.0).abs();
            let p_t = (peak_p * ramp).clamp(0.0, 1.0);
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if rng.gen_bool(p_t) {
                        b.add_edge(members[i], members[j]);
                    }
                }
            }
        }
        snapshots.push(b.build());
    }
    BlogBurst { snapshots, event_set, event_window }
}

/// The relaxed-caveman benchmark: `k` cliques of `size` nodes each; every
/// edge is then "rewired" with probability `rewire_p` to a uniformly random
/// endpoint outside the cave.
///
/// # Panics
///
/// Panics if `rewire_p ∉ [0, 1]` or `k·size == 0`.
#[must_use]
pub fn caveman<R: Rng + ?Sized>(
    k: usize,
    size: usize,
    rewire_p: f64,
    rng: &mut R,
) -> CommunityGraph {
    assert!((0.0..=1.0).contains(&rewire_p), "rewire_p must be in [0, 1]");
    assert!(k * size > 0, "caveman graph must have at least one node");
    let n = k * size;
    let mut b = GraphBuilder::new(n);
    let mut communities = Vec::with_capacity(k);
    for cave in 0..k {
        let lo = cave * size;
        let members: Vec<usize> = (lo..lo + size).collect();
        for i in 0..size {
            for j in (i + 1)..size {
                let (u, v) = (members[i], members[j]);
                if rewire_p > 0.0 && rng.gen_bool(rewire_p) {
                    // Rewire v-endpoint outside this cave (if possible).
                    if n > size {
                        let mut w = rng.gen_range(0..n);
                        while w / size == cave || w == u {
                            w = rng.gen_range(0..n);
                        }
                        b.add_edge(u, w);
                        continue;
                    }
                }
                b.add_edge(u, v);
            }
        }
        communities.push(FixedBitSet::from_iter_with_capacity(n, members));
    }
    CommunityGraph { graph: b.build(), communities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn overlapping_communities_have_planted_density() {
        let mut rng = StdRng::seed_from_u64(21);
        let cg = overlapping_communities(300, 3, 40, 10, 0.95, 0.01, &mut rng);
        assert_eq!(cg.communities.len(), 3);
        for c in &cg.communities {
            assert_eq!(c.len(), 40);
            let d = density::density(&cg.graph, c);
            assert!(d > 0.85, "community density {d} too low");
        }
    }

    #[test]
    fn consecutive_communities_overlap() {
        let mut rng = StdRng::seed_from_u64(22);
        let cg = overlapping_communities(200, 3, 30, 8, 1.0, 0.0, &mut rng);
        for w in cg.communities.windows(2) {
            assert_eq!(w[0].intersection_count(&w[1]), 8);
        }
    }

    #[test]
    fn largest_and_jaccard() {
        let mut rng = StdRng::seed_from_u64(23);
        let cg = overlapping_communities(100, 2, 20, 0, 1.0, 0.0, &mut rng);
        let largest = cg.largest().unwrap();
        assert_eq!(largest.len(), 20);
        assert_eq!(cg.best_jaccard(largest), 1.0);
        assert_eq!(cg.best_jaccard(&FixedBitSet::new(100)), 0.0);
    }

    #[test]
    fn blog_burst_event_is_dense_only_inside_window() {
        let mut rng = StdRng::seed_from_u64(24);
        let bb = blog_burst(120, 6, 30, (2, 5), 0.95, 0.02, &mut rng);
        assert_eq!(bb.snapshots.len(), 6);
        let density_at = |t: usize| density::density(&bb.snapshots[t], &bb.event_set);
        // Middle of the window is much denser than outside it.
        assert!(density_at(3) > 0.5, "in-window density {}", density_at(3));
        assert!(density_at(0) < 0.2, "pre-window density {}", density_at(0));
        assert!(density_at(5) < 0.2, "post-window density {}", density_at(5));
    }

    #[test]
    fn caveman_unrewired_is_disjoint_cliques() {
        let mut rng = StdRng::seed_from_u64(25);
        let cg = caveman(4, 6, 0.0, &mut rng);
        assert_eq!(cg.graph.node_count(), 24);
        for c in &cg.communities {
            assert!(density::is_near_clique(&cg.graph, c, 0.0));
        }
        assert_eq!(cg.graph.edge_count(), 4 * 15);
    }

    #[test]
    fn caveman_rewired_loses_some_internal_edges() {
        let mut rng = StdRng::seed_from_u64(26);
        let cg = caveman(4, 8, 0.3, &mut rng);
        let internal: usize =
            cg.communities.iter().map(|c| density::directed_internal_edges(&cg.graph, c) / 2).sum();
        assert!(internal < 4 * 28, "rewiring must remove internal edges");
    }

    #[test]
    #[should_panic(expected = "need")]
    fn too_many_communities_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = overlapping_communities(50, 4, 20, 0, 1.0, 0.0, &mut rng);
    }
}
