//! Planted-clique and planted-near-clique instances.
//!
//! These are the instances the paper's guarantees quantify over: a hidden
//! set `D` of `δn` nodes whose internal density is at least `1 − ε³`
//! (Theorem 2.1), embedded in sparse background noise.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::bitset::FixedBitSet;
use crate::graph::{Graph, GraphBuilder};

/// A generated graph together with its planted dense set.
#[derive(Clone, Debug)]
pub struct Planted {
    /// The generated graph.
    pub graph: Graph,
    /// The planted dense set `D` (ground truth).
    pub dense_set: FixedBitSet,
    /// The ε for which `D` was planted as an ε-near clique
    /// (0.0 for an exact clique).
    pub planted_epsilon: f64,
}

impl Planted {
    /// Size of the planted set.
    #[must_use]
    pub fn planted_size(&self) -> usize {
        self.dense_set.len()
    }

    /// Fraction of `set` that lies inside the planted set — the recovery
    /// score experiments report.
    ///
    /// # Panics
    ///
    /// Panics if `set` has a different capacity than the graph.
    #[must_use]
    pub fn overlap(&self, set: &FixedBitSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        set.intersection_count(&self.dense_set) as f64 / set.len() as f64
    }

    /// Fraction of the planted set recovered by `set` (recall).
    ///
    /// # Panics
    ///
    /// Panics if `set` has a different capacity than the graph.
    #[must_use]
    pub fn recall(&self, set: &FixedBitSet) -> f64 {
        if self.dense_set.is_empty() {
            return 1.0;
        }
        set.intersection_count(&self.dense_set) as f64 / self.dense_set.len() as f64
    }
}

/// Plants an exact clique of size `k` on a uniformly random subset of
/// nodes, over `G(n, background_p)` noise.
///
/// This is the Corollary 2.3 instance family (with
/// `k = n / log^α log n`).
///
/// # Panics
///
/// Panics if `k > n` or `background_p ∉ [0, 1]`.
#[must_use]
pub fn planted_clique<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    background_p: f64,
    rng: &mut R,
) -> Planted {
    planted_near_clique(n, k, 0.0, background_p, rng)
}

/// Plants an ε-near clique of size `k` on a uniformly random subset of
/// nodes, over `G(n, background_p)` noise.
///
/// The planted set starts as a clique and then exactly
/// `⌊ε·k(k−1)/2⌋` internal undirected edges are deleted uniformly at
/// random, so the directed internal density is `≥ 1 − ε` *by construction*
/// (not merely in expectation). For the Theorem 2.1 workload pass
/// `epsilon³` here.
///
/// # Panics
///
/// Panics if `k > n`, `epsilon ∉ [0, 1]`, or `background_p ∉ [0, 1]`.
#[must_use]
pub fn planted_near_clique<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    epsilon: f64,
    background_p: f64,
    rng: &mut R,
) -> Planted {
    assert!(k <= n, "planted size k = {k} exceeds n = {n}");
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1], got {epsilon}");
    assert!((0.0..=1.0).contains(&background_p), "background_p must be in [0, 1]");

    // Choose the planted nodes.
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    let mut members = ids[..k].to_vec();
    members.sort_unstable();
    let dense_set = FixedBitSet::from_iter_with_capacity(n, members.iter().copied());

    // Internal edges: full clique minus a random ε fraction.
    let mut internal: Vec<(usize, usize)> = Vec::with_capacity(k * (k.saturating_sub(1)) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            internal.push((members[i], members[j]));
        }
    }
    internal.shuffle(rng);
    let deletions = (epsilon * internal.len() as f64).floor() as usize;
    internal.truncate(internal.len() - deletions);

    // Internal and background edges are each emitted at most once and the
    // two families are disjoint, so the builder can take the sort-free
    // unique-edge path.
    let mut b = GraphBuilder::new(n);
    b.extend_unique_edges(internal.iter().copied());

    // Background noise over pairs not internal to the planted set.
    if background_p > 0.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                if dense_set.contains(u) && dense_set.contains(v) {
                    continue;
                }
                if rng.gen_bool(background_p) {
                    b.add_unique_edge(u, v);
                }
            }
        }
    }

    Planted { graph: b.build(), dense_set, planted_epsilon: epsilon }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_clique_is_a_clique() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = planted_clique(100, 30, 0.05, &mut rng);
        assert_eq!(p.planted_size(), 30);
        assert!(density::is_near_clique(&p.graph, &p.dense_set, 0.0));
        assert_eq!(p.planted_epsilon, 0.0);
    }

    #[test]
    fn planted_near_clique_density_is_guaranteed() {
        let mut rng = StdRng::seed_from_u64(4);
        let eps = 0.2;
        let p = planted_near_clique(200, 80, eps, 0.02, &mut rng);
        assert!(
            density::is_near_clique(&p.graph, &p.dense_set, eps),
            "planted set must be {eps}-near clique by construction; density = {}",
            density::density(&p.graph, &p.dense_set)
        );
        // And it should not be much denser than requested: deletions are
        // exactly floor(eps * pairs).
        let measured = density::near_clique_epsilon(&p.graph, &p.dense_set);
        assert!(measured > eps - 2.0 / (80.0 * 79.0) - 1e-9, "measured ε = {measured}");
    }

    #[test]
    fn background_probability_zero_isolates_rest() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = planted_near_clique(60, 20, 0.1, 0.0, &mut rng);
        for v in 0..60 {
            if !p.dense_set.contains(v) {
                assert_eq!(p.graph.degree(v), 0);
            }
        }
    }

    #[test]
    fn overlap_and_recall_scores() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = planted_clique(50, 10, 0.0, &mut rng);
        assert_eq!(p.overlap(&p.dense_set), 1.0);
        assert_eq!(p.recall(&p.dense_set), 1.0);
        let empty = FixedBitSet::new(50);
        assert_eq!(p.overlap(&empty), 0.0);
        assert_eq!(p.recall(&empty), 0.0);
        let full = FixedBitSet::full(50);
        assert_eq!(p.recall(&full), 1.0);
        assert!((p.overlap(&full) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = planted_near_clique(80, 25, 0.15, 0.05, &mut StdRng::seed_from_u64(11));
        let b = planted_near_clique(80, 25, 0.15, 0.05, &mut StdRng::seed_from_u64(11));
        assert_eq!(a.dense_set, b.dense_set);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    #[should_panic(expected = "exceeds n")]
    fn oversized_plant_panics() {
        let _ = planted_clique(10, 11, 0.0, &mut StdRng::seed_from_u64(0));
    }
}
