//! Streaming, restartable edge generators for scale-tier instances.
//!
//! At n = 10⁶ the materialized generators are memory-bound before the
//! delivery plane ever sees a message: [`GraphBuilder`] buffers every
//! undirected edge in a `Vec<(usize, usize)>` (16 B each) just so the
//! final CSR arrays can be counted and placed. The [`EdgeStream`] trait
//! replaces the buffer with a *replayable* generator: a seeded stream can
//! be reset and traversed twice — once to count degrees, once to place
//! routes — so a consumer's working memory is proportional to its output
//! artifact, never to the stream.
//!
//! The contract every implementation obeys:
//!
//! * **Deterministic & restartable** — after [`EdgeStream::reset`], the
//!   stream replays exactly the same edge sequence.
//! * **Sorted & unique** — edges come as `(u, v)` with `u < v`, in
//!   strictly increasing lexicographic order, each pair at most once.
//!   Consumers (e.g. the congest plane's CSR builder) rely on this to
//!   place both directions of each edge in one pass.
//!
//! [`GnpStream`] and [`PlantedNearCliqueStream`] mirror the materialized
//! [`gnp`](super::random::gnp) / [`planted_near_clique`](super::planted::planted_near_clique)
//! generators draw for draw: the same seed produces exactly the same edge
//! set (pinned by `tests/stream_equivalence.rs`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::bitset::FixedBitSet;
use crate::graph::{Graph, GraphBuilder};

/// A seeded, deterministic, restartable stream of undirected edges.
///
/// See the [module docs](self) for the ordering contract. Implementations
/// hold `O(1)` (or output-proportional) state instead of an edge list, so
/// million-node instances can be compiled straight into the delivery
/// plane's CSR tables without ever materializing a [`Graph`].
pub trait EdgeStream {
    /// Number of nodes in the generated graph.
    fn node_count(&self) -> usize;

    /// Expected number of edges, when cheaply known — a pre-allocation
    /// hint only, not a promise.
    fn edge_hint(&self) -> Option<usize> {
        None
    }

    /// Rewinds the stream to the beginning; the subsequent sequence of
    /// [`next_edge`](Self::next_edge) results is identical to the first
    /// pass.
    fn reset(&mut self);

    /// The next edge `(u, v)` with `u < v`, strictly after all previously
    /// returned pairs in lexicographic order; `None` once exhausted.
    fn next_edge(&mut self) -> Option<(usize, usize)>;
}

/// Geometric skip-sampler over the linearized pair space `0..n(n-1)/2`.
///
/// Shared core of [`gnp`](super::random::gnp) and [`GnpStream`]: one `f64`
/// draw per emitted pair (plus one terminating draw), with an incremental
/// row cursor so decoding a full pass costs `O(n + m)` total instead of
/// `O(n · m)`.
pub(crate) struct PairSampler {
    n: usize,
    log_q: f64,
    total: usize,
    idx: i64,
    /// Current row `u` and the linear index of its first pair `(u, u+1)`.
    u: usize,
    row_start: usize,
    done: bool,
}

impl PairSampler {
    pub(crate) fn new(n: usize, p: f64) -> Self {
        debug_assert!(p > 0.0 && p < 1.0);
        Self {
            n,
            log_q: (1.0 - p).ln(),
            total: n * n.saturating_sub(1) / 2,
            idx: -1,
            u: 0,
            row_start: 0,
            done: false,
        }
    }

    pub(crate) fn next_pair<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<(usize, usize)> {
        if self.done {
            return None;
        }
        let draw: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (draw.ln() / self.log_q).floor() as i64 + 1;
        self.idx += skip.max(1);
        if self.idx as usize >= self.total {
            self.done = true;
            return None;
        }
        let idx = self.idx as usize;
        while idx - self.row_start >= self.n - 1 - self.u {
            self.row_start += self.n - 1 - self.u;
            self.u += 1;
        }
        Some((self.u, self.u + 1 + idx - self.row_start))
    }
}

enum GnpState {
    /// `p == 0` (or `n < 2`): no edges, no draws.
    Empty,
    /// `p >= 1`: every pair, enumerated without consuming the RNG.
    Complete { u: usize, v: usize },
    /// `0 < p < 1`: geometric skip-sampling, one draw per edge.
    Sample { sampler: PairSampler, rng: StdRng },
}

/// Streaming `G(n, p)`: the edge sequence of
/// [`gnp`](super::random::gnp) seeded with `StdRng::seed_from_u64(seed)`,
/// without the edge `Vec`.
///
/// State is `O(1)`; a full pass costs `O(m)` RNG draws and `O(n + m)`
/// decode work.
///
/// # Examples
///
/// ```
/// use graphs::generators::{EdgeStream, GnpStream};
///
/// let mut s = GnpStream::new(100, 0.05, 7);
/// let first_pass: Vec<_> = std::iter::from_fn(|| s.next_edge()).collect();
/// s.reset();
/// let second_pass: Vec<_> = std::iter::from_fn(|| s.next_edge()).collect();
/// assert_eq!(first_pass, second_pass);
/// ```
///
/// # Panics
///
/// [`GnpStream::new`] panics if `p` is not in `[0, 1]`.
pub struct GnpStream {
    n: usize,
    p: f64,
    seed: u64,
    state: GnpState,
}

impl GnpStream {
    /// Creates the stream; equivalent to
    /// `gnp(n, p, &mut StdRng::seed_from_u64(seed))` edge for edge.
    #[must_use]
    pub fn new(n: usize, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        let mut s = Self { n, p, seed, state: GnpState::Empty };
        s.reset();
        s
    }
}

impl EdgeStream for GnpStream {
    fn node_count(&self) -> usize {
        self.n
    }

    fn edge_hint(&self) -> Option<usize> {
        let total = self.n * self.n.saturating_sub(1) / 2;
        Some((self.p * total as f64).ceil() as usize)
    }

    fn reset(&mut self) {
        self.state = if self.n < 2 || self.p <= 0.0 {
            GnpState::Empty
        } else if self.p >= 1.0 {
            GnpState::Complete { u: 0, v: 1 }
        } else {
            GnpState::Sample {
                sampler: PairSampler::new(self.n, self.p),
                rng: StdRng::seed_from_u64(self.seed),
            }
        };
    }

    fn next_edge(&mut self) -> Option<(usize, usize)> {
        match &mut self.state {
            GnpState::Empty => None,
            GnpState::Complete { u, v } => {
                if *v >= self.n {
                    return None;
                }
                let pair = (*u, *v);
                *v += 1;
                if *v >= self.n {
                    *u += 1;
                    *v = *u + 1;
                }
                Some(pair)
            }
            GnpState::Sample { sampler, rng } => sampler.next_pair(rng),
        }
    }
}

/// Streaming planted ε-near clique: the edge set of
/// [`planted_near_clique`](super::planted::planted_near_clique) seeded with
/// `StdRng::seed_from_u64(seed)`, emitted in lexicographic order.
///
/// The RNG is consumed in exactly the materialized generator's order: the
/// member shuffle and internal-edge deletion happen at
/// [`reset`](EdgeStream::reset), one
/// `gen_bool` per non-internal pair during emission. Working state is the
/// planted structure itself — `O(n / 64 + k²)` for the member bitset and
/// surviving internal edges — independent of the `O(n² · p)` background.
///
/// # Panics
///
/// [`PlantedNearCliqueStream::new`] panics under the same conditions as
/// the materialized generator (`k > n`, `epsilon ∉ [0, 1]`,
/// `background_p ∉ [0, 1]`).
pub struct PlantedNearCliqueStream {
    n: usize,
    k: usize,
    epsilon: f64,
    background_p: f64,
    seed: u64,
    rng: StdRng,
    dense_set: FixedBitSet,
    /// Surviving internal edges, sorted lexicographically.
    internal: Vec<(usize, usize)>,
    ptr: usize,
    /// Next candidate pair of the background walk (`u < v`).
    u: usize,
    v: usize,
}

impl PlantedNearCliqueStream {
    /// Creates the stream; same planted set and edge set as
    /// `planted_near_clique(n, k, epsilon, background_p,
    /// &mut StdRng::seed_from_u64(seed))`.
    #[must_use]
    pub fn new(n: usize, k: usize, epsilon: f64, background_p: f64, seed: u64) -> Self {
        assert!(k <= n, "planted size k = {k} exceeds n = {n}");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1], got {epsilon}");
        assert!((0.0..=1.0).contains(&background_p), "background_p must be in [0, 1]");
        let mut s = Self {
            n,
            k,
            epsilon,
            background_p,
            seed,
            rng: StdRng::seed_from_u64(seed),
            dense_set: FixedBitSet::new(0),
            internal: Vec::new(),
            ptr: 0,
            u: 0,
            v: 1,
        };
        s.reset();
        s
    }

    /// The planted dense set `D` (ground truth), capacity `n`.
    #[must_use]
    pub fn dense_set(&self) -> &FixedBitSet {
        &self.dense_set
    }

    /// The ε for which `D` was planted (0.0 for an exact clique).
    #[must_use]
    pub fn planted_epsilon(&self) -> f64 {
        self.epsilon
    }

    fn advance(&mut self) {
        self.v += 1;
        if self.v >= self.n {
            self.u += 1;
            self.v = self.u + 1;
        }
    }
}

impl EdgeStream for PlantedNearCliqueStream {
    fn node_count(&self) -> usize {
        self.n
    }

    fn edge_hint(&self) -> Option<usize> {
        let total = self.n * self.n.saturating_sub(1) / 2;
        let clique = self.k * self.k.saturating_sub(1) / 2;
        Some(self.internal.len() + (self.background_p * (total - clique) as f64).ceil() as usize)
    }

    fn reset(&mut self) {
        // Replay the materialized generator's setup draws exactly:
        // member shuffle, then internal-edge shuffle + truncation.
        self.rng = StdRng::seed_from_u64(self.seed);
        let mut ids: Vec<usize> = (0..self.n).collect();
        ids.shuffle(&mut self.rng);
        let mut members = ids[..self.k].to_vec();
        members.sort_unstable();
        self.dense_set = FixedBitSet::from_iter_with_capacity(self.n, members.iter().copied());

        let mut internal: Vec<(usize, usize)> =
            Vec::with_capacity(self.k * (self.k.saturating_sub(1)) / 2);
        for i in 0..self.k {
            for j in (i + 1)..self.k {
                internal.push((members[i], members[j]));
            }
        }
        internal.shuffle(&mut self.rng);
        let deletions = (self.epsilon * internal.len() as f64).floor() as usize;
        internal.truncate(internal.len() - deletions);
        // Sorting happens after all setup draws, so it does not perturb the
        // RNG stream; it turns the survivors into a mergeable run.
        internal.sort_unstable();
        self.internal = internal;
        self.ptr = 0;
        self.u = 0;
        self.v = 1;
    }

    fn next_edge(&mut self) -> Option<(usize, usize)> {
        if self.background_p <= 0.0 {
            // The materialized generator skips the background loop entirely
            // (no draws); emit just the surviving internal run.
            let edge = self.internal.get(self.ptr).copied();
            self.ptr += edge.is_some() as usize;
            return edge;
        }
        while self.u + 1 < self.n {
            let pair = (self.u, self.v);
            if self.dense_set.contains(pair.0) && self.dense_set.contains(pair.1) {
                // Internal pair: survived (emit, no draw) or deleted (skip,
                // no draw) — matching the materialized `continue`.
                let survived = self.internal.get(self.ptr) == Some(&pair);
                self.advance();
                if survived {
                    self.ptr += 1;
                    return Some(pair);
                }
            } else {
                let hit = self.rng.gen_bool(self.background_p);
                self.advance();
                if hit {
                    return Some(pair);
                }
            }
        }
        None
    }
}

/// An [`EdgeStream`] over an explicit pre-sorted edge list.
///
/// The adapter for consumers that want the streaming build path on an
/// edge set they already hold (tests, hand-built instances, replays).
///
/// # Panics
///
/// [`VecEdgeStream::new`] panics unless every edge satisfies `u < v < n`
/// and the list is strictly lexicographically increasing (which also rules
/// out duplicates).
pub struct VecEdgeStream {
    n: usize,
    edges: Vec<(usize, usize)>,
    pos: usize,
}

impl VecEdgeStream {
    /// Wraps a strictly sorted `u < v` edge list on `n` nodes.
    #[must_use]
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        for (i, &(u, v)) in edges.iter().enumerate() {
            assert!(u < v && v < n, "edge ({u},{v}) violates u < v < n = {n}");
            if i > 0 {
                assert!(edges[i - 1] < (u, v), "edge list must be strictly sorted");
            }
        }
        Self { n, edges, pos: 0 }
    }

    /// Streams the edges of an existing [`Graph`] (CSR order is already
    /// lexicographic).
    #[must_use]
    pub fn from_graph(graph: &Graph) -> Self {
        Self { n: graph.node_count(), edges: graph.edges().collect(), pos: 0 }
    }
}

impl EdgeStream for VecEdgeStream {
    fn node_count(&self) -> usize {
        self.n
    }

    fn edge_hint(&self) -> Option<usize> {
        Some(self.edges.len())
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn next_edge(&mut self) -> Option<(usize, usize)> {
        let edge = self.edges.get(self.pos).copied();
        self.pos += edge.is_some() as usize;
        edge
    }
}

/// Collects a stream into a materialized [`Graph`] (resetting it first).
///
/// Mostly for tests and analyses that need adjacency: the point of a
/// stream is that the delivery plane does *not* need this.
#[must_use]
pub fn materialize(stream: &mut dyn EdgeStream) -> Graph {
    let mut b = GraphBuilder::new(stream.node_count());
    stream.reset();
    while let Some((u, v)) = stream.next_edge() {
        b.add_unique_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(stream: &mut dyn EdgeStream) -> Vec<(usize, usize)> {
        std::iter::from_fn(|| stream.next_edge()).collect()
    }

    #[test]
    fn gnp_stream_is_sorted_unique_and_restartable() {
        let mut s = GnpStream::new(200, 0.05, 11);
        let first = drain(&mut s);
        assert!(first.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        assert!(first.iter().all(|&(u, v)| u < v && v < 200));
        s.reset();
        assert_eq!(drain(&mut s), first);
    }

    #[test]
    fn gnp_stream_extremes() {
        assert!(drain(&mut GnpStream::new(30, 0.0, 1)).is_empty());
        let complete = drain(&mut GnpStream::new(30, 1.0, 1));
        assert_eq!(complete.len(), 30 * 29 / 2);
        assert!(complete.windows(2).all(|w| w[0] < w[1]));
        assert!(drain(&mut GnpStream::new(1, 0.5, 1)).is_empty());
        assert!(drain(&mut GnpStream::new(0, 0.5, 1)).is_empty());
    }

    #[test]
    fn planted_stream_is_sorted_unique_and_restartable() {
        let mut s = PlantedNearCliqueStream::new(120, 40, 0.15, 0.03, 9);
        let first = drain(&mut s);
        assert!(first.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        s.reset();
        assert_eq!(drain(&mut s), first);
        assert_eq!(s.dense_set().len(), 40);
    }

    #[test]
    fn planted_stream_zero_background_is_internal_only() {
        let mut s = PlantedNearCliqueStream::new(60, 20, 0.1, 0.0, 5);
        let edges = drain(&mut s);
        let expected = 20 * 19 / 2 - (0.1f64 * (20.0 * 19.0 / 2.0)).floor() as usize;
        assert_eq!(edges.len(), expected);
        assert!(edges.iter().all(|&(u, v)| s.dense_set().contains(u) && s.dense_set().contains(v)));
    }

    #[test]
    fn vec_edge_stream_round_trips_a_graph() {
        let mut s = GnpStream::new(80, 0.1, 3);
        let g = materialize(&mut s);
        let mut v = VecEdgeStream::from_graph(&g);
        assert_eq!(drain(&mut v), g.edges().collect::<Vec<_>>());
        v.reset();
        assert_eq!(materialize(&mut v).edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn vec_edge_stream_rejects_unsorted_input() {
        let _ = VecEdgeStream::new(5, vec![(1, 2), (0, 3)]);
    }
}
